// Dense-motif analysis of face-to-face contact networks — the sensitivity
// workload of Sec. 5.5 applied to the contact-high-school preset. Contact
// events (groups of people in proximity) are hyperedges; dense patterns
// (every pair of events sharing participants) locate tightly recurring
// groups, the super-spreading structures of epidemiological models.
package main

import (
	"fmt"
	"log"
	"time"

	"ohminer"
)

func main() {
	preset, err := ohminer.DatasetPresetByTag("CH")
	if err != nil {
		log.Fatal(err)
	}
	h, err := ohminer.GenerateDataset(preset.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("contact network:", h)
	store := ohminer.NewStore(h)

	// Dense patterns of growing size: every pair of contact events must
	// share at least one participant.
	for _, m := range []int{2, 3} {
		p, err := ohminer.SampleDensePattern(h, m, 2, 12, int64(m)*31)
		if err != nil {
			log.Fatalf("dense-%d: %v", m, err)
		}
		res, err := ohminer.Mine(store, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dense %d-event motif %-24q  %8d unique occurrences  %v\n",
			m, p.String(), res.Unique, res.Elapsed.Round(time.Microsecond))
	}

	// Recurring-group detection: the same trio meeting in two different
	// contact events, with instrumentation to show the engine's work.
	trio, err := ohminer.ParsePattern("0 1 2; 0 1 2 3")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ohminer.Mine(store, trio, ohminer.WithInstrumentation())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecurring trios (a 3-person event nested in a 4-person event): %d\n", res.Unique)
	fmt.Printf("engine work: %d candidates, %d set operations, gen/val time %v/%v\n",
		res.Stats.Candidates, res.Stats.SetOps,
		res.Stats.GenTime.Round(time.Microsecond), res.Stats.ValTime.Round(time.Microsecond))
}
