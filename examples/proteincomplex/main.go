// Protein-complex motif search — the labeled-HPM application from the
// paper's introduction: proteins are vertices (labeled with a functional
// family), protein complexes are hyperedges, and a biologist's query is a
// labeled pattern describing how complexes share proteins.
//
// The example synthesizes a protein-complex network, then searches for a
// "bridged complex pair" motif: two complexes sharing exactly two proteins,
// one of which is a kinase — the kind of structural query used for function
// prediction in protein interaction hypergraphs.
package main

import (
	"fmt"
	"log"

	"ohminer"
)

// Protein functional families (vertex labels).
const (
	kinase = iota
	phosphatase
	scaffold
	transport
	numFamilies
)

var familyName = [...]string{"kinase", "phosphatase", "scaffold", "transport"}

func main() {
	// Synthesize a protein-complex network: ~2000 proteins, ~4000
	// complexes of 3-8 subunits each, with community structure standing in
	// for co-functional modules.
	cfg := ohminer.GeneratorConfig{
		Name:        "protein-complexes",
		NumVertices: 2000, NumEdges: 4000, Communities: 80,
		MemberOverlap: 1.0, EdgeSizeMin: 3, EdgeSizeMax: 8, EdgeSizeMean: 4.5,
		NumLabels: numFamilies, Seed: 2025,
	}
	h, err := ohminer.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protein-complex network:", h)
	store := ohminer.NewStore(h)

	// The motif: complexes A = {p0..p3} and B = {p2..p5} share proteins
	// p2 (a kinase) and p3 (a scaffold); the remaining subunits are
	// transport proteins. Vertex labels constrain the match.
	motif, err := ohminer.NewPattern(
		[][]uint32{
			{0, 1, 2, 3},
			{2, 3, 4, 5},
		},
		[]uint32{kinase, kinase, kinase, scaffold, kinase, kinase},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("motif: two 4-subunit complexes bridged by a kinase + scaffold pair")

	printed := 0
	res, err := ohminer.Mine(store, motif, ohminer.WithEmbeddings(func(edges []uint32) {
		if printed >= 5 {
			return
		}
		printed++
		a, b := edges[0], edges[1]
		fmt.Printf("  complexes #%d and #%d share proteins", a, b)
		for _, pa := range h.EdgeVertices(a) {
			for _, pb := range h.EdgeVertices(b) {
				if pa == pb {
					fmt.Printf(" %d(%s)", pa, familyName[h.Label(pa)])
				}
			}
		}
		fmt.Println()
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("motif occurs %d time(s) [%d ordered] in %v\n", res.Unique, res.Ordered, res.Elapsed)

	// Labels prune hard: compare against the same motif without labels.
	unlabeled, err := ohminer.NewPattern([][]uint32{{0, 1, 2, 3}, {2, 3, 4, 5}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	ures, err := ohminer.Mine(store, unlabeled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without label constraints the structure occurs %d time(s): labels pruned %.1f%% of matches\n",
		ures.Unique, 100*(1-float64(res.Unique)/float64(ures.Unique)))
}
