// Collaboration-pattern search in a coauthorship network — the paper's
// pattern-search-in-collaborative-networks application. Papers are
// hyperedges, authors are vertices (the coauth-DBLP modeling of Table 3).
//
// The example mines "research-group chains": three papers where consecutive
// papers share authors — the signature of a group publishing a line of
// work — and contrasts OHMiner's time with the HGMatch baseline on the same
// store.
package main

import (
	"fmt"
	"log"
	"time"

	"ohminer"
)

func main() {
	// The scaled coauth-DBLP preset (~48k authors, ~92k papers).
	preset, err := ohminer.DatasetPresetByTag("CD")
	if err != nil {
		log.Fatal(err)
	}
	h, err := ohminer.GenerateDataset(preset.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coauthorship network:", h)

	t0 := time.Now()
	store := ohminer.NewStore(h)
	fmt.Printf("degree-aware store built in %v\n", time.Since(t0).Round(time.Millisecond))

	// Sample a 3-paper chain pattern from the data itself (the paper's
	// workload methodology), then mine it with both systems.
	p, err := ohminer.SamplePattern(h, 3, 4, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: %s\n", p)

	ohm, err := ohminer.Mine(store, p)
	if err != nil {
		log.Fatal(err)
	}
	hgm, err := ohminer.Mine(store, p, ohminer.WithVariant("HGMatch"))
	if err != nil {
		log.Fatal(err)
	}
	if ohm.Ordered != hgm.Ordered {
		log.Fatalf("count mismatch: %d vs %d", ohm.Ordered, hgm.Ordered)
	}
	fmt.Printf("OHMiner: %d unique embeddings in %v\n", ohm.Unique, ohm.Elapsed.Round(time.Microsecond))
	fmt.Printf("HGMatch: same result in %v (OHMiner is %.1fx faster)\n",
		hgm.Elapsed.Round(time.Microsecond), float64(hgm.Elapsed)/float64(ohm.Elapsed))

	// A custom chain with an explicit shape: papers sharing exactly one
	// author between consecutive hops and nothing across the ends.
	chain, err := ohminer.ParsePattern("0 1 2; 2 3 4; 4 5 6")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ohminer.Mine(store, chain, ohminer.WithLimit(100000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-paper chains of 3-author papers: ≥%d ordered matches (stopped at limit) in %v\n",
		res.Ordered, res.Elapsed.Round(time.Microsecond))
}
