// Quickstart: build a tiny hypergraph, mine a 3-hyperedge pattern, and
// print the embeddings — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"ohminer"
)

func main() {
	// A small hypergraph: 15 vertices, 5 hyperedges (the paper's running
	// example from Figure 1(b)).
	h, err := ohminer.BuildHypergraph(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},         // e1
		{3, 4, 5, 6, 7, 8},         // e2
		{3, 4, 5, 6, 7, 9, 10, 11}, // e3
		{0, 1, 2, 9, 12, 13},       // e4
		{1, 3, 4, 5, 6, 7, 8, 14},  // e5
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data:", h)

	// The degree-aware data store is built once and reused across queries.
	store := ohminer.NewStore(h)

	// The Figure 1(a) pattern: three hyperedges with a 3-vertex common
	// overlap; pe2∩pe3 has 5 vertices.
	p, err := ohminer.ParsePattern("0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: %s (%d hyperedges, %d vertices)\n", p, p.NumEdges(), p.NumVertices())

	// Inspect the compiled overlap-centric execution plan (Table 1).
	plan, err := ohminer.CompilePattern(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled in %v:\n%s\n", plan.CompileTime, plan)

	// Mine, collecting every embedding.
	res, err := ohminer.Mine(store, p, ohminer.WithEmbeddings(func(edges []uint32) {
		fmt.Println("embedding (hyperedge IDs in matching order):", edges)
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d unique embedding(s) in %v\n", res.Unique, res.Elapsed)
}
