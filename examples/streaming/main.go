// Streaming collaboration monitoring — the dynamic-hypergraph extension:
// a coauthorship network receives batches of new papers, and after each
// batch the incremental miner reports how many new occurrences of a
// collaboration pattern the batch created, without recounting the old
// network. A motif census then fingerprints the final network.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ohminer"
)

func main() {
	const numAuthors = 500
	rng := rand.New(rand.NewSource(7))
	newPapers := func(n int) [][]uint32 {
		batch := make([][]uint32, n)
		for i := range batch {
			// 2-4 authors per paper, clustered into loose groups.
			group := rng.Intn(20)
			size := 2 + rng.Intn(3)
			for j := 0; j < size; j++ {
				batch[i] = append(batch[i], uint32((group*25+rng.Intn(40))%numAuthors))
			}
		}
		return batch
	}

	miner, err := ohminer.NewDynamicMiner(numAuthors, newPapers(400))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial network:", miner.Hypergraph())

	// The pattern: a 3-paper collaboration chain.
	chain, err := ohminer.ParsePattern("0 1; 1 2; 2 3")
	if err != nil {
		log.Fatal(err)
	}
	total, err := miner.TotalCount(chain)
	if err != nil {
		log.Fatal(err)
	}
	running := total.Ordered
	fmt.Printf("collaboration chains at start: %d unique\n", total.Unique)

	for batch := 1; batch <= 3; batch++ {
		if err := miner.ApplyBatch(newPapers(60)); err != nil {
			log.Fatal(err)
		}
		delta, err := miner.DeltaCount(chain)
		if err != nil {
			log.Fatal(err)
		}
		running += delta.Ordered
		fmt.Printf("batch %d: +%d papers → +%d new chains in %v (running total %d ordered)\n",
			batch, miner.NumNewEdges(), delta.Unique, delta.Elapsed.Round(time.Millisecond), running)
		// The incremental count must agree with a full recount.
		full, err := miner.TotalCount(chain)
		if err != nil {
			log.Fatal(err)
		}
		if full.Ordered != running {
			log.Fatalf("incremental drift: %d vs %d", running, full.Ordered)
		}
	}

	// Fingerprint the final network with a 2-hyperedge motif census.
	entries, err := ohminer.MotifCensus(miner.Store(), 2, 3, 8, ohminer.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop motifs of the final network:")
	shown := 0
	for _, e := range entries {
		if e.Unique == 0 || shown >= 5 {
			break
		}
		shown++
		fmt.Printf("  %-40s %8d occurrences\n", e.Shape, e.Unique)
	}
	frequent := ohminer.FrequentMotifs(entries, 100)
	fmt.Printf("%d motif classes occur ≥100 times\n", len(frequent))
}
