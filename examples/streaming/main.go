// Streaming collaboration monitoring — the streaming subsystem: a
// coauthorship network receives batches of new papers while old papers age
// out of a sliding relevance window, and a standing query reports after
// each batch exactly how many collaboration chains appeared and
// disappeared, without recounting the old network. A motif census then
// fingerprints the final network.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ohminer"
)

func main() {
	const numAuthors = 500
	rng := rand.New(rand.NewSource(7))
	newPapers := func(n int) [][]uint32 {
		batch := make([][]uint32, n)
		for i := range batch {
			// 2-4 authors per paper, clustered into loose groups.
			group := rng.Intn(20)
			size := 2 + rng.Intn(3)
			for j := 0; j < size; j++ {
				batch[i] = append(batch[i], uint32((group*25+rng.Intn(40))%numAuthors))
			}
		}
		return batch
	}

	// Papers stay relevant for 4 batches, then expire from the window.
	miner, err := ohminer.NewStreamMiner(ohminer.StreamConfig{
		NumVertices: numAuthors,
		Window:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := miner.ApplyBatch(ohminer.StreamBatch{Seq: 1, Add: newPapers(400)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial network:", miner.Hypergraph())

	// The standing query: a 3-paper collaboration chain. Registering mines
	// the baseline; every batch then pushes an exact delta event.
	chain, err := ohminer.ParsePattern("0 1; 1 2; 2 3")
	if err != nil {
		log.Fatal(err)
	}
	q, err := miner.RegisterQuery(chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaboration chains at start: %d unique\n", q.Unique)

	for batch := 2; batch <= 5; batch++ {
		res, err := miner.ApplyBatch(ohminer.StreamBatch{Seq: uint64(batch), Add: newPapers(60)})
		if err != nil {
			log.Fatal(err)
		}
		d := res.Deltas[0]
		fmt.Printf("batch %d: +%d papers, %d expired → +%d −%d chains (total %d unique)\n",
			batch, res.Added, res.Expired, d.AddedUnique, d.RetiredUnique, d.Unique)
		// The incremental count must agree with a full recount.
		full, err := miner.TotalCount(chain)
		if err != nil {
			log.Fatal(err)
		}
		if full.Ordered != d.Total {
			log.Fatalf("incremental drift: %d vs %d", d.Total, full.Ordered)
		}
	}

	// Fingerprint the final network with a 2-hyperedge motif census.
	entries, err := ohminer.MotifCensus(miner.Store(), 2, 3, 8, ohminer.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop motifs of the final network:")
	shown := 0
	for _, e := range entries {
		if e.Unique == 0 || shown >= 5 {
			break
		}
		shown++
		fmt.Printf("  %-40s %8d occurrences\n", e.Shape, e.Unique)
	}
	frequent := ohminer.FrequentMotifs(entries, 100)
	fmt.Printf("%d motif classes occur ≥100 times\n", len(frequent))
}
