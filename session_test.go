package ohminer

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func sessionFixture(t *testing.T) (*Session, *Pattern) {
	t.Helper()
	h, err := BuildHypergraph(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
		{0, 1, 2, 9, 12, 13},
		{1, 3, 4, 5, 6, 7, 8, 14},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePattern("0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11")
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(NewStore(h)), p
}

func TestSessionCachesPlans(t *testing.T) {
	s, p := sessionFixture(t)
	for i := 0; i < 5; i++ {
		res, err := s.Mine(p, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Unique != 1 {
			t.Fatalf("run %d: unique=%d", i, res.Unique)
		}
	}
	if got := s.CachedPlans(); got != 1 {
		t.Fatalf("cached plans %d want 1", got)
	}
	// The simple-mode variant compiles its own plan.
	if _, err := s.Mine(p, WithVariant("OHM-I"), WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.CachedPlans(); got != 2 {
		t.Fatalf("cached plans %d want 2", got)
	}
}

func TestSessionConcurrent(t *testing.T) {
	s, p := sessionFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Mine(p, WithWorkers(1))
			if err != nil {
				errs <- err
				return
			}
			if res.Unique != 1 {
				errs <- errWrongCount
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type countErr struct{}

func (countErr) Error() string { return "wrong count" }

var errWrongCount = countErr{}

// TestSessionLabelFingerprintFullWidth is the regression test for the
// plan-cache key collision: labels are uint32, and the old fingerprint
// truncated them to one byte, so labels 1 and 257 (differing by 256)
// collided and the second query silently reused the first query's plan —
// returning counts for the wrong labels.
func TestSessionLabelFingerprintFullWidth(t *testing.T) {
	// Vertices 0,1 carry label 1; vertices 2,3,4 carry label 257.
	h, err := BuildHypergraph(5, [][]uint32{{0, 1}, {2, 3}, {3, 4}},
		[]uint32{1, 1, 257, 257, 257})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(NewStore(h))
	p1, err := NewPattern([][]uint32{{0, 1}}, []uint32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPattern([][]uint32{{0, 1}}, []uint32{257, 257})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Mine(p1, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Mine(p2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ordered != 1 {
		t.Errorf("labels {1,1}: Ordered=%d want 1", r1.Ordered)
	}
	// Under the collision p2 reused p1's plan and reported 1.
	if r2.Ordered != 2 {
		t.Errorf("labels {257,257}: Ordered=%d want 2", r2.Ordered)
	}
	if got := s.CachedPlans(); got != 2 {
		t.Errorf("cached plans %d want 2 (labels 1 vs 257 must not collide)", got)
	}
}

// TestSessionEdgeLabelFingerprintFullWidth: the same 256-multiple collision
// for hyperedge labels.
func TestSessionEdgeLabelFingerprintFullWidth(t *testing.T) {
	h, err := BuildEdgeLabeledHypergraph(5, [][]uint32{{0, 1}, {2, 3}, {3, 4}},
		nil, []uint32{1, 257, 257})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(NewStore(h))
	p1, err := NewEdgeLabeledPattern([][]uint32{{0, 1}}, nil, []uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewEdgeLabeledPattern([][]uint32{{0, 1}}, nil, []uint32{257})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Mine(p1, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Mine(p2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ordered != 1 || r2.Ordered != 2 {
		t.Errorf("edge labels 1/257: Ordered=%d/%d want 1/2", r1.Ordered, r2.Ordered)
	}
	if got := s.CachedPlans(); got != 2 {
		t.Errorf("cached plans %d want 2 (edge labels 1 vs 257 must not collide)", got)
	}
}

// TestSessionConcurrentMixed hammers one session from many goroutines with
// a mix of labeled, edge-labeled, and unlabeled isomorphic patterns (plus a
// simple-mode variant), asserting under -race that every query matches a
// fresh engine run and the plan cache holds exactly one plan per
// isomorphism class and mode — the two isomorphic unlabeled literals share
// a single canonical plan.
func TestSessionConcurrentMixed(t *testing.T) {
	// One hypergraph carrying both vertex labels and hyperedge labels.
	h, err := BuildEdgeLabeledHypergraph(8,
		[][]uint32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}},
		[]uint32{1, 1, 1, 257, 257, 257, 2, 2},
		[]uint32{5, 5, 6, 5, 261})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(h)
	s := NewSession(store)

	unlabeled1, err := ParsePattern("0 1; 1 2")
	if err != nil {
		t.Fatal(err)
	}
	unlabeled2, err := ParsePattern("3 4; 4 5") // isomorphic, distinct literal
	if err != nil {
		t.Fatal(err)
	}
	labeled1, err := NewPattern([][]uint32{{0, 1}}, []uint32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	labeled2, err := NewPattern([][]uint32{{0, 1}}, []uint32{257, 257})
	if err != nil {
		t.Fatal(err)
	}
	edgeLabeled, err := NewEdgeLabeledPattern([][]uint32{{0, 1}}, nil, []uint32{5})
	if err != nil {
		t.Fatal(err)
	}

	type query struct {
		p    *Pattern
		opts []Option
	}
	queries := []query{
		{unlabeled1, nil},
		{unlabeled1, []Option{WithVariant("OHM-I")}}, // simple-mode plan, own cache entry
		{unlabeled2, nil}, // isomorphic to unlabeled1: shares its canonical plan
		{labeled1, nil},
		{labeled2, nil},
		{edgeLabeled, nil},
	}
	const wantPlans = 5

	// Ground truth from fresh engine runs (no session, no cache).
	want := make([]uint64, len(queries))
	for i, q := range queries {
		res, err := Mine(store, q.p, append([]Option{WithWorkers(2)}, q.opts...)...)
		if err != nil {
			t.Fatalf("fresh mine %d: %v", i, err)
		}
		want[i] = res.Ordered
	}

	// Warm the cache once per query so the concurrent phase is all hits.
	for i, q := range queries {
		if _, err := s.Mine(q.p, append([]Option{WithWorkers(1)}, q.opts...)...); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}

	const goroutines, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				q := queries[i]
				res, err := s.Mine(q.p, append([]Option{WithWorkers(2)}, q.opts...)...)
				if err != nil {
					errs <- err
					return
				}
				if res.Ordered != want[i] {
					errs <- errWrongCount
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.CachedPlans(); got != wantPlans {
		t.Errorf("cached plans %d want %d", got, wantPlans)
	}
	hits, misses := s.CacheStats()
	totalQueries := uint64(len(queries) + goroutines*rounds)
	if misses != wantPlans {
		t.Errorf("cache misses %d want %d (one compile per distinct plan)", misses, wantPlans)
	}
	if hits+misses != totalQueries {
		t.Errorf("hits+misses = %d+%d, want %d total queries", hits, misses, totalQueries)
	}
}

// TestSessionMineContext: cancellation propagates through the session path.
func TestSessionMineContext(t *testing.T) {
	s, p := sessionFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.MineContext(ctx, p, WithWorkers(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res, err := s.MineContext(context.Background(), p, WithWorkers(1)); err != nil || res.Unique != 1 {
		t.Fatalf("live ctx: res=%+v err=%v", res, err)
	}
}

func TestSessionLabeledKeying(t *testing.T) {
	h, err := BuildHypergraph(4, [][]uint32{{0, 1}, {1, 2}, {2, 3}}, []uint32{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(NewStore(h))
	p1, err := NewPattern([][]uint32{{0, 1}, {1, 2}}, []uint32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPattern([][]uint32{{0, 1}, {1, 2}}, []uint32{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Mine(p1, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Mine(p2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Same structure, different labels: must not share a cached plan.
	if s.CachedPlans() != 2 {
		t.Fatalf("cached plans %d want 2", s.CachedPlans())
	}
	if r1.Ordered == 0 && r2.Ordered == 0 {
		t.Fatal("degenerate fixture: no labeled matches at all")
	}
}
