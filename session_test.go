package ohminer

import (
	"sync"
	"testing"
)

func sessionFixture(t *testing.T) (*Session, *Pattern) {
	t.Helper()
	h, err := BuildHypergraph(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
		{0, 1, 2, 9, 12, 13},
		{1, 3, 4, 5, 6, 7, 8, 14},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePattern("0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11")
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(NewStore(h)), p
}

func TestSessionCachesPlans(t *testing.T) {
	s, p := sessionFixture(t)
	for i := 0; i < 5; i++ {
		res, err := s.Mine(p, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Unique != 1 {
			t.Fatalf("run %d: unique=%d", i, res.Unique)
		}
	}
	if got := s.CachedPlans(); got != 1 {
		t.Fatalf("cached plans %d want 1", got)
	}
	// The simple-mode variant compiles its own plan.
	if _, err := s.Mine(p, WithVariant("OHM-I"), WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.CachedPlans(); got != 2 {
		t.Fatalf("cached plans %d want 2", got)
	}
}

func TestSessionConcurrent(t *testing.T) {
	s, p := sessionFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Mine(p, WithWorkers(1))
			if err != nil {
				errs <- err
				return
			}
			if res.Unique != 1 {
				errs <- errWrongCount
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type countErr struct{}

func (countErr) Error() string { return "wrong count" }

var errWrongCount = countErr{}

func TestSessionLabeledKeying(t *testing.T) {
	h, err := BuildHypergraph(4, [][]uint32{{0, 1}, {1, 2}, {2, 3}}, []uint32{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(NewStore(h))
	p1, err := NewPattern([][]uint32{{0, 1}, {1, 2}}, []uint32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPattern([][]uint32{{0, 1}, {1, 2}}, []uint32{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Mine(p1, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Mine(p2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Same structure, different labels: must not share a cached plan.
	if s.CachedPlans() != 2 {
		t.Fatalf("cached plans %d want 2", s.CachedPlans())
	}
	if r1.Ordered == 0 && r2.Ordered == 0 {
		t.Fatal("degenerate fixture: no labeled matches at all")
	}
}
