package ohminer

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	h, err := BuildHypergraph(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
		{0, 1, 2, 9, 12, 13},
		{1, 3, 4, 5, 6, 7, 8, 14},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(h)
	p, err := NewPattern([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var seen [][]uint32
	res, err := Mine(store, p, WithWorkers(2), WithEmbeddings(func(c []uint32) {
		seen = append(seen, append([]uint32(nil), c...))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unique != 1 || len(seen) != 1 {
		t.Fatalf("unique=%d callbacks=%d", res.Unique, len(seen))
	}
	// Every variant agrees.
	for _, name := range []string{"OHM-G", "OHM-V", "OHM-I", "HGMatch"} {
		r, err := Mine(store, p, WithVariant(name), WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Ordered != res.Ordered {
			t.Fatalf("%s: ordered=%d want %d", name, r.Ordered, res.Ordered)
		}
	}
	// Scalar kernel agrees too.
	r, err := Mine(store, p, WithScalarKernel())
	if err != nil || r.Ordered != res.Ordered {
		t.Fatalf("scalar: %v %d", err, r.Ordered)
	}
}

func TestFacadeParseAndCompile(t *testing.T) {
	p, err := ParsePattern("0 1 2; 2 3; 3 4 5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CompileTime <= 0 || len(plan.Steps) != 3 {
		t.Fatalf("plan: %v", plan)
	}
}

func TestFacadeDatasetsAndSampling(t *testing.T) {
	if len(DatasetPresets()) != 9 {
		t.Fatalf("presets: %d", len(DatasetPresets()))
	}
	preset, err := DatasetPresetByTag("CH")
	if err != nil {
		t.Fatal(err)
	}
	h, err := GenerateDataset(preset.Config)
	if err != nil {
		t.Fatal(err)
	}
	p, err := SamplePattern(h, 3, 3, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 3 {
		t.Fatalf("sampled %d edges", p.NumEdges())
	}
	if _, err := SampleDensePattern(h, 2, 2, 20, 7); err != nil {
		t.Fatal(err)
	}
	if len(PatternSettings()) != 5 {
		t.Fatal("settings")
	}
}

func TestFacadeReadHypergraph(t *testing.T) {
	h, err := ReadHypergraph(strings.NewReader("0 1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("%s", h)
	}
}
