package ohminer

import (
	"path/filepath"
	"testing"
)

// TestFacadeExtensions exercises the extension APIs end-to-end through the
// public surface: estimation, store persistence, motif census, dynamic
// mining, data-aware ordering, canonical emission.
func TestFacadeExtensions(t *testing.T) {
	preset, err := DatasetPresetByTag("CH")
	if err != nil {
		t.Fatal(err)
	}
	cfg := preset.Config
	cfg.NumEdges = 1500 // trim for test speed
	h, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(h)
	p, err := SamplePattern(h, 2, 3, 10, 5)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := Mine(store, p, WithWorkers(1), WithDataAwareOrder())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Mine(store, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Ordered != plain.Ordered {
		t.Fatalf("data-aware order changed count: %d vs %d", exact.Ordered, plain.Ordered)
	}

	est, err := EstimateCount(store, p, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Ordered != float64(exact.Ordered) {
		t.Fatalf("estimate at fraction 1: %.0f vs %d", est.Ordered, exact.Ordered)
	}

	// Persistence.
	path := filepath.Join(t.TempDir(), "ch.dal")
	if err := SaveStore(store, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(path, h)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Mine(loaded, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if re.Ordered != exact.Ordered {
		t.Fatalf("loaded store mined %d vs %d", re.Ordered, exact.Ordered)
	}

	// Canonical emission.
	emitted := 0
	res, err := Mine(store, p, WithWorkers(1), WithCanonicalEmbeddingsOnly(),
		WithEmbeddings(func([]uint32) { emitted++ }))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(emitted) != res.Unique {
		t.Fatalf("canonical emission: %d vs %d", emitted, res.Unique)
	}

	// Motif census.
	entries, err := MotifCensus(store, 2, 2, 6, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty census")
	}
	freq := FrequentMotifs(entries, 1)
	if len(freq) == 0 {
		t.Fatal("no motif occurs in CH-like data")
	}
	if sim, err := MotifSimilarity(entries, entries); err != nil || sim < 0.999 {
		t.Fatalf("self similarity %f %v", sim, err)
	}

	// Dynamic mining.
	dm, err := NewDynamicMiner(10, [][]uint32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ParsePattern("0 1; 1 2")
	if err != nil {
		t.Fatal(err)
	}
	before, err := dm.TotalCount(chain, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.ApplyBatch([][]uint32{{2, 3}}); err != nil {
		t.Fatal(err)
	}
	delta, err := dm.DeltaCount(chain, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	after, err := dm.TotalCount(chain, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if before.Ordered+delta.Ordered != after.Ordered {
		t.Fatalf("delta invariant: %d + %d != %d", before.Ordered, delta.Ordered, after.Ordered)
	}
	if dm.Epoch() != 1 || dm.NumNewEdges() != 1 {
		t.Fatalf("epoch=%d newEdges=%d", dm.Epoch(), dm.NumNewEdges())
	}
}

func TestFacadePatternCatalog(t *testing.T) {
	chain, err := ChainPattern(3, 4, 2)
	if err != nil || chain.NumEdges() != 3 {
		t.Fatalf("chain: %v", err)
	}
	star, err := StarPattern(3, 3, 1)
	if err != nil || star.Automorphisms() != 6 {
		t.Fatalf("star: %v", err)
	}
	cyc, err := CyclePattern(3, 4, 1)
	if err != nil {
		t.Fatalf("cycle: %v", err)
	}
	nested, err := NestedPattern(2, 4, 2)
	if err != nil {
		t.Fatalf("nested: %v", err)
	}
	clique, err := CliquePattern(3, 4, 2)
	if err != nil {
		t.Fatalf("clique: %v", err)
	}
	// All compile and verify.
	for _, p := range []*Pattern{chain, star, cyc, nested, clique} {
		if _, err := CompilePattern(p); err != nil {
			t.Fatalf("compile %s: %v", p, err)
		}
	}
}

func TestFacadeEdgeLabeled(t *testing.T) {
	h, err := BuildEdgeLabeledHypergraph(4,
		[][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil, []uint32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(h)
	p, err := NewEdgeLabeledPattern([][]uint32{{0, 1}, {1, 2}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(store, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered != 2 {
		t.Fatalf("edge-labeled ordered=%d want 2", res.Ordered)
	}
}
