package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExitCodes is the end-to-end drill for the CLI's truncation contract:
// build the real ohminer binary and require that a deadline-truncated run
// exits 124 with its snapshot retained, that -resume completes the run with
// the exact full-run count and exit 0, and that a SIGINT-truncated run
// exits 130. Scripts distinguish "finished" from "truncated" by these codes
// alone, so they are part of the interface, not cosmetics.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs a child binary")
	}
	dir := t.TempDir()

	// A deterministic random-ish hypergraph big enough that the chain
	// patterns below mine for hundreds of milliseconds — room for deadlines
	// and signals to land mid-run. Plain LCG; no external inputs.
	var sb strings.Builder
	state := uint64(7)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < 4000; i++ {
		k := 2 + next(3)
		for j := 0; j < k; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", next(300))
		}
		sb.WriteByte('\n')
	}
	data := filepath.Join(dir, "data.hg")
	if err := os.WriteFile(data, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "ohminer")
	buildArgs := []string{"build"}
	if raceEnabled {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, ".")
	if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const pat = "0 1; 1 2; 2 3; 3 4"
	run := func(args ...string) (int, string) {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"-input", data}, args...)...).CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("run %v: %v\n%s", args, err, out)
		}
		return code, string(out)
	}

	// parseOrdered extracts the final count from the "variant=... ordered=N"
	// result line. LastIndex, not Index: the resume path also logs the
	// snapshot's ordered count to stderr before mining.
	parseOrdered := func(out string) uint64 {
		t.Helper()
		i := strings.LastIndex(out, "ordered=")
		var n uint64
		if i < 0 {
			t.Fatalf("no ordered count in output:\n%s", out)
		}
		if _, err := fmt.Sscanf(out[i:], "ordered=%d", &n); err != nil {
			t.Fatalf("unparseable count in output:\n%s", out)
		}
		return n
	}

	// Ground truth: the full count of the 4-edge chain pattern.
	code, out := run("-pattern", pat)
	if code != 0 {
		t.Fatalf("baseline run: exit %d\n%s", code, out)
	}
	want := parseOrdered(out)
	if want == 0 {
		t.Fatalf("baseline counted nothing:\n%s", out)
	}

	// Deadline truncation: exit 124, snapshot retained, counts reported.
	// The timeout must land after the first checkpoint but before the run
	// completes; setup time varies with machine load and race
	// instrumentation, so escalate until a truncated run leaves a snapshot.
	ckpt := filepath.Join(dir, "run.ckpt")
	landed := false
	for timeout := 150 * time.Millisecond; timeout <= 20*time.Second; timeout *= 2 {
		os.Remove(ckpt)
		code, out = run("-pattern", pat, "-timeout", timeout.String(),
			"-checkpoint", ckpt, "-checkpoint-every", "20ms")
		if code == 0 {
			t.Fatalf("run completed within %v; workload too small to truncate:\n%s", timeout, out)
		}
		if code != exitDeadline {
			t.Fatalf("deadline run: exit %d want %d\n%s", code, exitDeadline, out)
		}
		if _, err := os.Stat(ckpt); err == nil {
			landed = true
			break
		}
	}
	if !landed {
		t.Fatal("no timeout produced a truncated run with a snapshot on disk")
	}
	if !strings.Contains(out, "ordered=") {
		t.Errorf("deadline run reported no partial counts:\n%s", out)
	}

	// Resume: exit 0, exactly the full count, snapshot cleaned up.
	code, out = run("-pattern", pat, "-checkpoint", ckpt, "-resume")
	if code != 0 {
		t.Fatalf("resume run: exit %d\n%s", code, out)
	}
	if got := parseOrdered(out); got != want {
		t.Fatalf("resume run counted %d, full run counted %d — not exactly-once", got, want)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("snapshot survived clean completion (err=%v)", err)
	}

	// SIGINT truncation: exit 130. The 5-edge pattern mines long enough for
	// the signal to land mid-run; if it arrives during setup the run starts
	// cancelled and still exits 130.
	cmd := exec.Command(bin, "-input", data, "-pattern", pat+"; 4 5")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run exited cleanly (err=%v), want exit %d", err, exitInterrupted)
	}
	if ee.ExitCode() != exitInterrupted {
		t.Fatalf("interrupted run: exit %d want %d", ee.ExitCode(), exitInterrupted)
	}
}
