// Command ohminer mines one pattern in one data hypergraph.
//
// The data hypergraph comes either from a file (-input, text format: one
// hyperedge per line) or from a Table 3 preset (-dataset). The pattern is a
// literal (-pattern "0 1 2; 2 3 4"), or sampled from the data (-sample N).
//
//	ohminer -dataset SB -sample 3
//	ohminer -input data.hg -pattern "0 1 2; 2 3; 3 4 5" -variant HGMatch
//	ohminer -dataset WT -sample 4 -variant OHMiner -workers 8 -v
//
// Long runs can checkpoint: -checkpoint FILE snapshots the exact search
// frontier periodically (atomic replace), and -resume continues a run from
// that snapshot with exactly-once counting. A run cut short by Ctrl-C exits
// 130 and one cut short by -timeout exits 124 — both after reporting their
// partial counts — so scripts can tell "finished" from "truncated" without
// parsing output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/cliio"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// Distinct exit codes for truncated runs, following the shell convention
// (128+SIGINT for interrupts, timeout(1)'s 124 for expired deadlines).
const (
	exitInterrupted = 130
	exitDeadline    = 124
)

// errInterrupted/errDeadline tag a run that reported partial counts; main
// maps them to exit codes after output is flushed.
var (
	errInterrupted = errors.New("interrupted")
	errDeadline    = errors.New("deadline exceeded")
)

func main() {
	switch err := run(); {
	case err == nil:
	case errors.Is(err, errInterrupted):
		os.Exit(exitInterrupted)
	case errors.Is(err, errDeadline):
		os.Exit(exitDeadline)
	default:
		fmt.Fprintln(os.Stderr, "ohminer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.String("input", "", "data hypergraph file (text format)")
		dataset  = flag.String("dataset", "", "generate a Table 3 preset instead of reading a file (CH,CP,SB,HB,WT,TC,CD,AM,SYN)")
		patLit   = flag.String("pattern", "", "pattern literal, e.g. \"0 1 2; 2 3 4\"")
		sampleN  = flag.Int("sample", 0, "sample a pattern with this many hyperedges from the data")
		dense    = flag.Bool("dense", false, "with -sample: require every hyperedge pair to overlap")
		variant  = flag.String("variant", "OHMiner", "engine variant: OHMiner, OHM-G, OHM-V, OHM-I, HGMatch")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		kern     = flag.String("kernel", "adaptive", "set-kernel family: adaptive (density-aware containers), fast (static gallop), scalar (no-SIMD ablation)")
		scalar   = flag.Bool("scalar", false, "shorthand for -kernel scalar")
		limit    = flag.Uint64("limit", 0, "stop after this many ordered embeddings (0 = all)")
		seed     = flag.Int64("seed", 1, "sampling seed")
		showPlan = flag.Bool("plan", false, "print the compiled execution plan")
		verbose  = flag.Bool("v", false, "print embeddings (hyperedge IDs in matching order)")
		estimate = flag.Float64("estimate", 0, "approximate the count by mining this fraction (0,1) of first-edge subtrees")
		timeout  = flag.Duration("timeout", 0, "cancel mining after this long and report the partial counts (0 = none)")
		ckptPath = flag.String("checkpoint", "", "snapshot the search frontier to FILE periodically; removed on clean completion")
		ckptInt  = flag.Duration("checkpoint-every", 30*time.Second, "snapshot period for -checkpoint")
		resume   = flag.Bool("resume", false, "continue from the -checkpoint snapshot instead of starting over")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the run through the engine's context path:
	// partial counts are reported instead of the process dying mid-mine.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Results go to stdout through an error-latching writer: a broken
	// pipe or full disk must fail the run, not truncate it silently.
	out := cliio.NewWriter(os.Stdout)

	var (
		h   *hypergraph.Hypergraph
		err error
	)
	switch {
	case *input != "" && *dataset != "":
		return fmt.Errorf("-input and -dataset are mutually exclusive")
	case *input != "":
		h, err = hypergraph.Load(*input)
	case *dataset != "":
		var p gen.Preset
		if p, err = gen.PresetByTag(*dataset); err == nil {
			h, err = gen.Generate(p.Config)
		}
	default:
		return fmt.Errorf("need -input FILE or -dataset TAG")
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "data:", h)

	t0 := time.Now()
	store := dal.Build(h)
	fmt.Fprintf(os.Stderr, "dal: built in %v (%.1f MB)\n", store.BuildTime().Round(time.Millisecond), float64(store.MemoryBytes())/(1<<20))
	_ = t0

	var p *pattern.Pattern
	switch {
	case *patLit != "" && *sampleN > 0:
		return fmt.Errorf("-pattern and -sample are mutually exclusive")
	case *patLit != "":
		p, err = pattern.Parse(*patLit)
	case *sampleN > 0:
		rng := newSeededRand(*seed)
		if *dense {
			p, err = pattern.SampleDense(h, *sampleN, *sampleN, 64, rng)
		} else {
			p, err = pattern.Sample(h, *sampleN, *sampleN, 64, rng)
		}
	default:
		return fmt.Errorf("need -pattern LITERAL or -sample N")
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pattern: %s (%d hyperedges, %d vertices)\n", p, p.NumEdges(), p.NumVertices())

	v, err := engine.VariantByName(*variant)
	if err != nil {
		return err
	}
	opts := engine.Options{Gen: v.Gen, Val: v.Val, Workers: *workers, Limit: *limit}
	if *scalar {
		*kern = "scalar"
	}
	if opts.Kernel, err = kernelByName(*kern); err != nil {
		return err
	}
	if *verbose {
		opts.OnEmbedding = func(c []uint32) { out.Println(c) }
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume needs -checkpoint FILE")
	}
	if *ckptPath != "" {
		if *estimate > 0 {
			return fmt.Errorf("-checkpoint does not apply to -estimate runs")
		}
		opts.Checkpoint = &checkpoint.FileSink{Path: *ckptPath}
		opts.CheckpointEvery = *ckptInt
	}
	if *estimate > 0 {
		est, err := engine.EstimateCount(store, p, *estimate, *seed, opts)
		if err != nil {
			return err
		}
		out.Printf("estimate: ordered≈%.0f (±%.0f stderr) unique≈%.0f from %d/%d roots in %v\n",
			est.Ordered, est.StdErr, est.Unique, est.SampledRoots, est.TotalRoots,
			est.Elapsed.Round(time.Microsecond))
		return out.Close()
	}
	var res engine.Result
	if *resume {
		snap, rerr := checkpoint.ReadFile(*ckptPath)
		if rerr != nil {
			return fmt.Errorf("resume: %w", rerr)
		}
		fmt.Fprintf(os.Stderr, "resume: snapshot seq=%d ordered=%d frontier=%d tasks\n",
			snap.Seq, snap.Ordered, len(snap.Frontier))
		res, err = engine.ResumeFromCheckpoint(ctx, store, p, snap, opts)
	} else {
		res, err = engine.MineContext(ctx, store, p, opts)
	}
	var truncCause error
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			truncCause = errDeadline
		case errors.Is(err, context.Canceled):
			truncCause = errInterrupted
		default:
			return err
		}
		fmt.Fprintf(os.Stderr, "ohminer: %v — partial counts follow\n", err)
	}
	if *showPlan {
		fmt.Fprintf(os.Stderr, "%s", res.Plan)
	}
	out.Printf("variant=%s ordered=%d unique=%d automorphisms=%d elapsed=%v\n",
		v.Name, res.Ordered, res.Unique, res.Automorphisms, res.Elapsed.Round(time.Microsecond))
	if s := res.Stats; s.Publishes > 0 || s.Steals > 0 {
		out.Printf("scheduler: publishes=%d steals=%d idle-spins=%d\n", s.Publishes, s.Steals, s.IdleSpins)
	}
	if s := res.Stats; s.KernelArray+s.KernelBitmap+s.KernelMixed > 0 {
		out.Printf("kernel=%s set-ops: array=%d bitmap=%d mixed=%d\n",
			*kern, s.KernelArray, s.KernelBitmap, s.KernelMixed)
	}
	if s := res.Stats; s.Checkpoints > 0 || s.CheckpointErrors > 0 {
		out.Printf("checkpoints: written=%d bytes=%d errors=%d\n", s.Checkpoints, s.CheckpointBytes, s.CheckpointErrors)
	}
	if cerr := out.Close(); cerr != nil {
		return cerr
	}
	if truncCause != nil {
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "ohminer: snapshot retained at %s — rerun with -resume to continue\n", *ckptPath)
		}
		return truncCause
	}
	if *ckptPath != "" {
		// Clean completion: the rolling snapshot has nothing left to resume.
		os.Remove(*ckptPath)
	}
	return nil
}
