//go:build race

package main

// raceEnabled mirrors the parent test binary's -race flag so the exit-code
// smoke test builds the child ohminer binary with the same instrumentation.
const raceEnabled = true
