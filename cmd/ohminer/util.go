package main

import (
	"math/rand"

	"ohminer/internal/intset"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func scalarKernel() intset.Kernel { return intset.Scalar }
