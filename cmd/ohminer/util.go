package main

import (
	"fmt"
	"math/rand"

	"ohminer/internal/intset"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// kernelByName resolves the -kernel flag to a set-kernel family.
func kernelByName(name string) (intset.Kernel, error) {
	switch name {
	case "adaptive":
		return intset.Adaptive, nil
	case "fast":
		return intset.Fast, nil
	case "scalar":
		return intset.Scalar, nil
	}
	return intset.Kernel{}, fmt.Errorf("unknown -kernel %q (have adaptive, fast, scalar)", name)
}
