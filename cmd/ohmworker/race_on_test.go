//go:build race

package main

// raceEnabled mirrors the parent test binary's -race flag so the smoke
// test builds the child binaries with the same instrumentation.
const raceEnabled = true
