package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ohminer"
)

// TestClusterSmoke is the end-to-end drill for the distributed cluster:
// build the real ohmserve and ohmworker binaries (race-instrumented when
// this test binary is), start a coordinator and three workers over the same
// dataset file, SIGKILL one worker right after it takes its first lease, and
// require that the job still completes with counts identical to a
// single-node run — the kill costs a reassignment, never an embedding.
// `make cluster-smoke` (wired into `make ci`) runs exactly this test.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs child binaries")
	}
	dir := t.TempDir()

	// Star hypergraph: 60 edges all sharing vertex 0, so "0 1; 0 2" has
	// 60×59 ordered embeddings. Written as the text format both binaries
	// load, and mined in-process first for the single-node reference count.
	var data bytes.Buffer
	edges := make([][]uint32, 60)
	for i := range edges {
		edges[i] = []uint32{0, uint32(i) + 1}
		fmt.Fprintf(&data, "0 %d\n", i+1)
	}
	dataPath := filepath.Join(dir, "data.hg")
	if err := os.WriteFile(dataPath, data.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := ohminer.BuildHypergraph(61, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ohminer.ParsePattern("0 1; 0 2")
	if err != nil {
		t.Fatal(err)
	}
	single, err := ohminer.NewSession(ohminer.NewStore(h)).Mine(p)
	if err != nil {
		t.Fatalf("single-node reference run: %v", err)
	}

	serveBin := filepath.Join(dir, "ohmserve")
	workerBin := filepath.Join(dir, "ohmworker")
	for bin, pkg := range map[string]string{serveBin: "ohminer/cmd/ohmserve", workerBin: "."} {
		buildArgs := []string{"build"}
		if raceEnabled {
			buildArgs = append(buildArgs, "-race")
		}
		buildArgs = append(buildArgs, "-o", bin, pkg)
		if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Coordinator: short lease TTL so the killed worker's task is reclaimed
	// within the test's patience; 16 parts so every worker gets several.
	coord := exec.Command(serveBin,
		"-cluster",
		"-addr", "127.0.0.1:0",
		"-input", dataPath,
		"-cluster-parts", "16",
		"-lease-ttl", "500ms")
	coordLog := watchStderr(t, coord, "coordinator")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	addr, ok := coordLog.waitFor("ohmserve: listening on ", 30*time.Second)
	if !ok {
		t.Fatalf("coordinator never announced its address; logs:\n%s", coordLog.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/cluster/jobs", "application/json",
		strings.NewReader(`{"id": "smoke", "pattern": "0 1; 0 2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create cluster job: status %d", resp.StatusCode)
	}

	// Three workers over the same file. The per-embedding throttle stretches
	// each ~220-embedding task to ~70ms so the kill lands mid-run.
	startWorker := func(name string) (*exec.Cmd, *logWatcher) {
		w := exec.Command(workerBin,
			"-coordinator", base,
			"-input", dataPath,
			"-name", name,
			"-workers", "2",
			"-poll", "100ms",
			"-throttle", "300us")
		lw := watchStderr(t, w, name)
		if err := w.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		return w, lw
	}
	w1, _ := startWorker("w1")
	defer w1.Process.Kill()
	w2, _ := startWorker("w2")
	defer w2.Process.Kill()
	w3, w3Log := startWorker("w3")
	defer w3.Process.Kill()

	// SIGKILL w3 the moment it holds a lease: the crash scenario — no
	// report, no heartbeat, just silence. Its task must be reassigned.
	if _, ok := w3Log.waitFor("lease ", 60*time.Second); !ok {
		t.Fatalf("w3 never leased a task; logs:\n%s", w3Log.String())
	}
	if err := w3.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = w3.Wait() // expected: "signal: killed"

	// The survivors finish the job, the killed worker's lease included.
	var st struct {
		State      string `json:"state"`
		Ordered    uint64 `json:"ordered"`
		Unique     uint64 `json:"unique"`
		Reassigned int    `json:"reassigned"`
		Error      string `json:"error"`
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/cluster/jobs/smoke")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err == nil && st.State == "done" {
			break
		}
		if err == nil && st.State == "failed" {
			t.Fatalf("cluster job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster job never completed (last: %+v); coordinator logs:\n%s", st, coordLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.Ordered != single.Ordered || st.Unique != single.Unique {
		t.Errorf("cluster counted ordered=%d unique=%d, single-node %d/%d",
			st.Ordered, st.Unique, single.Ordered, single.Unique)
	}
	// The kill usually costs a reassignment, but w3 may have finished its
	// first task in the instant before the signal landed; that is a timing
	// artifact, not a correctness failure.
	if st.Reassigned == 0 {
		t.Logf("note: no reassignment recorded (w3 finished before the kill landed)")
	}

	// Surviving workers drain cleanly on SIGTERM (exit 0), and the
	// coordinator does too.
	for _, w := range []*exec.Cmd{w1, w2} {
		if err := w.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range []*exec.Cmd{w1, w2} {
		if err := w.Wait(); err != nil {
			t.Errorf("worker w%d exit: %v", i+1, err)
		}
	}
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(); err != nil {
		t.Errorf("coordinator exit: %v\nlogs:\n%s", err, coordLog.String())
	}
}

// logWatcher collects a child's stderr and lets the test wait for marker
// lines.
type logWatcher struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	waiters map[string]chan string
}

func watchStderr(t *testing.T, cmd *exec.Cmd, name string) *logWatcher {
	t.Helper()
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("%s stderr: %v", name, err)
	}
	lw := &logWatcher{waiters: map[string]chan string{}}
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			lw.mu.Lock()
			lw.buf.WriteString(line + "\n")
			for prefix, ch := range lw.waiters {
				if idx := strings.Index(line, prefix); idx >= 0 {
					select {
					case ch <- line[idx+len(prefix):]:
					default:
					}
					delete(lw.waiters, prefix)
				}
			}
			lw.mu.Unlock()
		}
	}()
	return lw
}

// waitFor blocks until a stderr line containing marker arrives (returning
// the remainder of the line after it) or the timeout passes.
func (lw *logWatcher) waitFor(marker string, timeout time.Duration) (string, bool) {
	ch := make(chan string, 1)
	lw.mu.Lock()
	if idx := strings.Index(lw.buf.String(), marker); idx >= 0 {
		rest := lw.buf.String()[idx+len(marker):]
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			rest = rest[:nl]
		}
		lw.mu.Unlock()
		return rest, true
	}
	lw.waiters[marker] = ch
	lw.mu.Unlock()
	select {
	case rest := <-ch:
		return rest, true
	case <-time.After(timeout):
		return "", false
	}
}

func (lw *logWatcher) String() string {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.buf.String()
}
