package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ohminer"
)

// TestClusterSmoke is the end-to-end drill for the distributed cluster:
// build the real ohmserve and ohmworker binaries (race-instrumented when
// this test binary is), start a coordinator and three workers over the same
// dataset file, SIGKILL one worker right after it takes its first lease, and
// require that the job still completes with counts identical to a
// single-node run — the kill costs a reassignment, never an embedding.
// `make cluster-smoke` (wired into `make ci`) runs exactly this test.
// smokeWorkload writes the star dataset both binaries load — 60 edges all
// sharing vertex 0, so "0 1; 0 2" has 60×59 ordered embeddings — and mines
// it in-process for the single-node reference counts.
func smokeWorkload(t *testing.T, dir string) (dataPath string, ordered, unique uint64) {
	t.Helper()
	var data bytes.Buffer
	edges := make([][]uint32, 60)
	for i := range edges {
		edges[i] = []uint32{0, uint32(i) + 1}
		fmt.Fprintf(&data, "0 %d\n", i+1)
	}
	dataPath = filepath.Join(dir, "data.hg")
	if err := os.WriteFile(dataPath, data.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := ohminer.BuildHypergraph(61, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ohminer.ParsePattern("0 1; 0 2")
	if err != nil {
		t.Fatal(err)
	}
	single, err := ohminer.NewSession(ohminer.NewStore(h)).Mine(p)
	if err != nil {
		t.Fatalf("single-node reference run: %v", err)
	}
	return dataPath, single.Ordered, single.Unique
}

// buildSmokeBinaries compiles the real ohmserve and ohmworker into dir,
// race-instrumented when this test binary is.
func buildSmokeBinaries(t *testing.T, dir string) (serveBin, workerBin string) {
	t.Helper()
	serveBin = filepath.Join(dir, "ohmserve")
	workerBin = filepath.Join(dir, "ohmworker")
	for bin, pkg := range map[string]string{serveBin: "ohminer/cmd/ohmserve", workerBin: "."} {
		buildArgs := []string{"build"}
		if raceEnabled {
			buildArgs = append(buildArgs, "-race")
		}
		buildArgs = append(buildArgs, "-o", bin, pkg)
		if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return serveBin, workerBin
}

// smokeJobStatus is the slice of the job-status JSON the smoke drills check.
type smokeJobStatus struct {
	State      string `json:"state"`
	Ordered    uint64 `json:"ordered"`
	Unique     uint64 `json:"unique"`
	Reassigned int    `json:"reassigned"`
	Error      string `json:"error"`
}

// waitSmokeJobDone polls the job until it is done (failing fast on a failed
// state), with the coordinator logs attached to any timeout.
func waitSmokeJobDone(t *testing.T, base, id string, limit time.Duration, coordLog *logWatcher) smokeJobStatus {
	t.Helper()
	var st smokeJobStatus
	deadline := time.Now().Add(limit)
	for {
		resp, err := http.Get(base + "/cluster/jobs/" + id)
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err == nil && st.State == "done" {
			return st
		}
		if err == nil && st.State == "failed" {
			t.Fatalf("cluster job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster job never completed (last: %+v); coordinator logs:\n%s", st, coordLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs child binaries")
	}
	dir := t.TempDir()
	dataPath, singleOrdered, singleUnique := smokeWorkload(t, dir)
	serveBin, workerBin := buildSmokeBinaries(t, dir)

	// Coordinator: short lease TTL so the killed worker's task is reclaimed
	// within the test's patience; 16 parts so every worker gets several.
	coord := exec.Command(serveBin,
		"-cluster",
		"-addr", "127.0.0.1:0",
		"-input", dataPath,
		"-cluster-parts", "16",
		"-lease-ttl", "500ms")
	coordLog := watchStderr(t, coord, "coordinator")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	addr, ok := coordLog.waitFor("ohmserve: listening on ", 30*time.Second)
	if !ok {
		t.Fatalf("coordinator never announced its address; logs:\n%s", coordLog.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/cluster/jobs", "application/json",
		strings.NewReader(`{"id": "smoke", "pattern": "0 1; 0 2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create cluster job: status %d", resp.StatusCode)
	}

	// Three workers over the same file. The per-embedding throttle stretches
	// each ~220-embedding task to ~70ms so the kill lands mid-run.
	startWorker := func(name string) (*exec.Cmd, *logWatcher) {
		w := exec.Command(workerBin,
			"-coordinator", base,
			"-input", dataPath,
			"-name", name,
			"-workers", "2",
			"-poll", "100ms",
			"-throttle", "300us")
		lw := watchStderr(t, w, name)
		if err := w.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		return w, lw
	}
	w1, _ := startWorker("w1")
	defer w1.Process.Kill()
	w2, _ := startWorker("w2")
	defer w2.Process.Kill()
	w3, w3Log := startWorker("w3")
	defer w3.Process.Kill()

	// SIGKILL w3 the moment it holds a lease: the crash scenario — no
	// report, no heartbeat, just silence. Its task must be reassigned.
	if _, ok := w3Log.waitFor("lease ", 60*time.Second); !ok {
		t.Fatalf("w3 never leased a task; logs:\n%s", w3Log.String())
	}
	if err := w3.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = w3.Wait() // expected: "signal: killed"

	// The survivors finish the job, the killed worker's lease included.
	st := waitSmokeJobDone(t, base, "smoke", 120*time.Second, coordLog)
	if st.Ordered != singleOrdered || st.Unique != singleUnique {
		t.Errorf("cluster counted ordered=%d unique=%d, single-node %d/%d",
			st.Ordered, st.Unique, singleOrdered, singleUnique)
	}
	// The kill usually costs a reassignment, but w3 may have finished its
	// first task in the instant before the signal landed; that is a timing
	// artifact, not a correctness failure.
	if st.Reassigned == 0 {
		t.Logf("note: no reassignment recorded (w3 finished before the kill landed)")
	}

	// Surviving workers drain cleanly on SIGTERM (exit 0), and the
	// coordinator does too.
	for _, w := range []*exec.Cmd{w1, w2} {
		if err := w.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range []*exec.Cmd{w1, w2} {
		if err := w.Wait(); err != nil {
			t.Errorf("worker w%d exit: %v", i+1, err)
		}
	}
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(); err != nil {
		t.Errorf("coordinator exit: %v\nlogs:\n%s", err, coordLog.String())
	}
}

// TestClusterSmokeCoordinatorRestart is the durability half of the drill:
// the coordinator itself is SIGKILLed mid-job and restarted on the same port
// from the same -cluster-dir. The restarted process must replay the job from
// its WAL, force-expire the orphaned leases, and the three (untouched)
// workers must finish it with counts identical to a single-node run.
func TestClusterSmokeCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs child binaries")
	}
	dir := t.TempDir()
	dataPath, singleOrdered, singleUnique := smokeWorkload(t, dir)
	serveBin, workerBin := buildSmokeBinaries(t, dir)
	stateDir := filepath.Join(dir, "cluster-state")

	// startCoordinator reports ok=false when the process never announced a
	// listener (e.g. the restart lost the port-rebind race).
	startCoordinator := func(addr string, patience time.Duration) (*exec.Cmd, *logWatcher, string, bool) {
		coord := exec.Command(serveBin,
			"-cluster",
			"-addr", addr,
			"-input", dataPath,
			"-cluster-parts", "16",
			"-lease-ttl", "2s",
			"-cluster-dir", stateDir)
		log := watchStderr(t, coord, "coordinator")
		if err := coord.Start(); err != nil {
			t.Fatal(err)
		}
		got, ok := log.waitFor("ohmserve: listening on ", patience)
		return coord, log, got, ok
	}

	coord, coordLog, addr, ok := startCoordinator("127.0.0.1:0", 30*time.Second)
	if !ok {
		t.Fatalf("coordinator never announced its address; logs:\n%s", coordLog.String())
	}
	defer func() { coord.Process.Kill() }()
	base := "http://" + addr

	resp, err := http.Post(base+"/cluster/jobs", "application/json",
		strings.NewReader(`{"id": "smoke", "pattern": "0 1; 0 2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create cluster job: status %d", resp.StatusCode)
	}

	// Three workers, none of them touched by the fault. The short max
	// backoff keeps their retry loops snappy across the coordinator gap;
	// the request timeout makes sure none of them hangs on the dying
	// coordinator's half-open sockets.
	startWorker := func(name string) *exec.Cmd {
		w := exec.Command(workerBin,
			"-coordinator", base,
			"-input", dataPath,
			"-name", name,
			"-workers", "2",
			"-poll", "50ms",
			"-max-backoff", "500ms",
			"-request-timeout", "2s",
			"-throttle", "300us")
		lw := watchStderr(t, w, name)
		if err := w.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		if name == "w1" {
			// Hold the test until at least one lease is out, so the kill
			// lands with real in-flight state in the WAL.
			if _, ok := lw.waitFor("lease ", 60*time.Second); !ok {
				t.Fatalf("w1 never leased a task; logs:\n%s", lw.String())
			}
		}
		return w
	}
	workers := []*exec.Cmd{startWorker("w1"), startWorker("w2"), startWorker("w3")}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
		}
	}()

	// SIGKILL the coordinator mid-job: no drain, no final sync — only what
	// the WAL already made durable survives.
	if err := coord.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = coord.Wait()

	// Restart on the same port from the same state directory. The listener
	// rebind can race the kernel reclaiming the port, so try a few times.
	var restartLog *logWatcher
	for attempt := 0; ; attempt++ {
		c, lg, _, ok := startCoordinator(addr, 10*time.Second)
		if ok {
			coord, restartLog = c, lg
			break
		}
		c.Process.Kill()
		_ = c.Wait()
		if attempt >= 5 {
			t.Fatalf("restarted coordinator never came up on %s; logs:\n%s", addr, lg.String())
		}
		time.Sleep(200 * time.Millisecond)
	}
	// The durable line prints before the listener, so it is already in the
	// buffer; "replayed jobs=1" is the WAL replay doing its job.
	if line, ok := restartLog.waitFor("replayed jobs=", time.Second); !ok || strings.HasPrefix(line, "0") {
		t.Fatalf("restarted coordinator replayed no jobs (line %q); logs:\n%s", line, restartLog.String())
	}

	st := waitSmokeJobDone(t, base, "smoke", 120*time.Second, restartLog)
	if st.Ordered != singleOrdered || st.Unique != singleUnique {
		t.Errorf("cluster counted ordered=%d unique=%d after coordinator restart, single-node %d/%d",
			st.Ordered, st.Unique, singleOrdered, singleUnique)
	}

	// Everyone drains cleanly on SIGTERM.
	for _, w := range workers {
		if err := w.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Errorf("worker w%d exit: %v", i+1, err)
		}
	}
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(); err != nil {
		t.Errorf("restarted coordinator exit: %v\nlogs:\n%s", err, restartLog.String())
	}
}

// logWatcher collects a child's stderr and lets the test wait for marker
// lines.
type logWatcher struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	waiters map[string]chan string
}

func watchStderr(t *testing.T, cmd *exec.Cmd, name string) *logWatcher {
	t.Helper()
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("%s stderr: %v", name, err)
	}
	lw := &logWatcher{waiters: map[string]chan string{}}
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			lw.mu.Lock()
			lw.buf.WriteString(line + "\n")
			for prefix, ch := range lw.waiters {
				if idx := strings.Index(line, prefix); idx >= 0 {
					select {
					case ch <- line[idx+len(prefix):]:
					default:
					}
					delete(lw.waiters, prefix)
				}
			}
			lw.mu.Unlock()
		}
	}()
	return lw
}

// waitFor blocks until a stderr line containing marker arrives (returning
// the remainder of the line after it) or the timeout passes.
func (lw *logWatcher) waitFor(marker string, timeout time.Duration) (string, bool) {
	ch := make(chan string, 1)
	lw.mu.Lock()
	if idx := strings.Index(lw.buf.String(), marker); idx >= 0 {
		rest := lw.buf.String()[idx+len(marker):]
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			rest = rest[:nl]
		}
		lw.mu.Unlock()
		return rest, true
	}
	lw.waiters[marker] = ch
	lw.mu.Unlock()
	select {
	case rest := <-ch:
		return rest, true
	case <-time.After(timeout):
		return "", false
	}
}

func (lw *logWatcher) String() string {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.buf.String()
}
