// Command ohmworker runs one node of the distributed mining cluster: it
// loads (or generates) its own copy of the data hypergraph, then leases task
// ranges from an ohmserve coordinator (-cluster), mines them with the local
// engine, heartbeats while mining, and reports per-task counters back for
// exactly-once merging.
//
//	ohmserve  -cluster -dataset SB -addr :8080
//	ohmworker -coordinator http://localhost:8080 -dataset SB
//	ohmworker -coordinator http://localhost:8080 -dataset SB -name w2
//
// Every worker must load the identical dataset — the coordinator verifies a
// content fingerprint on each lease request and refuses mismatches.
//
// On SIGINT/SIGTERM the worker stops taking leases and drains: the in-flight
// task reports its partial count plus its unfinished frontier, which the
// coordinator re-enqueues for another worker, so a scaled-down node loses no
// work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ohminer"
	"ohminer/internal/cluster"
	"ohminer/internal/engine"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ohmworker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		coord    = flag.String("coordinator", "", "coordinator base URL (the ohmserve -cluster instance), e.g. http://host:8080")
		input    = flag.String("input", "", "data hypergraph file (text format; must match the coordinator's)")
		dataset  = flag.String("dataset", "", "generate a Table 3 preset instead of reading a file (must match the coordinator's)")
		name     = flag.String("name", "", "worker name in leases and cluster status (default: host-pid)")
		workers  = flag.Int("workers", 0, "engine worker goroutines per task (0 = GOMAXPROCS)")
		poll     = flag.Duration("poll", 500*time.Millisecond, "idle wait between lease requests when the coordinator has no work; also seeds the error backoff")
		reqTO    = flag.Duration("request-timeout", 5*time.Second, "per-request deadline on every coordinator round trip (a hung socket must not stall heartbeats past the lease TTL)")
		maxBO    = flag.Duration("max-backoff", 30*time.Second, "cap on the jittered exponential backoff after transient coordinator errors")
		throttle = flag.Duration("throttle", 0, "busy-wait per embedding (test/smoke knob to stretch small workloads; 0 in production)")
	)
	flag.Parse()

	if *coord == "" {
		return fmt.Errorf("need -coordinator URL")
	}
	var (
		h   *hypergraph.Hypergraph
		err error
	)
	switch {
	case *input != "" && *dataset != "":
		return fmt.Errorf("-input and -dataset are mutually exclusive")
	case *input != "":
		h, err = hypergraph.Load(*input)
	case *dataset != "":
		var p gen.Preset
		if p, err = gen.PresetByTag(*dataset); err == nil {
			h, err = gen.Generate(p.Config)
		}
	default:
		return fmt.Errorf("need -input FILE or -dataset TAG")
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "ohmworker: data:", h)
	store := ohminer.NewStore(h)
	fmt.Fprintf(os.Stderr, "ohmworker: dal built in %v (%.1f MB)\n",
		store.BuildTime().Round(time.Millisecond), float64(store.MemoryBytes())/(1<<20))

	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	cfg := cluster.WorkerConfig{
		Coordinator:    *coord,
		Name:           *name,
		Store:          store,
		Poll:           *poll,
		RequestTimeout: *reqTO,
		MaxBackoff:     *maxBO,
		Engine:         engine.Options{Workers: *workers},
		Logf: func(format string, args ...any) {
			// One line per protocol event; the smoke test watches for
			// "lease " to know a worker holds a task.
			fmt.Fprintf(os.Stderr, "ohmworker: "+format+"\n", args...)
		},
	}
	if *throttle > 0 {
		d := *throttle
		cfg.OnEmbedding = func([]uint32) {
			end := time.Now().Add(d)
			for time.Now().Before(end) {
			}
		}
	}
	w, err := cluster.NewWorker(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "ohmworker: %s polling %s\n", *name, *coord)
	err = w.Run(ctx)
	if errors.Is(err, context.Canceled) {
		// Signal-driven drain: the in-flight task (if any) already reported
		// its partial count and remainder.
		fmt.Fprintf(os.Stderr, "ohmworker: drained cleanly (leases=%d done=%d partial=%d lost=%d)\n",
			w.Leases(), w.Completed(), w.Partial(), w.Lost())
		return nil
	}
	return err
}
