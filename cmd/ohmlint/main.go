// Command ohmlint runs OHMiner's project-specific static analyzers over
// the module: the invariants the compiler cannot check — hot-path
// allocation freedom, worker scratch ownership, stamp-array discipline,
// and no-panic library code. See docs/LINTING.md.
//
//	ohmlint ./...                        # whole module (the make lint entry)
//	ohmlint ./internal/engine            # one package
//	ohmlint -run hotpath-alloc ./...     # one analyzer
//	ohmlint -list                        # describe the analyzers
//
// Exit status is 1 when any diagnostic survives suppression, 2 on usage
// or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ohminer/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list analyzers and exit")
		runOn = flag.String("run", "", "comma-separated analyzer names (default: all)")
		debug = flag.Bool("debug", false, "report packages whose type-checking failed (analysis degrades to syntax there)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *runOn != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*runOn, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ohmlint:", err)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ohmlint:", err)
		return 2
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expandArgs(moduleDir, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ohmlint:", err)
		return 2
	}

	pkgs, err := lint.Load(moduleDir, dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ohmlint:", err)
		return 2
	}
	if *debug {
		for _, p := range pkgs {
			if p.TypeError != nil {
				fmt.Fprintf(os.Stderr, "ohmlint: %s: type-checking degraded: %v\n", p.Path, p.TypeError)
			}
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		rel, err := filepath.Rel(moduleDir, d.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ohmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// expandArgs resolves package arguments: a plain directory stands for
// itself, a trailing /... walks the subtree for every directory holding
// Go files (skipping testdata and hidden directories).
func expandArgs(moduleDir string, args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if root == "" || root == "." {
			root = moduleDir
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				base := d.Name()
				if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
