// Command ohmlint runs OHMiner's project-specific static analyzers over
// the module: the invariants the compiler cannot check — hot-path
// allocation freedom, worker scratch ownership, stamp-array discipline,
// no-panic library code, and the concurrency discipline suite
// (guardedby, atomicmix, ctxflow, goroutinestop). See docs/LINTING.md.
//
//	ohmlint ./...                        # whole module (the make lint entry)
//	ohmlint ./internal/engine            # one package
//	ohmlint -only guardedby ./...        # a subset of analyzers
//	ohmlint -skip ctxflow ./...          # everything but one
//	ohmlint -json ./...                  # machine-readable diagnostics
//	ohmlint -suppressions ./...          # audit directives lacking a reason
//	ohmlint -list                        # describe the analyzers
//
// Exit status is 1 when any diagnostic survives suppression (or, under
// -suppressions, when any directive lacks a reason), 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ohminer/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ohmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list analyzers and exit")
		only     = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		runOn    = fs.String("run", "", "alias for -only, kept for compatibility")
		skip     = fs.String("skip", "", "comma-separated analyzer names to exclude")
		debug    = fs.Bool("debug", false, "report packages whose type-checking failed (analysis degrades to syntax there)")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		suppress = fs.Bool("suppressions", false, "audit suppression directives: any //ohmlint:allow or //lint:ignore without a reason is a finding")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only, *runOn, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "ohmlint:", err)
		return 2
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "ohmlint:", err)
		return 2
	}
	pkgArgs := fs.Args()
	if len(pkgArgs) == 0 {
		pkgArgs = []string{"./..."}
	}
	dirs, err := expandArgs(moduleDir, pkgArgs)
	if err != nil {
		fmt.Fprintln(stderr, "ohmlint:", err)
		return 2
	}

	pkgs, err := lint.Load(moduleDir, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "ohmlint:", err)
		return 2
	}
	if *debug {
		for _, p := range pkgs {
			if p.TypeError != nil {
				fmt.Fprintf(stderr, "ohmlint: %s: type-checking degraded: %v\n", p.Path, p.TypeError)
			}
		}
	}

	var diags []lint.Diagnostic
	if *suppress {
		diags = auditSuppressions(pkgs)
	} else {
		diags = lint.Run(pkgs, analyzers)
	}

	if *jsonOut {
		if err := writeJSON(stdout, moduleDir, diags); err != nil {
			fmt.Fprintln(stderr, "ohmlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relPath(moduleDir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ohmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only/-run/-skip flags into the analyzer
// subset to execute.
func selectAnalyzers(only, runOn, skip string) ([]*lint.Analyzer, error) {
	if only != "" && runOn != "" {
		return nil, fmt.Errorf("-only and -run are aliases; give just one")
	}
	if only == "" {
		only = runOn
	}
	analyzers := lint.Analyzers()
	if only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range splitNames(only) {
			a, err := lint.ByName(name)
			if err != nil {
				return nil, err
			}
			analyzers = append(analyzers, a)
		}
	}
	if skip != "" {
		drop := map[string]bool{}
		for _, name := range splitNames(skip) {
			if _, err := lint.ByName(name); err != nil {
				return nil, err
			}
			drop[name] = true
		}
		kept := analyzers[:0:0]
		for _, a := range analyzers {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("analyzer selection is empty")
	}
	return analyzers, nil
}

func splitNames(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// auditSuppressions turns every suppression directive that lacks a
// justification into a diagnostic: a suppression without a reason is
// unreviewable and rots silently.
func auditSuppressions(pkgs []*lint.Package) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, p := range pkgs {
		for _, s := range p.Suppressions {
			if s.Reason != "" {
				continue
			}
			diags = append(diags, lint.Diagnostic{
				Pos:      s.Pos,
				Analyzer: "suppression-audit",
				Message: fmt.Sprintf("%s directive for %s has no reason; append one (allow form: `-- why`, ignore form: trailing text)",
					s.Directive, strings.Join(s.Names, ",")),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// jsonDiagnostic is the stable machine-readable shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, moduleDir string, diags []lint.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     relPath(moduleDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath renders a diagnostic path relative to the module root when it
// lies inside it.
func relPath(moduleDir, filename string) string {
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// expandArgs resolves package arguments: a plain directory stands for
// itself, a trailing /... walks the subtree for every directory holding
// Go files (skipping testdata and hidden directories).
func expandArgs(moduleDir string, args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if root == "" || root == "." {
			root = moduleDir
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				base := d.Name()
				if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
