package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module and returns its
// root. The content is the body of pkg/pkg.go.
func writeModule(t *testing.T, content string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module scratchmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "pkg.go"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

const cleanSrc = `package pkg

func Add(a, b int) int { return a + b }
`

const detachedSrc = `package pkg

import "context"

func Detached(ctx context.Context) error {
	_ = ctx
	return context.Background().Err()
}
`

func TestExitCodeClean(t *testing.T) {
	t.Chdir(writeModule(t, cleanSrc))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %q", stdout.String())
	}
}

func TestExitCodeFindings(t *testing.T) {
	t.Chdir(writeModule(t, detachedSrc))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[ctxflow]") {
		t.Errorf("findings output missing [ctxflow] tag:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings count: %q", stderr.String())
	}
}

func TestExitCodeUsageErrors(t *testing.T) {
	t.Chdir(writeModule(t, cleanSrc))
	cases := [][]string{
		{"-only", "no-such-analyzer", "./..."},
		{"-skip", "no-such-analyzer", "./..."},
		{"-only", "ctxflow", "-run", "ctxflow", "./..."},
		{"-skip", "hotpath-alloc,scratch-escape,stamp-discipline,no-panic-lib,guardedby,atomicmix,ctxflow,goroutinestop", "./..."},
		{"-not-a-flag"},
		{"./no/such/dir/..."},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr:\n%s", args, code, stderr.String())
		}
	}
}

func TestJSONOutput(t *testing.T) {
	t.Chdir(writeModule(t, detachedSrc))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(got) == 0 {
		t.Fatal("JSON output has no diagnostics")
	}
	d := got[0]
	if d.Analyzer != "ctxflow" || d.Line == 0 || !strings.HasSuffix(d.File, filepath.Join("pkg", "pkg.go")) {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

func TestOnlyAndSkipFilter(t *testing.T) {
	t.Chdir(writeModule(t, detachedSrc))

	// Restricting to an unrelated analyzer hides the ctxflow finding.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "atomicmix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-only atomicmix: exit = %d, want 0; stdout:\n%s", code, stdout.String())
	}

	// Skipping ctxflow does the same.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-skip", "ctxflow", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-skip ctxflow: exit = %d, want 0; stdout:\n%s", code, stdout.String())
	}

	// -run stays a working alias for -only.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "ctxflow", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-run ctxflow: exit = %d, want 1", code)
	}
}

func TestSuppressionsAudit(t *testing.T) {
	bare := `package pkg

import "context"

func Detached(ctx context.Context) error {
	_ = ctx
	//lint:ignore ctxflow
	return context.Background().Err()
}
`
	t.Chdir(writeModule(t, bare))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-suppressions", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("bare directive: exit = %d, want 1; stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "has no reason") {
		t.Errorf("audit output missing reason complaint:\n%s", stdout.String())
	}

	justified := strings.Replace(bare, "//lint:ignore ctxflow",
		"//lint:ignore ctxflow call sites predate cancellation plumbing", 1)
	t.Chdir(writeModule(t, justified))
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-suppressions", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("justified directive: exit = %d, want 0; stdout:\n%s", code, stdout.String())
	}
}
