// Command ohmbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	ohmbench -list
//	ohmbench -exp fig12            # one experiment, full grid
//	ohmbench -exp sched,kern       # several, comma-separated
//	ohmbench -exp all -quick       # everything, trimmed grid
//	ohmbench -exp table5 -seed 7 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ohminer/internal/cliio"
	"ohminer/internal/exp"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id (see -list), a comma-separated list of ids, or 'all'")
		quick    = flag.Bool("quick", false, "trim datasets and pattern settings for a fast run")
		seed     = flag.Int64("seed", 42, "pattern sampling seed")
		workers  = flag.Int("workers", 0, "mining workers (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list experiments and exit")
		budget   = flag.Duration("budget", 45*time.Second, "time budget per (dataset, setting, system) cell; 0 = unbounded")
		jsonPath = flag.String("json", "", "write machine-readable per-cell results to this file (e.g. BENCH_engine.json)")
	)
	flag.Parse()

	// Tables go to stdout through an error-latching writer so a broken
	// pipe fails the run instead of truncating the results silently.
	out := cliio.NewWriter(os.Stdout)
	fail := func(code int, err error) {
		out.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(code)
	}

	if *list {
		for _, e := range exp.Experiments() {
			out.Printf("%-8s %s\n", e.ID, e.Title)
		}
		if err := out.Close(); err != nil {
			fail(1, err)
		}
		return
	}

	exp.Progress = os.Stderr
	opts := exp.RunOpts{Quick: *quick, Seed: *seed, Workers: *workers, CellBudget: *budget}
	if *jsonPath != "" {
		opts.Recorder = &exp.Recorder{}
	}
	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Experiments()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fail(2, err)
			}
			todo = append(todo, e)
		}
	}

	ctx := exp.NewContext()
	for _, e := range todo {
		out.Printf("# %s — %s\n", e.ID, e.Title)
		start := time.Now()
		tables, err := e.Run(ctx, opts)
		if err != nil {
			fail(1, fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, t := range tables {
			if err := t.Render(out); err != nil {
				fail(1, err)
			}
		}
		out.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if opts.Recorder != nil {
		if err := opts.Recorder.WriteFile(*jsonPath); err != nil {
			fail(1, fmt.Errorf("writing %s: %w", *jsonPath, err))
		}
		fmt.Fprintf(os.Stderr, "wrote %d cells to %s\n", len(opts.Recorder.Cells()), *jsonPath)
	}
	if err := out.Close(); err != nil {
		fail(1, err)
	}
}
