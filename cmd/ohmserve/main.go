// Command ohmserve runs the OHMiner query service: an HTTP server that
// answers hypergraph-pattern-mining queries over one data hypergraph,
// with plan caching, per-request timeouts/limits, admission control,
// expvar metrics, pprof, and graceful drain on SIGINT/SIGTERM.
//
//	ohmserve -dataset SB -addr :8080
//	ohmserve -input data.hg -max-concurrent 16 -timeout 5s
//
//	curl -s localhost:8080/query -d '{"pattern": "0 1 2; 2 3 4"}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/debug/vars
//
// On SIGINT/SIGTERM the listener closes immediately, in-flight queries
// drain (each bounded by its own deadline) up to -drain, and anything
// still running after that is cancelled through the engine's context
// path before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ohminer"
	"ohminer/internal/cluster"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ohmserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		input      = flag.String("input", "", "data hypergraph file (text format)")
		dataset    = flag.String("dataset", "", "generate a Table 3 preset instead of reading a file (CH,CP,SB,HB,WT,TC,CD,AM,SYN)")
		maxConc    = flag.Int("max-concurrent", 0, "queries mining at once before admission queues (0 = 2×GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-query timeout (requests may lower or raise it up to -max-timeout)")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "cap on per-request timeouts")
		maxLimit   = flag.Uint64("max-limit", 0, "cap on per-request embedding limits (0 = uncapped)")
		workers    = flag.Int("workers", 0, "engine workers per query (0 = GOMAXPROCS)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight queries")
		debugDelay = flag.Duration("debug-delay", 0, "inject artificial latency per query (drain/smoke testing only)")
		ckptDir    = flag.String("checkpoint-dir", "", "enable durable jobs (/jobs endpoints): persist specs and snapshots here")
		ckptEvery  = flag.Duration("checkpoint-every", 5*time.Second, "snapshot period for jobs")
		streamDir  = flag.String("stream-dir", "", "enable the streaming subsystem (/streams endpoints): persist stream specs and snapshots here")
		streamSnap = flag.Int("stream-snapshot-every", 1, "stream snapshot cadence in applied batches (1 = every batch, the strongest durability)")
		streamBuf  = flag.Int("stream-buf-events", 0, "per-subscriber event buffer before slow-consumer drops (0 = 64)")
		clusterOn  = flag.Bool("cluster", false, "run as distributed-mining coordinator (/cluster endpoints; pair with ohmworker)")
		parts      = flag.Int("cluster-parts", 16, "task partitions per distributed job (more parts = finer reassignment granularity)")
		leaseTTL   = flag.Duration("lease-ttl", 10*time.Second, "cluster lease deadline: a worker missing heartbeats this long forfeits its task")
		clusterDir = flag.String("cluster-dir", "", "make the coordinator durable: WAL + snapshot of cluster state here, replayed on restart so running jobs survive a coordinator crash")
	)
	flag.Parse()

	var (
		h   *hypergraph.Hypergraph
		err error
	)
	switch {
	case *input != "" && *dataset != "":
		return fmt.Errorf("-input and -dataset are mutually exclusive")
	case *input != "":
		h, err = hypergraph.Load(*input)
	case *dataset != "":
		var p gen.Preset
		if p, err = gen.PresetByTag(*dataset); err == nil {
			h, err = gen.Generate(p.Config)
		}
	default:
		return fmt.Errorf("need -input FILE or -dataset TAG")
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "ohmserve: data:", h)

	store := ohminer.NewStore(h)
	fmt.Fprintf(os.Stderr, "ohmserve: dal built in %v (%.1f MB)\n",
		store.BuildTime().Round(time.Millisecond), float64(store.MemoryBytes())/(1<<20))

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	cfg := serve.Config{
		MaxConcurrent:       *maxConc,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		MaxLimit:            *maxLimit,
		Workers:             *workers,
		DebugDelay:          *debugDelay,
		CheckpointDir:       *ckptDir,
		CheckpointEvery:     *ckptEvery,
		StreamDir:           *streamDir,
		StreamSnapshotEvery: *streamSnap,
		StreamBufEvents:     *streamBuf,
	}
	if *streamDir != "" {
		if err := os.MkdirAll(*streamDir, 0o755); err != nil {
			return fmt.Errorf("stream dir: %w", err)
		}
		// The stream smoke test parses this line.
		fmt.Fprintf(os.Stderr, "ohmserve: streams durable in %s (snapshot every %d batches)\n",
			*streamDir, *streamSnap)
	}
	if *clusterOn {
		coord, err := cluster.New(store, cluster.Config{
			LeaseTTL: *leaseTTL,
			Parts:    *parts,
			Dir:      *clusterDir,
		})
		if err != nil {
			return fmt.Errorf("cluster coordinator: %w", err)
		}
		defer coord.Close()
		cfg.Cluster = coord
		fmt.Fprintf(os.Stderr, "ohmserve: cluster coordinator enabled (parts=%d, lease-ttl=%v)\n", *parts, *leaseTTL)
		if *clusterDir != "" {
			st := coord.Status()
			// The smoke test parses this line after a coordinator restart.
			fmt.Fprintf(os.Stderr, "ohmserve: cluster state durable in %s (replayed jobs=%d, resurrected leases=%d)\n",
				*clusterDir, st.ReplayedJobs, st.ResurrectedLeases)
		}
	} else if *clusterDir != "" {
		return fmt.Errorf("-cluster-dir requires -cluster")
	}
	srv := serve.New(ohminer.NewSession(store), cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The smoke test parses this line to discover the port chosen for :0.
	fmt.Fprintf(os.Stderr, "ohmserve: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	// Long-lived event subscriptions (SSE) would hold Shutdown open past
	// its drain budget; disconnect them as soon as the drain begins.
	// Subscribers reconnect with ?after=N and lose nothing.
	hs.RegisterOnShutdown(srv.DisconnectStreams)
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintf(os.Stderr, "ohmserve: shutting down, draining in-flight queries (budget %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		// Drain budget exceeded: cancel the miners through the engine's
		// context path, then close the remaining connections.
		fmt.Fprintln(os.Stderr, "ohmserve: drain budget exceeded, cancelling in-flight queries")
		srv.Abort()
		if cerr := hs.Close(); cerr != nil && !errors.Is(err, context.DeadlineExceeded) {
			return cerr
		}
		return err
	}
	// Queries are drained; now interrupt any background jobs through the
	// engine's cancellation path, which persists a final snapshot per job
	// so `-checkpoint-dir` + POST /jobs/{id}/resume continues them after
	// the restart.
	srv.Abort()
	jobCtx, jobCancel := context.WithTimeout(context.Background(), *drain)
	defer jobCancel()
	if err := srv.DrainJobs(jobCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ohmserve: jobs did not quiesce within the drain budget:", err)
	}
	fmt.Fprintln(os.Stderr, "ohmserve: drained cleanly, bye")
	return nil
}
