package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end drill for the query service: build the
// real ohmserve binary (race-instrumented when this test binary is), start
// it on a tiny hypergraph, answer a query over HTTP, then SIGTERM it while
// a query is in flight and require that the in-flight query completes, the
// drain is clean, and the process exits 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs a child binary")
	}
	dir := t.TempDir()

	// Chain hypergraph: pattern "0 1; 1 2" has 4 ordered / 2 unique
	// embeddings in it.
	data := filepath.Join(dir, "data.hg")
	if err := os.WriteFile(data, []byte("0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "ohmserve")
	buildArgs := []string{"build"}
	if raceEnabled {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, ".")
	if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// -debug-delay keeps each query in flight long enough for the SIGTERM
	// to land mid-query; -drain gives the handler ample room to finish.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-input", data,
		"-debug-delay", "500ms",
		"-drain", "30s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The server prints "ohmserve: listening on HOST:PORT" once the
	// listener is up; everything after that is collected for the drain
	// assertions.
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	logs := func() string { logMu.Lock(); defer logMu.Unlock(); return logBuf.String() }
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logBuf.WriteString(line + "\n")
			logMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "ohmserve: listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address; logs:\n%s", logs())
	}
	base := "http://" + addr

	query := func() (int, QueryResponseWire, error) {
		resp, err := http.Post(base+"/query", "application/json",
			strings.NewReader(`{"pattern": "0 1; 1 2"}`))
		if err != nil {
			return 0, QueryResponseWire{}, err
		}
		defer resp.Body.Close()
		var qr QueryResponseWire
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return resp.StatusCode, qr, fmt.Errorf("decode: %w", err)
		}
		return resp.StatusCode, qr, nil
	}

	// A plain query round-trips with the exact counts.
	code, qr, err := query()
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || qr.Ordered != 4 || qr.Unique != 2 || qr.Truncated {
		t.Fatalf("query: status %d result %+v, want 200 ordered=4 unique=2 untruncated", code, qr)
	}

	// Launch an in-flight query (held by -debug-delay), then SIGTERM the
	// server while it is mining. Graceful drain must let it finish.
	var wg sync.WaitGroup
	wg.Add(1)
	var inFlightCode int
	var inFlightQR QueryResponseWire
	var inFlightErr error
	go func() {
		defer wg.Done()
		inFlightCode, inFlightQR, inFlightErr = query()
	}()
	time.Sleep(150 * time.Millisecond) // inside the 500ms debug delay
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if inFlightErr != nil {
		t.Fatalf("in-flight query during drain: %v\nlogs:\n%s", inFlightErr, logs())
	}
	if inFlightCode != http.StatusOK || inFlightQR.Ordered != 4 {
		t.Fatalf("in-flight query during drain: status %d result %+v, want 200 ordered=4",
			inFlightCode, inFlightQR)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("server exit: %v\nlogs:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "drained cleanly") {
		t.Fatalf("no clean-drain message in logs:\n%s", logs())
	}
}

// QueryResponseWire mirrors serve.QueryResponse over the wire (the smoke
// test deliberately speaks plain JSON like an external client would).
type QueryResponseWire struct {
	Ordered   uint64 `json:"ordered"`
	Unique    uint64 `json:"unique"`
	Truncated bool   `json:"truncated"`
}
