package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ohminer"
)

// TestStreamSmoke is the end-to-end drill for the streaming subsystem:
// build the real ohmserve binary, start it with -stream-dir, create a
// stream, register a standing query, feed sequenced batches while an SSE
// subscriber is attached, SIGKILL the server mid-stream, restart it on the
// same directory, replay the whole feed (already-applied batches must be
// acknowledged idempotently), and require that the cumulative per-query
// counts — both the pushed deltas and the stream status — exactly equal a
// from-scratch mine of the final live graph.
func TestStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs a child binary")
	}
	dir := t.TempDir()
	streamDir := filepath.Join(dir, "streams")

	// The query service still needs a data hypergraph; the stream under
	// test is independent of it.
	data := filepath.Join(dir, "data.hg")
	if err := os.WriteFile(data, []byte("0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "ohmserve")
	buildArgs := []string{"build"}
	if raceEnabled {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, ".")
	if out, err := exec.Command("go", buildArgs...).CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The scripted feed. Retiring {0,1} in batch 3 and re-adding it in
	// batch 4 exercises resurrection across the crash boundary.
	const nv = 10
	const patternStr = "0 1; 1 2"
	feed := []streamBatchWire{
		{Seq: 1, Add: [][]uint32{{0, 1}, {1, 2}}},
		{Seq: 2, Add: [][]uint32{{2, 3}, {3, 4}}},
		{Seq: 3, Add: [][]uint32{{4, 5}}, Retire: [][]uint32{{0, 1}}},
		{Seq: 4, Add: [][]uint32{{0, 1}, {5, 6}, {6, 7}}, Retire: [][]uint32{{3, 4}}},
	}
	// oracle(k) mines the pattern from scratch over the live graph after
	// the first k batches.
	oracle := func(k int) uint64 {
		live := map[string][]uint32{}
		key := func(e []uint32) string {
			s := append([]uint32(nil), e...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return fmt.Sprint(s)
		}
		for _, b := range feed[:k] {
			for _, e := range b.Add {
				live[key(e)] = e
			}
			for _, e := range b.Retire {
				delete(live, key(e))
			}
		}
		var edges [][]uint32
		for _, e := range live {
			edges = append(edges, e)
		}
		h, err := ohminer.BuildHypergraph(nv, edges, nil)
		if err != nil {
			t.Fatalf("oracle hypergraph: %v", err)
		}
		p, err := ohminer.ParsePattern(patternStr)
		if err != nil {
			t.Fatalf("oracle pattern: %v", err)
		}
		res, err := ohminer.Mine(ohminer.NewStore(h), p)
		if err != nil {
			t.Fatalf("oracle mine: %v", err)
		}
		return res.Ordered
	}
	midOracle, finalOracle := oracle(3), oracle(len(feed))
	if midOracle == finalOracle {
		t.Fatalf("degenerate feed: mid and final oracle both %d", midOracle)
	}

	// ---- Phase 1: fresh server, feed batches 1..3 with an SSE subscriber.
	cmd, base, logs := startStreamServer(t, bin, data, streamDir)

	var created streamStatusWire
	postWire(t, base+"/streams", `{"id":"smoke","num_vertices":10}`, http.StatusCreated, &created)

	var q ohminer.StreamQueryInfo
	postWire(t, base+"/streams/smoke/queries", `{"pattern":"`+patternStr+`"}`, http.StatusCreated, &q)

	events := make(chan ohminer.StreamDelta, 16)
	sseResp, err := http.Get(fmt.Sprintf("%s/streams/smoke/queries/%d/events?after=0", base, q.ID))
	if err != nil {
		t.Fatalf("sse subscribe: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("sse content-type: %q", ct)
	}
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var d ohminer.StreamDelta
				if json.Unmarshal([]byte(data), &d) == nil {
					events <- d
				}
			}
		}
	}()

	ledger := make(map[uint64]ohminer.StreamDelta) // event seq -> delta
	postBatch := func(b streamBatchWire, wantApplied bool) streamBatchRespWire {
		t.Helper()
		body, _ := json.Marshal(b)
		var br streamBatchRespWire
		postWire(t, base+"/streams/smoke/batches", string(body), http.StatusOK, &br)
		if br.Applied != wantApplied {
			t.Fatalf("batch %d: applied=%v, want %v", b.Seq, br.Applied, wantApplied)
		}
		for _, d := range br.Deltas {
			if d.QueryID == q.ID {
				ledger[d.Seq] = d
			}
		}
		return br
	}
	for _, b := range feed[:3] {
		postBatch(b, true)
	}

	// The three pushed events must match the inline deltas exactly, and
	// the last one must carry the mid-stream oracle total.
	for i := 1; i <= 3; i++ {
		select {
		case d := <-events:
			want, ok := ledger[d.Seq]
			if !ok {
				t.Fatalf("sse event seq %d not in batch-response ledger", d.Seq)
			}
			d.ElapsedMS, want.ElapsedMS = 0, 0
			if d != want {
				t.Fatalf("sse event %d: %+v, want %+v", d.Seq, d, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("sse event %d never arrived; logs:\n%s", i, logs())
		}
	}
	if got := ledger[3].Total; got != midOracle {
		t.Fatalf("mid-stream total %d, want oracle %d", got, midOracle)
	}

	// ---- SIGKILL mid-stream: no drain, no goodbye. Durability must come
	// from the per-batch snapshots alone.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // expected to report the kill

	// ---- Phase 2: restart on the same directory and replay the entire
	// feed. Batches 1..3 were durably applied, so they must come back as
	// idempotent non-applies; batch 4 applies fresh.
	cmd2, base2, logs2 := startStreamServer(t, bin, data, streamDir)
	if !strings.Contains(logs2(), "streams durable in") {
		t.Fatalf("restarted server did not announce stream durability; logs:\n%s", logs2())
	}
	base = base2

	// A post-restart subscriber sees only new events (the ring is not
	// durable), delivered live when batch 4 applies.
	events2 := make(chan ohminer.StreamDelta, 16)
	sseResp2, err := http.Get(fmt.Sprintf("%s/streams/smoke/queries/%d/events?after=0", base, q.ID))
	if err != nil {
		t.Fatalf("sse resubscribe: %v", err)
	}
	defer sseResp2.Body.Close()
	go func() {
		sc := bufio.NewScanner(sseResp2.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var d ohminer.StreamDelta
				if json.Unmarshal([]byte(data), &d) == nil {
					events2 <- d
				}
			}
		}
	}()

	for _, b := range feed[:3] {
		postBatch(b, false)
	}
	br := postBatch(feed[3], true)
	if br.Epoch != 4 {
		t.Fatalf("post-resume epoch %d, want 4", br.Epoch)
	}

	select {
	case d := <-events2:
		if d.Seq != 4 || d.Total != finalOracle {
			t.Fatalf("post-resume sse event: %+v, want seq=4 total=%d", d, finalOracle)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("post-resume sse event never arrived; logs:\n%s", logs2())
	}

	// The delta ledger (batches 1..3 pre-crash, 4 post-resume) must sum
	// to the from-scratch oracle, and the server's own status must agree.
	var sum uint64
	for seq := uint64(1); seq <= 4; seq++ {
		d, ok := ledger[seq]
		if !ok {
			t.Fatalf("missing delta for event seq %d", seq)
		}
		sum += d.Added - d.Retired
	}
	if sum != finalOracle {
		t.Fatalf("delta sum %d, want oracle %d", sum, finalOracle)
	}
	var st streamStatusWire
	getWire(t, base+"/streams/smoke", &st)
	if st.Epoch != 4 || len(st.Queries) != 1 || st.Queries[0].Total != finalOracle {
		t.Fatalf("final status %+v, want epoch=4 total=%d", st, finalOracle)
	}

	// A graceful shutdown still works after the chaos.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("server exit: %v\nlogs:\n%s", err, logs2())
	}
	if !strings.Contains(logs2(), "drained cleanly") {
		t.Fatalf("no clean-drain message in logs:\n%s", logs2())
	}
}

// startStreamServer launches the built ohmserve binary with streaming
// enabled and waits for its listening announcement.
func startStreamServer(t *testing.T, bin, data, streamDir string) (*exec.Cmd, string, func() string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-input", data,
		"-stream-dir", streamDir,
		"-stream-snapshot-every", "1",
		"-drain", "30s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() }) // no-op after a clean Wait

	var logMu sync.Mutex
	var logBuf bytes.Buffer
	logs := func() string { logMu.Lock(); defer logMu.Unlock(); return logBuf.String() }
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logBuf.WriteString(line + "\n")
			logMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "ohmserve: listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, logs
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address; logs:\n%s", logs())
		return nil, "", nil
	}
}

func postWire(t *testing.T, url, body string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantCode, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

func getWire(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// Wire mirrors of the serve stream API (the smoke test deliberately speaks
// plain JSON like an external client would).
type streamBatchWire struct {
	Seq    uint64     `json:"seq"`
	Add    [][]uint32 `json:"add,omitempty"`
	Retire [][]uint32 `json:"retire,omitempty"`
}

type streamBatchRespWire struct {
	Applied bool                  `json:"applied"`
	Epoch   uint64                `json:"epoch"`
	Added   int                   `json:"added"`
	Retired int                   `json:"retired"`
	Deltas  []ohminer.StreamDelta `json:"deltas"`
}

type streamStatusWire struct {
	ID           string                    `json:"id"`
	Epoch        uint64                    `json:"epoch"`
	LiveEdges    int                       `json:"live_edges"`
	RetiredEdges int                       `json:"retired_edges"`
	Queries      []ohminer.StreamQueryInfo `json:"queries"`
}
