// Command ohmstat inspects a hypergraph: the Table 3 summary statistics,
// hyperedge-degree histogram, overlap/connection density, and DAL
// preprocessing cost — the numbers one needs before choosing mining
// parameters.
//
//	ohmstat -dataset SB
//	ohmstat -input data.hg -density "6 6 8"
//	ohmstat -dataset SB -partition "0 1 2; 2 3 4" -parts 16
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ohminer/internal/cliio"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ohmstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input   = flag.String("input", "", "hypergraph file (text format)")
		dataset = flag.String("dataset", "", "Table 3 preset tag instead of a file")
		density = flag.String("density", "", "degrees (space-separated) for a connection-density probe, e.g. \"6 6 8\"")
		noDAL   = flag.Bool("nodal", false, "skip DAL construction timing")
		seed    = flag.Int64("seed", 1, "sampling seed for the density probe")
		part    = flag.String("partition", "", "pattern literal: report how this pattern's first-hyperedge candidate space splits into cluster task ranges")
		parts   = flag.Int("parts", 16, "task-range count for -partition (matches ohmserve -cluster-parts)")
		daOrder = flag.Bool("data-aware", false, "use the data-aware matching order for -partition (matches the job's data_aware_order)")
	)
	flag.Parse()

	var (
		h   *hypergraph.Hypergraph
		err error
	)
	switch {
	case *input != "" && *dataset != "":
		return fmt.Errorf("-input and -dataset are mutually exclusive")
	case *input != "":
		h, err = hypergraph.Load(*input)
	case *dataset != "":
		var p gen.Preset
		if p, err = gen.PresetByTag(*dataset); err == nil {
			h, err = gen.Generate(p.Config)
		}
	default:
		return fmt.Errorf("need -input FILE or -dataset TAG")
	}
	if err != nil {
		return err
	}

	out := cliio.NewWriter(os.Stdout)
	s := hypergraph.ComputeStats(h)
	out.Printf("%s\n", h)
	out.Printf("  vertices:        %d (avg incident hyperedges %.2f, max %d)\n",
		s.NumVertices, s.AvgVertexDeg, s.MaxVertexDeg)
	out.Printf("  hyperedges:      %d (avg degree %.2f, p50 %d, p99 %d, max %d)\n",
		s.NumEdges, s.AvgEdgeDeg, s.EdgeDegreeP50, s.EdgeDegreeP99, s.MaxEdgeDeg)
	out.Printf("  incidence:       %d entries, %.1f MB dual-CSR\n",
		h.TotalIncidence(), float64(h.MemoryBytes())/(1<<20))
	if h.Labeled() {
		out.Printf("  vertex labels:   %d classes\n", h.NumLabels())
	}
	if h.EdgeLabeled() {
		out.Printf("  hyperedge labels: present\n")
	}

	// Degree histogram (top buckets).
	hist := map[int]int{}
	for e := 0; e < h.NumEdges(); e++ {
		hist[h.Degree(uint32(e))]++
	}
	degs := make([]int, 0, len(hist))
	for d := range hist {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	out.Println("  degree histogram:")
	shown := 0
	for _, d := range degs {
		if shown >= 12 {
			out.Printf("    ... %d more degrees\n", len(degs)-shown)
			break
		}
		out.Printf("    %4d: %d\n", d, hist[d])
		shown++
	}

	if *density != "" {
		var probe []int
		for _, f := range strings.Fields(*density) {
			d, err := strconv.Atoi(f)
			if err != nil {
				return fmt.Errorf("bad density degree %q", f)
			}
			probe = append(probe, d)
		}
		c := hypergraph.ConnectionDensity(h, probe, 500, *seed)
		out.Printf("  connection density for degrees %v: %.4f\n", probe, c)
	}

	if !*noDAL {
		start := time.Now()
		store := dal.Build(h)
		out.Printf("  DAL: built in %v, %.1f MB, %d distinct degrees\n",
			time.Since(start).Round(time.Millisecond),
			float64(store.MemoryBytes())/(1<<20), len(store.Degrees()))
		// Adaptive-container census: how much of this dataset the set
		// kernels can run on bitmap windows (dense, word-parallel) rather
		// than sorted arrays — the density profile behind the engine's
		// per-op container hints.
		cs := store.Containers()
		out.Printf("  containers: %d/%d adjacency groups and %d/%d hyperedge vertex sets bitmap-windowed (%.1f KB arenas)\n",
			cs.AdjWindowed, cs.AdjGroups, cs.EdgeWindowed, cs.EdgeSets,
			float64(cs.WindowBytes)/(1<<10))
		// First-step candidate pools from the degree index — the seed tasks
		// the work-stealing scheduler distributes; a pool of 1-2 edges means
		// parallelism will come entirely from subtree stealing.
		degs := store.Degrees()
		top, topDeg := 0, 0
		low, lowDeg := -1, 0
		for _, d := range degs {
			n := store.NumEdgesWithDegree(d)
			if n > top {
				top, topDeg = n, d
			}
			if low < 0 || n < low {
				low, lowDeg = n, d
			}
		}
		out.Printf("  degree index: largest first-step pool %d edges (degree %d), smallest %d (degree %d)\n",
			top, topDeg, low, lowDeg)

		if *part != "" {
			if err := reportPartition(out, store, *part, *parts, *daOrder); err != nil {
				return err
			}
		}
	} else if *part != "" {
		return fmt.Errorf("-partition needs the DAL (drop -nodal)")
	}
	return out.Close()
}

// reportPartition previews how a distributed job over this dataset would
// split: the first pattern hyperedge's candidate space is partitioned into
// task ranges exactly as the cluster coordinator does it, and the balance of
// candidate counts per range bounds how evenly the leases can spread. (The
// subtree cost under each candidate still varies — candidate counts are the
// partitioning's input, not a perfect cost model.)
func reportPartition(out *cliio.Writer, store *dal.Store, pat string, parts int, dataAware bool) error {
	p, err := pattern.Parse(pat)
	if err != nil {
		return fmt.Errorf("-partition pattern: %w", err)
	}
	if parts <= 0 {
		return fmt.Errorf("-parts must be positive")
	}
	opts := engine.Options{DataAwareOrder: dataAware}
	plan, err := engine.CompilePlan(store, p, opts)
	if err != nil {
		return err
	}
	cands := engine.FirstCandidates(store, plan, opts)
	tasks := engine.PartitionFrontier(cands, parts)
	out.Printf("  partition preview for %q into %d parts:\n", pat, parts)
	if len(tasks) == 0 {
		out.Printf("    no first-step candidates: the pattern cannot match this data\n")
		return nil
	}
	minC, maxC := len(tasks[0].Cands), len(tasks[0].Cands)
	for i, t := range tasks {
		out.Printf("    task %2d: %d candidates\n", i, len(t.Cands))
		if len(t.Cands) < minC {
			minC = len(t.Cands)
		}
		if len(t.Cands) > maxC {
			maxC = len(t.Cands)
		}
	}
	imbalance := "perfect"
	if minC > 0 && maxC != minC {
		imbalance = fmt.Sprintf("%.2fx", float64(maxC)/float64(minC))
	} else if minC == 0 {
		imbalance = "degenerate (empty ranges)"
	}
	out.Printf("    %d candidates total across %d tasks; min %d, max %d, imbalance %s\n",
		len(cands), len(tasks), minC, maxC, imbalance)
	return nil
}
