// Command hgen generates synthetic hypergraphs (and optionally sampled
// patterns) and writes them in the text format the other tools read.
//
//	hgen -dataset SB -o sb.hg
//	hgen -vertices 1000 -edges 5000 -mean 6 -max 20 -o custom.hg
//	hgen -dataset WT -patterns 5 -pattern-edges 3
package main

import (
	"flag"
	"fmt"
	"os"

	"ohminer/internal/cliio"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset  = flag.String("dataset", "", "Table 3 preset tag (CH,CP,SB,HB,WT,TC,CD,AM,SYN); overrides the custom flags")
		out      = flag.String("o", "", "output file ('' = stdout)")
		vertices = flag.Int("vertices", 1000, "custom: |V|")
		edges    = flag.Int("edges", 4000, "custom: |E|")
		comms    = flag.Int("communities", 40, "custom: community count")
		overlap  = flag.Float64("overlap", 1.0, "custom: expected extra community memberships per vertex")
		minSize  = flag.Int("min", 2, "custom: min hyperedge degree")
		maxSize  = flag.Int("max", 12, "custom: max hyperedge degree")
		mean     = flag.Float64("mean", 5, "custom: target average hyperedge degree")
		powerLaw = flag.Bool("powerlaw", false, "custom: Zipf community popularity")
		labels   = flag.Int("labels", 0, "vertex label classes (0 = unlabeled)")
		seed     = flag.Int64("seed", 1, "generator seed")
		patterns = flag.Int("patterns", 0, "also sample this many patterns and print them to stderr")
		patEdges = flag.Int("pattern-edges", 3, "hyperedges per sampled pattern")
		list     = flag.Bool("list", false, "list presets and exit")
	)
	flag.Parse()

	if *list {
		out := cliio.NewWriter(os.Stdout)
		for _, p := range gen.Presets() {
			out.Printf("%-4s scale=%.3f |V|=%d |E|=%d AD=%.2f  %s\n",
				p.Tag, p.Scale, p.Config.NumVertices, p.Config.NumEdges, p.Config.EdgeSizeMean, p.Description)
		}
		return out.Close()
	}

	cfg := gen.Config{
		Name: "custom", NumVertices: *vertices, NumEdges: *edges, Communities: *comms,
		MemberOverlap: *overlap, EdgeSizeMin: *minSize, EdgeSizeMax: *maxSize,
		EdgeSizeMean: *mean, PowerLaw: *powerLaw, NumLabels: *labels, Seed: *seed,
	}
	if *dataset != "" {
		p, err := gen.PresetByTag(*dataset)
		if err != nil {
			return err
		}
		cfg = p.Config
		if *labels > 0 {
			cfg = p.Labeled(*labels)
		}
		cfg.Seed = *seed
	}
	h, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "generated:", h)

	if err := write(h, *out); err != nil {
		return err
	}
	if *patterns > 0 {
		rng := pattern.NewRand(*seed)
		for i := 0; i < *patterns; i++ {
			p, err := pattern.Sample(h, *patEdges, *patEdges, 64, rng)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "pattern %d: %s\n", i, p)
		}
	}
	return nil
}

func write(h *hypergraph.Hypergraph, path string) error {
	if path == "" {
		return h.Write(os.Stdout)
	}
	return h.Save(path)
}
