// Command ohmplan inspects the redundancy-free compiler's output for a
// pattern: the Overlap Intersection Graph (Figure 8 style), the overlap
// order, the connectivity groups used by group-based pruning, and the
// overlap-centric execution plan (Table 1 style), with the structural
// verifier run over the result.
//
//	ohmplan -pattern "0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11"
//	ohmplan -pattern "0 1; 1 2; 0 2" -mode simple
//	ohmplan -pattern "0 1; 1 2" -verify
//
// -verify skips the inspection dump and runs only the full IR program
// verifier (slot def-before-use, liveness, mask/step discipline, fingerprint
// coverage), printing the plan's semantic fingerprint on success.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ohminer/internal/cliio"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
	"ohminer/internal/venn"
)

// mustKey returns the canonical key of a pattern known to canonicalize.
func mustKey(p *pattern.Pattern) string {
	k, _ := pattern.CanonicalKey(p)
	return k
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ohmplan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lit        = flag.String("pattern", "", "pattern literal, e.g. \"0 1 2; 2 3 4\"")
		mode       = flag.String("mode", "merged", "plan mode: merged (full OHMiner) or simple (IEP only)")
		verify     = flag.Bool("verify", false, "run only the IR program verifier and print the plan fingerprint")
		norestrict = flag.Bool("norestrict", false, "compile without symmetry-breaking ordering restrictions")
	)
	flag.Parse()
	if *lit == "" {
		return fmt.Errorf("need -pattern LITERAL")
	}
	p, err := pattern.Parse(*lit)
	if err != nil {
		return err
	}
	out := cliio.NewWriter(os.Stdout)
	var m oig.Mode
	switch *mode {
	case "merged":
		m = oig.ModeMerged
	case "simple":
		m = oig.ModeSimple
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	out.Printf("pattern: %s  (%d hyperedges, %d vertices, %d automorphisms)\n",
		p, p.NumEdges(), p.NumVertices(), p.Automorphisms())
	if cp, ok := pattern.Canonical(p); ok {
		out.Printf("canonical form: %s  (key %x)\n", cp, mustKey(p))
	} else {
		out.Printf("canonical form: (skipped: more than %d hyperedges)\n", pattern.CanonMaxEdges)
	}

	plan, err := oig.CompileWith(p, m, oig.CompileOptions{NoRestrictions: *norestrict})
	if err != nil {
		return err
	}

	if *verify {
		if err := oig.VerifyProgram(plan); err != nil {
			return fmt.Errorf("plan verification FAILED: %w", err)
		}
		out.Printf("plan verification: OK (mode=%s, slots=%d, fingerprint %#x)\n",
			plan.Mode, plan.NumSlots, plan.FP)
		return out.Close()
	}
	out.Printf("matching order: %v (original indices)\n", plan.Order)
	switch {
	case plan.Restricted:
		var rs []string
		for t := range plan.Steps {
			for _, j := range plan.Steps[t].Restrict {
				rs = append(rs, fmt.Sprintf("c%d<c%d", j, t))
			}
		}
		out.Println("symmetry restrictions:", strings.Join(rs, " "))
	case *norestrict:
		out.Println("symmetry restrictions: disabled (-norestrict)")
	default:
		out.Println("symmetry restrictions: none (pattern is asymmetric)")
	}

	out.Println("\nOverlap Intersection Graph (reordered pattern):")
	out.Print(plan.Graph)

	out.Println("overlap order (node IDs):", plan.Graph.OverlapOrder())

	s := plan.Sig
	pairConn := func(i, j int) bool { return s.Size(uint32(1<<i|1<<j)) > 0 }
	for lvl := 1; lvl <= plan.Graph.NumLevels(); lvl++ {
		groups := plan.Graph.Groups(lvl, pairConn)
		if len(groups) > 1 {
			out.Printf("level %d pruning groups: %v\n", lvl, groups)
		}
	}

	out.Println("\nVenn regions of the pattern:")
	regions, err := venn.Regions(plan.Pattern.Edges())
	if err != nil {
		return err
	}
	for _, r := range regions {
		if r.Size > 0 {
			out.Printf("  %-24s %d\n", r.Expr(p.NumEdges()), r.Size)
		}
	}

	out.Println("\nexecution plan:")
	out.Print(plan)
	out.Printf("compiled in %v; op counts: %v\n", plan.CompileTime, plan.NumOps())

	if err := oig.VerifyProgram(plan); err != nil {
		return fmt.Errorf("plan verification FAILED: %w", err)
	}
	out.Printf("plan verification: OK (fingerprint %#x)\n", plan.FP)
	return out.Close()
}
