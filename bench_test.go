package ohminer

// One testing.B benchmark per paper table/figure (delegating to the
// internal/exp harness in quick mode), plus per-variant and per-kernel
// micro-benchmarks. `go test -bench=. -benchmem` regenerates the numbers
// EXPERIMENTS.md records; `cmd/ohmbench` runs the full-scale grids.

import (
	"sync"
	"testing"
	"time"

	"ohminer/internal/engine"
	"ohminer/internal/exp"
	"ohminer/internal/intset"
	"ohminer/internal/pattern"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *exp.Context
)

func benchContext() *exp.Context {
	benchCtxOnce.Do(func() { benchCtx = exp.NewContext() })
	return benchCtx
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	c := benchContext()
	opts := exp.RunOpts{Quick: true, Seed: 42, Workers: 1, CellBudget: 30 * time.Second}
	// Warm the dataset cache outside the timed region.
	if _, err := e.Run(c, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig03 regenerates the HGMatch characteristics study (Fig. 3).
func BenchmarkFig03(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig12 regenerates the headline OHMiner-vs-HGMatch grid (Fig. 12).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkTable05 regenerates the absolute-time table (Table 5).
func BenchmarkTable05(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig13 regenerates the OHM-V validation study (Fig. 13).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates the labeled-HPM comparison (Fig. 14).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates the optimization ablation (Fig. 15).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates the thread-scalability sweep (Fig. 16).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17a regenerates the large-hypergraph study (Fig. 17(a)).
func BenchmarkFig17a(b *testing.B) { benchExperiment(b, "fig17a") }

// BenchmarkFig17b regenerates the dense-pattern study (Fig. 17(b)).
func BenchmarkFig17b(b *testing.B) { benchExperiment(b, "fig17b") }

// BenchmarkTable06 regenerates the overhead accounting (Table 6).
func BenchmarkTable06(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkMineVariants times one fixed p3 workload on SB under every
// system variant — the per-query view behind the speedup grids.
func BenchmarkMineVariants(b *testing.B) {
	store, err := benchContext().Dataset("SB")
	if err != nil {
		b.Fatal(err)
	}
	set := pattern.Setting{Name: "p3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 1}
	pats, err := pattern.SampleSet(store.Hypergraph(), set, 42)
	if err != nil {
		b.Fatal(err)
	}
	p := pats[0]
	for _, v := range engine.Variants() {
		b.Run(v.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := engine.Mine(store, p, engine.Options{Gen: v.Gen, Val: v.Val, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.Ordered == 0 {
					b.Fatal("no embeddings")
				}
			}
		})
	}
}

// BenchmarkKernelAblation compares the fast (SIMD stand-in) and scalar set
// kernels on the same workload — the "OHMiner without SIMD" data point of
// Sec. 5.2.
func BenchmarkKernelAblation(b *testing.B) {
	store, err := benchContext().Dataset("WT")
	if err != nil {
		b.Fatal(err)
	}
	set := pattern.Setting{Name: "p3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 1}
	pats, err := pattern.SampleSet(store.Hypergraph(), set, 42)
	if err != nil {
		b.Fatal(err)
	}
	p := pats[0]
	for _, k := range []intset.Kernel{intset.Fast, intset.Scalar} {
		b.Run(k.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Mine(store, p, engine.Options{Kernel: k, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeAblation isolates the compiler's merge optimization: the
// same DAL generation with the merged plan (class-minimal checks) vs the
// simple plan (every non-implied overlap checked) — one of the design
// choices DESIGN.md calls out.
func BenchmarkMergeAblation(b *testing.B) {
	store, err := benchContext().Dataset("SB")
	if err != nil {
		b.Fatal(err)
	}
	set := pattern.Setting{Name: "p4", NumEdges: 4, VertMin: 10, VertMax: 30, Count: 1}
	pats, err := pattern.SampleSet(store.Hypergraph(), set, 42)
	if err != nil {
		b.Fatal(err)
	}
	p := pats[0]
	for _, cfg := range []struct {
		name string
		val  engine.ValMode
	}{
		{"merged", engine.ValOverlap},
		{"simple", engine.ValOverlapSimple},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Mine(store, p, engine.Options{Val: cfg.val, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCompile times the redundancy-free compiler (OIG-T, Table 6).
func BenchmarkPlanCompile(b *testing.B) {
	store, err := benchContext().Dataset("SB")
	if err != nil {
		b.Fatal(err)
	}
	p, err := SamplePattern(store.Hypergraph(), 6, 6, 60, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompilePattern(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreBuild times DAL construction (DAL-T, Table 6).
func BenchmarkStoreBuild(b *testing.B) {
	store, err := benchContext().Dataset("CH")
	if err != nil {
		b.Fatal(err)
	}
	h := store.Hypergraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewStore(h)
	}
}
