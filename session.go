package ohminer

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"ohminer/internal/engine"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// DefaultResultCacheCapacity is the result cache size a new Session starts
// with; SetResultCacheCapacity overrides it.
const DefaultResultCacheCapacity = 256

// Session binds a store to two caches so repeated queries skip redundant
// work:
//
//   - a compiled-plan cache keyed on the pattern's canonical form, so every
//     way of writing the same pattern — any isomorphic literal — shares one
//     plan. Compilation is sub-millisecond (Table 6's OIG-T), but a service
//     answering thousands of queries per second over the same store — the
//     deployment the paper's API discussion envisions — should not redo
//     pattern analysis per request. Concurrent first requests for the same
//     pattern compile once (the laggards wait for the winner);
//   - a bounded LRU result cache over complete counting runs: a repeat of a
//     query whose options do not observe per-run state (no limit, no
//     embedding callback, no checkpointing, no instrumentation) returns the
//     cached Result without touching the engine. Each store build is
//     immutable, so a cached count never silently goes stale; results are
//     additionally keyed by the dataset's content fingerprint, so swapping
//     the session onto a new store version with SetStore invalidates them
//     implicitly — and swapping back to identical content revalidates them.
//     Cached results keep their original Elapsed and Stats.
//
// Plans are compiled from the canonical pattern, so WithEmbeddings
// callbacks through a Session report hyperedge IDs in the canonical plan's
// matching order — identical for every isomorphic literal of the query.
// Counts (Unique, Ordered) are isomorphism-invariant and unaffected.
//
// Sessions are safe for concurrent use.
type Session struct {
	st atomic.Pointer[storeState]

	mu    sync.Mutex
	plans map[sessionKey]*planEntry

	hits   atomic.Uint64
	misses atomic.Uint64

	rmu      sync.Mutex
	results  map[resultKey]*list.Element
	lru      *list.List
	capacity int

	rhits   atomic.Uint64
	rmisses atomic.Uint64
}

// storeState pairs a store with its dataset fingerprint so both swap
// atomically under SetStore: a concurrent query either sees the old pair or
// the new pair, never a store keyed under the wrong dataset version.
type storeState struct {
	store *Store
	fp    uint64
}

// sessionKey identifies one compiled plan: the pattern's identity (canonical
// key when canonicalization applies, exact literal plus labels beyond
// pattern.CanonMaxEdges) plus every option that changes what the compiler
// emits. Two queries with equal keys are answered by the same computation,
// so the key doubles as the result-cache identity.
type sessionKey struct {
	canon      string
	mode       oig.Mode
	restricted bool // symmetry-breaking restrictions compiled in
	dataAware  bool // matching order derived from data selectivity
}

// planEntry is one plan-cache slot. The sync.Once makes compilation
// single-flight: the first goroutine to reach a fresh entry compiles while
// any concurrent requester for the same key blocks in Do and then reads the
// shared outcome — the compiler runs exactly once per key.
type planEntry struct {
	once sync.Once
	plan *Plan
	err  error
}

// NewSession creates a query session over the store.
func NewSession(store *Store) *Session {
	s := &Session{
		plans:    map[sessionKey]*planEntry{},
		results:  map[resultKey]*list.Element{},
		lru:      list.New(),
		capacity: DefaultResultCacheCapacity,
	}
	s.st.Store(newStoreState(store))
	return s
}

func newStoreState(store *Store) *storeState {
	ss := &storeState{store: store}
	if store != nil {
		ss.fp = store.Hypergraph().Fingerprint()
	}
	return ss
}

// Store returns the session's current store.
func (s *Session) Store() *Store { return s.st.Load().store }

// SetStore repoints the session at a new store version — the streaming
// subsystem's compaction and reload paths, or any dataset refresh, produce
// these. The plan cache is retained (plans are compiled from the pattern;
// store-derived hints are advisory), while cached results stop matching
// automatically because they are keyed under the previous dataset
// fingerprint: a swap to different content misses, a swap back to
// byte-identical content hits again. In-flight queries complete against
// whichever store they started on.
func (s *Session) SetStore(store *Store) {
	s.st.Store(newStoreState(store))
}

// DatasetFingerprint returns the content hash of the session's current
// dataset — the value result-cache entries are keyed under.
func (s *Session) DatasetFingerprint() uint64 { return s.st.Load().fp }

// Mine runs a query, reusing a cached plan (and, for pure counting queries,
// a cached result) when one exists for the pattern's isomorphism class. All
// Mine options apply except the validation-mode-changing variants, which
// select the plan mode transparently.
func (s *Session) Mine(p *Pattern, opts ...Option) (Result, error) {
	return s.MineContext(context.Background(), p, opts...)
}

// MineContext is Mine with caller-controlled cancellation: when ctx is
// cancelled mid-run the engine unwinds cooperatively and the call returns
// the partial Result together with ctx.Err(). This is the entry point the
// ohmserve query service drives — one context per request covers the
// client disconnecting, per-request deadlines, and server drain.
func (s *Session) MineContext(ctx context.Context, p *Pattern, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	// One atomic load pins this query to a single (store, fingerprint)
	// pair; a concurrent SetStore cannot split the run across versions.
	cur := s.st.Load()
	plan, key, err := s.plan(p, o, cur.store)
	if err != nil {
		return Result{}, err
	}
	if !resultCacheable(o) {
		return engine.MineWithPlanContext(ctx, cur.store, plan, o)
	}
	rkey := resultKey{sessionKey: key, fp: cur.fp}
	if res, ok := s.lookupResult(rkey); ok {
		return res, nil
	}
	res, err := engine.MineWithPlanContext(ctx, cur.store, plan, o)
	if err == nil && !res.Truncated {
		// Only complete, successful runs are reusable answers; a partial
		// count (deadline, cancellation) must never shadow the real one.
		s.storeResult(rkey, res)
	}
	return res, err
}

// ResumeContext continues an interrupted checkpointed run (see
// ResumeFromCheckpoint) through the session's plan cache: the pattern
// compiles (or is fetched) exactly as MineContext would, the snapshot's
// fingerprints are verified against that plan and the store, and mining
// proceeds from the saved frontier with exactly-once counting. This is the
// entry point the ohmserve jobs subsystem drives to survive restarts.
// Because plans are canonical, a snapshot written through one literal of a
// pattern resumes through any isomorphic literal.
func (s *Session) ResumeContext(ctx context.Context, p *Pattern, snap *CheckpointSnapshot, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	cur := s.st.Load()
	plan, _, err := s.plan(p, o, cur.store)
	if err != nil {
		return Result{}, err
	}
	return engine.ResumeWithPlanContext(ctx, cur.store, plan, snap, o)
}

// CachedPlans reports how many distinct plans the session holds.
func (s *Session) CachedPlans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.plans)
}

// CacheStats reports how many queries reused a cached plan (hits) and how
// many compiled a fresh one (misses) over the session's lifetime.
func (s *Session) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// CachedResults reports how many complete query results the session holds.
func (s *Session) CachedResults() int {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	return s.lru.Len()
}

// ResultCacheStats reports, over cacheable queries only (no limit, no
// embedding callback, no checkpointing, no instrumentation), how many were
// answered from the result cache (hits) and how many ran the engine
// (misses).
func (s *Session) ResultCacheStats() (hits, misses uint64) {
	return s.rhits.Load(), s.rmisses.Load()
}

// SetResultCacheCapacity bounds the result cache to n entries, evicting
// least-recently-used entries if it currently holds more; n <= 0 disables
// result caching and drops every held result. The plan cache is unaffected.
func (s *Session) SetResultCacheCapacity(n int) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	s.capacity = n
	s.evictOver()
}

// plan returns the compiled plan for (p, o) and its cache key, compiling at
// most once per key across concurrent callers.
func (s *Session) plan(p *Pattern, o engine.Options, store *Store) (*Plan, sessionKey, error) {
	mode := oig.ModeMerged
	if o.Val == engine.ValOverlapSimple {
		mode = oig.ModeSimple
	}
	key := sessionKey{
		mode: mode,
		// Mirrors engine.CompilePlan's restriction gating so the key always
		// names the plan that call will produce.
		restricted: !o.NoSymmetryBreak && o.PositionFilter == nil,
		dataAware:  o.DataAwareOrder,
	}
	canonical := false
	if ck, ok := pattern.CanonicalKey(p); ok {
		// Isomorphic literals share this key (Theorem 1 extended with label
		// multisets); the plan itself is compiled from the canonical
		// representative so every literal maps onto the identical plan.
		key.canon = ck
		canonical = true
	} else {
		// Beyond pattern.CanonMaxEdges canonicalization is too expensive;
		// fall back to exact literal identity. The "lit:" prefix cannot
		// collide with a canonical key, whose first byte is a length-field
		// zero.
		key.canon = "lit:" + p.String() + "|" + labelFingerprint(p)
	}

	s.mu.Lock()
	e, ok := s.plans[key]
	if !ok {
		e = &planEntry{}
		s.plans[key] = e
	}
	s.mu.Unlock()

	compiled := false
	e.once.Do(func() {
		compiled = true
		cp := p
		if canonical {
			if c, cok := pattern.Canonical(p); cok {
				cp = c
			}
		}
		e.plan, e.err = engine.CompilePlan(store, cp, o)
	})
	if compiled {
		s.misses.Add(1)
		if e.err != nil {
			// Evict failed entries so CachedPlans counts plans, not errors
			// (recompiling a failing pattern is cheap and the error is
			// deterministic either way).
			s.mu.Lock()
			if s.plans[key] == e {
				delete(s.plans, key)
			}
			s.mu.Unlock()
		}
	} else {
		s.hits.Add(1)
	}
	return e.plan, key, e.err
}

// resultCacheable reports whether a query's options allow answering it from
// (and storing it into) the result cache: nothing about the run may observe
// per-run state. Limits change the counts themselves, embedding callbacks
// and checkpoint sinks are side effects the caller expects to fire, and
// instrumented runs want freshly measured Stats. Deadlines merely bound the
// run: a cached complete result satisfies any deadline, and truncated runs
// are never stored.
func resultCacheable(o engine.Options) bool {
	return o.Limit == 0 && o.OnEmbedding == nil && o.Checkpoint == nil &&
		o.PositionFilter == nil && !o.Instrument
}

// resultKey is the result cache identity: the plan-cache key plus the
// dataset fingerprint the result was computed against. Entries for stale
// dataset versions stop matching the moment SetStore installs new content
// and age out of the LRU naturally.
type resultKey struct {
	sessionKey
	fp uint64
}

// resultEntry is one LRU slot; the key rides along for map cleanup on
// eviction.
type resultEntry struct {
	key resultKey
	res Result
}

func (s *Session) lookupResult(key resultKey) (Result, bool) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if el, ok := s.results[key]; ok {
		s.lru.MoveToFront(el)
		s.rhits.Add(1)
		return el.Value.(*resultEntry).res, true
	}
	s.rmisses.Add(1)
	return Result{}, false
}

func (s *Session) storeResult(key resultKey, res Result) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.results[key]; ok {
		el.Value.(*resultEntry).res = res
		s.lru.MoveToFront(el)
		return
	}
	s.results[key] = s.lru.PushFront(&resultEntry{key: key, res: res})
	s.evictOver()
}

// evictOver trims the LRU to capacity; callers hold rmu.
func (s *Session) evictOver() {
	for s.lru.Len() > s.capacity && s.lru.Len() > 0 {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.results, back.Value.(*resultEntry).key)
	}
}

// labelFingerprint renders the pattern's vertex and hyperedge labels into
// the cache key. Labels are full 32-bit values and must be encoded as such:
// truncating to one byte would make labels differing by a multiple of 256
// collide on the key and silently reuse a plan compiled for the wrong
// labels.
func labelFingerprint(p *Pattern) string {
	out := make([]byte, 0, 5*p.NumVertices()+5*p.NumEdges()+1)
	if p.Labeled() {
		for v := 0; v < p.NumVertices(); v++ {
			out = binary.BigEndian.AppendUint32(out, p.Label(uint32(v)))
			out = append(out, ':')
		}
	}
	out = append(out, '|')
	if p.EdgeLabeled() {
		for e := 0; e < p.NumEdges(); e++ {
			out = binary.BigEndian.AppendUint32(out, p.EdgeLabel(e))
			out = append(out, ':')
		}
	}
	return string(out)
}
