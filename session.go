package ohminer

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"ohminer/internal/engine"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// Session binds a store to a compiled-plan cache so repeated queries skip
// recompilation. Compilation is sub-millisecond (Table 6's OIG-T), but a
// service answering thousands of queries per second over the same store —
// the deployment the paper's API discussion envisions — should not redo
// pattern analysis per request, and the cache also deduplicates plans for
// isomorphic patterns via their canonical shape keys.
//
// Sessions are safe for concurrent use.
type Session struct {
	store *Store

	mu    sync.Mutex
	plans map[sessionKey]*Plan

	hits   atomic.Uint64
	misses atomic.Uint64
}

type sessionKey struct {
	shape   string
	literal string // exact pattern text; labeled patterns are not shape-keyed
	mode    oig.Mode
}

// NewSession creates a query session over the store.
func NewSession(store *Store) *Session {
	return &Session{store: store, plans: map[sessionKey]*Plan{}}
}

// Store returns the session's store.
func (s *Session) Store() *Store { return s.store }

// Mine runs a query, reusing a cached plan when one exists for the
// pattern. All Mine options apply except the validation-mode-changing
// variants, which select the plan mode transparently.
func (s *Session) Mine(p *Pattern, opts ...Option) (Result, error) {
	return s.MineContext(context.Background(), p, opts...)
}

// MineContext is Mine with caller-controlled cancellation: when ctx is
// cancelled mid-run the engine unwinds cooperatively and the call returns
// the partial Result together with ctx.Err(). This is the entry point the
// ohmserve query service drives — one context per request covers the
// client disconnecting, per-request deadlines, and server drain.
func (s *Session) MineContext(ctx context.Context, p *Pattern, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	mode := oig.ModeMerged
	if o.Val == engine.ValOverlapSimple {
		mode = oig.ModeSimple
	}
	plan, err := s.plan(p, mode)
	if err != nil {
		return Result{}, err
	}
	return engine.MineWithPlanContext(ctx, s.store, plan, o)
}

// ResumeContext continues an interrupted checkpointed run (see
// ResumeFromCheckpoint) through the session's plan cache: the pattern
// compiles (or is fetched) exactly as MineContext would, the snapshot's
// fingerprints are verified against that plan and the store, and mining
// proceeds from the saved frontier with exactly-once counting. This is the
// entry point the ohmserve jobs subsystem drives to survive restarts.
func (s *Session) ResumeContext(ctx context.Context, p *Pattern, snap *CheckpointSnapshot, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	mode := oig.ModeMerged
	if o.Val == engine.ValOverlapSimple {
		mode = oig.ModeSimple
	}
	plan, err := s.plan(p, mode)
	if err != nil {
		return Result{}, err
	}
	return engine.ResumeWithPlanContext(ctx, s.store, plan, snap, o)
}

// CachedPlans reports how many distinct plans the session holds.
func (s *Session) CachedPlans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.plans)
}

// CacheStats reports how many queries reused a cached plan (hits) and how
// many compiled a fresh one (misses) over the session's lifetime.
func (s *Session) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

func (s *Session) plan(p *Pattern, mode oig.Mode) (*Plan, error) {
	key := sessionKey{mode: mode}
	if p.Labeled() || p.EdgeLabeled() {
		// Labels distinguish patterns beyond structure; key on the exact
		// literal plus labels rendered through String (vertex labels are
		// positional, so the literal alone is insufficient — skip caching
		// unless identical object semantics are cheap to derive).
		key.literal = p.String() + "|" + labelFingerprint(p)
	} else {
		// Unlabeled patterns with the same canonical shape are isomorphic
		// (Theorem 1) and can share a plan only if the plan is built from
		// the same concrete pattern; key on shape + literal to stay exact
		// while still deduplicating repeated query texts.
		key.shape = pattern.ShapeOf(p).Key()
		key.literal = p.String()
	}
	s.mu.Lock()
	if plan, ok := s.plans[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return plan, nil
	}
	s.mu.Unlock()
	plan, err := oig.Compile(p, mode)
	if err != nil {
		return nil, err
	}
	s.misses.Add(1)
	s.mu.Lock()
	s.plans[key] = plan
	s.mu.Unlock()
	return plan, nil
}

// labelFingerprint renders the pattern's vertex and hyperedge labels into
// the cache key. Labels are full 32-bit values and must be encoded as such:
// truncating to one byte would make labels differing by a multiple of 256
// collide on the key and silently reuse a plan compiled for the wrong
// labels.
func labelFingerprint(p *Pattern) string {
	out := make([]byte, 0, 5*p.NumVertices()+5*p.NumEdges()+1)
	if p.Labeled() {
		for v := 0; v < p.NumVertices(); v++ {
			out = binary.BigEndian.AppendUint32(out, p.Label(uint32(v)))
			out = append(out, ':')
		}
	}
	out = append(out, '|')
	if p.EdgeLabeled() {
		for e := 0; e < p.NumEdges(); e++ {
			out = binary.BigEndian.AppendUint32(out, p.EdgeLabel(e))
			out = append(out, ':')
		}
	}
	return string(out)
}
