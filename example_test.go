package ohminer_test

import (
	"fmt"

	"ohminer"
)

// ExampleMine mines the paper's running example: the Figure 1(a) pattern
// has exactly one embedding in the Figure 1(b) hypergraph.
func ExampleMine() {
	h, _ := ohminer.BuildHypergraph(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
		{0, 1, 2, 9, 12, 13},
		{1, 3, 4, 5, 6, 7, 8, 14},
	}, nil)
	store := ohminer.NewStore(h)
	p, _ := ohminer.ParsePattern("0 1 2 3 4 5; 3 4 5 6 7 8; 3 4 5 6 7 9 10 11")
	res, _ := ohminer.Mine(store, p, ohminer.WithWorkers(1))
	fmt.Println(res.Unique)
	// Output: 1
}

// ExampleParsePattern shows the pattern literal syntax: hyperedges
// separated by semicolons.
func ExampleParsePattern() {
	p, _ := ohminer.ParsePattern("0 1 2; 2 3; 3 4 5")
	fmt.Println(p.NumEdges(), p.NumVertices())
	// Output: 3 6
}

// ExampleCompilePattern inspects the overlap-centric execution plan of a
// triangle of 2-vertex hyperedges: three pairwise overlaps plus an
// emptiness check for the triple. Only the overlap feeding the emptiness
// check is materialized; the other two demote to count-only checks.
func ExampleCompilePattern() {
	p, _ := ohminer.ParsePattern("0 1; 1 2; 0 2")
	plan, _ := ohminer.CompilePattern(p)
	ops := plan.NumOps()
	fmt.Println(len(plan.Steps), "steps,", ops)
	// Output: 3 steps, map[intersect:1 empty:1 intersect-count:2]
}

// ExampleMine_variants runs the HGMatch baseline on the same query; counts
// always agree, only the time differs.
func ExampleMine_variants() {
	h, _ := ohminer.BuildHypergraph(5, [][]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
	}, nil)
	store := ohminer.NewStore(h)
	p, _ := ohminer.ParsePattern("0 1; 1 2")
	a, _ := ohminer.Mine(store, p)
	b, _ := ohminer.Mine(store, p, ohminer.WithVariant("HGMatch"))
	fmt.Println(a.Unique, a.Ordered == b.Ordered)
	// Output: 3 true
}
