# Developer entry points. Everything is stdlib Go; no external deps.

GO ?= go

.PHONY: all build test test-short race cover bench bench-json bench-smoke fuzz experiments examples serve-smoke cluster-smoke stream-smoke chaos fmt fmt-check vet lint lint-fix-check ci clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable engine benchmark cells (scheduler scaling + set-kernel +
# symmetry-breaking ablations) — tracked across PRs in BENCH_engine.json.
bench-json:
	$(GO) run ./cmd/ohmbench -exp sched,kern,sym,stream -json BENCH_engine.json

# Fast correctness gate over the kernel and symmetry-breaking ablations:
# runs the reduced-size grids and fails on any count disagreement between
# the kernel families or between restricted and unrestricted plans.
bench-smoke:
	$(GO) run ./cmd/ohmbench -exp kern,sym -quick

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/hypergraph
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/pattern
	$(GO) test -fuzz FuzzLoad -fuzztime 30s ./internal/dal
	$(GO) test -fuzz FuzzIntersectKernels -fuzztime 30s ./internal/intset
	$(GO) test -fuzz FuzzPlanVerify -fuzztime 30s ./internal/engine
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/stream

# Regenerate the paper's tables and figures (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/ohmbench -exp all -budget 45s

experiments-quick:
	$(GO) run ./cmd/ohmbench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/proteincomplex
	$(GO) run ./examples/coauthorship
	$(GO) run ./examples/contagion
	$(GO) run ./examples/streaming

# End-to-end drill for the ohmserve query service: builds the binary,
# starts it on a generated hypergraph, answers a query over HTTP, then
# SIGTERMs it with a query in flight and asserts a clean drain. Runs
# race-instrumented.
serve-smoke:
	$(GO) test -race -count=1 -run TestServeSmoke ./cmd/ohmserve

# End-to-end drills for the distributed cluster: builds ohmserve and
# ohmworker, then (a) SIGKILLs a worker mid-run and (b) SIGKILLs a durable
# coordinator (-cluster-dir) mid-job and restarts it from its WAL on the
# same port; both drills assert final counts equal a single-node run (see
# docs/DISTRIBUTED.md). The -run prefix matches both TestClusterSmoke and
# TestClusterSmokeCoordinatorRestart.
cluster-smoke:
	$(GO) test -count=1 -run TestClusterSmoke ./cmd/ohmworker

# End-to-end drill for the streaming subsystem: builds ohmserve with
# -stream-dir, creates a stream and a standing query over HTTP, feeds
# sequenced batches while an SSE subscriber is attached, SIGKILLs the
# server mid-stream, restarts it on the same directory, replays the feed
# (idempotent acks), and asserts the pushed deltas and final totals equal
# a from-scratch mine (see docs/STREAMING.md). Runs race-instrumented.
stream-smoke:
	$(GO) test -race -count=1 -run TestStreamSmoke ./cmd/ohmserve

# Fault-injection chaos drill: kill-at-kth-checkpoint, torn writes, worker
# panics, full-disk runs, the cluster's kill/zombie scenarios, and the
# coordinator's own WAL crash/restart (kill-after-kth-record and torn
# append) must all recover (or refuse) with exact counts,
# race-instrumented, on both scheduler paths (see docs/ROBUSTNESS.md and
# docs/DISTRIBUTED.md). The stream leg crashes a snapshotting miner
# mid-feed and resumes it from the last durable snapshot.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/engine ./internal/cluster ./internal/stream

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (see docs/LINTING.md).
lint:
	$(GO) run ./cmd/ohmlint ./...

# Audit suppression directives: every //ohmlint:allow and //lint:ignore
# must carry a written reason, or the gate fails.
lint-fix-check:
	$(GO) run ./cmd/ohmlint -suppressions ./...

# The full local gate: formatting, vet, ohmlint + suppression audit, the
# race-enabled tests, the end-to-end smokes (query service + distributed
# cluster + streaming), and the cross-kernel count agreement smoke.
ci: fmt-check vet lint lint-fix-check race serve-smoke cluster-smoke stream-smoke chaos bench-smoke

clean:
	$(GO) clean ./...
