# Developer entry points. Everything is stdlib Go; no external deps.

GO ?= go

.PHONY: all build test test-short race cover bench fuzz experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/engine ./internal/dynamic ./internal/exp

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/hypergraph
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/pattern

# Regenerate the paper's tables and figures (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/ohmbench -exp all -budget 45s

experiments-quick:
	$(GO) run ./cmd/ohmbench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/proteincomplex
	$(GO) run ./examples/coauthorship
	$(GO) run ./examples/contagion
	$(GO) run ./examples/streaming

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
