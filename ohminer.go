// Package ohminer is the public API of the OHMiner hypergraph pattern
// mining system — a Go implementation of "OHMiner: An Overlap-centric
// System for Efficient Hypergraph Pattern Mining" (EuroSys 2025).
//
// The typical flow:
//
//	h, _ := ohminer.LoadHypergraph("data.hg")      // or GenerateDataset
//	store := ohminer.NewStore(h)                   // degree-aware data store
//	p, _ := ohminer.ParsePattern("0 1 2; 2 3 4")   // or SamplePattern
//	res, _ := ohminer.Mine(store, p)               // overlap-centric mining
//	fmt.Println(res.Unique, "embeddings in", res.Elapsed)
//
// Mine accepts functional options to select baseline/ablation variants,
// worker counts, kernels, and embedding callbacks; see the With* options.
package ohminer

import (
	"context"
	"io"
	"math/rand"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
	"ohminer/internal/motif"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
	"ohminer/internal/stream"
)

// Re-exported core types. The implementations live in internal packages;
// these aliases form the supported public surface.
type (
	// Hypergraph is an immutable data hypergraph with dual CSR incidence.
	Hypergraph = hypergraph.Hypergraph
	// Store is the degree-aware data store (DAL) built over a hypergraph.
	Store = dal.Store
	// Pattern is a pattern hypergraph.
	Pattern = pattern.Pattern
	// Plan is a compiled overlap-centric execution plan.
	Plan = oig.Plan
	// Result reports one mining run.
	Result = engine.Result
	// Stats carries the engine instrumentation counters.
	Stats = engine.Stats
	// GeneratorConfig parameterizes synthetic dataset generation.
	GeneratorConfig = gen.Config
	// DatasetPreset describes one of the paper's Table 3 datasets.
	DatasetPreset = gen.Preset
	// PatternSetting mirrors one Table 4 pattern family row.
	PatternSetting = pattern.Setting
)

// BuildHypergraph constructs a hypergraph from raw hyperedge vertex lists,
// applying the paper's preprocessing (dedup of vertices within edges and of
// whole edges). labels may be nil.
func BuildHypergraph(numVertices int, edges [][]uint32, labels []uint32) (*Hypergraph, error) {
	return hypergraph.Build(numVertices, edges, labels)
}

// BuildEdgeLabeledHypergraph is BuildHypergraph with per-hyperedge labels
// (the Sec. 4.3.1 extension); hyperedges with identical vertex sets but
// different labels are distinct.
func BuildEdgeLabeledHypergraph(numVertices int, edges [][]uint32, labels, edgeLabels []uint32) (*Hypergraph, error) {
	return hypergraph.BuildEdgeLabeled(numVertices, edges, labels, edgeLabels)
}

// NewEdgeLabeledPattern builds a pattern whose hyperedges carry labels that
// candidates must match.
func NewEdgeLabeledPattern(edges [][]uint32, labels, edgeLabels []uint32) (*Pattern, error) {
	return pattern.NewEdgeLabeled(edges, labels, edgeLabels)
}

// LoadHypergraph reads a hypergraph from a text file (one hyperedge per
// line; optional "#labels" block).
func LoadHypergraph(path string) (*Hypergraph, error) { return hypergraph.Load(path) }

// ReadHypergraph parses the text format from a reader.
func ReadHypergraph(r io.Reader) (*Hypergraph, error) { return hypergraph.Parse(r) }

// GenerateDataset produces a deterministic synthetic hypergraph.
func GenerateDataset(cfg GeneratorConfig) (*Hypergraph, error) { return gen.Generate(cfg) }

// DatasetPresets returns the Table 3 dataset catalogue (bench-scale).
func DatasetPresets() []DatasetPreset { return gen.Presets() }

// DatasetPresetByTag returns one preset (CH, CP, SB, HB, WT, TC, CD, AM,
// SYN).
func DatasetPresetByTag(tag string) (DatasetPreset, error) { return gen.PresetByTag(tag) }

// NewStore builds the degree-aware data store for h. Construction is the
// one-time preprocessing of Sec. 4.5; the store is immutable and safe for
// concurrent mining.
func NewStore(h *Hypergraph) *Store { return dal.Build(h) }

// SaveStore persists a built store so later processes can skip
// construction — the paper's amortized offline preprocessing.
func SaveStore(s *Store, path string) error { return s.SaveFile(path) }

// LoadStore reads a store persisted by SaveStore; h must be the identical
// hypergraph (verified via content fingerprint).
func LoadStore(path string, h *Hypergraph) (*Store, error) { return dal.LoadFile(path, h) }

// NewPattern builds a pattern from hyperedge vertex lists (labels may be
// nil).
func NewPattern(edges [][]uint32, labels []uint32) (*Pattern, error) {
	return pattern.New(edges, labels)
}

// ParsePattern reads a pattern literal such as "0 1 2; 2 3; 3 4 5".
func ParsePattern(s string) (*Pattern, error) { return pattern.Parse(s) }

// PatternSettings returns the paper's Table 4 pattern families P2–P6.
func PatternSettings() []PatternSetting { return pattern.Settings() }

// SamplePattern draws a random connected pattern with numEdges hyperedges
// from h, with the total vertex count in [vertMin, vertMax] — the paper's
// workload methodology.
func SamplePattern(h *Hypergraph, numEdges, vertMin, vertMax int, seed int64) (*Pattern, error) {
	return pattern.Sample(h, numEdges, vertMin, vertMax, rand.New(rand.NewSource(seed)))
}

// SampleDensePattern draws a pattern in which every hyperedge pair overlaps
// (Sec. 5.5 sensitivity workload).
func SampleDensePattern(h *Hypergraph, numEdges, vertMin, vertMax int, seed int64) (*Pattern, error) {
	return pattern.SampleDense(h, numEdges, vertMin, vertMax, rand.New(rand.NewSource(seed)))
}

// Parametric pattern families — the recurring query shapes of the HPM
// literature, ready-made.
var (
	// ChainPattern: k size-`size` hyperedges, consecutive ones sharing
	// `overlap` vertices.
	ChainPattern = pattern.Chain
	// StarPattern: k size-`size` hyperedges sharing a common `core`.
	StarPattern = pattern.Star
	// CyclePattern: k hyperedges in a ring, adjacent ones sharing `overlap`
	// vertices.
	CyclePattern = pattern.Cycle
	// NestedPattern: a ⊃-tower of k hyperedges shrinking by `step`.
	NestedPattern = pattern.Nested
	// CliquePattern: k hyperedges all sharing one `core` block (a dense
	// pattern in the Sec. 5.5 sense).
	CliquePattern = pattern.Clique
)

// CompilePattern runs the redundancy-free compiler and returns the
// overlap-centric execution plan (with the merge optimization applied).
func CompilePattern(p *Pattern) (*Plan, error) { return oig.Compile(p, oig.ModeMerged) }

// ErrWorkerPanic wraps a panic recovered on a mining worker goroutine
// (e.g. inside a WithEmbeddings callback); match with errors.Is.
var ErrWorkerPanic = engine.ErrWorkerPanic

// Option configures Mine and the other mining entry points.
type Option func(*config)

// config accumulates the engine options selected by a chain of Options,
// plus any configuration error. Errors surface from the mining call that
// consumes the options instead of panicking at option-construction time
// (library code must not panic on bad input; see docs/LINTING.md,
// no-panic-lib).
type config struct {
	engine.Options
	err error
}

// buildOptions applies the options and returns the engine configuration
// or the first configuration error.
func buildOptions(opts []Option) (engine.Options, error) {
	var c config
	for _, fn := range opts {
		fn(&c)
	}
	return c.Options, c.err
}

// WithWorkers sets the number of mining goroutines (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.Workers = n } }

// WithVariant selects a system configuration by paper name: "OHMiner"
// (default), "OHM-G", "OHM-V", "OHM-I", or "HGMatch". An unknown name is
// reported by the mining call that consumes the options.
func WithVariant(name string) Option {
	return func(c *config) {
		v, err := engine.VariantByName(name)
		if err != nil {
			c.err = err
			return
		}
		c.Gen, c.Val = v.Gen, v.Val
	}
}

// WithScalarKernel disables the adaptive and galloping set kernels (the
// paper's no-SIMD ablation). The default is the adaptive kernel family,
// which picks per operation among word-parallel bitmap windows, window
// probes, and galloping from the density of the operands' containers;
// WithFastKernel pins the static gallop family instead.
func WithScalarKernel() Option { return func(c *config) { c.Kernel = intset.Scalar } }

// WithFastKernel pins the static galloping kernel family, bypassing the
// adaptive container dispatch — the mid ablation point between scalar and
// adaptive (cf. the kern experiment in cmd/ohmbench).
func WithFastKernel() Option { return func(c *config) { c.Kernel = intset.Fast } }

// WithLimit stops mining once at least n ordered embeddings were found.
func WithLimit(n uint64) Option { return func(c *config) { c.Limit = n } }

// WithDeadline aborts mining after roughly d (0 = none); a run the
// deadline actually cut short returns a partial Result marked Truncated.
// Unlike MineContext cancellation this is not an error: the partial counts
// are the answer — the serving layer maps per-request timeouts here.
func WithDeadline(d time.Duration) Option { return func(c *config) { c.Deadline = d } }

// WithInstrumentation enables the Stats counters and phase timers.
func WithInstrumentation() Option { return func(c *config) { c.Instrument = true } }

// WithDataAwareOrder derives the matching order from data-hypergraph
// selectivity (most selective hyperedge first) instead of the purely
// structural connectivity order.
func WithDataAwareOrder() Option { return func(c *config) { c.DataAwareOrder = true } }

// WithEmbeddings registers a callback receiving every embedding (hyperedge
// IDs in matching order). The engine serializes calls; copy the slice to
// retain it.
func WithEmbeddings(fn func(edges []uint32)) Option {
	return func(c *config) { c.OnEmbedding = fn }
}

// WithCanonicalEmbeddingsOnly filters the WithEmbeddings callback to one
// canonical tuple per unordered embedding (counts are unaffected): useful
// when the pattern has automorphisms and each match should be reported
// once. Plans compiled with symmetry-breaking restrictions (the default)
// already deliver exactly that, so this option matters only together with
// WithoutSymmetryBreaking.
func WithCanonicalEmbeddingsOnly() Option {
	return func(c *config) { c.UniqueOnly = true }
}

// WithoutSymmetryBreaking compiles the plan without the symmetry-breaking
// ordering restrictions, restoring the legacy enumeration that visits every
// ordered tuple of an embedding (|Aut| of them per unordered match) and
// derives Unique by division. The default — restrictions on — enumerates
// one canonical tuple per embedding, shrinking the search by the
// automorphism count and making Unique exact even for truncated runs.
// Counts agree between the two modes on complete runs; use this for
// ablations, for WithEmbeddings callbacks that must observe every ordered
// tuple, or to resume checkpoints written by builds without the
// restriction pass.
func WithoutSymmetryBreaking() Option {
	return func(c *config) { c.NoSymmetryBreak = true }
}

// Mine finds all embeddings of p in the store's hypergraph using the
// overlap-centric engine (or the variant selected by options).
func Mine(store *Store, p *Pattern, opts ...Option) (Result, error) {
	return MineContext(context.Background(), store, p, opts...)
}

// MineContext is Mine with caller-controlled cancellation: when ctx is
// cancelled mid-run the engine's workers unwind cooperatively (one shared
// stop flag, one atomic load per candidate) and the call returns the
// partial Result accumulated so far together with ctx.Err(). A panic in a
// worker — e.g. inside a WithEmbeddings callback — is recovered and
// returned as an error instead of crashing the process.
func MineContext(ctx context.Context, store *Store, p *Pattern, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	return engine.MineContext(ctx, store, p, o)
}

// Crash-safe checkpoint/resume for long mining runs. A run configured with
// WithCheckpoint periodically quiesces its workers, captures the exact
// unexplored search frontier plus the partial counters, and hands the
// versioned, CRC-protected snapshot to the sink; cancellation (e.g.
// SIGTERM) also snapshots before returning. ResumeFromCheckpoint continues
// such a run with exactly-once counting: the resumed total equals the
// uninterrupted one. See docs/ROBUSTNESS.md.
type (
	// CheckpointSnapshot is the serializable state of an interrupted run.
	CheckpointSnapshot = checkpoint.Snapshot
	// CheckpointSink consumes snapshots as the engine produces them.
	CheckpointSink = checkpoint.Sink
)

// ErrCorruptCheckpoint tags snapshot files rejected as damaged (torn
// write, bit rot); match with errors.Is.
var ErrCorruptCheckpoint = checkpoint.ErrCorrupt

// NewCheckpointFileSink returns a sink persisting every snapshot to path,
// atomically replacing the previous one (temp file + rename), so a crash
// mid-checkpoint always leaves a loadable snapshot behind.
func NewCheckpointFileSink(path string) CheckpointSink {
	return &checkpoint.FileSink{Path: path}
}

// ReadCheckpoint loads a snapshot written by a checkpoint sink, verifying
// its checksum and structure.
func ReadCheckpoint(path string) (*CheckpointSnapshot, error) {
	return checkpoint.ReadFile(path)
}

// WithCheckpoint makes the run crash-safe: every `every` interval (and on
// cancellation or limit stops) the engine quiesces and writes a snapshot to
// the sink. Sink failures never abort mining — they are only counted in
// Stats.CheckpointErrors, and the previous snapshot stays intact. every ≤ 0
// snapshots only at final stops (a SIGTERM'd run still leaves a resumable
// snapshot).
func WithCheckpoint(sink CheckpointSink, every time.Duration) Option {
	return func(c *config) {
		c.Checkpoint = sink
		c.CheckpointEvery = every
	}
}

// ResumeFromCheckpoint continues the interrupted mining run captured in
// snap against the same store and pattern (verified via fingerprints; a
// snapshot from a different plan, matching order, or dataset is refused).
// The returned Result includes everything counted before the interruption:
// a resumed run that completes reports exactly the totals an uninterrupted
// run would have. Options must select the same variant/order the original
// run used; they may add a fresh WithCheckpoint sink to keep the resumed
// run crash-safe too.
func ResumeFromCheckpoint(ctx context.Context, store *Store, p *Pattern, snap *CheckpointSnapshot, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	return engine.ResumeFromCheckpoint(ctx, store, p, snap, o)
}

// MotifEntry is one row of a motif census.
type MotifEntry = motif.Entry

// MotifCensus enumerates every isomorphism class of k-hyperedge patterns
// (regions bounded by maxRegionSize, total vertices by maxVertices) and
// counts each one's occurrences — the motif-counting application layer.
func MotifCensus(store *Store, k, maxRegionSize, maxVertices int, opts ...Option) ([]MotifEntry, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return motif.Census(store, motif.Options{
		K: k, MaxRegionSize: maxRegionSize, MaxVertices: maxVertices,
		SkipAbsentDegrees: true, Engine: o,
	})
}

// FrequentMotifs filters a census to motifs with at least minUnique
// unordered occurrences.
func FrequentMotifs(entries []MotifEntry, minUnique uint64) []MotifEntry {
	return motif.Frequent(entries, minUnique)
}

// MotifSimilarity compares two censuses (same configuration) by cosine
// similarity of their frequency vectors.
func MotifSimilarity(a, b []MotifEntry) (float64, error) { return motif.Profile(a, b) }

// StreamMiner is the streaming subsystem: a batch log with windowed
// deletion, incremental derived-state maintenance, standing queries with
// per-batch delta events, and checkpoint/resume. See internal/stream and
// docs/STREAMING.md.
type StreamMiner = stream.Miner

// StreamConfig configures a StreamMiner.
type StreamConfig = stream.Config

// StreamBatch is one applied batch: hyperedge additions and retirements.
type StreamBatch = stream.Batch

// StreamBatchResult is what applying one batch produced.
type StreamBatchResult = stream.BatchResult

// StreamDelta is one standing query's per-batch delta event.
type StreamDelta = stream.Delta

// StreamQueryInfo describes one registered standing query.
type StreamQueryInfo = stream.QueryInfo

// StreamSnapshot is a decoded durable stream snapshot.
type StreamSnapshot = stream.Snapshot

// StreamSink receives durable stream snapshots (StreamConfig.Snapshot).
type StreamSink = stream.Sink

// StreamFileSink persists every stream snapshot atomically to Path.
type StreamFileSink = stream.FileSink

// NewStreamMiner opens a streaming miner over an empty hypergraph.
func NewStreamMiner(cfg StreamConfig) (*StreamMiner, error) { return stream.NewMiner(cfg) }

// LoadStreamMiner resumes a streaming miner from a snapshot file written by
// its snapshot sink; cumulative query counts continue exactly where the
// snapshot left them.
func LoadStreamMiner(path string, cfg StreamConfig) (*StreamMiner, error) {
	return stream.LoadFile(path, cfg)
}

// DynamicMiner maintains a hypergraph growing by hyperedge batches and
// answers incremental queries (embeddings created by the latest batch).
//
// Deprecated: DynamicMiner is the append-only predecessor of the streaming
// subsystem and is kept as a thin compatibility wrapper over StreamMiner.
// New code should use NewStreamMiner, which adds retirement windows,
// standing queries, push delivery, and checkpoint/resume.
type DynamicMiner struct {
	m       *StreamMiner
	lastNew int
}

// DynamicDelta is an incremental query result.
type DynamicDelta struct {
	// Ordered/Unique count the embeddings that include at least one
	// hyperedge of the latest batch.
	Ordered uint64
	Unique  uint64
	Elapsed time.Duration
}

// NewDynamicMiner starts an incremental mining session from an initial
// hypergraph.
func NewDynamicMiner(numVertices int, initial [][]uint32) (*DynamicMiner, error) {
	m, err := stream.NewMiner(stream.Config{NumVertices: numVertices})
	if err != nil {
		return nil, err
	}
	if _, err := m.ApplyBatch(stream.Batch{Add: initial}); err != nil {
		return nil, err
	}
	return &DynamicMiner{m: m}, nil
}

// ApplyBatch inserts new hyperedges; previously assigned hyperedge IDs stay
// stable and duplicates are absorbed.
func (d *DynamicMiner) ApplyBatch(batch [][]uint32) error {
	res, err := d.m.ApplyBatch(stream.Batch{Add: batch})
	if err != nil {
		return err
	}
	d.lastNew = res.Added
	return nil
}

// Hypergraph returns the current hypergraph.
func (d *DynamicMiner) Hypergraph() *Hypergraph { return d.m.Hypergraph() }

// Store returns the current degree-aware store.
func (d *DynamicMiner) Store() *Store { return d.m.Store() }

// Epoch returns the number of batches applied after the initial one.
func (d *DynamicMiner) Epoch() int { return int(d.m.Epoch()) - 1 }

// NumNewEdges returns the deduplicated size of the latest batch.
func (d *DynamicMiner) NumNewEdges() int { return d.lastNew }

// DeltaCount counts embeddings of p that use at least one hyperedge of the
// latest batch: total(after) = total(before) + delta.
func (d *DynamicMiner) DeltaCount(p *Pattern, opts ...Option) (DynamicDelta, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return DynamicDelta{}, err
	}
	d.m.SetEngineOptions(o)
	start := time.Now()
	sd, err := d.m.LatestDelta(p)
	if err != nil {
		return DynamicDelta{}, err
	}
	return DynamicDelta{Ordered: sd.Added, Unique: sd.AddedUnique, Elapsed: time.Since(start)}, nil
}

// TotalCount mines the full current hypergraph.
func (d *DynamicMiner) TotalCount(p *Pattern, opts ...Option) (Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return Result{}, err
	}
	d.m.SetEngineOptions(o)
	return d.m.TotalCount(p)
}

// CountEstimate is an approximate embedding count with its standard error.
type CountEstimate = engine.Estimate

// EstimateCount approximates the embedding count by exhaustively mining the
// subtrees of a uniform `fraction` sample of first-hyperedge candidates and
// scaling up — the sampling-based approximation direction (ASAP/Arya) from
// the paper's related work, implemented on the overlap-centric engine.
// fraction 1 yields the exact count. Deterministic in seed.
func EstimateCount(store *Store, p *Pattern, fraction float64, seed int64, opts ...Option) (CountEstimate, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return CountEstimate{}, err
	}
	return engine.EstimateCount(store, p, fraction, seed, o)
}
