module ohminer

go 1.22
