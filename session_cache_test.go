package ohminer

// Tests for the canonical plan cache and the result cache: isomorphic
// literals share one plan and one cached result, compilation is
// single-flight under concurrency, and only complete side-effect-free runs
// enter the result cache.

import (
	"context"
	"sync"
	"testing"
)

// TestSessionIsomorphicLiteralsShare: two different literals of the same
// pattern compile once, share the cached plan, and the second counting
// query is answered from the result cache.
func TestSessionIsomorphicLiteralsShare(t *testing.T) {
	s, p := sessionFixture(t)
	q, err := ParsePattern("10 11 12 13 14 15; 13 14 15 16 17 18; 13 14 15 16 17 19 20 21")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Mine(p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Mine(q, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Unique != r2.Unique || r1.Ordered != r2.Ordered {
		t.Fatalf("isomorphic literals disagree: %d/%d vs %d/%d", r1.Unique, r1.Ordered, r2.Unique, r2.Ordered)
	}
	if got := s.CachedPlans(); got != 1 {
		t.Errorf("cached plans %d, want 1 (isomorphic literals share)", got)
	}
	if hits, misses := s.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("plan cache hits/misses %d/%d, want 1/1", hits, misses)
	}
	if hits, misses := s.ResultCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("result cache hits/misses %d/%d, want 1/1 (second literal reuses the result)", hits, misses)
	}
	if got := s.CachedResults(); got != 1 {
		t.Errorf("cached results %d, want 1", got)
	}
}

// TestSessionResultCacheGating: queries with side effects or partial
// results never populate (or read) the result cache.
func TestSessionResultCacheGating(t *testing.T) {
	s, p := sessionFixture(t)

	// Limit, callback, and instrumented queries bypass the cache entirely.
	if _, err := s.Mine(p, WithWorkers(1), WithLimit(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine(p, WithWorkers(1), WithEmbeddings(func([]uint32) {})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine(p, WithWorkers(1), WithInstrumentation()); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.ResultCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("side-effecting queries touched the result cache: hits/misses %d/%d", hits, misses)
	}
	if got := s.CachedResults(); got != 0 {
		t.Errorf("cached results %d after non-cacheable queries, want 0", got)
	}

	// A cancelled run errors and must not be stored.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.MineContext(ctx, p, WithWorkers(1)); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if got := s.CachedResults(); got != 0 {
		t.Errorf("cancelled run was cached (%d results)", got)
	}

	// A clean run is stored; repeating it hits.
	want, err := s.Mine(p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Mine(p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Unique != want.Unique || got.Ordered != want.Ordered {
		t.Errorf("cached result %d/%d differs from computed %d/%d", got.Unique, got.Ordered, want.Unique, want.Ordered)
	}
	if hits, _ := s.ResultCacheStats(); hits != 1 {
		t.Errorf("repeat query did not hit the result cache (hits=%d)", hits)
	}
}

// TestSessionResultCacheCapacity: the LRU evicts, and capacity 0 disables
// and drops everything held.
func TestSessionResultCacheCapacity(t *testing.T) {
	s, p := sessionFixture(t)
	p2, err := ParsePattern("0 1 2 3 4 5; 3 4 5 6 7 8")
	if err != nil {
		t.Fatal(err)
	}
	s.SetResultCacheCapacity(1)
	if _, err := s.Mine(p, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine(p2, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.CachedResults(); got != 1 {
		t.Fatalf("cached results %d with capacity 1, want 1", got)
	}
	// p was evicted by p2: repeating it misses and re-runs.
	if _, err := s.Mine(p, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.ResultCacheStats(); hits != 0 || misses != 3 {
		t.Errorf("hits/misses %d/%d, want 0/3 (capacity-1 thrash)", hits, misses)
	}
	s.SetResultCacheCapacity(0)
	if got := s.CachedResults(); got != 0 {
		t.Errorf("capacity 0 kept %d results", got)
	}
	if _, err := s.Mine(p, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.CachedResults(); got != 0 {
		t.Errorf("disabled cache stored a result")
	}
}

// TestSessionSingleflightCompile: many goroutines racing on one fresh
// pattern compile it exactly once (run under -race in CI).
func TestSessionSingleflightCompile(t *testing.T) {
	s, p := sessionFixture(t)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.Mine(p, WithWorkers(1)); err != nil {
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.CachedPlans(); got != 1 {
		t.Errorf("cached plans %d, want 1", got)
	}
	hits, misses := s.CacheStats()
	if misses != 1 {
		t.Errorf("misses %d, want 1 (single-flight compile)", misses)
	}
	if hits+misses != goroutines {
		t.Errorf("hits+misses %d+%d, want %d", hits, misses, goroutines)
	}
}

// TestSessionSetStoreInvalidatesResults: cached results are keyed by
// dataset fingerprint, so swapping the session onto a new store version
// stops serving counts mined from the old content — the stale-cache bug a
// streaming deployment would otherwise hit every compaction. Swapping back
// to byte-identical content hits again, and the plan cache survives every
// swap.
func TestSessionSetStoreInvalidatesResults(t *testing.T) {
	s, p := sessionFixture(t)
	// Without the third edge the fixture pattern has no match at all, so the
	// two datasets provably disagree on the count.
	edges := [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
	}
	hSmall, err := BuildHypergraph(15, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	hSame, err := BuildHypergraph(15, edges, nil)
	if err != nil {
		t.Fatal(err)
	}

	r1, err := s.Mine(p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine(p, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.ResultCacheStats(); hits != 1 {
		t.Fatalf("warmup hits %d, want 1", hits)
	}
	fpBig := s.DatasetFingerprint()

	// Different content: the cached result must not answer.
	s.SetStore(NewStore(hSmall))
	if s.DatasetFingerprint() == fpBig {
		t.Fatal("fingerprint unchanged across different content")
	}
	r2, err := s.Mine(p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.ResultCacheStats(); hits != 1 {
		t.Fatalf("stale result served after SetStore (hits %d)", hits)
	}
	if r2.Ordered == r1.Ordered {
		t.Fatalf("counts identical across datasets (%d) — fixture needs different content", r2.Ordered)
	}
	plansBefore := s.CachedPlans()
	if plansBefore == 0 {
		t.Fatal("plan cache emptied by SetStore")
	}

	// Byte-identical content under a different build: same fingerprint,
	// cache hit, no engine run.
	s.SetStore(NewStore(hSame))
	if s.DatasetFingerprint() == fpBig {
		t.Fatal("distinct datasets share a fingerprint")
	}
	r3, err := s.Mine(p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.ResultCacheStats(); hits != 2 {
		t.Fatalf("identical content missed the cache (hits %d)", hits)
	}
	if r3.Ordered != r2.Ordered {
		t.Fatalf("identical content, different counts: %d vs %d", r3.Ordered, r2.Ordered)
	}
	if s.CachedPlans() != plansBefore {
		t.Fatalf("plan cache changed across identical-content swap")
	}
}
