package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags mixed atomic and plain access to the same field: once any
// code touches a field through sync/atomic's pointer functions, every other
// access must be atomic too — a plain read can observe a torn or stale
// value, and a plain write races the CAS/add path. Fields of the typed
// atomic.* wrappers are immune by construction and never reported; the fix
// for a finding is usually to migrate the field to one of them.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag non-atomic access to a field that is accessed via sync/atomic elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return // field identity needs types
	}

	// Pass 1: find every field reached through an atomic pointer function
	// (atomic.AddUint64(&x.f, 1), atomic.LoadInt64(&x.f), ...). The selector
	// nodes inside those calls are the sanctioned accesses.
	atomicAt := map[types.Object]token.Position{} // field → first atomic site
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPtrCall(pkg, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if fieldVar, isVar := obj.(*types.Var); !isVar || !fieldVar.IsField() {
				return true
			}
			sanctioned[sel] = true
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = pkg.Fset.Position(sel.Pos())
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: any other selector resolving to a marked field is a plain
	// access racing the atomic path.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			first, marked := atomicAt[obj]
			if !marked {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is accessed via sync/atomic at %s:%d but non-atomically here; every access must be atomic (or migrate to a typed atomic)",
				sel.Sel.Name, shortPath(first.Filename), first.Line)
			return true
		})
	}
}

// isAtomicPtrCall matches the sync/atomic package-level functions that take
// a pointer to a plain integer/pointer field.
func isAtomicPtrCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Load"),
		strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"), strings.HasPrefix(name, "And"),
		strings.HasPrefix(name, "Or"):
	default:
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	return isPkg && pn.Imported().Path() == "sync/atomic"
}

// shortPath trims the filename to its last two path segments for compact
// cross-references inside diagnostics.
func shortPath(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
