package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NoPanicLib forces library packages (everything outside cmd/ and
// examples/) to report failures as errors. panic is allowed only for
//
//   - Must* wrappers (MustCompile, MustBuild, ... — documented
//     test/example conveniences),
//   - init functions (a broken package-level invariant cannot be
//     reported any other way),
//   - invariant-violation assertions carrying a constant string message
//     ("unreachable by construction" sites; dynamic arguments mean the
//     failure depends on input and belongs in an error return).
var NoPanicLib = &Analyzer{
	Name: "no-panic-lib",
	Doc:  "flag panic in library packages outside Must* helpers, init, and constant-message assertions",
	Run:  runNoPanicLib,
}

func runNoPanicLib(pass *Pass) {
	path := pass.Pkg.Path
	if strings.Contains(path, "/cmd/") || strings.Contains(path, "/examples/") ||
		strings.HasPrefix(path, "cmd/") || strings.HasPrefix(path, "examples/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "init" || strings.HasPrefix(fn.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isBuiltinCall(pass.Pkg, call, "panic") {
					return true
				}
				if len(call.Args) == 1 {
					if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
						return true // constant-message invariant assertion
					}
				}
				pass.Reportf(call.Pos(), "panic with a dynamic value in library function %s; return an error (or add a Must* wrapper)", funcDisplayName(fn))
				return true
			})
		}
	}
}
