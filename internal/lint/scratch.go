package lint

import (
	"go/ast"
	"go/types"
)

// ScratchEscape guards the worker-ownership model: a struct marked
// //ohmlint:scratch owns its slice- and map-typed fields as per-goroutine
// scratch, and those buffers (or any reslice/element of them) must never
// leave the owner. Inside the owner's methods it flags scratch being
//
//   - returned from an *exported* method (unexported returns are internal
//     hand-offs within the same ownership domain),
//   - assigned through a pointer to another struct (w.e.buf = w.tmp, or
//     x.f = w.tmp),
//   - sent on a channel,
//   - passed to a function value stored in a field when the call's result
//     is discarded (a side-effect callback such as OnEmbedding can retain
//     the slice after the worker reuses it; value-returning calls like the
//     kernel dispatch table borrow the buffer and hand it straight back),
//   - captured by a go or defer statement's call arguments.
//
// Passing scratch to ordinary functions and methods is allowed: kernels
// like intset.Intersect borrow buffers and hand them straight back.
var ScratchEscape = &Analyzer{
	Name: "scratch-escape",
	Doc:  "flag worker scratch buffers escaping their owning struct",
	Run:  runScratchEscape,
}

func runScratchEscape(pass *Pass) {
	pkg := pass.Pkg
	// Scratch struct name → set of scratch field names.
	scratch := map[string]map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if !hasDirective(gen.Doc, "scratch") && !hasDirective(ts.Doc, "scratch") {
					continue
				}
				fields := map[string]bool{}
				for _, fld := range st.Fields.List {
					if !isBufferFieldType(fld.Type) {
						continue
					}
					for _, name := range fld.Names {
						fields[name.Name] = true
					}
				}
				scratch[ts.Name.Name] = fields
			}
		}
	}
	if len(scratch) == 0 {
		return
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fields, ok := scratch[recvTypeName(fn)]
			if !ok {
				continue
			}
			checkScratchFunc(pass, fn, fields)
		}
	}
}

// isBufferFieldType matches field types whose values share backing store:
// slices (any depth) and maps.
func isBufferFieldType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.ArrayType:
		return t.Len == nil
	case *ast.MapType:
		return true
	}
	return false
}

func checkScratchFunc(pass *Pass, fn *ast.FuncDecl, fields map[string]bool) {
	pkg := pass.Pkg
	recv := recvIdentName(fn)
	if recv == "" {
		return
	}

	// isScratch strips index/slice wrappers: w.cand, w.cand[t], and
	// w.nm[:k] all alias the owned backing array.
	var isScratch func(e ast.Expr) bool
	isScratch = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return isScratch(e.X)
		case *ast.SliceExpr:
			return isScratch(e.X)
		case *ast.SelectorExpr:
			id, ok := e.X.(*ast.Ident)
			return ok && id.Name == recv && fields[e.Sel.Name]
		}
		return false
	}
	// containsScratch finds scratch anywhere in an expression tree
	// (e.g. a struct literal wrapping a scratch slice).
	containsScratch := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if expr, ok := n.(ast.Expr); ok && isScratch(expr) {
				found = true
			}
			return !found
		})
		return found
	}
	// ownedLhs reports whether an assignment target keeps the value
	// inside the owner: a plain local, or recv.field (optionally
	// indexed/resliced) — but not a deeper selector chain through recv
	// (w.e.buf leaves the worker) and not a selector on anything else.
	var ownedLhs func(e ast.Expr) bool
	ownedLhs = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return true
		case *ast.IndexExpr:
			return ownedLhs(e.X)
		case *ast.SliceExpr:
			return ownedLhs(e.X)
		case *ast.SelectorExpr:
			id, ok := e.X.(*ast.Ident)
			return ok && id.Name == recv
		}
		return false
	}

	// Calls whose result is discarded: only these count as side-effect
	// callbacks for the stored-callback rule below.
	discarded := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				discarded[call] = true
			}
		}
		return true
	})

	exported := fn.Name.IsExported()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, r := range n.Results {
				if containsScratch(r) {
					pass.Reportf(r.Pos(), "scratch buffer returned from exported method %s; callers may retain it across reuse — return a copy", funcDisplayName(fn))
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !containsScratch(rhs) {
					continue
				}
				lhs := n.Lhs[0]
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				if !ownedLhs(lhs) {
					pass.Reportf(rhs.Pos(), "scratch buffer stored outside its owning struct (into %s); the worker reuses the backing array", exprString(pkg.Fset, lhs))
				}
			}
		case *ast.SendStmt:
			if containsScratch(n.Value) {
				pass.Reportf(n.Value.Pos(), "scratch buffer sent on a channel; the receiver races with buffer reuse — send a copy")
			}
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				if containsScratch(a) {
					pass.Reportf(a.Pos(), "scratch buffer passed to a goroutine; it races with buffer reuse — pass a copy")
				}
			}
		case *ast.DeferStmt:
			for _, a := range n.Call.Args {
				if containsScratch(a) {
					pass.Reportf(a.Pos(), "scratch buffer captured by defer; it may be observed after reuse — capture a copy")
				}
			}
		case *ast.CallExpr:
			if !discarded[n] || !isStoredCallback(pkg, n) {
				return true
			}
			for _, a := range n.Args {
				if containsScratch(a) {
					pass.Reportf(a.Pos(), "scratch buffer passed to a stored callback; the callee may retain it across reuse — document copy-to-retain or pass a copy")
				}
			}
		}
		return true
	})
}

// isStoredCallback reports whether the call invokes a function value held
// in a struct field (w.e.opts.OnEmbedding(...)) rather than a method or
// package function. With type info the selector must resolve to a
// variable; syntactically a selector chain of depth ≥ 2 is assumed to be
// a stored callback.
func isStoredCallback(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg.Info != nil {
		obj := pkg.Info.Uses[sel.Sel]
		_, isVar := obj.(*types.Var)
		return isVar
	}
	_, chained := sel.X.(*ast.SelectorExpr)
	return chained
}
