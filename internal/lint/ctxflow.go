package lint

import (
	"go/ast"
	"strings"
)

// CtxFlow enforces context threading on request paths: a function that
// already receives a context.Context (or an *http.Request, which carries
// one) must not mint a fresh root with context.Background()/context.TODO()
// — doing so silently detaches everything downstream from the caller's
// deadline and cancellation, which is exactly the bug class the engine's
// cooperative-stop design exists to prevent. Entry-point functions without
// a context parameter (cmd main loops, New constructors, compatibility
// wrappers like Mine) are where roots belong and are not flagged. A named
// context parameter that the body never uses is flagged too: it advertises
// cancellation the function does not deliver.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() in functions that already receive a context, and unused context parameters",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	path := pass.Pkg.Path
	if strings.Contains(path, "/cmd/") || strings.Contains(path, "/examples/") ||
		strings.HasPrefix(path, "cmd/") || strings.HasPrefix(path, "examples/") {
		return // entry layer: roots are created here by design
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFlow(pass, fn)
		}
	}
}

func checkCtxFlow(pass *Pass, fn *ast.FuncDecl) {
	var ctxParams []*ast.Ident // named context.Context parameters
	hasCtx, hasReq := false, false
	for _, p := range fn.Type.Params.List {
		switch typeText(pass.Pkg, p.Type) {
		case "context.Context":
			hasCtx = true
			for _, name := range p.Names {
				if name.Name != "_" {
					ctxParams = append(ctxParams, name)
				}
			}
		case "*http.Request":
			hasReq = true
		}
	}
	if !hasCtx && !hasReq {
		return
	}

	used := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, root := range []string{"Background", "TODO"} {
				if isPkgCall(pass.Pkg, call, "context", root) {
					if hasCtx {
						pass.Reportf(call.Pos(), "%s already receives a context.Context; thread it instead of calling context.%s", funcDisplayName(fn), root)
					} else {
						pass.Reportf(call.Pos(), "%s receives an *http.Request; use its Context() instead of calling context.%s", funcDisplayName(fn), root)
					}
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	for _, p := range ctxParams {
		if !used[p.Name] {
			pass.Reportf(p.Pos(), "context parameter %s of %s is never used; the function advertises cancellation it does not deliver", p.Name, funcDisplayName(fn))
		}
	}
}

// typeText renders a parameter type for shape matching ("context.Context",
// "*http.Request") — syntactic, so it works without type information.
func typeText(pkg *Package, e ast.Expr) string {
	return exprString(pkg.Fset, e)
}
