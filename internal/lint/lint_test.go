package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// runGolden analyzes testdata/src/<name> with the analyzer and compares
// the diagnostics against testdata/src/<name>/expect.golden.
func runGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("testdata package %s must type-check, got: %v", name, pkg.TypeError)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message)
	}
	got := b.String()

	goldenPath := filepath.Join(dir, "expect.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
	// Every golden file must demonstrate at least one caught violation;
	// an empty golden means the analyzer silently stopped finding its
	// target class.
	if strings.TrimSpace(got) == "" {
		t.Errorf("%s: golden run produced no diagnostics — analyzer finds nothing", name)
	}
}

func TestGoldenHotPathAlloc(t *testing.T)    { runGolden(t, HotPathAlloc, "hotpath") }
func TestGoldenScratchEscape(t *testing.T)   { runGolden(t, ScratchEscape, "scratch") }
func TestGoldenStampDiscipline(t *testing.T) { runGolden(t, StampDiscipline, "stamp") }
func TestGoldenNoPanicLib(t *testing.T)      { runGolden(t, NoPanicLib, "nopanic") }
func TestGoldenGuardedBy(t *testing.T)       { runGolden(t, GuardedBy, "guardedby") }
func TestGoldenAtomicMix(t *testing.T)       { runGolden(t, AtomicMix, "atomicmix") }
func TestGoldenCtxFlow(t *testing.T)         { runGolden(t, CtxFlow, "ctxflow") }
func TestGoldenGoroutineStop(t *testing.T)   { runGolden(t, GoroutineStop, "goroutinestop") }

func TestAllowedNames(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//ohmlint:allow hotpath-alloc", []string{"hotpath-alloc"}},
		{"//ohmlint:allow a, b -- because", []string{"a", "b"}},
		{"//ohmlint:allow all -- everything here is fine", []string{"all"}},
		{"// regular comment", nil},
		{"//ohmlint:hotpath", nil},
	}
	for _, c := range cases {
		got := allowedNames(c.text)
		if len(got) != len(c.want) {
			t.Errorf("allowedNames(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("allowedNames(%q) = %v, want %v", c.text, got, c.want)
			}
		}
	}
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"//ohmlint:allow hotpath-alloc", []string{"hotpath-alloc"}, "", true},
		{"//ohmlint:allow a, b -- shared buffer, single writer", []string{"a", "b"}, "shared buffer, single writer", true},
		{"//lint:ignore ctxflow fire-and-forget by design", []string{"ctxflow"}, "fire-and-forget by design", true},
		{"//lint:ignore guardedby,atomicmix init is single-threaded", []string{"guardedby", "atomicmix"}, "init is single-threaded", true},
		{"//lint:ignore ctxflow", []string{"ctxflow"}, "", true},
		{"// regular comment", nil, "", false},
		{"//nolint:something", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := parseSuppression(c.text)
		if ok != c.ok || reason != c.reason || len(names) != len(c.names) {
			t.Errorf("parseSuppression(%q) = (%v, %q, %v), want (%v, %q, %v)",
				c.text, names, reason, ok, c.names, c.reason, c.ok)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseSuppression(%q) names = %v, want %v", c.text, names, c.names)
			}
		}
	}
}

func TestNoPanicLibSkipsCommands(t *testing.T) {
	// The analyzer exempts cmd/ and examples/ packages by import path;
	// build a fake package from the nopanic fixture under a cmd path.
	pkg, err := LoadDir(filepath.Join("testdata", "src", "nopanic"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"ohminer/cmd/ohmtool", "cmd/tool", "ohminer/examples/quickstart"} {
		pkg.Path = path
		diags := Run([]*Package{pkg}, []*Analyzer{NoPanicLib})
		if len(diags) != 0 {
			t.Errorf("no-panic-lib reported %d findings for command package %s", len(diags), path)
		}
	}
}

// TestTreeIsClean runs the full suite over this repository: the shipped
// tree must stay violation-free, exactly like `make lint`.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	moduleDir := filepath.Join("..", "..")
	var dirs []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if base != filepath.Base(moduleDir) && (strings.HasPrefix(base, ".") || base == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var uniq []string
	for _, d := range dirs {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	pkgs, err := Load(moduleDir, uniq)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
