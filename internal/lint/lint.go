// Package lint is OHMiner's project-specific static-analysis framework:
// a small analyzer harness over go/parser + go/ast + go/types (stdlib
// only, preserving the repo's zero-dependency invariant) plus eight
// analyzers that encode the engine's unwritten contracts. The seed-era
// four guard the mining inner loop — the hot path allocates nothing,
// worker scratch never escapes, stamp arrays are advanced with wraparound
// handling, and library packages return errors instead of panicking. The
// concurrency-discipline four guard the distributed system layered on top
// — annotated fields are only touched with their mutex held (guardedby),
// atomics are never mixed with plain access (atomicmix), request paths
// thread their context instead of minting fresh roots (ctxflow), and
// every library goroutine is tied to a visible stop signal
// (goroutinestop). See docs/LINTING.md for the invariant behind each
// analyzer and the suppression syntax.
//
// The framework is deliberately package-local: every analyzer sees one
// parsed, type-checked package at a time and reports diagnostics through
// its Pass. Cross-package reachability is expressed with source
// directives (//ohmlint:hotpath, //ohmlint:scratch) instead of a global
// call graph, which keeps the analysis fast, predictable, and easy to
// suppress at the exact site that needs it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ohmlint:allow comments.
	Name string
	// Doc is a one-line description shown by `ohmlint -list`.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass carries one (package, analyzer) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the site carries an
// //ohmlint:allow suppression for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the project's analyzer suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc, ScratchEscape, StampDiscipline, NoPanicLib,
		GuardedBy, AtomicMix, CtxFlow, GoroutineStop,
	}
}

// ByName returns the named analyzer.
func ByName(name string) (*Analyzer, error) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q", name)
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by file position, with repeats at the same position
// removed — an analyzer re-reporting an identical finding, or two
// analyzers flagging the same message at the same site, produce one line —
// so `make lint` output is deterministic and diffable.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if n := len(out); n > 0 {
			prev := out[n-1]
			samePos := prev.Pos.Filename == d.Pos.Filename && prev.Pos.Line == d.Pos.Line && prev.Pos.Column == d.Pos.Column
			if samePos && prev.Message == d.Message {
				continue // duplicate finding (same or different analyzer)
			}
		}
		out = append(out, d)
	}
	return out
}

// Directive comments.
//
//	//ohmlint:hotpath               — on a func: root of the allocation-free hot path
//	//ohmlint:scratch               — on a struct type: slice/map fields are worker-owned scratch
//	//ohmlint:allow <names> -- why  — on or above a line: suppress the named analyzers there
//	//lint:ignore <names> <reason>  — same suppression, staticcheck-style spelling
const (
	directivePrefix = "//ohmlint:"
	allowDirective  = "//ohmlint:allow"
	ignoreDirective = "//lint:ignore"
)

// hasDirective reports whether the comment group carries the directive
// (e.g. "hotpath"), ignoring any trailing argument text.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := directivePrefix + name
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") || strings.HasPrefix(c.Text, want+"\t") {
			return true
		}
	}
	return false
}

// allowedNames parses an //ohmlint:allow comment into analyzer names.
// Everything after " -- " is a free-form justification.
func allowedNames(text string) []string {
	rest := strings.TrimPrefix(text, allowDirective)
	if rest == text { // not an allow comment
		return nil
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	return fields
}

// parseSuppression recognizes both suppression spellings and returns the
// suppressed analyzer names plus the reason text (empty when the author
// omitted one — `ohmlint -suppressions` flags that). ok is false for
// non-suppression comments.
func parseSuppression(text string) (names []string, reason string, ok bool) {
	if rest := strings.TrimPrefix(text, allowDirective); rest != text {
		if i := strings.Index(rest, "--"); i >= 0 {
			reason = strings.TrimSpace(rest[i+2:])
			rest = rest[:i]
		}
		names = strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		return names, reason, true
	}
	if rest := strings.TrimPrefix(text, ignoreDirective); rest != text {
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, "", true // malformed: no analyzer names
		}
		names = strings.FieldsFunc(fields[0], func(r rune) bool { return r == ',' })
		reason = strings.TrimSpace(strings.Join(fields[1:], " "))
		return names, reason, true
	}
	return nil, "", false
}
