package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the engine's "allocates nothing after
// construction" contract: inside any function reachable (within its
// package) from a function marked //ohmlint:hotpath, it flags
//
//   - make/new calls,
//   - slice, map, and pointer-producing composite literals,
//   - closure literals (each evaluation allocates),
//   - sort.Slice / sort.SliceStable (closure plus interface header),
//   - append calls that can grow a fresh backing array: an append is
//     allowed only when its base is an explicit length-zero reslice
//     (buf[:0], the scratch-reuse idiom) or when its result is assigned
//     back to the exact expression it appends to (amortized growth of a
//     persistent scratch buffer),
//   - adaptive-container construction: intset.BuildSet / intset.NewBitmap
//     calls and Set.Add / Bitmap mutation-by-construction — hot code must
//     receive prebuilt containers (the DAL's window arenas) or wrap
//     existing storage with the zero-copy ArrayView/View constructors.
//
// Construction-time allocation (newWorker and friends) is fine: those
// functions are not reachable from the marked roots.
var HotPathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "flag heap allocations in functions reachable from //ohmlint:hotpath roots",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	pkg := pass.Pkg
	var roots []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && hasDirective(fn.Doc, "hotpath") {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	graph := callGraph(pkg)

	// BFS from the roots, remembering one representative root per
	// reachable function for the diagnostic text.
	via := map[*ast.FuncDecl]*ast.FuncDecl{}
	queue := make([]*ast.FuncDecl, 0, len(roots))
	for _, r := range roots {
		via[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range graph[fn] {
			if _, ok := via[callee]; !ok {
				via[callee] = via[fn]
				queue = append(queue, callee)
			}
		}
	}

	for fn, root := range via {
		checkHotFunc(pass, fn, root)
	}
}

func checkHotFunc(pass *Pass, fn, root *ast.FuncDecl) {
	pkg := pass.Pkg
	where := funcDisplayName(fn)
	if fn != root {
		where += " (reachable from " + funcDisplayName(root) + ")"
	}

	// Appends whose result is assigned back to their own base expression
	// are amortized scratch growth; collect them first so the expression
	// walk below can skip them.
	allowedAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinCall(pkg, call, "append") || len(call.Args) == 0 {
				continue
			}
			if exprString(pkg.Fset, assign.Lhs[i]) == exprString(pkg.Fset, call.Args[0]) {
				allowedAppend[call] = true
			}
		}
		return true
	})

	// Closures passed to sort.Slice are reported through the sort.Slice
	// diagnostic alone.
	sortClosure := map[ast.Node]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(pkg, n, "make"):
				pass.Reportf(n.Pos(), "make in hot path %s", where)
			case isBuiltinCall(pkg, n, "new"):
				pass.Reportf(n.Pos(), "new in hot path %s", where)
			case isBuiltinCall(pkg, n, "append"):
				if !allowedAppend[n] && !isResetReslice(n.Args[0]) {
					pass.Reportf(n.Pos(), "append may grow a fresh backing array in hot path %s (append to buf[:0] or assign the result back to the same buffer)", where)
				}
			case isPkgCall(pkg, n, "sort", "Slice"), isPkgCall(pkg, n, "sort", "SliceStable"):
				pass.Reportf(n.Pos(), "sort.Slice allocates (closure + interface header) in hot path %s; sort a concrete slice with slices.Sort or an in-place insertion sort", where)
				for _, a := range n.Args {
					if fl, ok := a.(*ast.FuncLit); ok {
						sortClosure[fl] = true
					}
				}
			case isContainerBuild(pkg, n):
				pass.Reportf(n.Pos(), "adaptive-container construction allocates in hot path %s; build containers once (DAL window arenas) and pass zero-copy views (intset.ArrayView/View)", where)
			}
		case *ast.FuncLit:
			if !sortClosure[n] {
				pass.Reportf(n.Pos(), "closure literal allocates in hot path %s", where)
			}
		case *ast.CompositeLit:
			if isAllocLitType(pkg, n) {
				pass.Reportf(n.Pos(), "composite literal allocates in hot path %s", where)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal escapes in hot path %s", where)
				}
			}
		}
		return true
	})
}

// isBuiltinCall reports whether call invokes the named builtin. With type
// info, the ident must resolve to the universe scope; without it, a bare
// matching ident is assumed to be the builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if pkg.Info != nil {
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return false
		}
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}

// isContainerBuild reports whether call constructs or grows an adaptive
// set container: the allocating intset constructors (BuildSet copies and
// plans a window; NewBitmap allocates a word array) called through the
// intset package or by name in intset itself, and the sorted-insert
// Set.Add / window-rebuilding mutators, identified by method name on a
// receiver whose named type is Set or Bitmap. The zero-copy wrappers
// (ArrayView, View) are deliberately not flagged — they are the idiom hot
// code should use.
func isContainerBuild(pkg *Package, call *ast.CallExpr) bool {
	if isPkgCall(pkg, call, "intset", "BuildSet") || isPkgCall(pkg, call, "intset", "NewBitmap") {
		return true
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Unqualified call inside the defining package (or a test double).
		if fun.Name != "BuildSet" && fun.Name != "NewBitmap" {
			return false
		}
		if pkg.Info != nil {
			_, isFunc := pkg.Info.Uses[fun].(*types.Func)
			return isFunc
		}
		return true
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Add" {
			return false
		}
		return receiverTypeNameIs(pkg, fun, "Set", "Bitmap")
	}
	return false
}

// receiverTypeNameIs reports whether sel is a method selection whose
// receiver's named type (after stripping one pointer level) matches one of
// names. Without type info it conservatively reports false.
func receiverTypeNameIs(pkg *Package, sel *ast.SelectorExpr, names ...string) bool {
	if pkg.Info == nil {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

// isPkgCall reports whether call is pkgName.funcName on an imported
// package (not a field or method of a local value named pkgName).
func isPkgCall(pkg *Package, call *ast.CallExpr, pkgName, funcName string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return false
	}
	if pkg.Info != nil {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); !isPkg {
			return false
		}
	}
	return true
}

// isResetReslice matches buf[:0] (and buf[0:0]) — the reuse idiom whose
// append cannot allocate until the scratch capacity is exceeded, which
// amortizes to zero.
func isResetReslice(e ast.Expr) bool {
	s, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || s.Slice3 {
		return false
	}
	isZero := func(x ast.Expr) bool {
		lit, ok := ast.Unparen(x).(*ast.BasicLit)
		return ok && lit.Kind == token.INT && lit.Value == "0"
	}
	if s.High == nil || !isZero(s.High) {
		return false
	}
	return s.Low == nil || isZero(s.Low)
}

// isAllocLitType reports whether a composite literal builds a slice or
// map (the literal kinds that heap-allocate per evaluation). Struct and
// array literals are value-typed and stay on the stack unless their
// address escapes, which the &T{...} case catches separately.
func isAllocLitType(pkg *Package, lit *ast.CompositeLit) bool {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[lit]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				return true
			}
			return false
		}
	}
	switch t := lit.Type.(type) {
	case *ast.MapType:
		return true
	case *ast.ArrayType:
		return t.Len == nil // slice literal; fixed arrays are values
	}
	return false
}
