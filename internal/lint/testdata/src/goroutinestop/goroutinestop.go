// Package goroutinestop exercises the goroutinestop analyzer: every
// goroutine launched in library code must be tied to a stop signal —
// a context, a channel, or a WaitGroup — visible in scope.
package goroutinestop

import (
	"context"
	"sync"
)

type svc struct {
	done chan struct{}
	wg   sync.WaitGroup
}

// startCtx ties the goroutine to the caller's context: legal.
func (s *svc) startCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// startDone polls a done channel: legal.
func (s *svc) startDone() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			default:
			}
		}
	}()
}

// startWG signals completion through a WaitGroup: legal.
func (s *svc) startWG() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// leak spins forever with nothing to stop it.
func (s *svc) leak() {
	go func() {
		for {
			work()
		}
	}()
}

// named launches a same-package method whose body blocks on done: legal.
func (s *svc) named() {
	go s.loop()
}

func (s *svc) loop() {
	<-s.done
}

// leakNamed launches a same-package function with no stop signal.
func (s *svc) leakNamed() {
	go spin()
}

func spin() {
	for {
		work()
	}
}

// suppressed demonstrates the //lint:ignore directive.
func (s *svc) suppressed() {
	//lint:ignore goroutinestop lives exactly as long as the process, by design
	go func() {
		for {
			work()
		}
	}()
}

func work() {}
