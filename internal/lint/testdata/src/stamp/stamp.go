// Package stamp exercises the stamp-discipline analyzer over the paired
// xMark/xStamp idiom.
package stamp

type miner struct {
	edgeMark  []uint32
	edgeStamp uint32
	vertMark  []uint32
	vertStamp uint32
}

// good advances the stamp with the wraparound guard before touching the
// mark array: clean.
func (m *miner) good() {
	m.edgeStamp++
	if m.edgeStamp == 0 {
		clear(m.edgeMark)
		m.edgeStamp = 1
	}
	m.edgeMark[0] = m.edgeStamp
}

// stale reads marks without advancing the stamp: flagged.
func (m *miner) stale() bool {
	return m.edgeMark[0] == m.edgeStamp
}

// unguarded increments without the wraparound guard: flagged.
func (m *miner) unguarded() {
	m.vertStamp++
	m.vertMark[3] = m.vertStamp
}

// viaHelper advances through a named helper: clean.
func (m *miner) viaHelper() {
	m.bumpVertStamp()
	m.vertMark[1] = m.vertStamp
}

// bumpVertStamp clears with a loop instead of the clear builtin: clean.
func (m *miner) bumpVertStamp() {
	m.vertStamp++
	if m.vertStamp == 0 {
		for i := range m.vertMark {
			m.vertMark[i] = 0
		}
		m.vertStamp = 1
	}
}
