// Package ctxflow exercises the ctxflow analyzer: a function that already
// receives a context must thread it instead of minting a fresh root, and a
// context parameter must actually be used.
package ctxflow

import "context"

// threaded derives from the caller's context: legal.
func threaded(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return sub.Err()
}

// detached drops the caller's deadline on the floor.
func detached(ctx context.Context) error {
	c := context.Background()
	_ = ctx
	return c.Err()
}

// todo hides the same detachment behind TODO.
func todo(ctx context.Context) error {
	_ = ctx
	return context.TODO().Err()
}

// unused advertises cancellation it never delivers.
func unused(ctx context.Context) int {
	return 1
}

// entry has no context parameter — this is where roots belong: legal.
func entry() context.Context {
	return context.Background()
}

// suppressed demonstrates the //lint:ignore directive.
func suppressed(ctx context.Context) context.Context {
	_ = ctx
	//lint:ignore ctxflow fire-and-forget audit write must outlive the request
	return context.Background()
}
