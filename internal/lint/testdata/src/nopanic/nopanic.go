// Package nopanic exercises the no-panic-lib analyzer.
package nopanic

import (
	"errors"
	"fmt"
)

// ErrBad is a sentinel for the tests.
var ErrBad = errors.New("bad")

// MustThing may panic: Must* wrappers are the documented convenience.
func MustThing(ok bool) int {
	if !ok {
		panic(ErrBad)
	}
	return 1
}

func init() {
	if false {
		panic(ErrBad) // init may panic: no other reporting channel
	}
}

// invariant panics with a constant message: an unreachable-by-construction
// assertion, allowed.
func invariant(x int) {
	if x < 0 {
		panic("nopanic: negative x")
	}
}

// bad panics with a dynamic error: flagged.
func bad(err error) {
	panic(err)
}

// badFmt panics with formatted (input-dependent) text: flagged.
func badFmt(x int) {
	panic(fmt.Sprintf("x=%d", x))
}

// suppressed demonstrates the escape hatch.
func suppressed(err error) {
	//ohmlint:allow no-panic-lib -- deliberate crash in a test fixture
	panic(err)
}
