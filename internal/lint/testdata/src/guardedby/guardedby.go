// Package guardedby exercises the guardedby analyzer: fields annotated
// `guarded by <mu>` may only be accessed while that mutex is held.
package guardedby

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	count int            // guarded by mu

	bad int // guarded by missing
}

// get holds the lock via defer: legal.
func (r *registry) get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[k]
}

// put brackets the accesses inline: legal.
func (r *registry) put(k string, v int) {
	r.mu.Lock()
	r.items[k] = v
	r.count++
	r.mu.Unlock()
}

// take unlocks early on the miss branch; the main path stays locked: legal.
func (r *registry) take(k string) (int, bool) {
	r.mu.Lock()
	v, ok := r.items[k]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	delete(r.items, k)
	r.mu.Unlock()
	return v, true
}

// sizeLocked follows the *Locked convention — the caller holds mu: exempt.
func (r *registry) sizeLocked() int { return len(r.items) }

// unlocked reads a guarded field with no lock anywhere.
func (r *registry) unlocked(k string) int {
	return r.items[k]
}

// racyAfterUnlock re-reads after releasing the lock.
func (r *registry) racyAfterUnlock() int {
	r.mu.Lock()
	n := r.count
	r.mu.Unlock()
	return n + r.count
}

// goroutine: lock state does not flow into a func literal — the goroutine
// runs after the deferred unlock may have fired.
func (r *registry) goroutine() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.count++
	}()
}

// suppressed demonstrates the //lint:ignore directive.
func (r *registry) suppressed() int {
	//lint:ignore guardedby single-threaded startup, not yet published
	return r.count
}

// update shows that parameter-based accesses are checked like receivers.
func update(r *registry) {
	r.count++
}
