// Package atomicmix exercises the atomicmix analyzer: a field touched via
// sync/atomic anywhere may never be accessed non-atomically elsewhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
	name   string
}

// hit and read use the atomic API consistently: legal.
func (c *counters) hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) read() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// racyRead reads the atomically-updated field directly.
func (c *counters) racyRead() uint64 {
	return c.hits
}

// racyWrite resets it with a plain store.
func (c *counters) racyWrite() {
	c.hits = 0
}

// plainOnly fields never touched atomically are unconstrained: legal.
func (c *counters) plainOnly() {
	c.misses++
	c.name = "warm"
}

// suppressed demonstrates the //lint:ignore directive.
func (c *counters) suppressed() uint64 {
	//lint:ignore atomicmix workers have joined; no concurrent writers remain
	return c.hits
}
