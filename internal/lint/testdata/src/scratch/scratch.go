// Package scratch exercises the scratch-escape analyzer.
package scratch

type sink struct{ keep []uint32 }

// worker owns per-goroutine scratch buffers.
//
//ohmlint:scratch
type worker struct {
	buf   []uint32
	slots [][]uint32
	out   *sink
	ch    chan []uint32
	cb    func([]uint32)
	n     int
}

// fill reuses the scratch in place: allowed.
func (w *worker) fill() {
	w.buf = append(w.buf[:0], 1)
	w.slots[0] = w.buf[:1]
}

// Buf returns scratch from an exported method: flagged.
func (w *worker) Buf() []uint32 {
	return w.buf
}

// internal hand-off inside the ownership domain: allowed.
func (w *worker) internal() []uint32 {
	return w.buf
}

// leakStore writes scratch through a pointer into another struct: flagged.
func (w *worker) leakStore() {
	w.out.keep = w.buf
}

// leakSend ships scratch to another goroutine: flagged.
func (w *worker) leakSend() {
	w.ch <- w.slots[0]
}

// leakCb hands scratch to a stored side-effect callback: flagged.
func (w *worker) leakCb() {
	w.cb(w.buf)
}

// leakGo passes scratch into a goroutine: flagged.
func (w *worker) leakGo() {
	go kernel(w.buf)
}

// borrow passes scratch to a plain function that hands it back: allowed.
func (w *worker) borrow() []uint32 {
	return kernel(w.buf)
}

// emit shows the documented suppression for serialized callbacks.
func (w *worker) emit() {
	//ohmlint:allow scratch-escape -- calls serialized upstream; API documents copy-to-retain
	w.cb(w.buf)
}

func kernel(a []uint32) []uint32 { return a }
