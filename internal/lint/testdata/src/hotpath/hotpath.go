// Package hotpath exercises the hotpath-alloc analyzer: run is the
// annotated root, step is reachable from it, cold is not.
package hotpath

import "sort"

type w struct {
	buf []uint32
	tmp []uint32
	set Set
}

// Set and BuildSet mirror the intset container API so the fixture
// exercises the container-construction checks without importing the real
// package.
type Set struct{ arr []uint32 }

func BuildSet(arr []uint32) Set {
	out := make([]uint32, len(arr))
	copy(out, arr)
	return Set{arr: out}
}

func (s *Set) Add(x uint32) { s.arr = append(s.arr, x) }

func ArrayView(arr []uint32) Set { return Set{arr: arr} }

//ohmlint:hotpath
func (x *w) run(n int) {
	x.step(n)
}

func (x *w) step(n int) {
	bad := make([]uint32, n)
	p := new(int)
	m := map[int]int{}
	s := []int{1, 2}
	f := func() {}
	sort.Slice(x.buf, func(a, b int) bool { return x.buf[a] < x.buf[b] })
	x.buf = append(x.buf, 1)     // ok: growth amortized into the same buffer
	x.tmp = append(x.buf[:0], 9) // ok: reset-reslice base
	y := append(x.tmp, 3)
	c := BuildSet(x.buf)  // container construction copies + plans a window
	x.set.Add(7)          // sorted insert may rebuild the window
	v := ArrayView(x.buf) // ok: zero-copy view over existing storage
	//ohmlint:allow hotpath-alloc -- demonstrating suppression
	z := make([]uint32, 1)
	_, _, _, _, _, _, _, _ = bad, p, m, s, y, z, c, v
	f()
}

// cold is not reachable from the root; construction-time allocation is
// fine here.
func cold(n int) []uint32 {
	return make([]uint32, n)
}
