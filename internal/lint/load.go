package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and (best-effort) type-checked package.
type Package struct {
	// Path is the import path ("ohminer/internal/engine").
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files holds the non-test source files.
	Files []*ast.File
	// Types and Info are nil when type-checking failed; analyzers then
	// degrade to syntactic resolution.
	Types *types.Package
	Info  *types.Info
	// TypeError records why type-checking failed, for -debug output.
	TypeError error

	// allowed maps filename → line → analyzer names suppressed there.
	allowed map[string]map[int]map[string]bool
	// Suppressions lists every suppression directive of the package, in
	// source order, for the `ohmlint -suppressions` audit.
	Suppressions []Suppression
}

// Suppression records one suppression directive for auditing.
type Suppression struct {
	Pos       token.Position
	Directive string   // the directive spelling, e.g. "//ohmlint:allow"
	Names     []string // suppressed analyzer names
	Reason    string   // justification text; empty when omitted
}

// allows reports whether an //ohmlint:allow comment on the diagnostic's
// line (end-of-line style) or the line directly above covers the analyzer.
func (p *Package) allows(analyzer string, pos token.Position) bool {
	lines := p.allowed[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// Load parses and type-checks the requested package directories plus every
// in-module package they depend on (so go/types can resolve cross-package
// references), and returns Packages for the requested dirs only. moduleDir
// must contain go.mod. Test files (_test.go) are not analyzed: tests may
// allocate, panic, and share freely.
func Load(moduleDir string, dirs []string) ([]*Package, error) {
	moduleDir, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Parse every package in the module once; the module is small and the
	// type checker needs local dependencies regardless of the request.
	all := map[string]*Package{} // by import path
	err = filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if path != moduleDir && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		pkg, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if pkg == nil {
			return nil
		}
		rel, rerr := filepath.Rel(moduleDir, path)
		if rerr != nil {
			return rerr
		}
		if rel == "." {
			pkg.Path = modPath
		} else {
			pkg.Path = modPath + "/" + filepath.ToSlash(rel)
		}
		all[pkg.Path] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}

	typeCheck(fset, modPath, all)

	var want []*Package
	for _, dir := range dirs {
		abs, aerr := filepath.Abs(dir)
		if aerr != nil {
			return nil, aerr
		}
		found := false
		for _, pkg := range all {
			if pkg.Dir == abs {
				want = append(want, pkg)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: no Go package in %s", dir)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Path < want[j].Path })
	return want, nil
}

// parseDir parses the non-test Go files of one directory, returning nil
// when the directory holds no Go source.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset, allowed: map[string]map[int]map[string]bool{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		pkg.Files = append(pkg.Files, f)
		pkg.recordAllows(f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// recordAllows indexes every //ohmlint:allow and //lint:ignore comment of
// the file by line, and appends each to the suppression audit list.
func (p *Package) recordAllows(f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			names, reason, ok := parseSuppression(c.Text)
			if !ok {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			directive := allowDirective
			if strings.HasPrefix(c.Text, ignoreDirective) {
				directive = ignoreDirective
			}
			p.Suppressions = append(p.Suppressions, Suppression{
				Pos: pos, Directive: directive, Names: names, Reason: reason,
			})
			if len(names) == 0 {
				continue
			}
			lines := p.allowed[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				p.allowed[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = map[string]bool{}
				lines[pos.Line] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
}

// typeCheck checks the module packages in dependency order. Stdlib imports
// resolve through the source importer (no export data needed); in-module
// imports resolve against already-checked packages. Failures are recorded
// per package, never fatal — analyzers fall back to syntax.
func typeCheck(fset *token.FileSet, modPath string, all map[string]*Package) {
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	order := topoOrder(modPath, all)
	for _, path := range order {
		pkg := all[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp, Error: func(error) {}}
		tpkg, err := conf.Check(path, fset, pkg.Files, info)
		if err != nil {
			pkg.TypeError = err
			continue
		}
		pkg.Types = tpkg
		pkg.Info = info
		imp.pkgs[path] = tpkg
	}
}

// moduleImporter serves in-module packages from the checked set and
// everything else from the stdlib source importer.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// topoOrder sorts the module packages so dependencies precede dependents.
func topoOrder(modPath string, all map[string]*Package) []string {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		pkg := all[path]
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := all[dep]; ok && state[dep] != 1 {
					visit(dep)
				}
			}
		}
		state[path] = 2
		order = append(order, path)
	}
	paths := make([]string, 0, len(all))
	for p := range all {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		visit(p)
	}
	return order
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadDir parses and type-checks a single standalone directory (no module
// context) — the golden-test entry point. Imports beyond the stdlib fail
// type-checking gracefully.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go package in %s", dir)
	}
	pkg.Path = filepath.Base(dir)
	all := map[string]*Package{pkg.Path: pkg}
	typeCheck(fset, pkg.Path, all)
	return pkg, nil
}
