package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineStop requires every goroutine launched in library code to be
// tied to a stop signal visible in scope: a context.Context, a channel
// (done/quit/result — any channel operation counts, including the close
// that signals completion), or a sync.WaitGroup. An unstoppable goroutine
// outlives the run that spawned it, keeps its worker state alive, and —
// in the mining engine — can publish counts after a checkpoint quiesce
// thinks the frontier is settled. The evidence search covers the goroutine
// body (for `go func` literals and same-package named functions) and the
// call's arguments, so passing a ctx into an unresolvable callee counts.
var GoroutineStop = &Analyzer{
	Name: "goroutinestop",
	Doc:  "flag goroutines in library code with no visible stop signal (context, channel, or WaitGroup)",
	Run:  runGoroutineStop,
}

func runGoroutineStop(pass *Pass) {
	path := pass.Pkg.Path
	if strings.Contains(path, "/cmd/") || strings.Contains(path, "/examples/") ||
		strings.HasPrefix(path, "cmd/") || strings.HasPrefix(path, "examples/") {
		return // process lifetime bounds entry-layer goroutines
	}

	// Index same-package function declarations for `go name(...)` and
	// `go recv.method(...)` resolution.
	byObj := map[types.Object]*ast.FuncDecl{}
	byName := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			byName[fn.Name.Name] = append(byName[fn.Name.Name], fn)
			if pass.Pkg.Info != nil {
				if obj := pass.Pkg.Info.Defs[fn.Name]; obj != nil {
					byObj[obj] = fn
				}
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if hasStopEvidence(pass.Pkg, g, byObj, byName) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine launched without a visible stop signal (context, done channel, or WaitGroup)")
			return true
		})
	}
}

// hasStopEvidence looks for a stop signal in the goroutine's body (func
// literal or resolved same-package declaration) and in the go call's
// arguments.
func hasStopEvidence(pkg *Package, g *ast.GoStmt, byObj map[types.Object]*ast.FuncDecl, byName map[string][]*ast.FuncDecl) bool {
	for _, arg := range g.Call.Args {
		if exprIsStopSignal(pkg, arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasStopEvidence(pkg, fun.Body)
	default:
		var targets []*ast.FuncDecl
		if obj := calleeObject(pkg, g.Call); obj != nil {
			if d, ok := byObj[obj]; ok {
				targets = []*ast.FuncDecl{d}
			}
		} else {
			switch f := fun.(type) {
			case *ast.Ident:
				targets = byName[f.Name]
			case *ast.SelectorExpr:
				targets = byName[f.Sel.Name]
			}
		}
		for _, t := range targets {
			if bodyHasStopEvidence(pkg, t.Body) {
				return true
			}
			// A context/channel/WaitGroup parameter counts even when the
			// body evidence is indirect.
			for _, p := range t.Type.Params.List {
				if typeText(pkg, p.Type) == "context.Context" {
					return true
				}
			}
		}
		return false
	}
}

// bodyHasStopEvidence scans one function body for any stop-signal use:
// channel operations, context values, or WaitGroup calls.
func bodyHasStopEvidence(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if exprIsChannel(pkg, node.X) {
				found = true
			}
		case *ast.CallExpr:
			if isBuiltinCall(pkg, node, "close") {
				found = true
				break
			}
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait", "Add":
					if exprIsWaitGroupish(pkg, sel.X) {
						found = true
					}
				}
			}
		case ast.Expr:
			if exprIsStopSignal(pkg, node) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprIsStopSignal reports whether e is a context or channel value — typed
// when type info resolves, by conventional name otherwise.
func exprIsStopSignal(pkg *Package, e ast.Expr) bool {
	if exprIsChannel(pkg, e) {
		return true
	}
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					return true
				}
			}
			return false
		}
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name == "ctx" || strings.HasSuffix(id.Name, "Ctx")
	}
	return false
}

func exprIsChannel(pkg *Package, e ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// exprIsWaitGroupish matches a sync.WaitGroup receiver, falling back to the
// conventional wg naming when untyped.
func exprIsWaitGroupish(pkg *Package, e ast.Expr) bool {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
			}
			return false
		}
	}
	txt := strings.ToLower(exprString(pkg.Fset, e))
	return strings.Contains(txt, "wg")
}
