package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// StampDiscipline checks the stamp-array idiom the engine uses in place
// of clearing mark arrays between generations: a struct pairs `xMark
// []uint32` with `xStamp uint32`; entries are "set" by writing the
// current stamp and "tested" by comparing against it, and a generation
// begins by advancing the stamp. Two rules:
//
//  1. A function that touches recv.xMark[...] must first advance the
//     paired stamp in the same function body — either recv.xStamp++
//     directly or via a helper whose name mentions the stamp (e.g.
//     nextEdgeStamp). Reading marks under a stale stamp silently matches
//     the previous generation.
//
//  2. Every direct recv.xStamp++ must be immediately followed by the
//     uint32 wraparound guard: `if recv.xStamp == 0 { clear(recv.xMark);
//     recv.xStamp = 1 }` (a range-clear loop also counts). Without the
//     guard, the stamp wraps after 2^32 generations and stale marks from
//     ~4 billion generations ago read as current.
var StampDiscipline = &Analyzer{
	Name: "stamp-discipline",
	Doc:  "flag mark-array use without a fresh stamp and stamp increments without wraparound reset",
	Run:  runStampDiscipline,
}

func runStampDiscipline(pass *Pass) {
	pkg := pass.Pkg
	// Struct type name → mark-field name → stamp-field name.
	pairs := map[string]map[string]string{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				names := map[string]bool{}
				for _, fld := range st.Fields.List {
					for _, n := range fld.Names {
						names[n.Name] = true
					}
				}
				for name := range names {
					prefix, ok := strings.CutSuffix(name, "Mark")
					if !ok {
						continue
					}
					stamp := prefix + "Stamp"
					if !names[stamp] {
						continue
					}
					if pairs[ts.Name.Name] == nil {
						pairs[ts.Name.Name] = map[string]string{}
					}
					pairs[ts.Name.Name][name] = stamp
				}
			}
		}
	}
	if len(pairs) == 0 {
		return
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			typePairs, ok := pairs[recvTypeName(fn)]
			if !ok {
				continue
			}
			checkStampFunc(pass, fn, typePairs)
		}
	}
}

func checkStampFunc(pass *Pass, fn *ast.FuncDecl, pairs map[string]string) {
	recv := recvIdentName(fn)
	if recv == "" {
		return
	}
	// fieldSel matches recv.<name> syntactically.
	fieldSel := func(e ast.Expr, name string) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == recv
	}

	for mark, stamp := range pairs {
		// Position of the first stamp advance (increment or helper call)
		// and of the first mark-array touch.
		advancePos := token.Pos(-1)
		firstMarkUse := token.Pos(-1)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				if n.Tok == token.INC && fieldSel(n.X, stamp) && (advancePos < 0 || n.Pos() < advancePos) {
					advancePos = n.Pos()
				}
			case *ast.AssignStmt:
				// recv.xStamp += 1 counts as an advance too.
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && fieldSel(n.Lhs[0], stamp) && (advancePos < 0 || n.Pos() < advancePos) {
					advancePos = n.Pos()
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv &&
						strings.Contains(strings.ToLower(sel.Sel.Name), strings.ToLower(stamp)) &&
						(advancePos < 0 || n.Pos() < advancePos) {
						advancePos = n.Pos()
					}
				}
			case *ast.IndexExpr:
				if fieldSel(n.X, mark) && (firstMarkUse < 0 || n.Pos() < firstMarkUse) {
					firstMarkUse = n.Pos()
				}
			}
			return true
		})
		if firstMarkUse >= 0 && (advancePos < 0 || advancePos > firstMarkUse) {
			pass.Reportf(firstMarkUse, "%s.%s is read or written before %s.%s is advanced in %s; stale marks from the previous generation read as current",
				recv, mark, recv, stamp, funcDisplayName(fn))
		}

		checkWraparound(pass, fn, recv, mark, stamp, fieldSel)
	}
}

// checkWraparound verifies that every direct increment of recv.stamp is
// followed, as the next statement of the same block, by the wraparound
// guard that clears recv.mark and restarts the stamp.
func checkWraparound(pass *Pass, fn *ast.FuncDecl, recv, mark, stamp string, fieldSel func(ast.Expr, string) bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			inc, ok := stmt.(*ast.IncDecStmt)
			isInc := ok && inc.Tok == token.INC && fieldSel(inc.X, stamp)
			if !isInc {
				if as, ok := stmt.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && fieldSel(as.Lhs[0], stamp) {
					isInc = true
				}
			}
			if !isInc {
				continue
			}
			if i+1 < len(block.List) && isWrapGuard(block.List[i+1], mark, stamp, fieldSel) {
				continue
			}
			pass.Reportf(stmt.Pos(), "%s.%s++ without a uint32 wraparound guard in %s; follow it with `if %s.%s == 0 { clear(%s.%s); %s.%s = 1 }`",
				recv, stamp, funcDisplayName(fn), recv, stamp, recv, mark, recv, stamp)
		}
		return true
	})
}

// isWrapGuard matches `if recv.stamp == 0 { ... }` whose body clears the
// mark array (clear builtin or a loop writing it) and resets the stamp.
func isWrapGuard(stmt ast.Stmt, mark, stamp string, fieldSel func(ast.Expr, string) bool) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	isZero := func(e ast.Expr) bool {
		lit, ok := ast.Unparen(e).(*ast.BasicLit)
		return ok && lit.Kind == token.INT && lit.Value == "0"
	}
	if !(fieldSel(cond.X, stamp) && isZero(cond.Y)) && !(fieldSel(cond.Y, stamp) && isZero(cond.X)) {
		return false
	}
	clearsMark, resetsStamp := false, false
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "clear" && len(n.Args) == 1 && fieldSel(n.Args[0], mark) {
				clearsMark = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && fieldSel(ix.X, mark) {
					clearsMark = true
				}
				if fieldSel(lhs, stamp) && n.Tok == token.ASSIGN && i < len(n.Rhs) {
					resetsStamp = true
				}
			}
		}
		return true
	})
	return clearsMark && resetsStamp
}
