package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// exprString renders an expression to canonical source text, for
// syntactic identity checks (e.g. "append result assigned back to its
// base operand").
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// recvTypeName returns the receiver's type name ("worker" for
// func (w *worker) ...), or "" for plain functions.
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiation if present.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvIdentName returns the receiver's binding name ("w"), or "".
func recvIdentName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// funcDisplayName returns "worker.step" style names for diagnostics.
func funcDisplayName(decl *ast.FuncDecl) string {
	if r := recvTypeName(decl); r != "" {
		return r + "." + decl.Name.Name
	}
	return decl.Name.Name
}

// calleeObject resolves a call's target to a types.Object when type
// information is available (nil otherwise).
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	if pkg.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// callGraph maps each function declaration of the package to the
// same-package function declarations it calls. Resolution is type-based
// when possible and falls back to name matching (idents and selector
// method names) otherwise.
func callGraph(pkg *Package) map[*ast.FuncDecl][]*ast.FuncDecl {
	// Index declarations: by types object (precise) and by bare name
	// (syntactic fallback; methods and functions share the namespace).
	byObj := map[types.Object]*ast.FuncDecl{}
	byName := map[string][]*ast.FuncDecl{}
	var decls []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			decls = append(decls, fn)
			byName[fn.Name.Name] = append(byName[fn.Name.Name], fn)
			if pkg.Info != nil {
				if obj := pkg.Info.Defs[fn.Name]; obj != nil {
					byObj[obj] = fn
				}
			}
		}
	}
	graph := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for _, fn := range decls {
		seen := map[*ast.FuncDecl]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var targets []*ast.FuncDecl
			if obj := calleeObject(pkg, call); obj != nil {
				if d, ok := byObj[obj]; ok {
					targets = []*ast.FuncDecl{d}
				}
			} else {
				switch f := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					targets = byName[f.Name]
				case *ast.SelectorExpr:
					targets = byName[f.Sel.Name]
				}
			}
			for _, t := range targets {
				if !seen[t] {
					seen[t] = true
					graph[fn] = append(graph[fn], t)
				}
			}
			return true
		})
	}
	return graph
}
