package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// GuardedBy enforces `// guarded by <mu>` field annotations: an annotated
// field may only be accessed while the named sibling mutex is held. The
// check runs a must-hold walk over each function body — Lock/RLock sets the
// held state, an inline Unlock clears it, a deferred Unlock keeps it to
// scope exit, and branches merge conservatively (held after an if only when
// held on every non-returning path). Functions whose name ends in "Locked"
// are exempt: by repo convention their caller holds the lock. Only accesses
// through the method receiver or a function parameter are checked — locals
// are usually still under construction and not yet shared.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "flag access to a `// guarded by <mu>` field without holding that mutex",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`\bguarded by (\w+)`)

// guard describes one annotated field.
type guard struct {
	structName string
	fieldName  string
	muName     string
}

func runGuardedBy(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return // field resolution needs types
	}

	// Collect annotations and validate that the named mutex is a sibling
	// field of the same struct.
	guards := map[types.Object]guard{} // annotated field object → guard
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(fld.Pos(), "field %s is guarded by %q, which is not a field of struct %s",
						fieldName(fld), mu, ts.Name.Name)
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guards[obj] = guard{structName: ts.Name.Name, fieldName: name.Name, muName: mu}
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // caller holds the lock by convention
			}
			bases := map[string]bool{}
			if r := recvIdentName(fn); r != "" && r != "_" {
				bases[r] = true
			}
			for _, p := range fn.Type.Params.List {
				for _, name := range p.Names {
					if name.Name != "_" {
						bases[name.Name] = true
					}
				}
			}
			if len(bases) == 0 {
				continue
			}
			w := &guardWalker{pass: pass, guards: guards, bases: bases, fn: fn}
			w.block(fn.Body.List, lockState{})
		}
	}
}

// lockState maps "base.mu" keys to must-hold facts.
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge keeps only the locks held on both paths.
func (s lockState) merge(o lockState) lockState {
	out := lockState{}
	for k, v := range s {
		if v && o[k] {
			out[k] = true
		}
	}
	return out
}

// guardWalker performs the must-hold walk over one function body.
type guardWalker struct {
	pass   *Pass
	guards map[types.Object]guard
	bases  map[string]bool
	fn     *ast.FuncDecl
}

// block walks a statement list, threading lock state; it returns the state
// at the fall-through exit and whether every path out of the list returns
// (or otherwise leaves the enclosing function/loop).
func (w *guardWalker) block(stmts []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *guardWalker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch node := s.(type) {
	case *ast.BlockStmt:
		return w.block(node.List, st)
	case *ast.LabeledStmt:
		return w.stmt(node.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range node.Results {
			st = w.expr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; treat like return so
		// early-unlock-and-bail branches do not poison the main path.
		return st, true
	case *ast.DeferStmt:
		// defer base.mu.Unlock() holds to scope exit: no state change. Any
		// other deferred call gets its accesses checked against the current
		// (conservative) state; a deferred func literal is its own context.
		if _, _, ok := w.mutexOp(node.Call); ok {
			return st, false
		}
		return w.exprNoCall(node.Call, st), false
	case *ast.GoStmt:
		return w.exprNoCall(node.Call, st), false
	case *ast.IfStmt:
		if node.Init != nil {
			st, _ = w.stmt(node.Init, st)
		}
		st = w.expr(node.Cond, st)
		thenSt, thenTerm := w.block(node.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if node.Else != nil {
			elseSt, elseTerm = w.stmt(node.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.merge(elseSt), false
		}
	case *ast.ForStmt:
		if node.Init != nil {
			st, _ = w.stmt(node.Init, st)
		}
		if node.Cond != nil {
			st = w.expr(node.Cond, st)
		}
		bodySt, _ := w.block(node.Body.List, st.clone())
		if node.Post != nil {
			w.stmt(node.Post, bodySt)
		}
		// The loop may run zero times and lock changes inside may not
		// settle: only locks held on both entry and body exit survive.
		return st.merge(bodySt), false
	case *ast.RangeStmt:
		st = w.expr(node.X, st)
		bodySt, _ := w.block(node.Body.List, st.clone())
		return st.merge(bodySt), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(node, st)
	default:
		// Linear statement: apply its lock ops and accesses in source order.
		return w.linear(s, st), false
	}
}

// branches handles switch/type-switch/select: each clause starts from the
// incoming state; the exit state keeps only locks held by every
// non-terminating clause.
func (w *guardWalker) branches(s ast.Stmt, st lockState) (lockState, bool) {
	var body *ast.BlockStmt
	switch node := s.(type) {
	case *ast.SwitchStmt:
		if node.Init != nil {
			st, _ = w.stmt(node.Init, st)
		}
		if node.Tag != nil {
			st = w.expr(node.Tag, st)
		}
		body = node.Body
	case *ast.TypeSwitchStmt:
		if node.Init != nil {
			st, _ = w.stmt(node.Init, st)
		}
		st = w.linear(node.Assign, st)
		body = node.Body
	case *ast.SelectStmt:
		body = node.Body
	}
	var out lockState
	allTerm := len(body.List) > 0
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				st = w.expr(e, st)
			}
			stmts = cl.Body
			hasDefault = hasDefault || cl.List == nil
		case *ast.CommClause:
			if cl.Comm != nil {
				st, _ = w.stmt(cl.Comm, st.clone())
			}
			stmts = cl.Body
			hasDefault = hasDefault || cl.Comm == nil
		}
		clSt, clTerm := w.block(stmts, st.clone())
		if clTerm {
			continue
		}
		allTerm = false
		if out == nil {
			out = clSt
		} else {
			out = out.merge(clSt)
		}
	}
	if allTerm && hasDefault {
		return st, true
	}
	if out == nil {
		return st, false
	}
	if !hasDefault {
		// A switch without default can fall through untouched.
		out = out.merge(st)
	}
	return out, false
}

// guardItem is one ordered lock op or guarded access inside a statement.
type guardItem struct {
	pos    token.Pos
	key    string
	lock   bool
	access *guard // nil for lock ops
}

// linear processes a statement with no nested control flow: lock operations
// and guarded accesses apply in source order.
func (w *guardWalker) linear(s ast.Stmt, st lockState) lockState {
	return w.apply(w.collect(s), st)
}

// expr checks accesses inside an expression and applies any lock calls.
func (w *guardWalker) expr(e ast.Expr, st lockState) lockState {
	return w.apply(w.collect(e), st)
}

// exprNoCall checks a call's arguments and callee without executing the
// call's own lock semantics (go/defer run later, under a different
// schedule). A func-literal callee is picked up by collect and analyzed as
// its own lock context.
func (w *guardWalker) exprNoCall(call *ast.CallExpr, st lockState) lockState {
	items := w.collect(call.Fun)
	for _, a := range call.Args {
		items = append(items, w.collect(a)...)
	}
	return w.apply(items, st)
}

func (w *guardWalker) apply(items []guardItem, st lockState) lockState {
	sort.Slice(items, func(i, j int) bool { return items[i].pos < items[j].pos })
	st = st.clone()
	for _, it := range items {
		if it.access == nil {
			st[it.key] = it.lock
			continue
		}
		if !st[it.key] {
			g := it.access
			w.pass.Reportf(it.pos, "%s.%s is guarded by %s, but %s accesses it without holding %s",
				g.structName, g.fieldName, g.muName, funcDisplayName(w.fn), it.key)
		}
	}
	return st
}

// collect gathers the ordered lock ops and guarded accesses of a node,
// without descending into nested function literals (their bodies are
// independent contexts analyzed with an empty lock state).
func (w *guardWalker) collect(n ast.Node) []guardItem {
	var items []guardItem
	ast.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.FuncLit:
			w.block(node.Body.List, lockState{})
			return false
		case *ast.CallExpr:
			if key, lock, ok := w.mutexOp(node); ok {
				items = append(items, guardItem{pos: node.Pos(), key: key, lock: lock})
			}
			return true
		case *ast.SelectorExpr:
			base, ok := ast.Unparen(node.X).(*ast.Ident)
			if !ok || !w.bases[base.Name] {
				return true
			}
			obj := w.pass.Pkg.Info.Uses[node.Sel]
			if obj == nil {
				return true
			}
			if g, guarded := w.guards[obj]; guarded {
				gg := g
				items = append(items, guardItem{
					pos: node.Sel.Pos(), key: base.Name + "." + g.muName, access: &gg,
				})
			}
			return true
		}
		return true
	})
	return items
}

// mutexOp matches base.mu.Lock/RLock/Unlock/RUnlock() where base is a
// checked binding, returning the "base.mu" key and whether the op acquires.
func (w *guardWalker) mutexOp(call *ast.CallExpr) (key string, lock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return "", false, false
	}
	mu, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	base, isID := ast.Unparen(mu.X).(*ast.Ident)
	if !isID || !w.bases[base.Name] {
		return "", false, false
	}
	return base.Name + "." + mu.Sel.Name, lock, true
}

// guardAnnotation extracts the mutex name from a field's `// guarded by
// <mu>` doc or end-of-line comment ("" when unannotated).
func guardAnnotation(fld *ast.Field) string {
	for _, group := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func fieldName(fld *ast.Field) string {
	if len(fld.Names) > 0 {
		return fld.Names[0].Name
	}
	return "(embedded)"
}
