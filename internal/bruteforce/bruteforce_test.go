package bruteforce

import (
	"testing"

	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
	"ohminer/internal/venn"
)

func TestCountFig1(t *testing.T) {
	h := hypergraph.MustBuild(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
		{0, 1, 2, 9, 12, 13},
		{1, 3, 4, 5, 6, 7, 8, 14},
	}, nil)
	p := pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
	if got := Count(h, p); got != 1 {
		t.Fatalf("Count=%d want 1", got)
	}
}

func TestCountMatchesVennSemantics(t *testing.T) {
	// Enumerate by hand on a tiny instance and verify each accepted tuple
	// is isomorphic per the venn specification.
	h := hypergraph.MustBuild(5, [][]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3},
	}, nil)
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	want := uint64(0)
	m := h.NumEdges()
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a == b {
				continue
			}
			iso, err := venn.Isomorphic(p.Edges(), [][]uint32{
				h.EdgeVertices(uint32(a)), h.EdgeVertices(uint32(b)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if iso {
				want++
			}
		}
	}
	if got := Count(h, p); got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
	if want == 0 {
		t.Fatal("degenerate fixture")
	}
}

func TestCountLabeled(t *testing.T) {
	h, err := hypergraph.Build(4, [][]uint32{{0, 1}, {1, 2}, {2, 3}}, []uint32{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pattern: edge with labels (0,1) overlapping edge with labels (1,0)...
	// all edges alternate labels, so the unlabeled chain count applies when
	// labels match the alternation.
	p, err := pattern.New([][]uint32{{0, 1}, {1, 2}}, []uint32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	got := Count(h, p)
	// Chains: (e0,e1),(e1,e0),(e1,e2),(e2,e1) — all alternate correctly,
	// but the shared vertex must carry label 1 per the pattern: (e0,e1)
	// share v1 (label 1) ✓; (e1,e2) share v2 (label 0) ✗.
	if got != 2 {
		t.Fatalf("labeled Count=%d want 2", got)
	}
}

func TestCountEdgeLabeled(t *testing.T) {
	h, err := hypergraph.BuildEdgeLabeled(4,
		[][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil, []uint32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pattern.NewEdgeLabeled([][]uint32{{0, 1}, {1, 2}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ordered tuples with labels (0,1): (e0,e1) and (e2,e1).
	if got := Count(h, p); got != 2 {
		t.Fatalf("edge-labeled Count=%d want 2", got)
	}
}
