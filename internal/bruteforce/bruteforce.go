// Package bruteforce provides the reference HPM enumerator used as ground
// truth in differential tests.
//
// It enumerates every ordered tuple of distinct data hyperedges whose
// degrees match the pattern's and accepts a tuple when its full overlap
// signature (and label signature, for labeled patterns) equals the
// pattern's — a direct transliteration of the subhypergraph-isomorphism
// definition via Theorem 1, with no pruning, no plans, no sharing.
// Exponential: only for small inputs.
package bruteforce

import (
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
	"ohminer/internal/sig"
)

// Count returns the number of ordered embeddings of p in h (one per pattern
// automorphism for each unordered embedding).
func Count(h *hypergraph.Hypergraph, p *pattern.Pattern) uint64 {
	m := p.NumEdges()
	want := p.Signature()
	var wantLab sig.LabelSignature
	labeled := p.Labeled()
	if labeled {
		wantLab, _ = p.LabelSignature()
	}

	// Pre-bucket data edges by degree.
	byDegree := map[int][]uint32{}
	for e := 0; e < h.NumEdges(); e++ {
		d := h.Degree(uint32(e))
		byDegree[d] = append(byDegree[d], uint32(e))
	}

	tuple := make([]uint32, m)
	edges := make([][]uint32, m)
	var count uint64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == m {
			got, err := sig.Compute(edges)
			if err != nil || !got.Equal(want) {
				return
			}
			if labeled {
				gotLab, err := sig.ComputeLabeled(edges, func(v uint32) uint32 { return h.Label(v) })
				if err != nil || !labelSigEqual(gotLab, wantLab) {
					return
				}
			}
			count++
			return
		}
		for _, c := range byDegree[p.Degree(pos)] {
			if p.EdgeLabeled() && (!h.EdgeLabeled() || h.EdgeLabel(c) != p.EdgeLabel(pos)) {
				continue
			}
			dup := false
			for j := 0; j < pos; j++ {
				if tuple[j] == c {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			tuple[pos] = c
			edges[pos] = h.EdgeVertices(c)
			rec(pos + 1)
		}
	}
	rec(0)
	return count
}

func labelSigEqual(a, b sig.LabelSignature) bool {
	if a.M != b.M {
		return false
	}
	for mask := 1; mask < 1<<a.M; mask++ {
		ca, cb := a.Counts[mask], b.Counts[mask]
		if len(ca) != len(cb) {
			return false
		}
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}
