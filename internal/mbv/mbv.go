// Package mbv implements the match-by-vertex baseline — the first category
// of HPM systems in the paper's taxonomy (Sec. 2.3): extend partial
// embeddings one *vertex* at a time, validating hyperedges whenever all of
// a pattern hyperedge's vertices are mapped. The approach enumerates every
// vertex bijection rather than every hyperedge tuple, which is exactly the
// search-space blow-up HGMatch (and then OHMiner) eliminates; HGMatch
// reports four orders of magnitude over these systems, and this
// implementation exists to reproduce that gap and to serve as a third
// independent counting oracle.
//
// Counting semantics: a full vertex mapping determines the hyperedge tuple
// uniquely (data hyperedges are deduplicated), and each ordered hyperedge
// tuple admits exactly Π_regions (regionSize!) vertex bijections, so
//
//	orderedEdgeTuples = vertexMappings / Π_regions (regionSize!)
//
// which the tests cross-check against both the engine and brute force.
package mbv

import (
	"errors"
	"sort"
	"time"

	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// Result reports one match-by-vertex mining run.
type Result struct {
	// VertexMappings is the number of valid pattern-vertex → data-vertex
	// bijections (the raw search-space size this approach explores).
	VertexMappings uint64
	// Ordered is the equivalent ordered hyperedge-tuple count, comparable
	// with engine.Result.Ordered.
	Ordered uint64
	Elapsed time.Duration
}

// Mine counts embeddings of p in h by vertex-at-a-time extension. Labeled
// patterns respect vertex labels. Exponential in pattern vertices — this is
// the baseline's defining weakness; use it on small workloads only.
func Mine(h *hypergraph.Hypergraph, p *pattern.Pattern) (Result, error) {
	if p.EdgeLabeled() {
		return Result{}, errors.New("mbv: hyperedge labels unsupported by the match-by-vertex baseline")
	}
	if p.Labeled() && !h.Labeled() {
		return Result{}, errors.New("mbv: labeled pattern on unlabeled hypergraph")
	}
	start := time.Now()
	m := newMatcher(h, p)
	m.rec(0)

	res := Result{VertexMappings: m.count}
	div := regionFactorialProduct(p)
	if div == 0 || m.count%div != 0 {
		return res, errors.New("mbv: internal error: mapping count not divisible by region factorial product")
	}
	res.Ordered = m.count / div
	res.Elapsed = time.Since(start)
	return res, nil
}

type matcher struct {
	h *hypergraph.Hypergraph
	p *pattern.Pattern

	order []uint32 // pattern vertices in connected matching order
	// coMapped[i] lists earlier-ordered pattern vertices sharing a pattern
	// hyperedge with order[i].
	coMapped [][]uint32
	// edgeRemaining[e] counts unmapped vertices of pattern edge e;
	// edgesOf[u] lists pattern edges containing vertex u.
	edgeRemaining []int
	edgesOf       [][]int

	mapping []uint32 // pattern vertex → data vertex
	used    map[uint32]bool
	setKey  map[string]bool // data hyperedge vertex-set index
	count   uint64
	keyBuf  []byte
}

func newMatcher(h *hypergraph.Hypergraph, p *pattern.Pattern) *matcher {
	m := &matcher{
		h:             h,
		p:             p,
		mapping:       make([]uint32, p.NumVertices()),
		used:          make(map[uint32]bool, p.NumVertices()),
		edgeRemaining: make([]int, p.NumEdges()),
		edgesOf:       make([][]int, p.NumVertices()),
		setKey:        make(map[string]bool, h.NumEdges()),
	}
	for e := 0; e < p.NumEdges(); e++ {
		m.edgeRemaining[e] = p.Degree(e)
		for _, u := range p.Edge(e) {
			m.edgesOf[u] = append(m.edgesOf[u], e)
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		m.setKey[key(h.EdgeVertices(uint32(e)), &m.keyBuf)] = true
	}
	m.buildOrder()
	return m
}

// buildOrder produces a vertex order where each vertex (after the first)
// shares a pattern hyperedge with an earlier one, maximizing constraint
// propagation.
func (m *matcher) buildOrder() {
	p := m.p
	n := p.NumVertices()
	adjacent := make([]map[uint32]bool, n)
	for e := 0; e < p.NumEdges(); e++ {
		verts := p.Edge(e)
		for i, u := range verts {
			if adjacent[u] == nil {
				adjacent[u] = map[uint32]bool{}
			}
			for j, v := range verts {
				if i != j {
					adjacent[u][v] = true
				}
			}
		}
	}
	inOrder := make([]bool, n)
	// Start from the vertex with most pattern neighbors.
	best := uint32(0)
	for u := 1; u < n; u++ {
		if len(adjacent[u]) > len(adjacent[best]) {
			best = uint32(u)
		}
	}
	m.order = append(m.order, best)
	inOrder[best] = true
	for len(m.order) < n {
		bestIdx, bestConn := -1, -1
		for u := 0; u < n; u++ {
			if inOrder[u] {
				continue
			}
			c := 0
			for v := range adjacent[u] {
				if inOrder[v] {
					c++
				}
			}
			if c > bestConn {
				bestIdx, bestConn = u, c
			}
		}
		m.order = append(m.order, uint32(bestIdx))
		inOrder[bestIdx] = true
	}
	m.coMapped = make([][]uint32, n)
	for i, u := range m.order {
		for _, v := range m.order[:i] {
			if adjacent[u][v] {
				m.coMapped[i] = append(m.coMapped[i], v)
			}
		}
	}
}

// rec extends the vertex mapping at order position i.
func (m *matcher) rec(i int) {
	if i == len(m.order) {
		m.count++
		return
	}
	u := m.order[i]
	for _, cand := range m.candidates(i) {
		if m.used[cand] {
			continue
		}
		if m.p.Labeled() && m.h.Labeled() && m.h.Label(cand) != m.p.Label(u) {
			continue
		}
		if m.h.VertexDegree(cand) < len(m.edgesOf[u]) {
			continue
		}
		m.mapping[u] = cand
		m.used[cand] = true
		if m.completeEdgesOK(u) {
			m.rec(i + 1)
			m.restore(u)
		}
		delete(m.used, cand)
	}
}

// candidates lists data vertices for order position i: any vertex sharing a
// data hyperedge with a mapped co-vertex (the first position scans all
// vertices — the unpruned fan-out that makes this approach expensive).
func (m *matcher) candidates(i int) []uint32 {
	if len(m.coMapped[i]) == 0 {
		all := make([]uint32, m.h.NumVertices())
		for v := range all {
			all[v] = uint32(v)
		}
		return all
	}
	// Union of neighbors of one mapped co-vertex (the cheapest filter;
	// remaining constraints are validated by completeEdgesOK).
	anchor := m.mapping[m.coMapped[i][0]]
	seen := map[uint32]bool{}
	var out []uint32
	for _, e := range m.h.VertexEdges(anchor) {
		for _, v := range m.h.EdgeVertices(e) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// completeEdgesOK decrements the remaining-vertex counters of u's pattern
// edges and validates every pattern hyperedge that just became fully
// mapped: its image must be an existing data hyperedge. Counters are
// restored before returning false or after recursion via defer-less manual
// bookkeeping in rec (the increment happens below on unwind).
func (m *matcher) completeEdgesOK(u uint32) bool {
	ok := true
	for _, e := range m.edgesOf[u] {
		m.edgeRemaining[e]--
		if m.edgeRemaining[e] == 0 && ok {
			if !m.edgeExists(e) {
				ok = false
			}
		}
	}
	if !ok {
		m.restore(u)
		return false
	}
	return true
}

func (m *matcher) restore(u uint32) {
	for _, e := range m.edgesOf[u] {
		m.edgeRemaining[e]++
	}
}

// edgeExists checks whether the mapped image of pattern edge e is a data
// hyperedge.
func (m *matcher) edgeExists(e int) bool {
	verts := m.p.Edge(e)
	img := make([]uint32, len(verts))
	for i, u := range verts {
		img[i] = m.mapping[u]
	}
	sort.Slice(img, func(a, b int) bool { return img[a] < img[b] })
	for i := 1; i < len(img); i++ {
		if img[i] == img[i-1] {
			return false
		}
	}
	return m.setKey[key(img, &m.keyBuf)]
}

func key(verts []uint32, buf *[]byte) string {
	b := (*buf)[:0]
	for _, v := range verts {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	*buf = b
	return string(b)
}

// regionFactorialProduct computes Π over (Venn region × label) vertex
// groups of (groupSize)! — the number of vertex bijections per ordered
// hyperedge tuple. Vertices sharing a profile (and label, when labeled)
// are interchangeable; distinct groups are not.
func regionFactorialProduct(p *pattern.Pattern) uint64 {
	counts := map[uint64]int{}
	profile := make(map[uint32]uint64, p.NumVertices())
	for e := 0; e < p.NumEdges(); e++ {
		for _, u := range p.Edge(e) {
			profile[u] |= 1 << uint(e)
		}
	}
	for u, mask := range profile {
		k := mask
		if p.Labeled() {
			k |= uint64(p.Label(u)) << 32
		}
		counts[k]++
	}
	prod := uint64(1)
	for _, c := range counts {
		prod *= factorial(c)
	}
	return prod
}

func factorial(n int) uint64 {
	f := uint64(1)
	for i := 2; i <= n; i++ {
		f *= uint64(i)
	}
	return f
}
