package mbv

import (
	"math/rand"
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

func TestMineFig1(t *testing.T) {
	h := hypergraph.MustBuild(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
		{0, 1, 2, 9, 12, 13},
		{1, 3, 4, 5, 6, 7, 8, 14},
	}, nil)
	p := pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
	res, err := Mine(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered != 1 {
		t.Fatalf("Ordered=%d want 1", res.Ordered)
	}
	// The single embedding admits 3!·3!·1!·2!·3! vertex bijections
	// (regions: R_A=3, R_B=3, R_C=1, pairwise {B,C}... per Fig. 1 regions).
	if res.VertexMappings%res.Ordered != 0 || res.VertexMappings <= res.Ordered {
		t.Fatalf("VertexMappings=%d", res.VertexMappings)
	}
}

// TestDifferentialAgainstBruteForce: the match-by-vertex count converts to
// the same ordered hyperedge-tuple count as the reference enumerator.
func TestDifferentialAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		nv := 8 + rng.Intn(10)
		ne := 6 + rng.Intn(12)
		edges := make([][]uint32, ne)
		for i := range edges {
			sz := 2 + rng.Intn(3)
			for j := 0; j < sz; j++ {
				edges[i] = append(edges[i], uint32(rng.Intn(nv)))
			}
		}
		h, err := hypergraph.Build(nv, edges, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pattern.Sample(h, 2, 2, 8, rng)
		if err != nil {
			continue
		}
		want := bruteforce.Count(h, p)
		res, err := Mine(h, p)
		if err != nil {
			t.Fatalf("trial %d: %v (pattern %s)", trial, err, p)
		}
		if res.Ordered != want {
			t.Fatalf("trial %d: Ordered=%d want %d (mappings %d, pattern %s)",
				trial, res.Ordered, want, res.VertexMappings, p)
		}
	}
}

func TestDifferentialLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		nv := 8 + rng.Intn(8)
		ne := 6 + rng.Intn(10)
		edges := make([][]uint32, ne)
		labels := make([]uint32, nv)
		for i := range edges {
			sz := 2 + rng.Intn(3)
			for j := 0; j < sz; j++ {
				edges[i] = append(edges[i], uint32(rng.Intn(nv)))
			}
		}
		for v := range labels {
			labels[v] = uint32(rng.Intn(2))
		}
		h, err := hypergraph.Build(nv, edges, labels)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pattern.Sample(h, 2, 2, 8, rng)
		if err != nil {
			continue
		}
		want := bruteforce.Count(h, p)
		res, err := Mine(h, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Ordered != want {
			t.Fatalf("trial %d labeled: Ordered=%d want %d", trial, res.Ordered, want)
		}
	}
}

func TestMineErrors(t *testing.T) {
	h := hypergraph.MustBuild(3, [][]uint32{{0, 1}, {1, 2}}, nil)
	lp := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, []uint32{0, 0, 1})
	if _, err := Mine(h, lp); err == nil {
		t.Error("labeled pattern on unlabeled hypergraph accepted")
	}
	elp, err := pattern.NewEdgeLabeled([][]uint32{{0, 1}, {1, 2}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(h, elp); err == nil {
		t.Error("edge-labeled pattern accepted")
	}
}

// TestSearchSpaceBlowup documents the approach's weakness quantitatively:
// the vertex-mapping space exceeds the hyperedge-tuple space by the region
// factorial product, which grows with hyperedge sizes.
func TestSearchSpaceBlowup(t *testing.T) {
	h := hypergraph.MustBuild(12, [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{4, 5, 6, 7, 8, 9},
		{8, 9, 10, 11, 0, 1},
	}, nil)
	p := pattern.MustNew([][]uint32{{0, 1, 2, 3, 4, 5}, {4, 5, 6, 7, 8, 9}}, nil)
	res, err := Mine(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered == 0 {
		t.Fatal("no embeddings")
	}
	ratio := res.VertexMappings / res.Ordered
	// Regions of the pattern: 4,4,2 vertices → 4!·4!·2! = 1152 mappings per
	// tuple.
	if ratio != 1152 {
		t.Fatalf("mappings per tuple = %d want 1152", ratio)
	}
}
