package cluster

import (
	"testing"
	"time"
)

// TestBackoffCeilingDoublesAndCaps pins the deterministic envelope: with the
// jitter source forced to its extremes, Next must return exactly ceil (upper
// edge) or ceil/2 (lower edge), with the ceiling doubling from Base and
// clamping at Max.
func TestBackoffCeilingDoublesAndCaps(t *testing.T) {
	upper := func(n int64) int64 { return n - 1 } // the largest value Int63n(n) can draw
	lower := func(int64) int64 { return 0 }

	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, rnd: upper}
	wantCeil := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, want := range wantCeil {
		if got := b.Next(); got != want {
			t.Fatalf("attempt %d upper edge: %v, want %v", i, got, want)
		}
	}
	if b.Attempts() != len(wantCeil) {
		t.Fatalf("attempts = %d, want %d", b.Attempts(), len(wantCeil))
	}

	b = &Backoff{Base: 100 * time.Millisecond, Max: time.Second, rnd: lower}
	for i, ceil := range wantCeil {
		if got, want := b.Next(), ceil/2; got != want {
			t.Fatalf("attempt %d lower edge: %v, want %v", i, got, want)
		}
	}
}

// TestBackoffReset: a success resets the streak, so the next delay ceiling is
// Base again.
func TestBackoffReset(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, rnd: func(n int64) int64 { return n - 1 }}
	for i := 0; i < 4; i++ {
		b.Next()
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("attempts after reset = %d, want 0", b.Attempts())
	}
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("first delay after reset: %v, want 100ms", got)
	}
}

// TestBackoffDefaultsAndJitterBounds: zero-valued bounds pick 500ms/30s, a
// Base above Max clamps to Max, and with real jitter every draw stays inside
// [ceil/2, ceil].
func TestBackoffDefaultsAndJitterBounds(t *testing.T) {
	b := &Backoff{rnd: func(n int64) int64 { return n - 1 }}
	if got := b.Next(); got != 500*time.Millisecond {
		t.Fatalf("default base: %v, want 500ms", got)
	}
	for i := 0; i < 20; i++ {
		b.Next()
	}
	if got := b.Next(); got != 30*time.Second {
		t.Fatalf("default cap: %v, want 30s", got)
	}

	b = &Backoff{Base: time.Minute, Max: time.Second, rnd: func(n int64) int64 { return n - 1 }}
	if got := b.Next(); got != time.Second {
		t.Fatalf("base above max: %v, want clamped to 1s", got)
	}

	// Real (seeded-by-default) jitter: bounds only.
	b = NewBackoff(100*time.Millisecond, time.Second)
	ceil := 100 * time.Millisecond
	for i := 0; i < 10; i++ {
		got := b.Next()
		if got < ceil/2 || got > ceil {
			t.Fatalf("attempt %d: %v outside [%v, %v]", i, got, ceil/2, ceil)
		}
		if ceil < time.Second {
			ceil *= 2
			if ceil > time.Second {
				ceil = time.Second
			}
		}
	}
}
