package cluster

// Protocol-level tests of the coordinator's lease machine: expiry-driven
// reassignment, epoch fencing of late zombie reports, in-place lease
// resurrection, remainder spills, and exactly-once merging — each verified
// by mining real lease payloads through the engine on both scheduler paths
// (work-stealing split=0 and the legacy split=-1 ablation), so the wire
// format and the counts are tested together, not as mocks.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ohminer/internal/bruteforce"
	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// starWorkload mirrors the engine chaos workload: a 60-edge star whose
// 2-edge shared-vertex pattern has 60*59 = 3540 ordered embeddings.
func starWorkload(t *testing.T) (*dal.Store, string, uint64) {
	t.Helper()
	const n = 60
	edges := make([][]uint32, n)
	for i := range edges {
		edges[i] = []uint32{0, uint32(i + 1)}
	}
	h := hypergraph.MustBuild(n+1, edges, nil)
	p := pattern.MustNew([][]uint32{{0, 1}, {0, 2}}, nil)
	if want := bruteforce.Count(h, p); want != n*(n-1) {
		t.Fatalf("star workload: brute force %d, want %d", want, n*(n-1))
	}
	return dal.Build(h), "0 1; 0 2", n * (n - 1)
}

// fakeClock is the deterministic time source for lease-expiry tests: tests
// advance it instead of sleeping, so TTL scenarios run in microseconds and
// never flake under load.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testCluster wires a coordinator onto an httptest server so tests exercise
// the real HTTP surface (routing, strict decoding, status codes).
func testCluster(t *testing.T, store *dal.Store, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(store, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mux := http.NewServeMux()
	c.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// postJSON posts body to the server and decodes a JSON response, returning
// the status code.
func postJSON(t *testing.T, srv *httptest.Server, path string, body, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal %s body: %v", path, err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// leaseAs requests a lease for the named worker; nil means 204 (no work).
func leaseAs(t *testing.T, srv *httptest.Server, store *dal.Store, worker string) *Lease {
	t.Helper()
	var lease Lease
	code := postJSON(t, srv, "/cluster/lease",
		LeaseRequest{Worker: worker, GraphFP: store.Hypergraph().Fingerprint()}, &lease)
	switch code {
	case http.StatusOK:
		return &lease
	case http.StatusNoContent:
		return nil
	default:
		t.Fatalf("lease for %q: status %d", worker, code)
		return nil
	}
}

// mineLease runs a lease payload through the local engine exactly as a
// worker would and returns the completed-task report.
func mineLease(t *testing.T, store *dal.Store, lease *Lease, split int) Report {
	t.Helper()
	snap, err := checkpoint.Decode(bytes.NewReader(lease.Snapshot))
	if err != nil {
		t.Fatalf("decode lease snapshot: %v", err)
	}
	p, err := pattern.Parse(lease.Pattern)
	if err != nil {
		t.Fatalf("parse lease pattern: %v", err)
	}
	opts := engine.Options{Workers: 2, SplitDepth: split, DataAwareOrder: lease.DataAwareOrder}
	plan, err := engine.CompilePlan(store, p, opts)
	if err != nil {
		t.Fatalf("compile lease plan: %v", err)
	}
	res, err := engine.ResumeWithPlanContext(context.Background(), store, plan, snap, opts)
	if err != nil {
		t.Fatalf("mine lease: %v", err)
	}
	return Report{
		Job: lease.Job, Task: lease.Task, Epoch: lease.Epoch,
		Ordered: res.Ordered, Stats: engine.PackStats(res.Stats),
	}
}

// drainJob leases and mines every remaining task as the named worker,
// reporting each; it stops when the coordinator has no more work.
func drainJob(t *testing.T, srv *httptest.Server, store *dal.Store, worker string, split int) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("drainJob: job never completed")
		}
		lease := leaseAs(t, srv, store, worker)
		if lease == nil {
			return
		}
		rep := mineLease(t, store, lease, split)
		rep.Worker = worker
		if code := postJSON(t, srv, "/cluster/report", rep, nil); code != http.StatusOK {
			t.Fatalf("report task %d: status %d", rep.Task, code)
		}
	}
}

// TestLeaseExpiryReassignsAndFencesZombie is the core fault-tolerance
// contract on both scheduler paths: a worker that stops heartbeating loses
// its lease to reassignment (epoch bump), a second worker redoes the task,
// and the first worker's late report — the zombie — is refused with 410, so
// the final count is exact despite the task having been mined twice.
func TestLeaseExpiryReassignsAndFencesZombie(t *testing.T) {
	for _, split := range []int{0, -1} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			store, pat, want := starWorkload(t)
			clk := newFakeClock()
			c, srv := testCluster(t, store, Config{
				LeaseTTL: 10 * time.Second, Parts: 4, now: clk.Now,
			})
			if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
				t.Fatalf("start job: %v", err)
			}

			// zombie takes a lease, mines it… and never heartbeats.
			zombieLease := leaseAs(t, srv, store, "zombie")
			if zombieLease == nil {
				t.Fatal("no lease granted")
			}
			zombieRep := mineLease(t, store, zombieLease, split)
			zombieRep.Worker = "zombie"

			// The TTL passes; the next lease request sweeps and re-grants the
			// same task at a higher epoch.
			clk.Advance(11 * time.Second)
			healthy := leaseAs(t, srv, store, "healthy")
			if healthy == nil {
				t.Fatal("expired task was not re-granted")
			}
			if healthy.Task != zombieLease.Task {
				t.Fatalf("re-grant handed task %d, want the expired task %d", healthy.Task, zombieLease.Task)
			}
			if healthy.Epoch <= zombieLease.Epoch {
				t.Fatalf("re-grant epoch %d not after original %d", healthy.Epoch, zombieLease.Epoch)
			}

			// The zombie's late report must be fenced out…
			if code := postJSON(t, srv, "/cluster/report", zombieRep, nil); code != http.StatusGone {
				t.Fatalf("zombie report: status %d, want %d", code, http.StatusGone)
			}
			// …and its heartbeat too.
			code := postJSON(t, srv, "/cluster/heartbeat", HeartbeatRequest{
				Worker: "zombie", Job: zombieLease.Job, Task: zombieLease.Task, Epoch: zombieLease.Epoch,
			}, nil)
			if code != http.StatusGone {
				t.Fatalf("zombie heartbeat: status %d, want %d", code, http.StatusGone)
			}

			// The healthy worker finishes the re-granted task and the rest.
			rep := mineLease(t, store, healthy, split)
			rep.Worker = "healthy"
			if code := postJSON(t, srv, "/cluster/report", rep, nil); code != http.StatusOK {
				t.Fatalf("healthy report: status %d", code)
			}
			drainJob(t, srv, store, "healthy", split)

			st, ok := c.JobStatusByID("j")
			if !ok || st.State != "done" {
				t.Fatalf("job state %q, want done", st.State)
			}
			if st.Ordered != want {
				t.Errorf("ordered = %d, want %d (exactly-once violated)", st.Ordered, want)
			}
			if st.Reassigned == 0 {
				t.Error("no reassignment recorded")
			}
			if st.Fenced == 0 {
				t.Error("no fenced report recorded")
			}
		})
	}
}

// TestExpiredButUnclaimedReportSalvaged: a report that arrives after the TTL
// but before anyone re-claimed the task still matches the epoch, so the work
// is salvaged instead of redone.
func TestExpiredButUnclaimedReportSalvaged(t *testing.T) {
	store, pat, want := starWorkload(t)
	clk := newFakeClock()
	c, srv := testCluster(t, store, Config{LeaseTTL: 10 * time.Second, Parts: 2, now: clk.Now})
	if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
		t.Fatalf("start job: %v", err)
	}
	lease := leaseAs(t, srv, store, "slow")
	if lease == nil {
		t.Fatal("no lease granted")
	}
	rep := mineLease(t, store, lease, 0)
	rep.Worker = "slow"
	clk.Advance(11 * time.Second)
	// Trigger the sweep via a status read — the task goes back to pending —
	// then report anyway: epoch still matches, work is accepted.
	c.Status()
	if code := postJSON(t, srv, "/cluster/report", rep, nil); code != http.StatusOK {
		t.Fatalf("salvage report: status %d, want 200", code)
	}
	drainJob(t, srv, store, "slow", 0)
	st, _ := c.JobStatusByID("j")
	if st.State != "done" || st.Ordered != want {
		t.Fatalf("state=%q ordered=%d, want done/%d", st.State, st.Ordered, want)
	}
}

// TestHeartbeatResurrectsExpiredLease: a slow-but-alive worker whose lease
// expired unclaimed gets it back on its next heartbeat (same epoch), and the
// task is NOT handed to anyone else afterwards.
func TestHeartbeatResurrectsExpiredLease(t *testing.T) {
	store, pat, want := starWorkload(t)
	clk := newFakeClock()
	c, srv := testCluster(t, store, Config{LeaseTTL: 10 * time.Second, Parts: 1, now: clk.Now})
	if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
		t.Fatalf("start job: %v", err)
	}
	lease := leaseAs(t, srv, store, "slow")
	if lease == nil {
		t.Fatal("no lease granted")
	}
	clk.Advance(11 * time.Second)
	c.Status() // sweep: the lease expires to pending
	code := postJSON(t, srv, "/cluster/heartbeat", HeartbeatRequest{
		Worker: "slow", Job: lease.Job, Task: lease.Task, Epoch: lease.Epoch,
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("resurrecting heartbeat: status %d, want 200", code)
	}
	if other := leaseAs(t, srv, store, "other"); other != nil {
		t.Fatalf("resurrected task %d was also granted to another worker", other.Task)
	}
	rep := mineLease(t, store, lease, 0)
	rep.Worker = "slow"
	if code := postJSON(t, srv, "/cluster/report", rep, nil); code != http.StatusOK {
		t.Fatalf("report after resurrection: status %d", code)
	}
	st, _ := c.JobStatusByID("j")
	if st.State != "done" || st.Ordered != want {
		t.Fatalf("state=%q ordered=%d, want done/%d", st.State, st.Ordered, want)
	}
}

// TestRemainderSpill: a worker cut short mid-task reports its partial count
// plus the unfinished frontier; the coordinator re-enqueues the remainder
// and a second pass finishes it — total exact on both scheduler paths.
func TestRemainderSpill(t *testing.T) {
	for _, split := range []int{0, -1} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			store, pat, want := starWorkload(t)
			c, srv := testCluster(t, store, Config{Parts: 1})
			if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
				t.Fatalf("start job: %v", err)
			}
			lease := leaseAs(t, srv, store, "quitter")
			if lease == nil {
				t.Fatal("no lease granted")
			}
			snap, err := checkpoint.Decode(bytes.NewReader(lease.Snapshot))
			if err != nil {
				t.Fatalf("decode lease snapshot: %v", err)
			}
			p, err := pattern.Parse(lease.Pattern)
			if err != nil {
				t.Fatalf("parse lease pattern: %v", err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			mem := &checkpoint.MemSink{}
			var seen int
			opts := engine.Options{
				Workers: 1, SplitDepth: split,
				Checkpoint: mem,
				OnEmbedding: func([]uint32) {
					// Throttle (busy-wait: sleep granularity would distort
					// it) so the cancellation lands while work remains.
					end := time.Now().Add(20 * time.Microsecond)
					for time.Now().Before(end) {
					}
					seen++
					if seen == 100 {
						cancel() // graceful shutdown partway through the task
					}
				},
			}
			plan, err := engine.CompilePlan(store, p, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := engine.ResumeWithPlanContext(ctx, store, plan, snap, opts)
			if err == nil || res.Ordered >= want {
				t.Fatalf("cancellation missed (err=%v, ordered=%d)", err, res.Ordered)
			}
			if !res.Truncated || mem.Bytes() == nil {
				t.Fatalf("no remainder snapshot (truncated=%v)", res.Truncated)
			}
			rep := Report{
				Worker: "quitter", Job: lease.Job, Task: lease.Task, Epoch: lease.Epoch,
				Ordered: res.Ordered, Stats: engine.PackStats(res.Stats),
				Remainder: mem.Bytes(),
			}
			if code := postJSON(t, srv, "/cluster/report", rep, nil); code != http.StatusOK {
				t.Fatalf("partial report: status %d", code)
			}
			st, _ := c.JobStatusByID("j")
			if st.State != "running" || st.Spilled == 0 {
				t.Fatalf("after spill: state=%q spilled=%d, want running with a spill", st.State, st.Spilled)
			}
			drainJob(t, srv, store, "finisher", split)
			st, _ = c.JobStatusByID("j")
			if st.State != "done" {
				t.Fatalf("job state %q, want done", st.State)
			}
			if st.Ordered != want {
				t.Errorf("ordered = %d, want %d (spill lost or double-counted work)", st.Ordered, want)
			}
		})
	}
}

// TestThreeWorkersExactCount runs three real Worker loops against the HTTP
// surface and requires the distributed total to equal the single-node one.
func TestThreeWorkersExactCount(t *testing.T) {
	for _, split := range []int{0, -1} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			store, pat, want := starWorkload(t)
			c, srv := testCluster(t, store, Config{LeaseTTL: 5 * time.Second, Parts: 8})
			if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
				t.Fatalf("start job: %v", err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				w, err := NewWorker(WorkerConfig{
					Coordinator: srv.URL,
					Name:        fmt.Sprintf("w%d", i),
					Store:       store,
					Poll:        5 * time.Millisecond,
					Engine:      engine.Options{Workers: 2, SplitDepth: split},
				})
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
				wg.Add(1)
				go func() { defer wg.Done(); _ = w.Run(ctx) }()
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				st, _ := c.JobStatusByID("j")
				if st.State == "done" {
					if st.Ordered != want {
						t.Errorf("ordered = %d, want %d", st.Ordered, want)
					}
					if auto := uint64(st.Automorphisms); st.Unique != want/auto {
						t.Errorf("unique = %d, want %d", st.Unique, want/auto)
					}
					break
				}
				if st.State == "failed" {
					t.Fatalf("job failed: %s", st.Error)
				}
				if time.Now().After(deadline) {
					t.Fatalf("job never completed: %+v", st)
				}
				time.Sleep(5 * time.Millisecond)
			}
			cancel()
			wg.Wait()
		})
	}
}

// TestGraphFingerprintMismatch: a worker holding a different dataset is
// refused up front with 409.
func TestGraphFingerprintMismatch(t *testing.T) {
	store, pat, _ := starWorkload(t)
	c, srv := testCluster(t, store, Config{})
	if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
		t.Fatalf("start job: %v", err)
	}
	var er errorResponse
	code := postJSON(t, srv, "/cluster/lease", LeaseRequest{Worker: "alien", GraphFP: 0xdead}, nil)
	if code != http.StatusConflict {
		t.Fatalf("mismatched lease: status %d, want %d (%s)", code, http.StatusConflict, er.Error)
	}
}

// TestJobLifecycleHTTP covers the job-management surface: create, duplicate
// id, bad pattern, unknown id, and the status endpoints.
func TestJobLifecycleHTTP(t *testing.T) {
	store, pat, _ := starWorkload(t)
	_, srv := testCluster(t, store, Config{Parts: 4})

	var st JobStatus
	if code := postJSON(t, srv, "/cluster/jobs", jobCreateRequest{ID: "a", JobSpec: JobSpec{Pattern: pat}}, &st); code != http.StatusAccepted {
		t.Fatalf("create: status %d", code)
	}
	if st.Parts != 4 || st.Pending != 4 || st.State != "running" {
		t.Fatalf("fresh job status: %+v", st)
	}
	if code := postJSON(t, srv, "/cluster/jobs", jobCreateRequest{ID: "a", JobSpec: JobSpec{Pattern: pat}}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate id: status %d, want 409", code)
	}
	if code := postJSON(t, srv, "/cluster/jobs", jobCreateRequest{ID: "b", JobSpec: JobSpec{Pattern: "not a pattern"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad pattern: status %d, want 400", code)
	}
	if code := postJSON(t, srv, "/cluster/jobs", jobCreateRequest{ID: "sl/ash", JobSpec: JobSpec{Pattern: pat}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", code)
	}

	resp, err := http.Get(srv.URL + "/cluster/jobs/a")
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	var withTasks JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&withTasks); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	resp.Body.Close()
	if len(withTasks.Tasks) != 4 {
		t.Fatalf("job status lists %d tasks, want 4", len(withTasks.Tasks))
	}
	if resp, err = http.Get(srv.URL + "/cluster/jobs/nope"); err != nil {
		t.Fatalf("GET missing job: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job: status %d, want 404", resp.StatusCode)
		}
	}

	resp, err = http.Get(srv.URL + "/cluster")
	if err != nil {
		t.Fatalf("GET /cluster: %v", err)
	}
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatalf("decode cluster status: %v", err)
	}
	resp.Body.Close()
	if len(cs.Jobs) != 1 || cs.Jobs[0].ID != "a" {
		t.Fatalf("cluster status jobs: %+v", cs.Jobs)
	}
	if cs.GraphFP != store.Hypergraph().Fingerprint() {
		t.Fatal("cluster status carries the wrong graph fingerprint")
	}
}

// TestTaskFailureRequeueAndJobFail: an errored task is retried, and the job
// fails cleanly once one task exhausts MaxTaskFailures.
func TestTaskFailureRequeueAndJobFail(t *testing.T) {
	store, pat, _ := starWorkload(t)
	c, srv := testCluster(t, store, Config{Parts: 1, MaxTaskFailures: 2})
	if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
		t.Fatalf("start job: %v", err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		lease := leaseAs(t, srv, store, "broken")
		if lease == nil {
			t.Fatalf("attempt %d: no lease", attempt)
		}
		rep := Report{
			Worker: "broken", Job: lease.Job, Task: lease.Task, Epoch: lease.Epoch,
			Error: "injected failure",
		}
		if code := postJSON(t, srv, "/cluster/report", rep, nil); code != http.StatusOK {
			t.Fatalf("attempt %d: error report status %d", attempt, code)
		}
	}
	st, _ := c.JobStatusByID("j")
	if st.State != "failed" {
		t.Fatalf("job state %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "injected failure") {
		t.Fatalf("job error %q does not carry the task failure", st.Error)
	}
}

// TestPartitionCoversCandidates: the initial partition covers the first
// hyperedge's candidate space exactly — no range lost, none duplicated.
func TestPartitionCoversCandidates(t *testing.T) {
	store, pat, _ := starWorkload(t)
	p, err := pattern.Parse(pat)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := engine.CompilePlan(store, p, engine.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cands := engine.FirstCandidates(store, plan, engine.Options{})
	for _, parts := range []int{1, 3, 16, len(cands), len(cands) + 7} {
		tasks := engine.PartitionFrontier(cands, parts)
		var got []uint32
		for _, task := range tasks {
			if task.Depth != 0 || len(task.Prefix) != 0 {
				t.Fatalf("parts=%d: partition task not at depth 0: %+v", parts, task)
			}
			got = append(got, task.Cands...)
		}
		if len(got) != len(cands) {
			t.Fatalf("parts=%d: partition covers %d candidates, want %d", parts, len(got), len(cands))
		}
		for i := range got {
			if got[i] != cands[i] {
				t.Fatalf("parts=%d: candidate %d is %d, want %d", parts, i, got[i], cands[i])
			}
		}
	}
}
