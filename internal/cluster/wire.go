package cluster

// Wire-level types of the coordinator/worker HTTP/JSON protocol. The task
// payload itself is not JSON: a leased task range (and a spilled remainder)
// travels as an OHMC snapshot — the versioned, CRC-protected checkpoint
// format of internal/checkpoint — carried base64-inline in the JSON body.
// That buys the wire what it buys the disk: torn/corrupt payloads are
// rejected structurally, and the embedded plan/graph fingerprints stop a
// worker from mining a lease against the wrong dataset or matching order.

// JobSpec describes one distributed mining job — the body of
// POST /cluster/jobs (plus an optional "id").
type JobSpec struct {
	// Pattern is the pattern literal, e.g. "0 1 2; 2 3 4".
	Pattern string `json:"pattern"`
	// Variant selects the engine configuration by paper name (default
	// "OHMiner").
	Variant string `json:"variant,omitempty"`
	// DataAwareOrder derives the matching order from data selectivity. It
	// changes the plan fingerprint, so workers compile the same order from
	// their local copy of the store.
	DataAwareOrder bool `json:"data_aware_order,omitempty"`
	// Parts overrides the coordinator's default task partition count.
	Parts int `json:"parts,omitempty"`
}

// jobCreateRequest is the body of POST /cluster/jobs.
type jobCreateRequest struct {
	// ID names the job (letters, digits, '-', '_'; ≤64 chars). Empty picks
	// a unique one.
	ID string `json:"id,omitempty"`
	JobSpec
}

// LeaseRequest is the body of POST /cluster/lease: a worker asking for work.
type LeaseRequest struct {
	// Worker names the requesting worker; leases, heartbeats, and reports
	// are fenced per (task, epoch, worker).
	Worker string `json:"worker"`
	// GraphFP is the fingerprint of the worker's local data hypergraph; a
	// mismatch is refused up front (409) instead of failing every lease the
	// worker would mine.
	GraphFP uint64 `json:"graph_fp"`
}

// Lease is the 200 body of POST /cluster/lease. A 204 means no work is
// available right now.
type Lease struct {
	Job   string `json:"job"`
	Task  int    `json:"task"`
	Epoch uint64 `json:"epoch"`
	// Pattern/Variant/DataAwareOrder let the worker compile the job's exact
	// plan locally; the snapshot's embedded fingerprint then proves the
	// compilation matched.
	Pattern        string `json:"pattern"`
	Variant        string `json:"variant,omitempty"`
	DataAwareOrder bool   `json:"data_aware_order,omitempty"`
	// Snapshot is the OHMC-encoded task payload: a zero-counter snapshot
	// whose frontier is exactly the leased task range.
	Snapshot []byte `json:"snapshot"`
	// HeartbeatMS is the renewal period the worker should post heartbeats
	// at; TTLMS is the lease deadline a missed heartbeat forfeits.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	TTLMS       int64 `json:"ttl_ms"`
}

// HeartbeatRequest is the body of POST /cluster/heartbeat. A 200 renews the
// lease; a 410 means the lease is gone (expired and reassigned) and the
// worker should abandon the task.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Task   int    `json:"task"`
	Epoch  uint64 `json:"epoch"`
}

// Report is the body of POST /cluster/report: the outcome of one leased
// task. A 200 means the counters were merged (exactly once); a 410 means
// the report was fenced — the lease epoch no longer matches, i.e. the task
// was reassigned while this worker was presumed dead, and its late counts
// are discarded to preserve exactly-once merging.
type Report struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Task   int    `json:"task"`
	Epoch  uint64 `json:"epoch"`
	// Ordered is the number of ordered embeddings this task's exploration
	// counted.
	Ordered uint64 `json:"ordered"`
	// Stats carries the engine's packed Stats counters (engine.PackStats).
	Stats []uint64 `json:"stats,omitempty"`
	// Remainder, when present, is the OHMC-encoded frontier the worker did
	// not finish (graceful shutdown mid-task): Ordered covers everything
	// outside it, and the coordinator re-enqueues it as a fresh task —
	// together they preserve the exactly-once partition of the search space.
	Remainder []byte `json:"remainder,omitempty"`
	// Error reports a task that failed on the worker (bad plan, panic);
	// the coordinator re-queues the task and fails the job after repeated
	// failures.
	Error string `json:"error,omitempty"`
}

// TaskStatus summarizes one task lease in a job status.
type TaskStatus struct {
	ID    int    `json:"id"`
	State string `json:"state"` // pending | leased | done
	// Cands is the task's candidate-range length (depth-0 tasks) or frontier
	// candidate total (spilled remainders).
	Cands   int    `json:"cands"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Ordered uint64 `json:"ordered,omitempty"`
	// Spilled marks a task created from a reported remainder rather than the
	// initial partition.
	Spilled bool `json:"spilled,omitempty"`
}

// JobStatus is the JSON body of GET /cluster/jobs/{id} and the per-job rows
// of GET /cluster.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running | done | failed
	// Parts is the current task count (initial partitions + spills).
	Parts   int `json:"parts"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	// Ordered/Unique are the merged counts so far (final once State=done).
	Ordered       uint64 `json:"ordered"`
	Unique        uint64 `json:"unique"`
	Automorphisms int    `json:"automorphisms"`
	// Reassigned counts leases reclaimed from expired workers; Fenced counts
	// late zombie reports discarded; Spilled counts remainder tasks created
	// from partial reports.
	Reassigned int `json:"reassigned,omitempty"`
	Fenced     int `json:"fenced,omitempty"`
	Spilled    int `json:"spilled,omitempty"`
	// Failures counts worker-side task errors (the job fails after
	// MaxTaskFailures on one task).
	Failures  int          `json:"failures,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Error     string       `json:"error,omitempty"`
	Tasks     []TaskStatus `json:"tasks,omitempty"`
}

// WorkerStatus is one row of the worker table in GET /cluster.
type WorkerStatus struct {
	Name string `json:"name"`
	// LastSeenMS is the age of the worker's last lease/heartbeat/report.
	LastSeenMS float64 `json:"last_seen_ms"`
	// Leased is the number of tasks the worker currently holds.
	Leased int `json:"leased"`
}

// ClusterStatus is the JSON body of GET /cluster.
type ClusterStatus struct {
	GraphFP    uint64         `json:"graph_fp"`
	LeaseTTLMS int64          `json:"lease_ttl_ms"`
	Jobs       []JobStatus    `json:"jobs"`
	Workers    []WorkerStatus `json:"workers"`
	// Cumulative coordinator counters (mirrored in expvar "ohmcluster").
	Leases     int64 `json:"leases"`
	Reports    int64 `json:"reports"`
	Fenced     int64 `json:"fenced"`
	Reassigned int64 `json:"reassigned"`
	Spills     int64 `json:"spills"`

	// Durability & recovery observability (see docs/DISTRIBUTED.md,
	// "Coordinator durability & recovery"). Durable is true when the
	// coordinator runs with a WAL (-cluster-dir); Degraded means it is
	// currently shedding work because the WAL cannot persist it.
	Durable           bool  `json:"durable"`
	Degraded          bool  `json:"degraded,omitempty"`
	WALRecords        int64 `json:"wal_records,omitempty"`
	WALBytes          int64 `json:"wal_bytes,omitempty"`
	WALCompactions    int64 `json:"wal_compactions,omitempty"`
	ReplayedJobs      int64 `json:"replayed_jobs,omitempty"`
	ResurrectedLeases int64 `json:"resurrected_leases,omitempty"`
	DegradedRejects   int64 `json:"degraded_rejects,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}
