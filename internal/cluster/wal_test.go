package cluster

// Durability tests for the coordinator WAL (wal.go): crash/replay with the
// exactly-once merge contract, torn-tail tolerance, corrupt-record refusal,
// snapshot+log compaction equivalence, and the full-disk degrade/self-heal
// loop. Crashes are simulated with wal.kill() — flusher stopped, file
// abandoned unsynced — and a second coordinator opened over the same
// directory, exactly what a restarted process does.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ohminer/internal/crcio"
	"ohminer/internal/dal"
	"ohminer/internal/faultinject"
)

// durableCluster builds a coordinator over dir plus its HTTP surface.
func durableCluster(t *testing.T, store *dal.Store, dir string, clk *fakeClock) (*Coordinator, *httptest.Server) {
	t.Helper()
	return testCluster(t, store, Config{
		LeaseTTL: 10 * time.Second, Parts: 4, Dir: dir, now: clk.Now,
	})
}

// crash abandons the coordinator's WAL without a clean close, simulating a
// process kill. The httptest server keeps answering from the dead state
// until the test stops using it.
func crash(c *Coordinator) { c.wal.kill() }

// TestWALReplayThenMergeExactlyOnce is the headline durability contract on
// both scheduler paths: a coordinator dies with one task merged and another
// leased out; the restarted coordinator replays its state, resurrects the
// in-flight lease as pending (same epoch), salvages the pre-crash worker's
// late report exactly once, fences a duplicate of the already-merged report,
// and finishes with single-node-exact counts.
func TestWALReplayThenMergeExactlyOnce(t *testing.T) {
	for _, split := range []int{0, -1} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			store, pat, want := starWorkload(t)
			dir := t.TempDir()
			clk := newFakeClock()

			c1, srv1 := durableCluster(t, store, dir, clk)
			if _, err := c1.StartJob("j", JobSpec{Pattern: pat}); err != nil {
				t.Fatalf("start job: %v", err)
			}
			merged := leaseAs(t, srv1, store, "w1")
			if merged == nil {
				t.Fatal("no lease granted")
			}
			mergedRep := mineLease(t, store, merged, split)
			mergedRep.Worker = "w1"
			if code := postJSON(t, srv1, "/cluster/report", mergedRep, nil); code != http.StatusOK {
				t.Fatalf("report: status %d", code)
			}
			inflight := leaseAs(t, srv1, store, "w1")
			if inflight == nil {
				t.Fatal("no second lease granted")
			}
			// The worker mines the in-flight lease… and the coordinator dies.
			inflightRep := mineLease(t, store, inflight, split)
			inflightRep.Worker = "w1"
			crash(c1)

			c2, srv2 := durableCluster(t, store, dir, clk)
			st, ok := c2.JobStatusByID("j")
			if !ok {
				t.Fatal("job lost across restart")
			}
			if st.State != "running" || st.Done != 1 || st.Ordered != mergedRep.Ordered {
				t.Fatalf("replayed job: state=%s done=%d ordered=%d, want running/1/%d",
					st.State, st.Done, st.Ordered, mergedRep.Ordered)
			}
			if st.Leased != 0 {
				t.Fatalf("replayed job still shows %d leased tasks; all leases must be force-expired", st.Leased)
			}
			cst := c2.Status()
			if cst.ReplayedJobs != 1 || cst.ResurrectedLeases != 1 {
				t.Fatalf("recovery counters: replayed=%d resurrected=%d, want 1/1", cst.ReplayedJobs, cst.ResurrectedLeases)
			}
			if !cst.Durable {
				t.Fatal("durable coordinator reports durable=false")
			}

			// The pre-crash worker's report arrives late: epoch still matches
			// the resurrected (pending) task, so the work is salvaged.
			if code := postJSON(t, srv2, "/cluster/report", inflightRep, nil); code != http.StatusOK {
				t.Fatalf("salvage report after restart: status %d", code)
			}
			// A duplicate of the pre-crash merged report must be fenced: that
			// task was already counted, replay included.
			if code := postJSON(t, srv2, "/cluster/report", mergedRep, nil); code != http.StatusGone {
				t.Fatalf("duplicate report: status %d, want 410", code)
			}
			drainJob(t, srv2, store, "w2", split)
			st, _ = c2.JobStatusByID("j")
			if st.State != "done" || st.Ordered != want {
				t.Fatalf("after restart: state=%s ordered=%d, want done/%d", st.State, st.Ordered, want)
			}

			// Third incarnation: the finished job survives compaction and
			// another replay with the same exact count.
			c2.Close()
			c3, _ := durableCluster(t, store, dir, clk)
			st, ok = c3.JobStatusByID("j")
			if !ok || st.State != "done" || st.Ordered != want {
				t.Fatalf("second restart: ok=%v state=%s ordered=%d, want done/%d", ok, st.State, st.Ordered, want)
			}
		})
	}
}

// TestWALTornFinalRecordTolerated crashes mid-append: a torn final frame
// (and, separately, a few garbage bytes) after valid records must be
// truncated away while every intact record replays.
func TestWALTornFinalRecordTolerated(t *testing.T) {
	for _, tear := range []struct {
		name string
		tail func() []byte
	}{
		{"half-frame", func() []byte {
			// A plausible length prefix promising more bytes than exist.
			tail := make([]byte, 14)
			binary.LittleEndian.PutUint32(tail, 100)
			copy(tail[4:], "{\"seq\":99,")
			return tail
		}},
		{"two-bytes", func() []byte { return []byte{0x7f, 0x01} }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			store, pat, _ := starWorkload(t)
			dir := t.TempDir()
			clk := newFakeClock()

			c1, srv1 := durableCluster(t, store, dir, clk)
			if _, err := c1.StartJob("j", JobSpec{Pattern: pat}); err != nil {
				t.Fatalf("start job: %v", err)
			}
			lease := leaseAs(t, srv1, store, "w1")
			if lease == nil {
				t.Fatal("no lease granted")
			}
			crash(c1)

			path := filepath.Join(dir, walFile)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear.tail()); err != nil {
				t.Fatal(err)
			}
			f.Close()

			c2, _ := durableCluster(t, store, dir, clk)
			st, ok := c2.JobStatusByID("j")
			if !ok || st.State != "running" {
				t.Fatalf("torn tail lost the job: ok=%v state=%s", ok, st.State)
			}
			// The admitted job and its grant both replayed: the granted task
			// is pending again with its epoch intact.
			if st.Tasks[lease.Task].Epoch != lease.Epoch {
				t.Fatalf("task epoch %d, want %d preserved across torn-tail replay",
					st.Tasks[lease.Task].Epoch, lease.Epoch)
			}
		})
	}
}

// TestWALCorruptRecordRefused flips a byte inside a complete mid-file record:
// that is not a torn tail, it is corruption, and startup must refuse with
// ErrCorrupt instead of mining from a wrong lease state.
func TestWALCorruptRecordRefused(t *testing.T) {
	store, pat, _ := starWorkload(t)
	dir := t.TempDir()
	clk := newFakeClock()

	c1, srv1 := durableCluster(t, store, dir, clk)
	if _, err := c1.StartJob("j", JobSpec{Pattern: pat}); err != nil {
		t.Fatalf("start job: %v", err)
	}
	if lease := leaseAs(t, srv1, store, "w1"); lease == nil {
		t.Fatal("no lease granted")
	}
	crash(c1)

	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First frame starts after the header: flip a payload byte.
	n := binary.LittleEndian.Uint32(data[walHdrLen:])
	if int(walHdrLen+4+n) > len(data) {
		t.Fatalf("test setup: first frame (%d bytes) overruns file (%d)", n, len(data))
	}
	data[walHdrLen+4+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = New(store, Config{Dir: dir, now: clk.Now})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt record: err=%v, want ErrCorrupt", err)
	}

	// Same contract for a corrupt state snapshot.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, stateFile)
	sdata := make([]byte, walHdrLen+8)
	binary.LittleEndian.PutUint32(sdata, stateMagic)
	binary.LittleEndian.PutUint32(sdata[4:], stateVersion)
	binary.LittleEndian.PutUint32(sdata[len(sdata)-4:], crcio.Checksum(sdata[:len(sdata)-4])^0xdeadbeef)
	if err := os.WriteFile(spath, sdata, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(store, Config{Dir: dir, now: clk.Now})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err=%v, want ErrCorrupt", err)
	}
}

// TestWALSnapshotCompactionEquivalence: a finished job lives only in the
// compacted snapshot, a running one partly in the snapshot and partly in the
// log tail — replaying the combination must reproduce the coordinator's
// pre-crash view exactly, and completing the running job must still hit the
// single-node count.
func TestWALSnapshotCompactionEquivalence(t *testing.T) {
	store, pat, want := starWorkload(t)
	dir := t.TempDir()
	clk := newFakeClock()

	c1, srv1 := durableCluster(t, store, dir, clk)
	if _, err := c1.StartJob("j1", JobSpec{Pattern: pat}); err != nil {
		t.Fatal(err)
	}
	drainJob(t, srv1, store, "w1", 0)
	r1, _, comp1 := c1.wal.stats()
	if comp1 == 0 {
		t.Fatalf("job completion did not compact the WAL (records=%d)", r1)
	}
	// j2: one task merged (log records after the snapshot), rest pending.
	if _, err := c1.StartJob("j2", JobSpec{Pattern: pat}); err != nil {
		t.Fatal(err)
	}
	lease := leaseAs(t, srv1, store, "w1")
	rep := mineLease(t, store, lease, 0)
	rep.Worker = "w1"
	if code := postJSON(t, srv1, "/cluster/report", rep, nil); code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	before1, _ := c1.JobStatusByID("j1")
	before2, _ := c1.JobStatusByID("j2")
	crash(c1)

	c2, srv2 := durableCluster(t, store, dir, clk)
	after1, ok1 := c2.JobStatusByID("j1")
	after2, ok2 := c2.JobStatusByID("j2")
	if !ok1 || !ok2 {
		t.Fatalf("jobs lost: j1=%v j2=%v", ok1, ok2)
	}
	if after1.State != before1.State || after1.Ordered != before1.Ordered || after1.Unique != before1.Unique {
		t.Fatalf("j1 (snapshot-only) diverged: %+v -> %+v", before1, after1)
	}
	if after2.State != before2.State || after2.Ordered != before2.Ordered || after2.Done != before2.Done || after2.Parts != before2.Parts {
		t.Fatalf("j2 (snapshot+log) diverged: %+v -> %+v", before2, after2)
	}
	drainJob(t, srv2, store, "w2", 0)
	final, _ := c2.JobStatusByID("j2")
	if final.State != "done" || final.Ordered != want {
		t.Fatalf("j2 after restart: state=%s ordered=%d, want done/%d", final.State, final.Ordered, want)
	}
}

// TestWALNoSpaceDegradesThenHeals: a full disk must shed new work with 503 +
// Retry-After (nothing may be accepted that can't be made durable), and the
// flusher's probe records must bring the coordinator back on their own once
// space frees up — no restart, no operator.
func TestWALNoSpaceDegradesThenHeals(t *testing.T) {
	store, pat, want := starWorkload(t)
	dir := t.TempDir()
	clk := newFakeClock()
	nw := &faultinject.NoSpaceWriter{}
	c, err := New(store, Config{
		LeaseTTL: 10 * time.Second, Parts: 4, Dir: dir, now: clk.Now,
		FlushEvery: 5 * time.Millisecond,
		WALWrap:    func(w io.Writer) io.Writer { nw.W = w; return nw },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	mux := http.NewServeMux()
	c.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	nw.Break()
	code := postJSON(t, srv, "/cluster/jobs", jobCreateRequest{ID: "j", JobSpec: JobSpec{Pattern: pat}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("job create on full disk: status %d, want 503", code)
	}
	if !c.Degraded() {
		t.Fatal("coordinator not degraded after a failed append")
	}
	// Degraded rejections must carry Retry-After.
	resp, err := http.Post(srv.URL+"/cluster/jobs", "application/json",
		strings.NewReader(`{"id":"j","pattern":"0 1; 0 2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded shed: status=%d retry-after=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if st := c.Status(); !st.Degraded || st.DegradedRejects == 0 {
		t.Fatalf("status while degraded: degraded=%v rejects=%d", st.Degraded, st.DegradedRejects)
	}

	nw.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for c.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator did not self-heal after the disk came back")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.StartJob("j", JobSpec{Pattern: pat}); err != nil {
		t.Fatalf("start job after heal: %v", err)
	}
	drainJob(t, srv, store, "w1", 0)
	st, _ := c.JobStatusByID("j")
	if st.State != "done" || st.Ordered != want {
		t.Fatalf("after heal: state=%s ordered=%d, want done/%d", st.State, st.Ordered, want)
	}
	if dropped := nw.Dropped(); dropped == 0 {
		t.Fatal("fault writer never saw a dropped write")
	}
}
