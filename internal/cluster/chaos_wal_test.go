package cluster

// WAL chaos: a durable coordinator is killed (or suffers a torn append) after
// its k-th logged record while three real workers are mid-job; a second
// coordinator recovers from the same directory and takes over behind the same
// URL — and the final count must still be exact. This is the whole durability
// story end to end: the crashed coordinator sheds everything it cannot
// persist, the replacement replays admit/grant/report records, force-expires
// the orphaned leases with their epochs intact, and either salvages the
// original workers' late reports or fences them while the task is redone.
//
// Runs race-instrumented via `make chaos` on both scheduler paths.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ohminer/internal/engine"
	"ohminer/internal/faultinject"
)

func TestChaosWALCoordinatorKillRestart(t *testing.T) {
	for _, split := range []int{0, -1} {
		for _, fault := range []string{"kill", "torn"} {
			t.Run(fmt.Sprintf("split=%d/%s", split, fault), func(t *testing.T) {
				store, pat, want := starWorkload(t)
				dir := t.TempDir()

				// Crash after the k-th record: record 1 is the job admit, so
				// k >= 3 guarantees the job plus at least two grants are on
				// disk, and the total record count of a full run (1 admit +
				// 8 grants + 8 reports + 1 finish) keeps every k mid-job.
				k := 3 + int(faultinject.Derive(uint64(split&1), "wal-"+fault, 4))
				crashed := make(chan struct{})
				var wrap func(io.Writer) io.Writer
				switch fault {
				case "kill":
					cw := &faultinject.CrashWriter{After: k, OnCrash: func() { close(crashed) }}
					wrap = func(w io.Writer) io.Writer { cw.W = w; return cw }
				case "torn":
					// No hook on TornWriter: the tear is observed through the
					// coordinator degrading (the rolled-back append sticks as
					// its shed cause).
					tw := &faultinject.TornWriter{At: k, KeepBytes: 7}
					wrap = func(w io.Writer) io.Writer { tw.W = w; return tw }
				}

				cfg := Config{LeaseTTL: 2 * time.Second, Parts: 8}
				c1cfg := cfg
				c1cfg.Dir = dir
				c1cfg.WALWrap = wrap
				c1, err := New(store, c1cfg)
				if err != nil {
					t.Fatalf("first coordinator: %v", err)
				}
				t.Cleanup(func() { c1.Close() })

				// The workers see one stable URL; the handler behind it is
				// swapped to the replacement coordinator after the crash,
				// standing in for the restarted process re-binding its port.
				var handler atomic.Value
				mux1 := http.NewServeMux()
				c1.Register(mux1)
				handler.Store(http.Handler(mux1))
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					handler.Load().(http.Handler).ServeHTTP(w, r)
				}))
				t.Cleanup(srv.Close)

				if _, err := c1.StartJob("chaos", JobSpec{Pattern: pat}); err != nil {
					t.Fatalf("start job: %v", err)
				}

				engOpts := engine.Options{Workers: 2, SplitDepth: split}
				throttle := faultinject.SlowEmbedding(100 * time.Microsecond)
				ctx, cancelAll := context.WithCancel(context.Background())
				defer cancelAll()
				var wg sync.WaitGroup
				for i := 0; i < 3; i++ {
					w := startChaosWorker(t, srv.URL, fmt.Sprintf("w%d", i), store, engOpts, nil, throttle)
					wg.Add(1)
					go func() { defer wg.Done(); _ = w.Run(ctx) }()
				}

				// Wait for the fault to engage. The kill signals the moment
				// the k-th record is durable; the tear is visible as the
				// coordinator degrading.
				switch fault {
				case "kill":
					select {
					case <-crashed:
					case <-time.After(30 * time.Second):
						t.Fatal("the WAL crash point never fired")
					}
				case "torn":
					waitFor(t, 30*time.Second, "the torn append never degraded the coordinator", func() bool {
						return c1.Degraded()
					})
				}

				// The replacement coordinator recovers from the same directory
				// (no fault writer this time) and takes over the URL. The dead
				// one keeps answering until the swap — shedding 503s, exactly
				// like a process that lost its disk.
				c2cfg := cfg
				c2cfg.Dir = dir
				c2, err := New(store, c2cfg)
				if err != nil {
					t.Fatalf("recovering coordinator: %v", err)
				}
				t.Cleanup(func() { c2.Close() })
				st2 := c2.Status()
				if st2.ReplayedJobs < 1 {
					t.Fatalf("replacement replayed %d jobs, want the admitted one", st2.ReplayedJobs)
				}
				mux2 := http.NewServeMux()
				c2.Register(mux2)
				handler.Store(http.Handler(mux2))

				waitFor(t, 60*time.Second, "job never completed after coordinator restart", func() bool {
					st, ok := c2.JobStatusByID("chaos")
					if ok && st.State == "failed" {
						t.Fatalf("job failed: %s", st.Error)
					}
					return ok && st.State == "done"
				})
				cancelAll()
				wg.Wait()

				st, _ := c2.JobStatusByID("chaos")
				if st.Ordered != want {
					t.Errorf("ordered = %d, want %d: the restart dropped or double-merged a task", st.Ordered, want)
				}
				if auto := uint64(st.Automorphisms); st.Unique != want/auto {
					t.Errorf("unique = %d, want %d", st.Unique, want/auto)
				}
			})
		}
	}
}
