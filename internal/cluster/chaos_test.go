package cluster

// Cluster chaos: one coordinator, three real workers, two injected failures
// racing a short lease TTL — and the final count must still be exact.
//
//   - "kill": the worker's network is cut and its context cancelled on its
//     first embedding — the SIGKILL stand-in. Its report is swallowed by
//     the partition, its lease expires, the task is reassigned.
//   - "zombie": the worker's network is cut mid-task and the worker stalls
//     (blocked in the embedding callback) until the job finishes without
//     it; then the partition heals and the zombie completes and reports —
//     late, with a stale epoch. The coordinator must fence the report out,
//     or the reassigned-and-redone task would be counted twice.
//   - "healthy": mines everything the other two drop.
//
// Runs race-instrumented via `make chaos` on both scheduler paths; the
// fault points are first-embedding triggers, so the schedule is as
// deterministic as the scenario allows.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/faultinject"
)

func TestChaosClusterKillAndZombie(t *testing.T) {
	for _, split := range []int{0, -1} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			store, pat, want := starWorkload(t)
			c, srv := testCluster(t, store, Config{
				LeaseTTL: 300 * time.Millisecond,
				Parts:    8,
			})
			if _, err := c.StartJob("chaos", JobSpec{Pattern: pat}); err != nil {
				t.Fatalf("start job: %v", err)
			}
			engOpts := engine.Options{Workers: 2, SplitDepth: split}
			throttle := faultinject.SlowEmbedding(100 * time.Microsecond)

			ctx, cancelAll := context.WithCancel(context.Background())
			defer cancelAll()
			var wg sync.WaitGroup

			// killed: partitioned and SIGKILLed (context cancel) on its first
			// embedding. The cut transport swallows the dying report, so from
			// the coordinator's view the worker simply vanished mid-lease.
			killCtx, kill := context.WithCancel(ctx)
			defer kill()
			killPT := &faultinject.PartitionTransport{}
			killed := startChaosWorker(t, srv.URL, "killed", store, engOpts, killPT,
				faultinject.HookAfter(1, func() {
					killPT.Cut()
					kill()
				}, throttle))
			wg.Add(1)
			go func() { defer wg.Done(); _ = killed.Run(killCtx) }()

			// zombie: partitioned on its first embedding, then stalled inside
			// the mining callback until the job completes without it. Its
			// heartbeats fail silently the whole time (it cannot tell a dead
			// coordinator from a dead link), so it keeps mining; after the
			// heal its report arrives with a long-stale epoch.
			zombiePT := &faultinject.PartitionTransport{}
			zombie := startChaosWorker(t, srv.URL, "zombie", store, engOpts, zombiePT,
				faultinject.HookAfter(1, func() {
					zombiePT.Cut()
					waitForJobDone(t, srv.URL, "chaos", 60*time.Second)
					zombiePT.Heal()
				}, throttle))
			wg.Add(1)
			go func() { defer wg.Done(); _ = zombie.Run(ctx) }()

			// Hold the healthy worker back until both faulty workers hold a
			// lease, so the fault scenarios are guaranteed to engage.
			waitFor(t, 10*time.Second, "faulty workers never leased", func() bool {
				return killed.Leases() >= 1 && zombie.Leases() >= 1
			})
			healthy := startChaosWorker(t, srv.URL, "healthy", store, engOpts, nil, throttle)
			wg.Add(1)
			go func() { defer wg.Done(); _ = healthy.Run(ctx) }()

			waitFor(t, 60*time.Second, "job never completed", func() bool {
				st, ok := c.JobStatusByID("chaos")
				if ok && st.State == "failed" {
					t.Fatalf("job failed: %s", st.Error)
				}
				return ok && st.State == "done"
			})

			// Let the zombie finish its stalled task and fire the late report
			// before asserting: its fence is the heart of the scenario.
			waitFor(t, 30*time.Second, "zombie report never fenced", func() bool {
				return zombie.Fenced() >= 1 || zombie.Lost() >= 1
			})
			cancelAll()
			wg.Wait()

			st, _ := c.JobStatusByID("chaos")
			if st.Ordered != want {
				t.Errorf("ordered = %d, want %d: a dropped or double-merged task", st.Ordered, want)
			}
			if auto := uint64(st.Automorphisms); st.Unique != want/auto {
				t.Errorf("unique = %d, want %d", st.Unique, want/auto)
			}
			if st.Reassigned == 0 {
				t.Error("no lease was reassigned — the kill never engaged")
			}
			if st.Fenced == 0 && zombie.Lost() == 0 {
				t.Error("the zombie was neither fenced nor told the lease was lost")
			}
			if killPT.Dropped() == 0 {
				t.Error("the killed worker's partition swallowed nothing")
			}
		})
	}
}

// startChaosWorker builds a Worker with an optional partitionable transport
// and an embedding hook.
func startChaosWorker(t *testing.T, url, name string, store *dal.Store, opts engine.Options, pt *faultinject.PartitionTransport, onEmbedding func([]uint32)) *Worker {
	t.Helper()
	client := http.DefaultClient
	if pt != nil {
		client = &http.Client{Transport: pt}
	}
	w, err := NewWorker(WorkerConfig{
		Coordinator: url,
		Name:        name,
		Store:       store,
		Client:      client,
		Poll:        10 * time.Millisecond,
		Engine:      opts,
		OnEmbedding: onEmbedding,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("worker %s: %v", name, err)
	}
	return w
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, limit time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForJobDone polls the job status endpoint through the default client
// (bypassing any partitioned transport) until the job leaves the running
// state. It runs on an engine worker goroutine, so failures use Error, and
// the deadline guarantees the suite never deadlocks on a broken scenario.
func waitForJobDone(t *testing.T, url, job string, limit time.Duration) {
	deadline := time.Now().Add(limit)
	for {
		resp, err := http.Get(url + "/cluster/jobs/" + job)
		if err == nil {
			var st JobStatus
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && st.State != "running" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Errorf("job %q still running after %v; healing the zombie anyway", job, limit)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
