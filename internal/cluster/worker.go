package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

// WorkerConfig configures one cluster worker process (or in-process worker
// in tests).
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name identifies this worker in leases and the cluster status page.
	Name string
	// Store is the worker's local copy of the data hypergraph; its
	// fingerprint must match the coordinator's.
	Store *dal.Store
	// Client performs the protocol round trips (nil = http.DefaultClient).
	// Tests inject a faultinject.PartitionTransport here.
	Client *http.Client
	// Poll is how long to wait between lease requests when the coordinator
	// has no work (0 = 500ms). It also seeds the error backoff: the first
	// retry after a transient failure waits about one Poll, then doubles.
	Poll time.Duration
	// RequestTimeout bounds every protocol round trip (0 = 5s, negative =
	// none). Without it a hung coordinator socket would stall the heartbeat
	// loop past the lease TTL and forfeit the lease; heartbeats additionally
	// cap the timeout at their own period so one stuck renewal can never
	// swallow the next.
	RequestTimeout time.Duration
	// MaxBackoff caps the jittered exponential backoff applied to
	// transient lease/report errors (0 = 30s).
	MaxBackoff time.Duration
	// Engine carries local execution knobs — Workers, Kernel, SplitDepth,
	// Instrument. Plan-shaping options (Gen/Val/DataAwareOrder) are
	// overridden per lease from the coordinator's job spec so every node
	// compiles the identical plan.
	Engine engine.Options
	// OnEmbedding, when set, observes every embedding mined locally (test
	// hook; also where faultinject wraps its triggers).
	OnEmbedding func([]uint32)
	// Logf, when set, receives one line per protocol event (cmd/ohmworker
	// points it at stderr; the smoke test watches for "lease ").
	Logf func(format string, args ...any)
}

// Worker runs the lease/mine/heartbeat/report loop against a coordinator.
type Worker struct {
	cfg     WorkerConfig
	graphFP uint64

	leases    atomic.Uint64 // tasks leased
	completed atomic.Uint64 // tasks reported complete
	partial   atomic.Uint64 // tasks reported with a remainder spill
	lost      atomic.Uint64 // leases abandoned after a heartbeat fence
	fenced    atomic.Uint64 // reports the coordinator refused as stale
}

// NewWorker validates the config and fingerprints the local store.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: worker needs a coordinator URL")
	}
	if cfg.Name == "" {
		return nil, errors.New("cluster: worker needs a name")
	}
	if cfg.Store == nil {
		return nil, errors.New("cluster: worker needs a store")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg, graphFP: cfg.Store.Hypergraph().Fingerprint()}, nil
}

// Leases reports how many tasks this worker has leased.
func (w *Worker) Leases() uint64 { return w.leases.Load() }

// Completed reports how many tasks this worker finished and reported.
func (w *Worker) Completed() uint64 { return w.completed.Load() }

// Partial reports how many tasks were reported with an unfinished remainder.
func (w *Worker) Partial() uint64 { return w.partial.Load() }

// Lost reports how many leases were abandoned after a heartbeat fence.
func (w *Worker) Lost() uint64 { return w.lost.Load() }

// Fenced reports how many of this worker's reports the coordinator refused.
func (w *Worker) Fenced() uint64 { return w.fenced.Load() }

// Run leases and mines tasks until ctx is cancelled (graceful shutdown: the
// in-flight task reports its partial count and unfinished frontier before
// Run returns) or a non-retryable protocol error occurs. The context error
// is returned on cancellation so callers can distinguish a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	// One backoff for the whole loop: consecutive transient failures
	// (coordinator restarting or degraded, network blip) stretch the retry
	// interval exponentially with jitter, and any successful round trip
	// resets it. This also covers the startup "coordinator not up yet" case.
	bo := NewBackoff(w.cfg.Poll, w.cfg.MaxBackoff)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.requestLease(ctx)
		if err != nil {
			var pe *protocolError
			if errors.As(err, &pe) && pe.code == http.StatusConflict {
				// Dataset mismatch never heals by retrying.
				return err
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			d := bo.Next()
			w.cfg.Logf("lease error (retry in %v): %v", d.Round(time.Millisecond), err)
			sleepCtx(ctx, d)
			continue
		}
		bo.Reset()
		if lease == nil {
			sleepCtx(ctx, w.cfg.Poll)
			continue
		}
		w.leases.Add(1)
		w.cfg.Logf("lease job=%s task=%d epoch=%d", lease.Job, lease.Task, lease.Epoch)
		w.runLease(ctx, lease)
	}
}

// runLease mines one leased task range and reports the outcome.
func (w *Worker) runLease(ctx context.Context, lease *Lease) {
	report := Report{
		Worker: w.cfg.Name,
		Job:    lease.Job,
		Task:   lease.Task,
		Epoch:  lease.Epoch,
	}
	res, remainder, err := w.mine(ctx, lease)
	switch {
	case err != nil && errors.Is(err, errLeaseLost):
		// The coordinator already fenced us out; a report would only be
		// refused. Drop the partial result — the task was reassigned and
		// will be counted exactly once by its new holder.
		w.lost.Add(1)
		w.cfg.Logf("lost job=%s task=%d epoch=%d", lease.Job, lease.Task, lease.Epoch)
		return
	case err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded):
		report.Error = err.Error()
	default:
		report.Ordered = res.Ordered
		report.Stats = engine.PackStats(res.Stats)
		report.Remainder = remainder
	}
	if err := w.sendReport(report); err != nil {
		var pe *protocolError
		if errors.As(err, &pe) && pe.code == http.StatusGone {
			w.fenced.Add(1)
			w.cfg.Logf("fenced job=%s task=%d epoch=%d: %s", lease.Job, lease.Task, lease.Epoch, pe.msg)
			return
		}
		// The report never arrived (crash-equivalent): the lease will
		// expire and the task be reassigned; nothing was merged.
		w.cfg.Logf("report error job=%s task=%d: %v", lease.Job, lease.Task, err)
		return
	}
	if len(report.Remainder) > 0 {
		w.partial.Add(1)
		w.cfg.Logf("partial job=%s task=%d ordered=%d", lease.Job, lease.Task, report.Ordered)
	} else if report.Error == "" {
		w.completed.Add(1)
		w.cfg.Logf("done job=%s task=%d ordered=%d", lease.Job, lease.Task, report.Ordered)
	} else {
		w.cfg.Logf("failed job=%s task=%d: %s", lease.Job, lease.Task, report.Error)
	}
}

// errLeaseLost marks a mining run aborted because the coordinator fenced the
// lease (heartbeat got a 410).
var errLeaseLost = errors.New("cluster: lease lost")

// mine runs the leased task range through the local engine, heartbeating in
// the background. It returns the engine result, the encoded unfinished
// remainder (nil when the range completed), and the first error.
func (w *Worker) mine(ctx context.Context, lease *Lease) (engine.Result, []byte, error) {
	p, err := pattern.Parse(lease.Pattern)
	if err != nil {
		return engine.Result{}, nil, fmt.Errorf("lease pattern: %w", err)
	}
	opts := w.cfg.Engine
	if lease.Variant != "" {
		v, err := engine.VariantByName(lease.Variant)
		if err != nil {
			return engine.Result{}, nil, err
		}
		opts.Gen, opts.Val = v.Gen, v.Val
	} else {
		opts.Gen, opts.Val = 0, 0
	}
	opts.DataAwareOrder = lease.DataAwareOrder
	opts.OnEmbedding = w.cfg.OnEmbedding
	mem := &checkpoint.MemSink{}
	opts.Checkpoint = mem
	opts.CheckpointEvery = 0 // snapshot only on a final stop
	plan, err := engine.CompilePlan(w.cfg.Store, p, opts)
	if err != nil {
		return engine.Result{}, nil, err
	}
	snap, err := checkpoint.Decode(bytes.NewReader(lease.Snapshot))
	if err != nil {
		return engine.Result{}, nil, fmt.Errorf("lease snapshot: %w", err)
	}

	taskCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(taskCtx, lease, cancel)
	}()

	res, err := engine.ResumeWithPlanContext(taskCtx, w.cfg.Store, plan, snap, opts)
	cancel(nil)
	<-hbDone
	if cause := context.Cause(taskCtx); errors.Is(cause, errLeaseLost) {
		return res, nil, errLeaseLost
	}
	var remainder []byte
	if res.Truncated {
		remainder = mem.Bytes()
	}
	return res, remainder, err
}

// heartbeatLoop renews the lease until ctx ends; a 410 means the lease was
// reassigned, so it cancels the mining run with errLeaseLost. Transport
// errors are ignored — a partitioned worker keeps mining (it cannot know
// whether the coordinator is down or the path is); the epoch fence makes
// that safe.
func (w *Worker) heartbeatLoop(ctx context.Context, lease *Lease, cancel context.CancelCauseFunc) {
	period := time.Duration(lease.HeartbeatMS) * time.Millisecond
	if period <= 0 {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		// Cap each renewal at its own period on top of the global request
		// timeout: if one heartbeat hangs, the next still fires on schedule
		// instead of queueing behind it until the TTL is forfeit.
		hbCtx, hbCancel := context.WithTimeout(ctx, period)
		err := w.post(hbCtx, "/cluster/heartbeat", HeartbeatRequest{
			Worker: w.cfg.Name, Job: lease.Job, Task: lease.Task, Epoch: lease.Epoch,
		}, nil)
		hbCancel()
		var pe *protocolError
		if errors.As(err, &pe) && pe.code == http.StatusGone {
			cancel(errLeaseLost)
			return
		}
	}
}

// requestLease asks for work; nil lease (no error) means none is available.
func (w *Worker) requestLease(ctx context.Context) (*Lease, error) {
	var lease Lease
	ok, err := w.postStatus(ctx, "/cluster/lease", LeaseRequest{Worker: w.cfg.Name, GraphFP: w.graphFP}, &lease)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return &lease, nil
}

// reportAttempts bounds sendReport's retry loop: the mined result is worth a
// few tries (a restarting or briefly degraded coordinator heals in seconds),
// but not an unbounded wait — past that the lease expires and the task is
// remined, which is correct, just wasted work.
const reportAttempts = 5

// sendReport posts the task outcome, detached from the run context so a
// graceful shutdown still delivers the final partial report after Run's
// context is already cancelled. Transport failures and 503 (coordinator
// degraded or mid-restart) are retried with jittered backoff; any other
// protocol verdict (410 fence, 4xx) is final.
func (w *Worker) sendReport(rep Report) error {
	bo := NewBackoff(w.cfg.Poll, 5*time.Second)
	var err error
	for attempt := 0; attempt < reportAttempts; attempt++ {
		if attempt > 0 {
			d := bo.Next()
			w.cfg.Logf("report retry in %v job=%s task=%d: %v", d.Round(time.Millisecond), rep.Job, rep.Task, err)
			time.Sleep(d)
		}
		err = w.post(context.Background(), "/cluster/report", rep, nil)
		if err == nil {
			return nil
		}
		var pe *protocolError
		if errors.As(err, &pe) && pe.code != http.StatusServiceUnavailable {
			return err
		}
	}
	return err
}

// protocolError is a non-2xx coordinator response.
type protocolError struct {
	code int
	msg  string
}

func (e *protocolError) Error() string {
	return fmt.Sprintf("coordinator: %d: %s", e.code, e.msg)
}

func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	_, err := w.postStatus(ctx, path, body, out)
	return err
}

// postStatus posts body as JSON and decodes a 2xx response into out (when
// non-nil). It returns (false, nil) on 204 No Content. Every request gets
// the per-request deadline from RequestTimeout — a hung coordinator socket
// must surface as an error, not an indefinite stall.
func (w *Worker) postStatus(ctx context.Context, path string, body, out any) (bool, error) {
	if w.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.cfg.RequestTimeout)
		defer cancel()
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = string(data)
		}
		return false, &protocolError{code: resp.StatusCode, msg: er.Error}
	}
	if out != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(out); err != nil {
			return false, fmt.Errorf("decoding %s response: %w", path, err)
		}
	}
	return true, nil
}

// sleepCtx sleeps for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
