// Package cluster implements the distributed mining layer: a coordinator
// that partitions the candidate space of the first pattern hyperedge into
// task leases and hands them to worker nodes over HTTP/JSON, plus the worker
// loop (cmd/ohmworker) that mines leased ranges through the local engine and
// reports partial counters.
//
// The design follows the observation (HGMatch; Sec. 4.4 of the paper) that
// hypergraph matching parallelizes over independent per-edge expansion
// tasks: the engine's checkpoint frontier is already exactly that task
// shape, so a depth-0 frontier task — a first-hyperedge candidate range —
// becomes the wire-level work unit, encoded as an OHMC snapshot
// (internal/checkpoint). Workers mine a lease with the unmodified
// single-node engine and report per-task counters; the coordinator merges
// them exactly once.
//
// Fault tolerance is lease-based. Every grant carries an epoch (incremented
// per assignment) and a TTL renewed by heartbeats. A worker that stops
// heartbeating — crashed, partitioned, or stalled — forfeits the lease: the
// task returns to the queue and the next grant bumps the epoch, fencing the
// presumed-dead worker out. If that worker was merely slow (a zombie), its
// late report carries the old epoch and is discarded, so the task's counts
// are merged exactly once no matter how the failure interleaves. A worker
// shutting down gracefully reports its partial count plus the unfinished
// frontier (the engine's final-stop snapshot), which the coordinator
// re-enqueues as a fresh task — nothing is lost, nothing double-counted:
// the invariant is the checkpoint/resume one, inherited wholesale.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// Config bounds the coordinator's lease protocol.
type Config struct {
	// LeaseTTL is how long a lease survives without a heartbeat before the
	// task is reclaimed and reassigned (0 = 10s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal period advertised to workers
	// (0 = LeaseTTL/3).
	HeartbeatEvery time.Duration
	// Parts is the default task partition count per job (0 = 16). More
	// parts than workers keeps slow nodes from stalling the tail.
	Parts int
	// MaxTaskFailures fails the whole job once a single task has been
	// reported failed this many times (0 = 3).
	MaxTaskFailures int

	// now is the test clock (nil = time.Now); lease-expiry tests advance it
	// instead of sleeping.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.Parts <= 0 {
		c.Parts = 16
	}
	if c.MaxTaskFailures <= 0 {
		c.MaxTaskFailures = 3
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// errJobExists marks a StartJob id collision (409 on the HTTP surface).
var errJobExists = errors.New("job already exists")

// task states of the lease machine.
const (
	taskPending = "pending"
	taskLeased  = "leased"
	taskDone    = "done"
)

// taskLease is one unit of leasable work and its merge slot.
type taskLease struct {
	frontier []checkpoint.Task
	cands    int
	state    string
	// epoch increments on every grant; heartbeats and reports must present
	// the current epoch or be refused (the zombie fence).
	epoch   uint64
	worker  string
	expires time.Time
	ordered uint64
	// failures counts worker-side error reports for this task.
	failures int
	spilled  bool
}

// clusterJob is the coordinator-side state of one distributed job.
type clusterJob struct {
	id     string
	spec   JobSpec
	plan   *oig.Plan
	opts   engine.Options
	planFP uint64

	tasks []*taskLease
	// queue holds the indices of pending tasks, granted FIFO.
	queue []int

	state   string // running | done | failed
	ordered uint64
	stats   engine.Stats
	errMsg  string

	created  time.Time
	elapsed  time.Duration // fixed once done/failed
	doneN    int
	reassign int
	fenced   int
	spilled  int
	failures int
}

type workerInfo struct {
	lastSeen time.Time
	leased   int
}

// Coordinator owns the cluster's job/lease state and serves the protocol
// endpoints. Create with New; mount with Register (ohmserve does this when
// started with -cluster).
type Coordinator struct {
	store   *dal.Store
	graphFP uint64
	cfg     Config

	mu      sync.Mutex
	jobs    map[string]*clusterJob // guarded by mu
	order   []string               // job ids in creation order (lease fairness, status); guarded by mu
	workers map[string]*workerInfo // guarded by mu
	jobSeq  uint64                 // guarded by mu

	leases     expvar.Int // granted leases
	reports    expvar.Int // reports merged
	fenced     expvar.Int // zombie reports discarded
	reassigned expvar.Int // leases reclaimed from expired workers
	spills     expvar.Int // remainder tasks enqueued from partial reports
	jobsDone   expvar.Int
	vars       *expvar.Map
}

// New creates a coordinator over the store every worker must hold an
// identical copy of (verified by fingerprint on each lease request). The
// first Coordinator in a process publishes its metrics under the global
// expvar name "ohmcluster".
func New(store *dal.Store, cfg Config) *Coordinator {
	c := &Coordinator{
		store:   store,
		graphFP: store.Hypergraph().Fingerprint(),
		cfg:     cfg.withDefaults(),
		jobs:    map[string]*clusterJob{},
		workers: map[string]*workerInfo{},
	}
	m := new(expvar.Map).Init()
	m.Set("leases", &c.leases)
	m.Set("reports", &c.reports)
	m.Set("fenced", &c.fenced)
	m.Set("reassigned", &c.reassigned)
	m.Set("spills", &c.spills)
	m.Set("jobs_done", &c.jobsDone)
	c.vars = m
	publish(m)
	return c
}

var publishMu sync.Mutex

// publish registers m as the process-global "ohmcluster" expvar exactly once
// (expvar.Publish panics on duplicates, and tests create many Coordinators).
func publish(m *expvar.Map) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get("ohmcluster") == nil {
		expvar.Publish("ohmcluster", m)
	}
}

// Register mounts the cluster endpoints on mux: GET /cluster (status),
// POST /cluster/jobs, GET /cluster/jobs/{id}, and the worker protocol
// (POST /cluster/lease, /cluster/heartbeat, /cluster/report).
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster", c.handleStatus)
	mux.HandleFunc("POST /cluster/jobs", c.handleJobCreate)
	mux.HandleFunc("GET /cluster/jobs/{id}", c.handleJobStatus)
	mux.HandleFunc("POST /cluster/lease", c.handleLease)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/report", c.handleReport)
}

// StartJob compiles, partitions, and enqueues a distributed job. An empty id
// picks a unique one. The candidate space of the first pattern hyperedge is
// split into the configured number of contiguous ranges, each an
// independently leasable task.
func (c *Coordinator) StartJob(id string, spec JobSpec) (JobStatus, error) {
	p, err := pattern.Parse(spec.Pattern)
	if err != nil {
		return JobStatus{}, fmt.Errorf("bad pattern: %w", err)
	}
	var opts engine.Options
	if spec.Variant != "" {
		v, err := engine.VariantByName(spec.Variant)
		if err != nil {
			return JobStatus{}, err
		}
		opts.Gen, opts.Val = v.Gen, v.Val
	}
	opts.DataAwareOrder = spec.DataAwareOrder
	plan, err := engine.CompilePlan(c.store, p, opts)
	if err != nil {
		return JobStatus{}, err
	}
	// Mirror the engine's preflight checks so a label mismatch fails the
	// job at creation, not on every worker.
	if plan.Labeled && !c.store.Hypergraph().Labeled() {
		return JobStatus{}, errors.New("labeled pattern on unlabeled hypergraph")
	}
	if plan.Pattern.EdgeLabeled() && !c.store.Hypergraph().EdgeLabeled() {
		return JobStatus{}, errors.New("hyperedge-labeled pattern on hypergraph without hyperedge labels")
	}
	parts := spec.Parts
	if parts <= 0 {
		parts = c.cfg.Parts
	}
	frontier := engine.PartitionFrontier(engine.FirstCandidates(c.store, plan, opts), parts)

	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		c.jobSeq++
		id = fmt.Sprintf("cjob-%d", c.jobSeq)
	}
	if !validJobID(id) {
		return JobStatus{}, errors.New("bad job id: need 1-64 chars of [A-Za-z0-9_-]")
	}
	if _, ok := c.jobs[id]; ok {
		return JobStatus{}, fmt.Errorf("job %q: %w", id, errJobExists)
	}
	j := &clusterJob{
		id: id, spec: spec, plan: plan, opts: opts,
		planFP:  engine.PlanFingerprint(plan),
		state:   "running",
		created: c.cfg.now(),
	}
	for i := range frontier {
		j.tasks = append(j.tasks, &taskLease{
			frontier: frontier[i : i+1],
			cands:    len(frontier[i].Cands),
			state:    taskPending,
		})
		j.queue = append(j.queue, i)
	}
	if len(frontier) == 0 {
		// No first-step candidates: the job is trivially complete.
		j.state = "done"
		c.jobsDone.Add(1)
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	return c.jobStatusLocked(j, false), nil
}

// JobStatusByID returns one job's status (tasks included).
func (c *Coordinator) JobStatusByID(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.jobStatusLocked(j, true), true
}

// Status returns the full cluster view.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	st := ClusterStatus{
		GraphFP:    c.graphFP,
		LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds(),
		Jobs:       []JobStatus{},
		Workers:    []WorkerStatus{},
		Leases:     c.leases.Value(),
		Reports:    c.reports.Value(),
		Fenced:     c.fenced.Value(),
		Reassigned: c.reassigned.Value(),
		Spills:     c.spills.Value(),
	}
	for _, id := range c.order {
		st.Jobs = append(st.Jobs, c.jobStatusLocked(c.jobs[id], false))
	}
	now := c.cfg.now()
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := c.workers[name]
		st.Workers = append(st.Workers, WorkerStatus{
			Name:       name,
			LastSeenMS: float64(now.Sub(w.lastSeen)) / float64(time.Millisecond),
			Leased:     w.leased,
		})
	}
	return st
}

func (c *Coordinator) jobStatusLocked(j *clusterJob, withTasks bool) JobStatus {
	st := JobStatus{
		ID: j.id, State: j.state,
		Parts:         len(j.tasks),
		Done:          j.doneN,
		Ordered:       j.ordered,
		Automorphisms: j.plan.Pattern.Automorphisms(),
		Reassigned:    j.reassign,
		Fenced:        j.fenced,
		Spilled:       j.spilled,
		Failures:      j.failures,
		Error:         j.errMsg,
	}
	st.Unique = st.Ordered / uint64(st.Automorphisms)
	for _, t := range j.tasks {
		switch t.state {
		case taskPending:
			st.Pending++
		case taskLeased:
			st.Leased++
		}
	}
	elapsed := j.elapsed
	if j.state == "running" {
		elapsed = c.cfg.now().Sub(j.created)
	}
	st.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if withTasks {
		for i, t := range j.tasks {
			st.Tasks = append(st.Tasks, TaskStatus{
				ID: i, State: t.state, Cands: t.cands,
				Epoch: t.epoch, Worker: t.worker,
				Ordered: t.ordered, Spilled: t.spilled,
			})
		}
	}
	return st
}

// sweepLocked reclaims expired leases: the task returns to the queue (the
// epoch is bumped at the next grant, fencing the old holder). Sweeping is
// lazy — it runs at the top of every lease/heartbeat/report/status call —
// because reassignment only matters when a live worker is asking.
func (c *Coordinator) sweepLocked() {
	now := c.cfg.now()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != "running" {
			continue
		}
		for i, t := range j.tasks {
			if t.state == taskLeased && now.After(t.expires) {
				t.state = taskPending
				if w := c.workers[t.worker]; w != nil && w.leased > 0 {
					w.leased--
				}
				// Reclaimed tasks jump the queue: they are the job's oldest
				// outstanding work, so the straggler tail shrinks first.
				j.queue = append([]int{i}, j.queue...)
				j.reassign++
				c.reassigned.Add(1)
			}
		}
	}
}

func (c *Coordinator) touchWorkerLocked(name string) *workerInfo {
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{}
		c.workers[name] = w
	}
	w.lastSeen = c.cfg.now()
	return w
}

// grantLocked pops the next pending task across jobs (creation order) and
// leases it to worker. It returns nil when no work is available.
func (c *Coordinator) grantLocked(worker string) *Lease {
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != "running" || len(j.queue) == 0 {
			continue
		}
		idx := j.queue[0]
		j.queue = j.queue[1:]
		t := j.tasks[idx]
		t.epoch++
		t.state = taskLeased
		t.worker = worker
		t.expires = c.cfg.now().Add(c.cfg.LeaseTTL)

		snap := &checkpoint.Snapshot{
			Seq:      t.epoch,
			PlanFP:   j.planFP,
			GraphFP:  c.graphFP,
			Frontier: t.frontier,
		}
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			// Encoding to memory cannot fail for a well-formed snapshot;
			// refuse the grant rather than leasing garbage.
			t.state = taskPending
			j.queue = append(j.queue, idx)
			return nil
		}
		c.touchWorkerLocked(worker).leased++
		c.leases.Add(1)
		return &Lease{
			Job: j.id, Task: idx, Epoch: t.epoch,
			Pattern:        j.spec.Pattern,
			Variant:        j.spec.Variant,
			DataAwareOrder: j.spec.DataAwareOrder,
			Snapshot:       buf.Bytes(),
			HeartbeatMS:    c.cfg.HeartbeatEvery.Milliseconds(),
			TTLMS:          c.cfg.LeaseTTL.Milliseconds(),
		}
	}
	return nil
}

// lookupLocked resolves a (job, task, epoch, worker) tuple to its lease when
// the tuple still names the current assignment; the error explains the fence.
func (c *Coordinator) lookupLocked(job string, task int, epoch uint64, worker string) (*clusterJob, *taskLease, error) {
	j, ok := c.jobs[job]
	if !ok {
		return nil, nil, fmt.Errorf("unknown job %q", job)
	}
	if task < 0 || task >= len(j.tasks) {
		return nil, nil, fmt.Errorf("job %q has no task %d", job, task)
	}
	t := j.tasks[task]
	switch {
	case t.state == taskDone:
		return j, nil, fmt.Errorf("task %d already completed (epoch %d)", task, t.epoch)
	case t.epoch != epoch:
		return j, nil, fmt.Errorf("stale epoch %d for task %d (current %d): lease was reassigned", epoch, task, t.epoch)
	case t.worker != worker:
		return j, nil, fmt.Errorf("task %d epoch %d belongs to %q, not %q", task, epoch, t.worker, worker)
	}
	return j, t, nil
}

// Heartbeat renews (or, within the same epoch, resurrects) a lease; the
// returned error means the lease is gone and the worker must abandon the
// task.
func (c *Coordinator) Heartbeat(hb HeartbeatRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.touchWorkerLocked(hb.Worker)
	j, t, err := c.lookupLocked(hb.Job, hb.Task, hb.Epoch, hb.Worker)
	if err != nil {
		return err
	}
	if t.state == taskPending {
		// The lease expired but nobody re-claimed the task yet: the worker
		// was slow, not dead. Resurrect in place (same epoch) and pull the
		// task back off the queue.
		for qi, idx := range j.queue {
			if j.tasks[idx] == t {
				j.queue = append(j.queue[:qi], j.queue[qi+1:]...)
				break
			}
		}
		t.state = taskLeased
		c.touchWorkerLocked(hb.Worker).leased++
	}
	t.expires = c.cfg.now().Add(c.cfg.LeaseTTL)
	return nil
}

// ReportTask merges one task report. The fencing rules: the report must name
// the task's current epoch and holder — a reassigned (or completed) task
// refuses the report, so every task's counters are merged exactly once. A
// report may arrive for a lease that expired but was not yet re-granted;
// the epoch still matches, so the work is salvaged rather than redone.
func (c *Coordinator) ReportTask(rep Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.touchWorkerLocked(rep.Worker)
	j, t, err := c.lookupLocked(rep.Job, rep.Task, rep.Epoch, rep.Worker)
	if err != nil {
		if j != nil {
			j.fenced++
		}
		c.fenced.Add(1)
		return err
	}
	wasLeased := t.state == taskLeased
	if t.state == taskPending {
		// Expired but unclaimed: accept, and drop the queue entry.
		for qi, idx := range j.queue {
			if j.tasks[idx] == t {
				j.queue = append(j.queue[:qi], j.queue[qi+1:]...)
				break
			}
		}
	}
	if wasLeased {
		if w := c.workers[t.worker]; w != nil && w.leased > 0 {
			w.leased--
		}
	}

	if rep.Error != "" {
		t.state = taskPending
		t.worker = ""
		t.failures++
		j.failures++
		j.queue = append(j.queue, rep.Task)
		if t.failures >= c.cfg.MaxTaskFailures {
			j.state = "failed"
			j.errMsg = fmt.Sprintf("task %d failed %d times, last: %s", rep.Task, t.failures, rep.Error)
			j.elapsed = c.cfg.now().Sub(j.created)
		}
		return nil
	}

	t.state = taskDone
	t.ordered = rep.Ordered
	j.doneN++
	j.ordered += rep.Ordered
	j.stats.Add(engine.UnpackStats(rep.Stats))

	if len(rep.Remainder) > 0 {
		snap, derr := checkpoint.Decode(bytes.NewReader(rep.Remainder))
		if derr == nil {
			derr = engine.ValidateSnapshot(c.store, j.plan, snap)
		}
		if derr != nil {
			// A bad remainder means part of the search space would silently
			// vanish; fail loudly instead of undercounting.
			j.state = "failed"
			j.errMsg = fmt.Sprintf("task %d spilled an unusable remainder: %v", rep.Task, derr)
			j.elapsed = c.cfg.now().Sub(j.created)
			return nil
		}
		cands := 0
		for i := range snap.Frontier {
			cands += len(snap.Frontier[i].Cands)
		}
		j.tasks = append(j.tasks, &taskLease{
			frontier: snap.Frontier,
			cands:    cands,
			state:    taskPending,
			spilled:  true,
		})
		j.queue = append(j.queue, len(j.tasks)-1)
		j.spilled++
		c.spills.Add(1)
	}

	c.reports.Add(1)
	if j.doneN == len(j.tasks) && len(j.queue) == 0 && j.state == "running" {
		j.state = "done"
		j.elapsed = c.cfg.now().Sub(j.created)
		c.jobsDone.Add(1)
	}
	return nil
}

// --- HTTP handlers -------------------------------------------------------

// maxBody bounds protocol bodies; remainder frontiers can carry large
// candidate ranges, so the cap is generous.
const maxBody = 64 << 20

func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response writer owns delivery failures (client gone); nothing
	// useful to do with an encode error here.
	_ = enc.Encode(v)
}

func reject(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// validJobID accepts exactly the names safe in URLs and file stems.
func validJobID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, ch := range id {
		switch {
		case ch == '-' || ch == '_':
		case '0' <= ch && ch <= '9':
		case 'a' <= ch && ch <= 'z':
		case 'A' <= ch && ch <= 'Z':
		default:
			return false
		}
	}
	return true
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req jobCreateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Pattern == "" {
		reject(w, http.StatusBadRequest, "missing \"pattern\"")
		return
	}
	st, err := c.StartJob(req.ID, req.JobSpec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errJobExists) {
			code = http.StatusConflict
		}
		reject(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.JobStatusByID(id)
	if !ok {
		reject(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Worker == "" {
		reject(w, http.StatusBadRequest, "missing \"worker\"")
		return
	}
	if req.GraphFP != c.graphFP {
		reject(w, http.StatusConflict, fmt.Sprintf(
			"worker data hypergraph (fingerprint %#x) differs from the coordinator's (%#x): every node must load the identical dataset", req.GraphFP, c.graphFP))
		return
	}
	c.mu.Lock()
	c.sweepLocked()
	c.touchWorkerLocked(req.Worker)
	lease := c.grantLocked(req.Worker)
	c.mu.Unlock()
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := c.Heartbeat(req); err != nil {
		reject(w, http.StatusGone, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ttl_ms": c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req Report
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := c.ReportTask(req); err != nil {
		reject(w, http.StatusGone, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"merged": true})
}
