// Package cluster implements the distributed mining layer: a coordinator
// that partitions the candidate space of the first pattern hyperedge into
// task leases and hands them to worker nodes over HTTP/JSON, plus the worker
// loop (cmd/ohmworker) that mines leased ranges through the local engine and
// reports partial counters.
//
// The design follows the observation (HGMatch; Sec. 4.4 of the paper) that
// hypergraph matching parallelizes over independent per-edge expansion
// tasks: the engine's checkpoint frontier is already exactly that task
// shape, so a depth-0 frontier task — a first-hyperedge candidate range —
// becomes the wire-level work unit, encoded as an OHMC snapshot
// (internal/checkpoint). Workers mine a lease with the unmodified
// single-node engine and report per-task counters; the coordinator merges
// them exactly once.
//
// Fault tolerance is lease-based. Every grant carries an epoch (incremented
// per assignment) and a TTL renewed by heartbeats. A worker that stops
// heartbeating — crashed, partitioned, or stalled — forfeits the lease: the
// task returns to the queue and the next grant bumps the epoch, fencing the
// presumed-dead worker out. If that worker was merely slow (a zombie), its
// late report carries the old epoch and is discarded, so the task's counts
// are merged exactly once no matter how the failure interleaves. A worker
// shutting down gracefully reports its partial count plus the unfinished
// frontier (the engine's final-stop snapshot), which the coordinator
// re-enqueues as a fresh task — nothing is lost, nothing double-counted:
// the invariant is the checkpoint/resume one, inherited wholesale.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// Config bounds the coordinator's lease protocol.
type Config struct {
	// LeaseTTL is how long a lease survives without a heartbeat before the
	// task is reclaimed and reassigned (0 = 10s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal period advertised to workers
	// (0 = LeaseTTL/3).
	HeartbeatEvery time.Duration
	// Parts is the default task partition count per job (0 = 16). More
	// parts than workers keeps slow nodes from stalling the tail.
	Parts int
	// MaxTaskFailures fails the whole job once a single task has been
	// reported failed this many times (0 = 3).
	MaxTaskFailures int

	// Dir, when non-empty, makes the coordinator durable: every state
	// transition is written ahead to Dir/wal.log and compacted into
	// Dir/state.ohms, and New replays both so a restarted coordinator
	// resumes every running job (see wal.go). Empty keeps the pre-WAL
	// in-memory coordinator.
	Dir string
	// FlushEvery is the background WAL fsync/probe period (0 = 250ms).
	FlushEvery time.Duration
	// WALWrap, when set, wraps the WAL's file writer — the fault-injection
	// seam (internal/faultinject) used by the chaos suite to tear, fill, or
	// kill the log mid-record. The wrapper must not call back into the
	// coordinator: it runs under the coordinator's locks.
	WALWrap func(w io.Writer) io.Writer

	// now is the test clock (nil = time.Now); lease-expiry tests advance it
	// instead of sleeping.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.Parts <= 0 {
		c.Parts = 16
	}
	if c.MaxTaskFailures <= 0 {
		c.MaxTaskFailures = 3
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// errJobExists marks a StartJob id collision (409 on the HTTP surface).
var errJobExists = errors.New("job already exists")

// errDegraded marks work refused because the WAL cannot currently make it
// durable (503 + Retry-After on the HTTP surface). The condition is
// self-healing: the flusher probes the log and admission resumes the moment
// a record lands again.
var errDegraded = errors.New("coordinator degraded: cluster state cannot be made durable")

// task states of the lease machine.
const (
	taskPending = "pending"
	taskLeased  = "leased"
	taskDone    = "done"
)

// taskLease is one unit of leasable work and its merge slot.
type taskLease struct {
	frontier []checkpoint.Task
	cands    int
	state    string
	// epoch increments on every grant; heartbeats and reports must present
	// the current epoch or be refused (the zombie fence).
	epoch   uint64
	worker  string
	expires time.Time
	ordered uint64
	// failures counts worker-side error reports for this task.
	failures int
	spilled  bool
}

// clusterJob is the coordinator-side state of one distributed job.
type clusterJob struct {
	id     string
	spec   JobSpec
	plan   *oig.Plan
	opts   engine.Options
	planFP uint64

	tasks []*taskLease
	// queue holds the indices of pending tasks, granted FIFO.
	queue []int

	state   string // running | done | failed
	ordered uint64
	stats   engine.Stats
	errMsg  string

	created  time.Time
	elapsed  time.Duration // fixed once done/failed
	doneN    int
	reassign int
	fenced   int
	spilled  int
	failures int
}

type workerInfo struct {
	lastSeen time.Time
	leased   int
}

// Coordinator owns the cluster's job/lease state and serves the protocol
// endpoints. Create with New; mount with Register (ohmserve does this when
// started with -cluster).
type Coordinator struct {
	store   *dal.Store
	graphFP uint64
	cfg     Config
	// wal is the durable log (nil for the volatile, Dir-less coordinator).
	// Set once in New before the coordinator is shared; the wal has its own
	// internal lock.
	wal *wal

	mu      sync.Mutex
	jobs    map[string]*clusterJob // guarded by mu
	order   []string               // job ids in creation order (lease fairness, status); guarded by mu
	workers map[string]*workerInfo // guarded by mu
	jobSeq  uint64                 // guarded by mu

	leases     expvar.Int // granted leases
	reports    expvar.Int // reports merged
	fenced     expvar.Int // zombie reports discarded
	reassigned expvar.Int // leases reclaimed from expired workers
	spills     expvar.Int // remainder tasks enqueued from partial reports
	jobsDone   expvar.Int

	replayedJobs      expvar.Int // jobs restored from snapshot+WAL at startup
	resurrectedLeases expvar.Int // leases force-expired back to the queue at startup
	degradedRejects   expvar.Int // requests shed with 503 while the WAL was failing
	vars              *expvar.Map
}

// New creates a coordinator over the store every worker must hold an
// identical copy of (verified by fingerprint on each lease request). With
// cfg.Dir set it first replays the durable state found there — restored
// running jobs have every lease force-expired (epochs preserved, so
// pre-crash zombie reports are fenced or salvaged exactly as live expiries
// are). The error is non-nil only when the durable state exists but cannot
// be trusted (ErrCorrupt) or the directory is unusable. The first
// Coordinator in a process publishes its metrics under the global expvar
// name "ohmcluster".
func New(store *dal.Store, cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		store:   store,
		graphFP: store.Hypergraph().Fingerprint(),
		cfg:     cfg.withDefaults(),
		jobs:    map[string]*clusterJob{},
		workers: map[string]*workerInfo{},
	}
	m := new(expvar.Map).Init()
	m.Set("leases", &c.leases)
	m.Set("reports", &c.reports)
	m.Set("fenced", &c.fenced)
	m.Set("reassigned", &c.reassigned)
	m.Set("spills", &c.spills)
	m.Set("jobs_done", &c.jobsDone)
	m.Set("replayed_jobs", &c.replayedJobs)
	m.Set("resurrected_leases", &c.resurrectedLeases)
	m.Set("degraded_rejects", &c.degradedRejects)
	m.Set("wal_records", expvar.Func(func() any { r, _, _ := c.walStats(); return r }))
	m.Set("wal_bytes", expvar.Func(func() any { _, b, _ := c.walStats(); return b }))
	m.Set("wal_compactions", expvar.Func(func() any { _, _, n := c.walStats(); return n }))
	c.vars = m
	if c.cfg.Dir != "" {
		if err := c.recover(); err != nil {
			return nil, err
		}
	}
	publish(m)
	return c, nil
}

func (c *Coordinator) walStats() (records, bytes, compactions int64) {
	if c.wal == nil {
		return 0, 0, 0
	}
	return c.wal.stats()
}

// Close releases the durable-state resources: the WAL flusher goroutine and
// file. The volatile coordinator has nothing to release. Safe to call once;
// in-flight handlers fail their appends afterwards and shed.
func (c *Coordinator) Close() error {
	if c.wal == nil {
		return nil
	}
	return c.wal.close()
}

// Degraded reports whether the coordinator is currently refusing new work
// because its WAL cannot persist it (always false for the volatile
// coordinator, which promises no durability).
func (c *Coordinator) Degraded() bool {
	return c.wal != nil && c.wal.degraded() != nil
}

// degradedErr returns the errDegraded-wrapped shed cause, or nil when the
// coordinator can make state durable.
func (c *Coordinator) degradedErr() error {
	if c.wal == nil {
		return nil
	}
	if err := c.wal.degraded(); err != nil {
		return fmt.Errorf("%w: %v", errDegraded, err)
	}
	return nil
}

// RejectDegraded sheds one HTTP request with 503 + Retry-After and counts
// it; serve's /query and /jobs handlers use it so no layer accepts work the
// coordinator cannot make durable.
func (c *Coordinator) RejectDegraded(w http.ResponseWriter, err error) {
	c.degradedRejects.Add(1)
	w.Header().Set("Retry-After", "1")
	msg := errDegraded.Error() + "; retry shortly"
	if err != nil {
		msg = err.Error() + "; retry shortly"
	}
	reject(w, http.StatusServiceUnavailable, msg)
}

var publishMu sync.Mutex

// publish registers m as the process-global "ohmcluster" expvar exactly once
// (expvar.Publish panics on duplicates, and tests create many Coordinators).
func publish(m *expvar.Map) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get("ohmcluster") == nil {
		expvar.Publish("ohmcluster", m)
	}
}

// Register mounts the cluster endpoints on mux: GET /cluster (status),
// POST /cluster/jobs, GET /cluster/jobs/{id}, and the worker protocol
// (POST /cluster/lease, /cluster/heartbeat, /cluster/report).
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster", c.handleStatus)
	mux.HandleFunc("POST /cluster/jobs", c.handleJobCreate)
	mux.HandleFunc("GET /cluster/jobs/{id}", c.handleJobStatus)
	mux.HandleFunc("POST /cluster/lease", c.handleLease)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/report", c.handleReport)
}

// compileSpec turns a job spec into its plan and options. Deterministic over
// an identical store, which is what lets WAL replay rebuild a job's plan and
// task partition from its admit record alone.
func (c *Coordinator) compileSpec(spec JobSpec) (*oig.Plan, engine.Options, error) {
	p, err := pattern.Parse(spec.Pattern)
	if err != nil {
		return nil, engine.Options{}, fmt.Errorf("bad pattern: %w", err)
	}
	var opts engine.Options
	if spec.Variant != "" {
		v, err := engine.VariantByName(spec.Variant)
		if err != nil {
			return nil, engine.Options{}, err
		}
		opts.Gen, opts.Val = v.Gen, v.Val
	}
	opts.DataAwareOrder = spec.DataAwareOrder
	plan, err := engine.CompilePlan(c.store, p, opts)
	if err != nil {
		return nil, engine.Options{}, err
	}
	// Mirror the engine's preflight checks so a label mismatch fails the
	// job at creation, not on every worker.
	if plan.Labeled && !c.store.Hypergraph().Labeled() {
		return nil, engine.Options{}, errors.New("labeled pattern on unlabeled hypergraph")
	}
	if plan.Pattern.EdgeLabeled() && !c.store.Hypergraph().EdgeLabeled() {
		return nil, engine.Options{}, errors.New("hyperedge-labeled pattern on hypergraph without hyperedge labels")
	}
	return plan, opts, nil
}

// buildJob compiles and partitions a job (id is filled in by the caller).
// Only the store is read; no coordinator state is touched.
func (c *Coordinator) buildJob(spec JobSpec) (*clusterJob, error) {
	plan, opts, err := c.compileSpec(spec)
	if err != nil {
		return nil, err
	}
	parts := spec.Parts
	if parts <= 0 {
		parts = c.cfg.Parts
	}
	frontier := engine.PartitionFrontier(engine.FirstCandidates(c.store, plan, opts), parts)
	j := &clusterJob{
		spec: spec, plan: plan, opts: opts,
		planFP:  engine.PlanFingerprint(plan),
		state:   "running",
		created: c.cfg.now(),
	}
	for i := range frontier {
		j.tasks = append(j.tasks, &taskLease{
			frontier: frontier[i : i+1],
			cands:    len(frontier[i].Cands),
			state:    taskPending,
		})
		j.queue = append(j.queue, i)
	}
	if len(frontier) == 0 {
		// No first-step candidates: the job is trivially complete.
		j.state = "done"
	}
	return j, nil
}

// StartJob compiles, partitions, and enqueues a distributed job. An empty id
// picks a unique one. The candidate space of the first pattern hyperedge is
// split into the configured number of contiguous ranges, each an
// independently leasable task. On a durable coordinator the admission is
// WAL-logged and fsync'd before it is acknowledged; while the WAL is failing
// the job is refused with errDegraded instead.
func (c *Coordinator) StartJob(id string, spec JobSpec) (JobStatus, error) {
	j, err := c.buildJob(spec)
	if err != nil {
		return JobStatus{}, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		c.jobSeq++
		id = fmt.Sprintf("cjob-%d", c.jobSeq)
	}
	if !validJobID(id) {
		return JobStatus{}, errors.New("bad job id: need 1-64 chars of [A-Za-z0-9_-]")
	}
	if _, ok := c.jobs[id]; ok {
		return JobStatus{}, fmt.Errorf("job %q: %w", id, errJobExists)
	}
	if c.wal != nil {
		if err := c.degradedErr(); err != nil {
			return JobStatus{}, err
		}
		rec := &walRecord{T: recAdmit, Job: id, Spec: &spec, GraphFP: c.graphFP, JobSeq: c.jobSeq}
		if _, err := c.wal.append(rec, true); err != nil {
			return JobStatus{}, fmt.Errorf("%w: %v", errDegraded, err)
		}
	}
	j.id = id
	c.jobs[id] = j
	c.order = append(c.order, id)
	if j.state == "done" {
		c.jobsDone.Add(1)
		c.logFinishLocked(j)
	}
	return c.jobStatusLocked(j, false), nil
}

// JobStatusByID returns one job's status (tasks included).
func (c *Coordinator) JobStatusByID(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.jobStatusLocked(j, true), true
}

// Status returns the full cluster view.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	st := ClusterStatus{
		GraphFP:    c.graphFP,
		LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds(),
		Jobs:       []JobStatus{},
		Workers:    []WorkerStatus{},
		Leases:     c.leases.Value(),
		Reports:    c.reports.Value(),
		Fenced:     c.fenced.Value(),
		Reassigned: c.reassigned.Value(),
		Spills:     c.spills.Value(),

		Durable:           c.wal != nil,
		ReplayedJobs:      c.replayedJobs.Value(),
		ResurrectedLeases: c.resurrectedLeases.Value(),
		DegradedRejects:   c.degradedRejects.Value(),
	}
	if c.wal != nil {
		st.Degraded = c.wal.degraded() != nil
		st.WALRecords, st.WALBytes, st.WALCompactions = c.wal.stats()
	}
	for _, id := range c.order {
		st.Jobs = append(st.Jobs, c.jobStatusLocked(c.jobs[id], false))
	}
	now := c.cfg.now()
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := c.workers[name]
		st.Workers = append(st.Workers, WorkerStatus{
			Name:       name,
			LastSeenMS: float64(now.Sub(w.lastSeen)) / float64(time.Millisecond),
			Leased:     w.leased,
		})
	}
	return st
}

func (c *Coordinator) jobStatusLocked(j *clusterJob, withTasks bool) JobStatus {
	// A job restored from the WAL whose spec no longer compiles (or whose
	// dataset changed) carries no plan; it is always failed, and reports
	// raw counts.
	auto := 1
	if j.plan != nil {
		auto = j.plan.Pattern.Automorphisms()
	}
	st := JobStatus{
		ID: j.id, State: j.state,
		Parts:         len(j.tasks),
		Done:          j.doneN,
		Ordered:       j.ordered,
		Automorphisms: auto,
		Reassigned:    j.reassign,
		Fenced:        j.fenced,
		Spilled:       j.spilled,
		Failures:      j.failures,
		Error:         j.errMsg,
	}
	st.Unique = st.Ordered / uint64(st.Automorphisms)
	for _, t := range j.tasks {
		switch t.state {
		case taskPending:
			st.Pending++
		case taskLeased:
			st.Leased++
		}
	}
	elapsed := j.elapsed
	if j.state == "running" {
		elapsed = c.cfg.now().Sub(j.created)
	}
	st.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if withTasks {
		for i, t := range j.tasks {
			st.Tasks = append(st.Tasks, TaskStatus{
				ID: i, State: t.state, Cands: t.cands,
				Epoch: t.epoch, Worker: t.worker,
				Ordered: t.ordered, Spilled: t.spilled,
			})
		}
	}
	return st
}

// sweepLocked reclaims expired leases: the task returns to the queue (the
// epoch is bumped at the next grant, fencing the old holder). Sweeping is
// lazy — it runs at the top of every lease/heartbeat/report/status call —
// because reassignment only matters when a live worker is asking.
func (c *Coordinator) sweepLocked() {
	now := c.cfg.now()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != "running" {
			continue
		}
		for i, t := range j.tasks {
			if t.state == taskLeased && now.After(t.expires) {
				t.state = taskPending
				if w := c.workers[t.worker]; w != nil && w.leased > 0 {
					w.leased--
				}
				// Reclaimed tasks jump the queue: they are the job's oldest
				// outstanding work, so the straggler tail shrinks first.
				j.queue = append([]int{i}, j.queue...)
				j.reassign++
				c.reassigned.Add(1)
			}
		}
	}
}

func (c *Coordinator) touchWorkerLocked(name string) *workerInfo {
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{}
		c.workers[name] = w
	}
	w.lastSeen = c.cfg.now()
	return w
}

// grantLocked pops the next pending task across jobs (creation order) and
// leases it to worker. It returns (nil, nil) when no work is available. On a
// durable coordinator the grant record (with its fencing epoch) is fsync'd
// before the lease leaves the process — an epoch must never be re-issued
// after a crash while a pre-crash worker still holds it.
func (c *Coordinator) grantLocked(worker string) (*Lease, error) {
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != "running" || len(j.queue) == 0 {
			continue
		}
		idx := j.queue[0]
		t := j.tasks[idx]

		snap := &checkpoint.Snapshot{
			Seq:      t.epoch + 1,
			PlanFP:   j.planFP,
			GraphFP:  c.graphFP,
			Frontier: t.frontier,
		}
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			// Encoding to memory cannot fail for a well-formed snapshot;
			// refuse the grant rather than leasing garbage.
			j.queue = append(j.queue[1:], idx)
			return nil, nil
		}
		if c.wal != nil {
			rec := &walRecord{T: recGrant, Job: j.id, Task: idx, Epoch: t.epoch + 1, Worker: worker}
			if _, err := c.wal.append(rec, true); err != nil {
				return nil, fmt.Errorf("%w: %v", errDegraded, err)
			}
		}
		j.queue = j.queue[1:]
		t.epoch++
		t.state = taskLeased
		t.worker = worker
		t.expires = c.cfg.now().Add(c.cfg.LeaseTTL)
		c.touchWorkerLocked(worker).leased++
		c.leases.Add(1)
		return &Lease{
			Job: j.id, Task: idx, Epoch: t.epoch,
			Pattern:        j.spec.Pattern,
			Variant:        j.spec.Variant,
			DataAwareOrder: j.spec.DataAwareOrder,
			Snapshot:       buf.Bytes(),
			HeartbeatMS:    c.cfg.HeartbeatEvery.Milliseconds(),
			TTLMS:          c.cfg.LeaseTTL.Milliseconds(),
		}, nil
	}
	return nil, nil
}

// lookupLocked resolves a (job, task, epoch, worker) tuple to its lease when
// the tuple still names the current assignment; the error explains the fence.
func (c *Coordinator) lookupLocked(job string, task int, epoch uint64, worker string) (*clusterJob, *taskLease, error) {
	j, ok := c.jobs[job]
	if !ok {
		return nil, nil, fmt.Errorf("unknown job %q", job)
	}
	if task < 0 || task >= len(j.tasks) {
		return nil, nil, fmt.Errorf("job %q has no task %d", job, task)
	}
	t := j.tasks[task]
	switch {
	case t.state == taskDone:
		return j, nil, fmt.Errorf("task %d already completed (epoch %d)", task, t.epoch)
	case t.epoch != epoch:
		return j, nil, fmt.Errorf("stale epoch %d for task %d (current %d): lease was reassigned", epoch, task, t.epoch)
	case t.worker != worker:
		return j, nil, fmt.Errorf("task %d epoch %d belongs to %q, not %q", task, epoch, t.worker, worker)
	}
	return j, t, nil
}

// Heartbeat renews (or, within the same epoch, resurrects) a lease; the
// returned error means the lease is gone and the worker must abandon the
// task.
func (c *Coordinator) Heartbeat(hb HeartbeatRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.touchWorkerLocked(hb.Worker)
	j, t, err := c.lookupLocked(hb.Job, hb.Task, hb.Epoch, hb.Worker)
	if err != nil {
		return err
	}
	if t.state == taskPending {
		// The lease expired but nobody re-claimed the task yet: the worker
		// was slow, not dead. Resurrect in place (same epoch) and pull the
		// task back off the queue.
		for qi, idx := range j.queue {
			if j.tasks[idx] == t {
				j.queue = append(j.queue[:qi], j.queue[qi+1:]...)
				break
			}
		}
		t.state = taskLeased
		c.touchWorkerLocked(hb.Worker).leased++
	}
	t.expires = c.cfg.now().Add(c.cfg.LeaseTTL)
	return nil
}

// ReportTask merges one task report. The fencing rules: the report must name
// the task's current epoch and holder — a reassigned (or completed) task
// refuses the report, so every task's counters are merged exactly once. A
// report may arrive for a lease that expired but was not yet re-granted;
// the epoch still matches, so the work is salvaged rather than redone. On a
// durable coordinator the accepted report is WAL-logged and fsync'd before
// the merge is acknowledged; fenced reports are never logged (the fence is
// re-derived from grant epochs on replay).
func (c *Coordinator) ReportTask(rep Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.touchWorkerLocked(rep.Worker)
	j, t, err := c.lookupLocked(rep.Job, rep.Task, rep.Epoch, rep.Worker)
	if err != nil {
		if j != nil {
			j.fenced++
		}
		c.fenced.Add(1)
		return err
	}
	if c.wal != nil {
		if err := c.degradedErr(); err != nil {
			return err
		}
		if _, err := c.wal.append(&walRecord{T: recReport, Report: &rep}, true); err != nil {
			return fmt.Errorf("%w: %v", errDegraded, err)
		}
	}
	wasRunning := j.state == "running"
	c.applyReportLocked(j, t, rep, true)
	if wasRunning && j.state != "running" {
		c.logFinishLocked(j)
	}
	return nil
}

// applyReportLocked merges one fence-checked report into its job — the
// single code path shared by the live handler and WAL replay (live gates the
// process-lifetime expvar counters; job-level counters always move).
func (c *Coordinator) applyReportLocked(j *clusterJob, t *taskLease, rep Report, live bool) {
	wasLeased := t.state == taskLeased
	if t.state == taskPending {
		// Expired but unclaimed: accept, and drop the queue entry.
		for qi, idx := range j.queue {
			if j.tasks[idx] == t {
				j.queue = append(j.queue[:qi], j.queue[qi+1:]...)
				break
			}
		}
	}
	if wasLeased {
		if w := c.workers[t.worker]; w != nil && w.leased > 0 {
			w.leased--
		}
	}

	if rep.Error != "" {
		t.state = taskPending
		t.worker = ""
		t.failures++
		j.failures++
		j.queue = append(j.queue, rep.Task)
		if t.failures >= c.cfg.MaxTaskFailures {
			j.state = "failed"
			j.errMsg = fmt.Sprintf("task %d failed %d times, last: %s", rep.Task, t.failures, rep.Error)
			j.elapsed = c.cfg.now().Sub(j.created)
		}
		return
	}

	t.state = taskDone
	t.ordered = rep.Ordered
	j.doneN++
	j.ordered += rep.Ordered
	j.stats.Add(engine.UnpackStats(rep.Stats))

	if len(rep.Remainder) > 0 {
		snap, derr := checkpoint.Decode(bytes.NewReader(rep.Remainder))
		if derr == nil {
			derr = engine.ValidateSnapshot(c.store, j.plan, snap)
		}
		if derr != nil {
			// A bad remainder means part of the search space would silently
			// vanish; fail loudly instead of undercounting.
			j.state = "failed"
			j.errMsg = fmt.Sprintf("task %d spilled an unusable remainder: %v", rep.Task, derr)
			j.elapsed = c.cfg.now().Sub(j.created)
			return
		}
		cands := 0
		for i := range snap.Frontier {
			cands += len(snap.Frontier[i].Cands)
		}
		j.tasks = append(j.tasks, &taskLease{
			frontier: snap.Frontier,
			cands:    cands,
			state:    taskPending,
			spilled:  true,
		})
		j.queue = append(j.queue, len(j.tasks)-1)
		j.spilled++
		if live {
			c.spills.Add(1)
		}
	}

	if live {
		c.reports.Add(1)
	}
	if j.doneN == len(j.tasks) && len(j.queue) == 0 && j.state == "running" {
		j.state = "done"
		j.elapsed = c.cfg.now().Sub(j.created)
		if live {
			c.jobsDone.Add(1)
		}
	}
}

// logFinishLocked records a job's terminal state and compacts the WAL: a
// finished job's task frontiers collapse into a few counters, so completion
// is the natural truncation point. Finish records never gate an external
// ack — replay re-derives the terminal state from the merged reports anyway
// — so a degraded append is simply skipped.
func (c *Coordinator) logFinishLocked(j *clusterJob) {
	if c.wal == nil {
		return
	}
	rec := &walRecord{T: recFinish, Job: j.id, State: j.state, Err: j.errMsg, Elapsed: int64(j.elapsed)}
	if _, err := c.wal.append(rec, false); err != nil {
		return
	}
	c.compactLocked()
}

// compactLocked folds the full in-memory state into the snapshot file and
// truncates the log. Failures degrade the WAL (and are retried at the next
// completion) rather than surfacing: compaction is an optimization, not a
// correctness step.
func (c *Coordinator) compactLocked() {
	if c.wal == nil {
		return
	}
	st, err := c.encodeStateLocked()
	if err != nil {
		return
	}
	_ = c.wal.compactTo(st)
}

// --- Durable state: recovery, replay, snapshot encoding ------------------

// recover opens cfg.Dir, replays snapshot + WAL into the coordinator, and
// brings every restored running job back to a leasable state: all leases
// are force-expired (their epochs preserved), so a pre-crash worker's late
// report is salvaged or fenced by exactly the rules a live expiry applies.
// The WAL is compacted immediately after replay — a crash loop must not
// replay an ever-growing log — and the background flusher is started last.
func (c *Coordinator) recover() error {
	w, state, recs, err := openWAL(c.cfg.Dir, c.cfg.WALWrap)
	if err != nil {
		return err
	}
	c.wal = w

	c.mu.Lock()
	if state != nil {
		c.restoreStateLocked(state)
	}
	for i := range recs {
		if state != nil && recs[i].Seq <= state.LastSeq {
			continue // already folded into the snapshot
		}
		if recs[i].T == recProbe {
			continue
		}
		c.replayRecordLocked(&recs[i])
	}
	resurrected := c.forceExpireLocked()
	replayed := len(c.jobs)
	if state != nil || len(recs) > 0 {
		c.compactLocked()
	}
	c.mu.Unlock()

	c.replayedJobs.Add(int64(replayed))
	c.resurrectedLeases.Add(int64(resurrected))
	w.start(c.cfg.FlushEvery)
	return nil
}

// failJobLocked marks j failed with a replay-diagnosed cause (no-op once
// terminal).
func (c *Coordinator) failJobLocked(j *clusterJob, msg string) {
	if j.state != "running" {
		return
	}
	j.state = "failed"
	j.errMsg = msg
	j.elapsed = c.cfg.now().Sub(j.created)
}

// insertReplayedJobLocked registers a job rebuilt during recovery.
func (c *Coordinator) insertReplayedJobLocked(id string, j *clusterJob) {
	j.id = id
	c.jobs[id] = j
	c.order = append(c.order, id)
}

// replayRecordLocked applies one WAL record. Replay is lenient per job and
// strict per cluster: a record that no longer makes sense (spec stopped
// compiling, dataset changed, task index out of range) fails that job loudly
// rather than silently undercounting, but never aborts startup — the other
// jobs' durability must not be hostage to one bad one.
func (c *Coordinator) replayRecordLocked(rec *walRecord) {
	switch rec.T {
	case recAdmit:
		if rec.JobSeq > c.jobSeq {
			c.jobSeq = rec.JobSeq
		}
		if _, ok := c.jobs[rec.Job]; ok {
			return // duplicate admit (compaction race); first one wins
		}
		if rec.Spec == nil {
			return
		}
		if rec.GraphFP != c.graphFP {
			j := &clusterJob{spec: *rec.Spec, state: "running", created: c.cfg.now()}
			c.failJobLocked(j, fmt.Sprintf("replay: job was admitted against dataset %#x, coordinator now serves %#x", rec.GraphFP, c.graphFP))
			c.insertReplayedJobLocked(rec.Job, j)
			return
		}
		j, err := c.buildJob(*rec.Spec)
		if err != nil {
			j = &clusterJob{spec: *rec.Spec, state: "running", created: c.cfg.now()}
			c.failJobLocked(j, "replay: job spec no longer compiles: "+err.Error())
		}
		c.insertReplayedJobLocked(rec.Job, j)

	case recGrant:
		j := c.jobs[rec.Job]
		if j == nil || j.state != "running" {
			return
		}
		if rec.Task < 0 || rec.Task >= len(j.tasks) {
			c.failJobLocked(j, fmt.Sprintf("replay: grant names task %d of %d", rec.Task, len(j.tasks)))
			return
		}
		for qi, idx := range j.queue {
			if idx == rec.Task {
				j.queue = append(j.queue[:qi], j.queue[qi+1:]...)
				break
			}
		}
		t := j.tasks[rec.Task]
		t.state = taskLeased
		t.epoch = rec.Epoch
		t.worker = rec.Worker
		// expires stays zero: forceExpireLocked reclaims it either way.

	case recReport:
		if rec.Report == nil {
			return
		}
		rep := *rec.Report
		j, t, err := c.lookupLocked(rep.Job, rep.Task, rep.Epoch, rep.Worker)
		if err != nil {
			// An exact duplicate of an already-applied report can exist on
			// disk (an fsync failed after the write, the merge was acked,
			// and the worker's retry logged it again): skip it. Anything
			// else is a real inconsistency — fail the job loudly.
			if j != nil && rep.Task >= 0 && rep.Task < len(j.tasks) {
				d := j.tasks[rep.Task]
				if d.state == taskDone && d.epoch == rep.Epoch && d.worker == rep.Worker {
					return
				}
			}
			if j != nil {
				c.failJobLocked(j, "replay: report does not match granted lease: "+err.Error())
			}
			return
		}
		c.applyReportLocked(j, t, rep, false)

	case recFinish:
		j := c.jobs[rec.Job]
		if j == nil {
			return
		}
		if rec.State == "done" || rec.State == "failed" {
			j.state = rec.State
			j.errMsg = rec.Err
			j.elapsed = time.Duration(rec.Elapsed)
		}
	}
}

// forceExpireLocked reclaims every leased task after replay: the workers
// holding them may be gone (and their heartbeats certainly are). Epochs are
// preserved, so a surviving worker's in-flight report is salvaged via the
// expired-but-unclaimed path, and a re-grant bumps the epoch to fence it —
// identical semantics to a live TTL expiry. Returns the number reclaimed.
func (c *Coordinator) forceExpireLocked() int {
	n := 0
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != "running" {
			continue
		}
		for i := len(j.tasks) - 1; i >= 0; i-- {
			t := j.tasks[i]
			if t.state == taskLeased {
				t.state = taskPending
				j.queue = append([]int{i}, j.queue...)
				n++
			}
		}
	}
	return n
}

// restoreStateLocked rebuilds the coordinator from a compacted snapshot.
// Plans are recompiled from each job's spec (deterministic over the same
// store); task frontiers are validated against the recompiled plan before
// they become leasable again.
func (c *Coordinator) restoreStateLocked(st *walState) {
	c.jobSeq = st.JobSeq
	for i := range st.Jobs {
		wj := &st.Jobs[i]
		j := &clusterJob{
			spec:     wj.Spec,
			state:    wj.State,
			errMsg:   wj.Err,
			ordered:  wj.Ordered,
			stats:    engine.UnpackStats(wj.Stats),
			created:  time.Unix(0, wj.CreatedNS),
			elapsed:  time.Duration(wj.ElapsedNS),
			reassign: wj.Reassign,
			fenced:   wj.Fenced,
			spilled:  wj.Spilled,
			failures: wj.Failures,
		}
		plan, opts, err := c.compileSpec(wj.Spec)
		switch {
		case st.GraphFP != c.graphFP:
			c.failJobLocked(j, fmt.Sprintf("replay: snapshot is for dataset %#x, coordinator now serves %#x", st.GraphFP, c.graphFP))
		case err != nil:
			c.failJobLocked(j, "replay: job spec no longer compiles: "+err.Error())
		default:
			j.plan, j.opts, j.planFP = plan, opts, engine.PlanFingerprint(plan)
		}
		for ti := range wj.Tasks {
			wt := &wj.Tasks[ti]
			t := &taskLease{
				state:    wt.State,
				epoch:    wt.Epoch,
				worker:   wt.Worker,
				ordered:  wt.Ordered,
				failures: wt.Failures,
				spilled:  wt.Spilled,
				cands:    wt.Cands,
			}
			if t.state == taskDone {
				j.doneN++
			}
			if len(wt.Frontier) > 0 && j.plan != nil {
				snap, derr := checkpoint.Unmarshal(wt.Frontier)
				if derr == nil {
					derr = engine.ValidateSnapshot(c.store, j.plan, snap)
				}
				if derr != nil {
					c.failJobLocked(j, fmt.Sprintf("replay: task %d frontier unusable: %v", ti, derr))
				} else {
					t.frontier = snap.Frontier
				}
			}
			j.tasks = append(j.tasks, t)
		}
		j.queue = append(j.queue, wj.Queue...)
		c.insertReplayedJobLocked(wj.ID, j)
	}
}

// encodeStateLocked captures the full coordinator state as a snapshot.
// Frontiers are only carried for tasks that can still be leased; a done
// task's work already lives in the merged counters.
func (c *Coordinator) encodeStateLocked() (*walState, error) {
	st := &walState{GraphFP: c.graphFP, JobSeq: c.jobSeq, LastSeq: c.wal.lastSeq()}
	for _, id := range c.order {
		j := c.jobs[id]
		wj := walJob{
			ID:        j.id,
			Spec:      j.spec,
			State:     j.state,
			Err:       j.errMsg,
			Ordered:   j.ordered,
			Stats:     engine.PackStats(j.stats),
			CreatedNS: j.created.UnixNano(),
			ElapsedNS: int64(j.elapsed),
			Queue:     append([]int(nil), j.queue...),
			Reassign:  j.reassign,
			Fenced:    j.fenced,
			Spilled:   j.spilled,
			Failures:  j.failures,
		}
		for ti, t := range j.tasks {
			wt := walTask{
				State:    t.state,
				Epoch:    t.epoch,
				Worker:   t.worker,
				Ordered:  t.ordered,
				Failures: t.failures,
				Spilled:  t.spilled,
				Cands:    t.cands,
			}
			if j.state == "running" && t.state != taskDone && len(t.frontier) > 0 {
				snap := &checkpoint.Snapshot{
					Seq:      t.epoch,
					PlanFP:   j.planFP,
					GraphFP:  c.graphFP,
					Frontier: t.frontier,
				}
				b, err := snap.Marshal()
				if err != nil {
					return nil, fmt.Errorf("job %q task %d: %w", j.id, ti, err)
				}
				wt.Frontier = b
			}
			wj.Tasks = append(wj.Tasks, wt)
		}
		st.Jobs = append(st.Jobs, wj)
	}
	return st, nil
}

// --- HTTP handlers -------------------------------------------------------

// maxBody bounds protocol bodies; remainder frontiers can carry large
// candidate ranges, so the cap is generous.
const maxBody = 64 << 20

func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response writer owns delivery failures (client gone); nothing
	// useful to do with an encode error here.
	_ = enc.Encode(v)
}

func reject(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// validJobID accepts exactly the names safe in URLs and file stems.
func validJobID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, ch := range id {
		switch {
		case ch == '-' || ch == '_':
		case '0' <= ch && ch <= '9':
		case 'a' <= ch && ch <= 'z':
		case 'A' <= ch && ch <= 'Z':
		default:
			return false
		}
	}
	return true
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req jobCreateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Pattern == "" {
		reject(w, http.StatusBadRequest, "missing \"pattern\"")
		return
	}
	st, err := c.StartJob(req.ID, req.JobSpec)
	if err != nil {
		if errors.Is(err, errDegraded) {
			c.RejectDegraded(w, err)
			return
		}
		code := http.StatusBadRequest
		if errors.Is(err, errJobExists) {
			code = http.StatusConflict
		}
		reject(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.JobStatusByID(id)
	if !ok {
		reject(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Worker == "" {
		reject(w, http.StatusBadRequest, "missing \"worker\"")
		return
	}
	if req.GraphFP != c.graphFP {
		reject(w, http.StatusConflict, fmt.Sprintf(
			"worker data hypergraph (fingerprint %#x) differs from the coordinator's (%#x): every node must load the identical dataset", req.GraphFP, c.graphFP))
		return
	}
	c.mu.Lock()
	c.sweepLocked()
	c.touchWorkerLocked(req.Worker)
	lease, err := c.grantLocked(req.Worker)
	c.mu.Unlock()
	if err != nil {
		c.RejectDegraded(w, err)
		return
	}
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := c.Heartbeat(req); err != nil {
		reject(w, http.StatusGone, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ttl_ms": c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req Report
	if err := decodeStrict(w, r, &req); err != nil {
		reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := c.ReportTask(req); err != nil {
		if errors.Is(err, errDegraded) {
			c.RejectDegraded(w, err)
			return
		}
		reject(w, http.StatusGone, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"merged": true})
}
