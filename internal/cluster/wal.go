// Coordinator durability: a write-ahead log plus periodic snapshot make the
// lease/queue state survive a coordinator crash (ROADMAP item 3).
//
// Layout under Config.Dir:
//
//	wal.log    — 8-byte header (magic "OHMW", version), then a sequence of
//	             records framed [u32 len][JSON payload][u32 CRC-32C(payload)]
//	             (little-endian, same Castagnoli polynomial as internal/crcio).
//	state.ohms — the compacted snapshot: 8-byte header (magic "OHMS",
//	             version), JSON walState, u32 CRC-32C over everything before
//	             it. Written atomically (temp + fsync + rename), so it is
//	             either the old snapshot or the new one, never torn.
//
// Recovery is snapshot ∘ log: load state.ohms if present, then apply every
// wal.log record whose sequence number is beyond the snapshot's. Sequence
// fencing makes compaction crash-safe — if the process dies after the
// snapshot rename but before the log truncate, replay sees records the
// snapshot already contains and skips them by Seq. A short or torn final
// record (a crash mid-append) is tolerated: the valid prefix is kept and the
// tail truncated, exactly the checkpoint-resume contract. A CRC mismatch on
// a *complete* record is real corruption and refuses startup with ErrCorrupt
// rather than silently mining from a wrong state.
//
// Durability discipline: records that gate an external acknowledgement
// (admit, grant, report) are fsync'd before the coordinator acts on them; a
// background flusher syncs the rest and, while the WAL is failing (disk
// full, I/O error), probes it with no-op records so the coordinator heals
// itself the moment the disk comes back. While degraded, admission sheds
// with 503 + Retry-After instead of accepting work that can't be made
// durable.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ohminer/internal/crcio"
)

const (
	walMagic         = 0x4f484d57 // "OHMW"
	walVersion       = 1
	stateMagic       = 0x4f484d53 // "OHMS"
	stateVersion     = 1
	walHdrLen        = 8
	walFrameOverhead = 8 // u32 length prefix + u32 CRC trailer
	// maxWALRecord bounds a single record payload; anything larger mid-file
	// is corruption, not a record (matches the protocol body cap).
	maxWALRecord = maxBody

	walFile   = "wal.log"
	stateFile = "state.ohms"
)

// ErrCorrupt marks coordinator durable state whose checksum or structure is
// invalid beyond the tolerated torn tail. Startup refuses to proceed on it:
// mining from a silently wrong lease state would double- or under-count.
var ErrCorrupt = errors.New("cluster: corrupt coordinator WAL")

// errWALClosed is returned by appends after close/kill.
var errWALClosed = errors.New("cluster: WAL closed")

// errWALWedged is the sticky failure after a torn append could not be rolled
// back: the on-disk tail is garbage, so any further append would turn a
// tolerable torn-tail into mid-file corruption.
var errWALWedged = errors.New("cluster: WAL wedged by an unrecoverable torn write")

// WAL record types.
const (
	recAdmit  = "admit"  // job accepted (spec is replayed through the compiler)
	recGrant  = "grant"  // lease handed out: task epoch bumped, fenced
	recReport = "report" // worker report merged (includes remainder spill)
	recFinish = "finish" // job reached done/failed
	recProbe  = "probe"  // no-op degraded-mode health probe; never replayed
)

// walRecord is one logged state transition. Exactly one of the optional
// payloads is set, keyed by T.
type walRecord struct {
	Seq uint64 `json:"seq"`
	T   string `json:"t"`

	Job     string   `json:"job,omitempty"`
	Spec    *JobSpec `json:"spec,omitempty"`     // admit
	GraphFP uint64   `json:"graph_fp,omitempty"` // admit: dataset the job was admitted against
	JobSeq  uint64   `json:"job_seq,omitempty"`  // admit: auto-id counter at admission

	Task   int    `json:"task,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Worker string `json:"worker,omitempty"` // grant

	Report *Report `json:"report,omitempty"` // report

	State   string `json:"state,omitempty"` // finish: done | failed
	Err     string `json:"err,omitempty"`
	Elapsed int64  `json:"elapsed_ns,omitempty"`
}

// walState is the compacted snapshot of everything the coordinator must
// remember across a crash. Worker liveness is deliberately absent: every
// lease is force-expired on recovery anyway.
type walState struct {
	GraphFP uint64   `json:"graph_fp"`
	JobSeq  uint64   `json:"job_seq"`
	LastSeq uint64   `json:"last_seq"` // records with Seq <= LastSeq are folded in
	Jobs    []walJob `json:"jobs"`
}

type walJob struct {
	ID        string    `json:"id"`
	Spec      JobSpec   `json:"spec"`
	State     string    `json:"state"`
	Err       string    `json:"err,omitempty"`
	Ordered   uint64    `json:"ordered"`
	Stats     []uint64  `json:"stats,omitempty"`
	CreatedNS int64     `json:"created_ns"`
	ElapsedNS int64     `json:"elapsed_ns,omitempty"`
	Queue     []int     `json:"queue,omitempty"`
	Tasks     []walTask `json:"tasks,omitempty"`
	Reassign  int       `json:"reassign,omitempty"`
	Fenced    int       `json:"fenced,omitempty"`
	Spilled   int       `json:"spilled,omitempty"`
	Failures  int       `json:"failures,omitempty"`
}

type walTask struct {
	State    string `json:"state"`
	Epoch    uint64 `json:"epoch"`
	Worker   string `json:"worker,omitempty"`
	Ordered  uint64 `json:"ordered,omitempty"`
	Failures int    `json:"failures,omitempty"`
	Spilled  bool   `json:"spilled,omitempty"`
	Cands    int    `json:"cands"`
	// Frontier is the task's OHMC-encoded candidate snapshot (empty for done
	// tasks — their work is already merged).
	Frontier []byte `json:"frontier,omitempty"`
}

// frameRecord encodes rec as one WAL frame: [u32 len][payload][u32 crc].
func frameRecord(rec *walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, len(payload)+walFrameOverhead)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	binary.LittleEndian.PutUint32(buf[4+len(payload):], crcio.Checksum(payload))
	return buf, nil
}

// wal owns the coordinator's durable files. All methods are safe for
// concurrent use; the flusher goroutine runs until close/kill.
type wal struct {
	dir string

	mu      sync.Mutex
	f       *os.File  // guarded by mu
	w       io.Writer // guarded by mu — f, or a fault-injection wrapper over it
	off     int64     // guarded by mu — end offset of the last intact frame
	seq     uint64    // guarded by mu — last sequence number handed out
	dirty   bool      // guarded by mu — bytes written since the last fsync
	err     error     // guarded by mu — last append/sync failure (nil = healthy)
	wedged  bool      // guarded by mu — torn tail could not be rolled back
	closed  bool      // guarded by mu
	records int64     // guarded by mu — appended this process lifetime
	bytes   int64     // guarded by mu
	compact int64     // guarded by mu — compactions this process lifetime

	started     bool          // flusher launched (guards the stop handshake)
	done        chan struct{} // closed to stop the flusher
	flusherDone chan struct{} // closed by the flusher on exit
}

// openWAL loads dir's durable state: the snapshot (nil if absent) and every
// intact log record, truncating a torn tail. The returned wal is ready for
// appends; call start to launch the background flusher.
func openWAL(dir string, wrap func(io.Writer) io.Writer) (*wal, *walState, []walRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("cluster: create WAL dir: %w", err)
	}
	state, err := loadState(filepath.Join(dir, stateFile))
	if err != nil {
		return nil, nil, nil, err
	}
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, fmt.Errorf("cluster: read WAL: %w", err)
	}
	recs, valid, err := scanWAL(data)
	if err != nil {
		return nil, nil, nil, err
	}
	if valid < int64(len(data)) {
		// Torn tail from a crash mid-append: keep the intact prefix.
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, nil, fmt.Errorf("cluster: truncate torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cluster: open WAL: %w", err)
	}
	w := &wal{
		dir:         dir,
		f:           f,
		off:         valid,
		done:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	w.w = io.Writer(f)
	if wrap != nil {
		w.w = wrap(f)
	}
	if valid == 0 {
		// Fresh (or fully truncated) log: write the header eagerly so every
		// later append is exactly one record-frame write.
		var hdr [walHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], walMagic)
		binary.LittleEndian.PutUint32(hdr[4:], walVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("cluster: write WAL header: %w", err)
		}
		w.off = walHdrLen
	}
	// Resume the sequence counter past everything on disk.
	if state != nil {
		w.seq = state.LastSeq
	}
	for i := range recs {
		if recs[i].Seq > w.seq {
			w.seq = recs[i].Seq
		}
	}
	return w, state, recs, nil
}

// scanWAL parses the raw log bytes, returning the intact records and the
// offset where the intact prefix ends. A short tail (crash mid-append) stops
// the scan cleanly; a checksum or structure failure on a complete frame is
// ErrCorrupt.
func scanWAL(data []byte) ([]walRecord, int64, error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < walHdrLen {
		// Torn header: treat the whole file as a torn tail.
		return nil, 0, nil
	}
	if m := binary.LittleEndian.Uint32(data); m != walMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("cluster: WAL version %d not supported (want %d)", v, walVersion)
	}
	var recs []walRecord
	pos := int64(walHdrLen)
	for pos < int64(len(data)) {
		if pos+4 > int64(len(data)) {
			break // torn length prefix
		}
		n := int64(binary.LittleEndian.Uint32(data[pos:]))
		if pos+walFrameOverhead+n > int64(len(data)) {
			if n <= maxWALRecord {
				break // torn payload/trailer
			}
			// An absurd length that also overruns the file: unparseable tail.
			break
		}
		if n > maxWALRecord {
			return nil, 0, fmt.Errorf("%w: record at offset %d claims %d bytes", ErrCorrupt, pos, n)
		}
		payload := data[pos+4 : pos+4+n]
		crc := binary.LittleEndian.Uint32(data[pos+4+n:])
		if crcio.Checksum(payload) != crc {
			return nil, 0, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrCorrupt, pos)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, fmt.Errorf("%w: record decode at offset %d: %v", ErrCorrupt, pos, err)
		}
		recs = append(recs, rec)
		pos += walFrameOverhead + n
	}
	return recs, pos, nil
}

// loadState reads and verifies the compacted snapshot (nil when absent).
func loadState(path string) (*walState, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: read state snapshot: %w", err)
	}
	if len(data) < walHdrLen+4 {
		return nil, fmt.Errorf("%w: state snapshot too short", ErrCorrupt)
	}
	if m := binary.LittleEndian.Uint32(data); m != stateMagic {
		return nil, fmt.Errorf("%w: bad state magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != stateVersion {
		return nil, fmt.Errorf("cluster: state snapshot version %d not supported (want %d)", v, stateVersion)
	}
	body, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crcio.Checksum(body) != trailer {
		return nil, fmt.Errorf("%w: state snapshot checksum mismatch", ErrCorrupt)
	}
	var st walState
	if err := json.Unmarshal(body[walHdrLen:], &st); err != nil {
		return nil, fmt.Errorf("%w: state snapshot decode: %v", ErrCorrupt, err)
	}
	return &st, nil
}

// start launches the background flusher: every flushEvery it fsyncs pending
// appends, and while the WAL is degraded it probes with a no-op record so a
// healed disk brings the coordinator back without operator action.
func (w *wal) start(flushEvery time.Duration) {
	if flushEvery <= 0 {
		flushEvery = 250 * time.Millisecond
	}
	w.mu.Lock()
	w.started = true
	w.mu.Unlock()
	go w.flusher(flushEvery)
}

func (w *wal) flusher(every time.Duration) {
	defer close(w.flusherDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
		}
		w.mu.Lock()
		switch {
		case w.closed || w.wedged:
		case w.err != nil:
			// Degraded: probe the sink with a no-op record. Success clears
			// w.err inside appendLocked — the self-heal path.
			if frame, ferr := frameRecord(&walRecord{Seq: w.seq + 1, T: recProbe}); ferr == nil {
				w.seq++
				_ = w.appendLocked(frame, true)
			}
		case w.dirty:
			if serr := w.f.Sync(); serr != nil {
				w.err = serr
			} else {
				w.dirty = false
			}
		}
		w.mu.Unlock()
	}
}

// append frames and writes one record. With durable set the record is
// fsync'd before returning — required for any record whose effect is
// acknowledged externally. The assigned sequence number is returned.
func (w *wal) append(rec *walRecord, durable bool) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.Seq = w.seq + 1
	frame, err := frameRecord(rec)
	if err != nil {
		return 0, err
	}
	w.seq++
	return rec.Seq, w.appendLocked(frame, durable)
}

// appendLocked writes one pre-framed record; callers hold w.mu. A failed
// write is rolled back (Truncate to the last intact frame) so the on-disk
// log never carries a torn frame mid-file; if even the rollback fails the
// WAL wedges permanently. A failed fsync after a successful write degrades
// the WAL but keeps the record — it is in the file and will replay, so the
// in-memory state may (and must) reflect it.
func (w *wal) appendLocked(frame []byte, durable bool) error {
	if w.closed {
		return errWALClosed
	}
	if w.wedged {
		return errWALWedged
	}
	n, err := w.w.Write(frame)
	if err != nil {
		if n > 0 {
			if terr := w.f.Truncate(w.off); terr != nil {
				w.wedged = true
				w.err = fmt.Errorf("%w (truncate: %v, after write error: %v)", errWALWedged, terr, err)
				return w.err
			}
		}
		w.err = err
		return err
	}
	w.off += int64(n)
	w.records++
	w.bytes += int64(n)
	w.dirty = true
	if durable {
		if serr := w.f.Sync(); serr != nil {
			// The record reached the file; only its durability is deferred.
			// Degrade (shed new work) but let the caller apply and ack.
			w.err = serr
			return nil
		}
		w.dirty = false
	}
	w.err = nil // a successful append heals a previously degraded WAL
	return nil
}

// degraded returns the sticky failure keeping the WAL from accepting work
// (nil = healthy).
func (w *wal) degraded() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.wedged {
		return errWALWedged
	}
	return w.err
}

// lastSeq reports the most recently assigned record sequence number.
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// stats snapshots the durability counters (records, bytes, compactions).
func (w *wal) stats() (records, bytes, compactions int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes, w.compact
}

// compactTo atomically replaces the snapshot with state and truncates the
// log. Crash ordering is safe without coordination: the snapshot rename is
// atomic, and replay skips log records the snapshot already folds in (by
// LastSeq), so dying between rename and truncate only costs dead bytes.
func (w *wal) compactTo(state *walState) error {
	payload, err := json.Marshal(state)
	if err != nil {
		return err
	}
	buf := make([]byte, walHdrLen+len(payload)+4)
	binary.LittleEndian.PutUint32(buf, stateMagic)
	binary.LittleEndian.PutUint32(buf[4:], stateVersion)
	copy(buf[walHdrLen:], payload)
	binary.LittleEndian.PutUint32(buf[walHdrLen+len(payload):], crcio.Checksum(buf[:walHdrLen+len(payload)]))

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	if w.wedged {
		return errWALWedged
	}
	tmp, err := os.CreateTemp(w.dir, ".state-*")
	if err != nil {
		w.err = err
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, filepath.Join(w.dir, stateFile))
	}
	if err != nil {
		os.Remove(tmpName)
		w.err = err
		return err
	}
	if err := w.f.Truncate(walHdrLen); err != nil {
		// The snapshot landed; a stale log tail is merely wasted bytes
		// (replay skips it by sequence). Keep going.
		w.err = err
		return nil
	}
	w.off = walHdrLen
	w.dirty = false
	w.compact++
	w.err = nil
	return nil
}

// close stops the flusher, syncs, and releases the file.
func (w *wal) close() error {
	w.stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.dirty && !w.wedged {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// kill simulates a coordinator crash for tests: the flusher stops and the
// file is abandoned without a final sync. (In-process the page cache cannot
// be dropped, so unsynced records still replay; true torn-tail losses are
// exercised by crafting bytes directly.)
func (w *wal) kill() {
	w.stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		_ = w.f.Close()
	}
}

// stop halts the flusher goroutine (idempotent; a no-op if start was never
// called, e.g. when recovery failed before the coordinator went live).
func (w *wal) stop() {
	w.mu.Lock()
	started := w.started
	select {
	case <-w.done:
	default:
		close(w.done)
	}
	w.mu.Unlock()
	if started {
		<-w.flusherDone
	}
}
