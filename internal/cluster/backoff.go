package cluster

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with full jitter, the
// standard defense against retry storms: when a coordinator restarts, every
// worker in the fleet sees its request fail at the same instant, and without
// jitter they would all retry in lockstep, hammering the recovering process
// at exactly the moment it is replaying its WAL. Each Next doubles a ceiling
// (Base, 2·Base, 4·Base, … capped at Max) and returns a uniformly random
// delay in [ceiling/2, ceiling], so synchronized failures decorrelate within
// a couple of rounds while the lower bound keeps the retry rate honest.
//
// A Backoff is not safe for concurrent use; each retry loop owns its own.
type Backoff struct {
	// Base is the first delay ceiling (0 = 500ms).
	Base time.Duration
	// Max caps the ceiling growth (0 = 30s).
	Max time.Duration

	attempt int
	// rnd is the jitter source (nil = math/rand); tests inject a
	// deterministic one to pin the bounds.
	rnd func(n int64) int64
}

// NewBackoff returns a Backoff with the given bounds (zero values pick the
// defaults: 500ms base, 30s cap).
func NewBackoff(base, max time.Duration) *Backoff {
	return &Backoff{Base: base, Max: max}
}

// Next records one more failed attempt and returns how long to wait before
// the next try.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	cap := b.Max
	if cap <= 0 {
		cap = 30 * time.Second
	}
	if base > cap {
		base = cap
	}
	ceil := base
	for i := 0; i < b.attempt && ceil < cap; i++ {
		ceil *= 2
		if ceil > cap || ceil <= 0 { // <= 0: duration overflow
			ceil = cap
		}
	}
	b.attempt++
	// Full jitter over the upper half: [ceil/2, ceil]. Keeping a floor of
	// half the ceiling preserves the exponential shape (pure [0, ceil]
	// jitter can draw near-zero delays forever).
	half := ceil / 2
	rnd := b.rnd
	if rnd == nil {
		rnd = rand.Int63n
	}
	return half + time.Duration(rnd(int64(half)+1))
}

// Reset forgets the failure streak: the next Next starts from Base again.
// Call it after any successful round trip.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempts reports how many failures the current streak has accumulated.
func (b *Backoff) Attempts() int { return b.attempt }
