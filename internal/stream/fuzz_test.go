package stream

import (
	"testing"

	"ohminer/internal/pattern"
)

// FuzzSnapshotDecode drives arbitrary bytes through the OHMT snapshot
// decoder: it must never panic, refuse torn and mutated inputs with an
// error, and any input it does accept must re-marshal, re-decode, and Load
// cleanly — the decoder defines the format, so acceptance implies validity.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with real snapshots so the fuzzer starts from the valid format.
	empty, err := NewMiner(Config{NumVertices: 4})
	if err != nil {
		f.Fatal(err)
	}
	b, err := empty.SnapshotState().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)

	m, err := NewMiner(Config{NumVertices: 10, Window: 3})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := m.RegisterQuery(pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)); err != nil {
		f.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}, {1, 2}, {2, 3, 4}}}); err != nil {
		f.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Add: [][]uint32{{5, 6}}, Retire: [][]uint32{{0, 1}}}); err != nil {
		f.Fatal(err)
	}
	b, err = m.SnapshotState().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add(b[:len(b)/2]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("OHMT"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return // rejection is always fine; panics are not
		}
		// Accepted input must be fully well-formed: semantic validation,
		// re-encoding, and a full miner load must all succeed.
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded snapshot fails Validate: %v", err)
		}
		enc, err := s.Marshal()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		s2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if s2.Epoch != s.Epoch || len(s2.Edges) != len(s.Edges) || len(s2.Queries) != len(s.Queries) {
			t.Fatalf("re-decode drifted: %+v vs %+v", s2, s)
		}
		if _, err := Load(s, Config{}); err != nil {
			t.Fatalf("accepted snapshot fails Load: %v", err)
		}
	})
}
