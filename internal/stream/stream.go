// Package stream is the streaming hypergraph pattern-mining subsystem
// (ROADMAP item 4): a batch log with monotonically increasing edge epochs,
// windowed deletion/expiry, standing pattern queries evaluated as exact
// per-batch deltas, and a CRC-framed snapshot for exactly-once resume.
//
// The model. A Miner owns an evolving hypergraph over a fixed vertex
// universe. Time advances in batches: applying batch t (epoch t, starting
// at 1) adds hyperedges, retires hyperedges (explicitly, or by window
// expiry), and re-adds previously retired ones. Hyperedges are identified
// by their normalized vertex set; a physical edge ID is assigned the first
// time a set appears and is reused on resurrection, so the underlying
// hypergraph and DAL grow append-only between compactions, and retirement
// is a mask (PositionFilter) rather than a data-structure mutation.
//
// Delta semantics (Tesseract/PSMiner-style anchored enumeration). After
// batch t, for each standing query the miner counts
//
//	added(t)   = embeddings of graph(t) using ≥1 edge added at t
//	retired(t) = embeddings of graph(t−1) using ≥1 edge retired at t
//
// each by anchoring on the first matching-order position that binds a
// changed edge, so every embedding is counted exactly once and
//
//	total(t) = total(t−1) + added(t) − retired(t)
//
// holds exactly (differential-tested against a from-scratch TotalCount in
// stream_test.go). Both classes need every ordered tuple visible, so query
// plans are compiled without symmetry-breaking restrictions; unique counts
// divide by the automorphism count, exact because the runs are complete.
//
// Batches are fully validated before any state is touched: a rejected
// batch leaves the miner exactly as it was (the internal/dynamic
// state-poisoning bug class this package retires).
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// Config configures a Miner. Semantic fields (NumVertices, Window) are part
// of the stream's identity and are persisted in snapshots; the rest are
// runtime knobs re-supplied on load.
type Config struct {
	// NumVertices fixes the vertex universe [0, NumVertices).
	NumVertices int

	// Window, when > 0, keeps each hyperedge live for at most Window
	// batches: applying epoch t auto-retires every live edge whose last add
	// (or refresh) epoch is ≤ t − Window. Re-adding a live edge refreshes
	// its clock without generating deltas. 0 means edges live until
	// explicitly retired.
	Window uint64

	// CompactFraction triggers a compaction — a rebuild of the physical
	// hypergraph from live edges only, dropping retired garbage — when
	// retired edges exceed this fraction of physical edges (and CompactMin).
	// 0 selects the default 0.25; negative disables compaction.
	CompactFraction float64

	// CompactMin is the minimum number of retired edges before a compaction
	// is considered (0 = default 64).
	CompactMin int

	// Rebuild forces every applied batch to rebuild the full hypergraph and
	// DAL from scratch instead of extending them incrementally — the
	// ablation baseline (and differential oracle) for the incremental
	// derived-state maintenance. Results are identical either way.
	Rebuild bool

	// Engine templates the options for all query evaluation (Workers,
	// Kernel, Gen/Val, SplitDepth/SplitThreshold, Instrument). Run-shaping
	// fields — Limit, Deadline, OnEmbedding, UniqueOnly, PositionFilter,
	// Checkpoint — are ignored: delta counting needs complete runs, and the
	// miner owns the position filters.
	Engine engine.Options

	// Snapshot, when set, receives a stream snapshot every SnapshotEvery
	// applied batches and after every (non-deduplicated) query
	// registration, making the stream durable.
	Snapshot Sink

	// SnapshotEvery is the snapshot cadence in batches (0 = every batch).
	// Ignored without Snapshot.
	SnapshotEvery uint64
}

// Batch is one unit of stream input.
type Batch struct {
	// Seq, when non-zero, is the 1-based position of this batch in the
	// feed. A batch whose Seq is ≤ the miner's current epoch has already
	// been applied and returns ErrStale without touching state — the
	// idempotent-replay half of exactly-once resume; a Seq beyond epoch+1
	// returns ErrGap. Zero means unsequenced (always applies).
	Seq uint64
	// Add lists hyperedges to add as raw vertex lists (normalized
	// internally). Adding a live edge refreshes its window clock; adding a
	// retired edge resurrects it.
	Add [][]uint32
	// Retire lists hyperedges to retire, named by vertex set. Each must be
	// live when the batch is applied; retiring an unknown or already
	// retired edge rejects the whole batch. A set appearing in both Add and
	// Retire is retired and immediately re-added (a fresh edge for delta
	// accounting).
	Retire [][]uint32
}

// BatchResult reports one applied batch.
type BatchResult struct {
	// Epoch is the epoch this batch was assigned.
	Epoch uint64
	// Added counts hyperedges that became live (fresh, resurrected, or
	// retire+re-add); Retired counts explicit retirements (including
	// retire+re-add); Expired counts window expirations; Refreshed counts
	// adds that only reset a live edge's window clock.
	Added, Retired, Expired, Refreshed int
	// Deltas holds one entry per standing query, in query-ID order.
	Deltas []Delta
	// Compacted reports that this apply began by compacting retired
	// garbage out of the physical hypergraph.
	Compacted bool
	// Elapsed is the wall-clock time of the whole apply (derived-state
	// maintenance + query evaluation, excluding snapshot I/O).
	Elapsed time.Duration
}

// Delta is one standing query's exact per-batch result, the event pushed to
// subscribers.
type Delta struct {
	QueryID uint64 `json:"query_id"`
	Epoch   uint64 `json:"epoch"`
	// Seq numbers this query's events from 1, resuming across snapshots.
	Seq uint64 `json:"seq"`
	// Added/Retired count ordered embedding tuples entering/leaving the
	// match set this batch; the Unique variants divide by the pattern's
	// automorphism count (exact: anchored runs are complete, and "touches a
	// changed edge" is an orbit-invariant property).
	Added         uint64 `json:"added"`
	Retired       uint64 `json:"retired"`
	AddedUnique   uint64 `json:"added_unique"`
	RetiredUnique uint64 `json:"retired_unique"`
	// Total/Unique are the cumulative counts over the current live graph
	// after this batch.
	Total  uint64 `json:"total"`
	Unique uint64 `json:"unique"`
	// ElapsedMS is the evaluation time for this query this batch.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// QueryInfo describes a standing query.
type QueryInfo struct {
	ID            uint64 `json:"id"`
	Pattern       string `json:"pattern"`
	Automorphisms int    `json:"automorphisms"`
	// BaseEpoch is the epoch the query was registered at; its baseline
	// count was mined from that epoch's live graph.
	BaseEpoch uint64 `json:"base_epoch"`
	// Total/Unique are cumulative counts as of the last applied batch.
	Total  uint64 `json:"total"`
	Unique uint64 `json:"unique"`
	// EventSeq is the number of Delta events emitted so far.
	EventSeq uint64 `json:"event_seq"`
	// Existing is true on RegisterQuery when the pattern was already
	// registered (isomorphic to an existing query's pattern) and the
	// existing query was returned instead of a new one.
	Existing bool `json:"existing,omitempty"`
}

// Sentinel errors for sequenced application; see Batch.Seq.
var (
	ErrStale = errors.New("stream: batch seq already applied")
	ErrGap   = errors.New("stream: batch seq skips ahead of the log")
)

type query struct {
	id        uint64
	p         *pattern.Pattern
	lit       string
	canon     string
	aut       uint64
	plan      *oig.Plan // unrestricted; compiled lazily (needs a store)
	baseEpoch uint64
	base      uint64 // ordered count at registration
	cumAdd    uint64
	cumRet    uint64
	seq       uint64
}

func (q *query) total() uint64  { return q.base + q.cumAdd - q.cumRet }
func (q *query) unique() uint64 { return q.total() / q.aut }

func (q *query) info() QueryInfo {
	return QueryInfo{
		ID:            q.id,
		Pattern:       q.lit,
		Automorphisms: int(q.aut),
		BaseEpoch:     q.baseEpoch,
		Total:         q.total(),
		Unique:        q.unique(),
		EventSeq:      q.seq,
	}
}

// Miner is the streaming miner. All methods are safe for concurrent use;
// batch application is serialized.
type Miner struct {
	mu  sync.Mutex
	cfg Config
	err error // latched fatal error; set if an apply failed mid-mutation

	epoch uint64

	// Physical state. h/store are nil until the first edge exists; both are
	// replaced wholesale on growth (old values stay valid for concurrent
	// readers). addEpoch/retireEpoch are indexed by physical edge ID;
	// retireEpoch 0 means live.
	h           *hypergraph.Hypergraph
	store       *dal.Store
	addEpoch    []uint64
	retireEpoch []uint64
	live        int
	index       map[string]uint32 // normalized vertex set → physical ID

	// Latest-batch change marks, valid between applies; drive the anchored
	// delta filters.
	lastAdded   []bool
	lastRetired []bool
	haveLast    bool

	queries   map[uint64]*query
	byCanon   map[string]uint64
	nextQID   uint64
	sinceSnap uint64
	// dirty is set when applied state has not yet reached the snapshot
	// sink; stale replays re-attempt the write before confirming, closing
	// the ack-crash gap.
	dirty bool
}

// NewMiner creates an empty stream at epoch 0.
func NewMiner(cfg Config) (*Miner, error) {
	if cfg.NumVertices <= 0 {
		return nil, errors.New("stream: NumVertices must be positive")
	}
	if cfg.CompactFraction == 0 {
		cfg.CompactFraction = 0.25
	}
	if cfg.CompactMin == 0 {
		cfg.CompactMin = 64
	}
	return &Miner{
		cfg:     cfg,
		index:   map[string]uint32{},
		queries: map[uint64]*query{},
		byCanon: map[string]uint64{},
		nextQID: 1,
	}, nil
}

// edgeKey packs a normalized vertex set into a map key.
func edgeKey(e []uint32) string {
	b := make([]byte, 4*len(e))
	for i, v := range e {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// normalize copies, sorts, and dedups one raw vertex list.
func normalize(raw []uint32, nv int) ([]uint32, error) {
	if len(raw) == 0 {
		return nil, errors.New("stream: empty hyperedge")
	}
	e := append([]uint32(nil), raw...)
	sort.Slice(e, func(a, b int) bool { return e[a] < e[b] })
	w := 1
	for k := 1; k < len(e); k++ {
		if e[k] != e[w-1] {
			e[w] = e[k]
			w++
		}
	}
	e = e[:w]
	if int(e[len(e)-1]) >= nv {
		return nil, fmt.Errorf("stream: vertex %d out of range [0,%d)", e[len(e)-1], nv)
	}
	return e, nil
}

// mineOpts derives engine options from the config template, clearing the
// run-shaping fields the miner must own.
func (m *Miner) mineOpts(filter func(int, uint32) bool) engine.Options {
	o := m.cfg.Engine
	o.Limit = 0
	o.Deadline = 0
	o.OnEmbedding = nil
	o.UniqueOnly = false
	o.Checkpoint = nil
	o.CheckpointEvery = 0
	o.DataAwareOrder = false
	o.PositionFilter = filter
	if filter != nil {
		o.NoSymmetryBreak = true
	}
	return o
}

// ensurePlan lazily compiles q's unrestricted plan against the current
// store (plans carry only pattern semantics plus advisory container hints,
// so a plan compiled once stays correct as the store evolves).
func (m *Miner) ensurePlan(q *query) error {
	if q.plan != nil {
		return nil
	}
	o := m.mineOpts(nil)
	o.NoSymmetryBreak = true
	plan, err := engine.CompilePlan(m.store, q.p, o)
	if err != nil {
		return err
	}
	q.plan = plan
	return nil
}

// applyPlan is the fully validated mutation plan for one batch, computed
// against pre-batch state before anything is touched.
type applyPlan struct {
	seqChecked bool
	newEdges   [][]uint32 // fresh physical edges, in batch order
	newKeys    []string
	resurrect  []uint32 // retired physical edges coming back live
	refresh    []uint32 // live edges whose window clock resets
	retire     []uint32 // live edges to retire (explicit)
	expire     []uint32 // live edges to retire (window)
	readd      []uint32 // live edges retired AND re-added in this batch
}

// planBatch validates b against current state; any error means no mutation
// will happen.
func (m *Miner) planBatch(b Batch) (*applyPlan, error) {
	if b.Seq != 0 {
		if b.Seq <= m.epoch {
			return nil, fmt.Errorf("%w: seq %d ≤ epoch %d", ErrStale, b.Seq, m.epoch)
		}
		if b.Seq > m.epoch+1 {
			return nil, fmt.Errorf("%w: seq %d, epoch %d", ErrGap, b.Seq, m.epoch)
		}
	}
	t := m.epoch + 1
	ap := &applyPlan{}

	// Retires first: each must name a currently live edge.
	retiring := map[uint32]bool{}
	for _, raw := range b.Retire {
		e, err := normalize(raw, m.cfg.NumVertices)
		if err != nil {
			return nil, err
		}
		id, ok := m.index[edgeKey(e)]
		if !ok || m.retireEpoch[id] != 0 {
			return nil, fmt.Errorf("stream: retire of hyperedge %v which is not live", e)
		}
		if retiring[id] {
			continue
		}
		retiring[id] = true
		ap.retire = append(ap.retire, id)
	}

	// Adds: classify each set against pre-batch state and the retire set.
	adding := map[string]bool{}
	for _, raw := range b.Add {
		e, err := normalize(raw, m.cfg.NumVertices)
		if err != nil {
			return nil, err
		}
		key := edgeKey(e)
		if adding[key] {
			continue // duplicate within the batch: absorbed
		}
		adding[key] = true
		id, known := m.index[key]
		switch {
		case !known:
			ap.newEdges = append(ap.newEdges, e)
			ap.newKeys = append(ap.newKeys, key)
		case retiring[id]:
			ap.readd = append(ap.readd, id)
		case m.retireEpoch[id] != 0:
			ap.resurrect = append(ap.resurrect, id)
		default:
			ap.refresh = append(ap.refresh, id)
		}
	}

	// Window expiry over pre-batch live edges, skipping edges this batch
	// refreshes, retires, or re-adds (their clocks are handled above).
	if w := m.cfg.Window; w > 0 && t > w {
		cutoff := t - w
		refreshing := map[uint32]bool{}
		for _, id := range ap.refresh {
			refreshing[id] = true
		}
		for id, re := range m.retireEpoch {
			if re == 0 && m.addEpoch[id] <= cutoff && !retiring[uint32(id)] && !refreshing[uint32(id)] {
				ap.expire = append(ap.expire, uint32(id))
			}
		}
	}
	return ap, nil
}

// ApplyBatch validates and applies one batch, advancing the epoch,
// maintaining derived state incrementally, evaluating every standing query,
// and (when configured) writing a snapshot. On a validation error — bad
// vertex, retire of a non-live edge, stale or gapping Seq — no state
// changes. ErrStale is returned for already-applied sequenced batches so
// feeders can replay idempotently after a crash.
func (m *Miner) ApplyBatch(b Batch) (*BatchResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}

	// Compact retired garbage before this batch when it crossed the
	// threshold; done up front so the previous batch's change marks (still
	// serving LatestDelta) were valid until now.
	compacted := false
	if m.shouldCompact() {
		if err := m.compact(); err != nil {
			return nil, err
		}
		compacted = true
	}

	ap, err := m.planBatch(b)
	if err != nil {
		// A stale sequenced batch is the feeder replaying after a crash; if
		// the applied state it is confirming never reached the sink, write
		// it now so the idempotent ack implies durability.
		if errors.Is(err, ErrStale) && m.cfg.Snapshot != nil && m.dirty {
			if serr := m.writeSnapshotLocked(); serr != nil {
				return nil, serr
			}
		}
		return nil, err
	}
	start := time.Now()
	t := m.epoch + 1

	// Mutate. Everything below must succeed or latch m.err: the snapshot
	// simply isn't written on failure, so a restart recovers consistency.
	res := &BatchResult{
		Epoch:     t,
		Added:     len(ap.newEdges) + len(ap.resurrect) + len(ap.readd),
		Retired:   len(ap.retire),
		Expired:   len(ap.expire),
		Refreshed: len(ap.refresh),
		Compacted: compacted,
	}
	if len(ap.newEdges) > 0 {
		if err := m.grow(ap.newEdges, ap.newKeys, t); err != nil {
			m.err = fmt.Errorf("stream: apply failed mid-mutation, miner poisoned (restart from snapshot): %w", err)
			return nil, m.err
		}
	}
	m.lastAdded = make([]bool, len(m.addEpoch))
	m.lastRetired = make([]bool, len(m.addEpoch))
	m.haveLast = true
	for i := len(m.addEpoch) - len(ap.newEdges); i < len(m.addEpoch); i++ {
		m.lastAdded[i] = true
	}
	for _, id := range ap.retire {
		m.retireEpoch[id] = t
		m.lastRetired[id] = true
		m.live--
	}
	for _, id := range ap.expire {
		m.retireEpoch[id] = t
		m.lastRetired[id] = true
		m.live--
	}
	for _, id := range ap.resurrect {
		m.retireEpoch[id] = 0
		m.addEpoch[id] = t
		m.lastAdded[id] = true
		m.live++
	}
	for _, id := range ap.readd {
		// Retired (already marked by the retire loop — readd IDs are a
		// subset of ap.retire) and re-added in one batch: counted on both
		// sides of the delta.
		m.retireEpoch[id] = 0
		m.addEpoch[id] = t
		m.lastAdded[id] = true
		m.live++
	}
	for _, id := range ap.refresh {
		// Re-adding a live edge resets its window clock only — no delta.
		m.addEpoch[id] = t
	}
	m.epoch = t
	m.dirty = true

	// Evaluate standing queries against the fresh marks.
	res.Deltas, err = m.evaluate()
	if err != nil {
		m.err = fmt.Errorf("stream: query evaluation failed mid-apply, miner poisoned (restart from snapshot): %w", err)
		return nil, m.err
	}
	res.Elapsed = time.Since(start)

	if m.cfg.Snapshot != nil {
		m.sinceSnap++
		every := m.cfg.SnapshotEvery
		if every == 0 {
			every = 1
		}
		if m.sinceSnap >= every {
			if err := m.writeSnapshotLocked(); err != nil {
				// State is applied but not durable; surface the error with
				// the result so the caller can refuse the ack.
				return res, err
			}
		}
	}
	return res, nil
}

// grow extends the physical hypergraph and DAL by fresh edges (or rebuilds
// both from scratch in Rebuild mode — the ablation baseline).
func (m *Miner) grow(newEdges [][]uint32, newKeys []string, t uint64) error {
	switch {
	case m.cfg.Rebuild && m.h != nil:
		all := make([][]uint32, 0, len(m.addEpoch)+len(newEdges))
		for id := range m.addEpoch {
			all = append(all, m.h.EdgeVertices(uint32(id)))
		}
		all = append(all, newEdges...)
		h, err := hypergraph.Build(m.cfg.NumVertices, all, nil)
		if err != nil {
			return err
		}
		if h.NumEdges() != len(all) {
			return errors.New("stream: rebuild changed the physical edge count")
		}
		m.h = h
		m.store = dal.Build(h)
	case m.h == nil:
		// First growth of an empty stream: Extend cannot invent the vertex
		// universe, so bootstrap with a full build.
		h, err := hypergraph.Build(m.cfg.NumVertices, newEdges, nil)
		if err != nil {
			return err
		}
		if h.NumEdges() != len(newEdges) {
			return errors.New("stream: bootstrap build deduplicated edges")
		}
		m.h = h
		m.store = dal.Build(h)
	default:
		h, err := hypergraph.Extend(m.h, newEdges)
		if err != nil {
			return err
		}
		m.store = dal.BuildDelta(m.store, h)
		m.h = h
	}
	base := uint32(len(m.addEpoch))
	for i, key := range newKeys {
		m.index[key] = base + uint32(i)
	}
	m.addEpoch = append(m.addEpoch, make([]uint64, len(newEdges))...)
	m.retireEpoch = append(m.retireEpoch, make([]uint64, len(newEdges))...)
	for i := range newEdges {
		m.addEpoch[int(base)+i] = t
	}
	m.live += len(newEdges)
	return nil
}

// evaluate runs the anchored delta counts for every standing query, in ID
// order, and commits the cumulative counters.
func (m *Miner) evaluate() ([]Delta, error) {
	if len(m.queries) == 0 {
		return nil, nil
	}
	ids := make([]uint64, 0, len(m.queries))
	for id := range m.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	anyAdd, anyRet := false, false
	for i := range m.lastAdded {
		anyAdd = anyAdd || m.lastAdded[i]
		anyRet = anyRet || m.lastRetired[i]
	}

	deltas := make([]Delta, 0, len(ids))
	for _, id := range ids {
		q := m.queries[id]
		qstart := time.Now()
		var added, retired uint64
		if anyAdd {
			n, err := m.anchored(q, m.addFilter)
			if err != nil {
				return nil, err
			}
			added = n
		}
		if anyRet {
			n, err := m.anchored(q, m.retireFilter)
			if err != nil {
				return nil, err
			}
			retired = n
		}
		q.cumAdd += added
		q.cumRet += retired
		q.seq++
		deltas = append(deltas, Delta{
			QueryID:       q.id,
			Epoch:         m.epoch,
			Seq:           q.seq,
			Added:         added,
			Retired:       retired,
			AddedUnique:   added / q.aut,
			RetiredUnique: retired / q.aut,
			Total:         q.total(),
			Unique:        q.unique(),
			ElapsedMS:     float64(time.Since(qstart)) / float64(time.Millisecond),
		})
	}
	return deltas, nil
}

// addFilter is the anchored filter family for added(t): positions before
// the anchor bind unchanged live edges, the anchor binds an edge added this
// batch, later positions bind any live edge.
func (m *Miner) addFilter(anchor int) func(int, uint32) bool {
	live, added := m.retireEpoch, m.lastAdded
	return func(pos int, e uint32) bool {
		switch {
		case pos < anchor:
			return live[e] == 0 && !added[e]
		case pos == anchor:
			return added[e]
		default:
			return live[e] == 0
		}
	}
}

// retireFilter is the anchored filter family for retired(t): it enumerates
// embeddings of graph(t−1) — survivors plus this batch's retirees — whose
// anchor position binds an edge retired this batch.
func (m *Miner) retireFilter(anchor int) func(int, uint32) bool {
	live, added, retired := m.retireEpoch, m.lastAdded, m.lastRetired
	return func(pos int, e uint32) bool {
		survivor := live[e] == 0 && !added[e]
		switch {
		case pos < anchor:
			return survivor
		case pos == anchor:
			return retired[e]
		default:
			return survivor || retired[e]
		}
	}
}

// anchored sums a complete anchored enumeration over all anchor positions.
func (m *Miner) anchored(q *query, family func(int) func(int, uint32) bool) (uint64, error) {
	if m.store == nil {
		return 0, nil
	}
	if err := m.ensurePlan(q); err != nil {
		return 0, err
	}
	var sum uint64
	for a := 0; a < q.p.NumEdges(); a++ {
		res, err := engine.MineWithPlan(m.store, q.plan, m.mineOpts(family(a)))
		if err != nil {
			return 0, err
		}
		sum += res.Ordered
	}
	return sum, nil
}

// liveFilter masks retired physical edges out of a full mine.
func (m *Miner) liveFilter() func(int, uint32) bool {
	if m.live == len(m.retireEpoch) {
		return nil // no garbage: unmasked mining is exact
	}
	live := m.retireEpoch
	return func(_ int, e uint32) bool { return live[e] == 0 }
}

// RegisterQuery registers a standing pattern query. Isomorphic patterns
// (same canonical key) share one query: re-registering returns the existing
// query's info with Existing set. A fresh registration mines the current
// live graph for its baseline count and, when a snapshot sink is
// configured, persists immediately.
func (m *Miner) RegisterQuery(p *pattern.Pattern) (QueryInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return QueryInfo{}, m.err
	}
	return m.registerLocked(p, true)
}

func (m *Miner) registerLocked(p *pattern.Pattern, persist bool) (QueryInfo, error) {
	if p.Labeled() || p.EdgeLabeled() {
		return QueryInfo{}, errors.New("stream: labeled standing queries are not supported")
	}
	canon, ok := pattern.CanonicalKey(p)
	if !ok {
		canon = "lit:" + p.String()
	}
	if id, dup := m.byCanon[canon]; dup {
		info := m.queries[id].info()
		info.Existing = true
		// Same ack-crash healing as stale batches: a replayed registration
		// whose original ack was lost must not confirm undurable state.
		if m.cfg.Snapshot != nil && m.dirty {
			if err := m.writeSnapshotLocked(); err != nil {
				return info, err
			}
		}
		return info, nil
	}
	q := &query{
		id:        m.nextQID,
		p:         p,
		lit:       p.String(),
		canon:     canon,
		aut:       uint64(p.Automorphisms()),
		baseEpoch: m.epoch,
	}
	if m.store != nil {
		if err := m.ensurePlan(q); err != nil {
			return QueryInfo{}, err
		}
		res, err := engine.MineWithPlan(m.store, q.plan, m.mineOpts(m.liveFilter()))
		if err != nil {
			return QueryInfo{}, err
		}
		q.base = res.Ordered
	}
	m.queries[q.id] = q
	m.byCanon[canon] = q.id
	m.nextQID++
	m.dirty = true
	if persist && m.cfg.Snapshot != nil {
		if err := m.writeSnapshotLocked(); err != nil {
			return q.info(), err
		}
	}
	return q.info(), nil
}

// Queries lists all standing queries in ID order.
func (m *Miner) Queries() []QueryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryInfo, 0, len(m.queries))
	for _, q := range m.queries {
		out = append(out, q.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Query returns one standing query's info.
func (m *Miner) Query(id uint64) (QueryInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return QueryInfo{}, false
	}
	return q.info(), true
}

// SetEngineOptions replaces the engine options used for standing-query
// evaluation and ad-hoc counts from the next operation on. Run-shaping
// fields (limits, callbacks, checkpointing) are sanitized per mine as
// always; counts are invariant to this — it tunes workers and kernels.
func (m *Miner) SetEngineOptions(o engine.Options) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.Engine = o
}

// TotalCount mines the current live graph from scratch for p — the oracle
// the per-query cumulative totals are differential-tested against. When no
// retired garbage is present this is a plain (symmetry-broken) mine;
// otherwise retired edges are masked with an unrestricted plan. The mine
// runs outside the miner's lock against an immutable store snapshot.
func (m *Miner) TotalCount(p *pattern.Pattern) (engine.Result, error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return engine.Result{}, m.err
	}
	store := m.store
	var filter func(int, uint32) bool
	if store != nil && m.live != len(m.retireEpoch) {
		live := append([]uint64(nil), m.retireEpoch...)
		filter = func(_ int, e uint32) bool { return live[e] == 0 }
	}
	opts := m.mineOpts(filter)
	m.mu.Unlock()

	if store == nil {
		return engine.Result{Automorphisms: p.Automorphisms()}, nil
	}
	return engine.Mine(store, p, opts)
}

// LatestDelta counts the last applied batch's delta for an ad-hoc pattern
// (standing queries get this pushed as events). Valid until the next
// ApplyBatch.
func (m *Miner) LatestDelta(p *pattern.Pattern) (Delta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return Delta{}, m.err
	}
	if !m.haveLast {
		return Delta{}, errors.New("stream: no batch applied since open")
	}
	q := &query{p: p, aut: uint64(p.Automorphisms())}
	start := time.Now()
	added, err := m.anchored(q, m.addFilter)
	if err != nil {
		return Delta{}, err
	}
	retired, err := m.anchored(q, m.retireFilter)
	if err != nil {
		return Delta{}, err
	}
	return Delta{
		Epoch:         m.epoch,
		Added:         added,
		Retired:       retired,
		AddedUnique:   added / q.aut,
		RetiredUnique: retired / q.aut,
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// shouldCompact reports whether retired garbage crossed the threshold.
func (m *Miner) shouldCompact() bool {
	if m.cfg.CompactFraction < 0 {
		return false
	}
	garbage := len(m.retireEpoch) - m.live
	return garbage >= m.cfg.CompactMin &&
		float64(garbage) > m.cfg.CompactFraction*float64(len(m.retireEpoch))
}

// compact rebuilds the physical hypergraph from live edges only, remapping
// physical IDs (relative order preserved) and invalidating latest-batch
// marks.
func (m *Miner) compact() error {
	liveEdges := make([][]uint32, 0, m.live)
	addE := make([]uint64, 0, m.live)
	for id := range m.retireEpoch {
		if m.retireEpoch[id] == 0 {
			liveEdges = append(liveEdges, append([]uint32(nil), m.h.EdgeVertices(uint32(id))...))
			addE = append(addE, m.addEpoch[id])
		}
	}
	m.index = make(map[string]uint32, len(liveEdges))
	if len(liveEdges) == 0 {
		m.h = nil
		m.store = nil
		m.addEpoch = nil
		m.retireEpoch = nil
	} else {
		h, err := hypergraph.Build(m.cfg.NumVertices, liveEdges, nil)
		if err != nil {
			return err
		}
		if h.NumEdges() != len(liveEdges) {
			return errors.New("stream: compaction changed the live edge count")
		}
		m.h = h
		m.store = dal.Build(h)
		m.addEpoch = addE
		m.retireEpoch = make([]uint64, len(liveEdges))
		for id, e := range liveEdges {
			m.index[edgeKey(e)] = uint32(id)
		}
	}
	m.live = len(liveEdges)
	m.haveLast = false
	m.lastAdded = nil
	m.lastRetired = nil
	// Cached query plans stay valid (IDs are runtime state, not plan state).
	return nil
}

// Epoch returns the number of batches applied.
func (m *Miner) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// LiveEdges returns the live hyperedge count.
func (m *Miner) LiveEdges() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// RetiredEdges returns the physical retired (garbage) edge count awaiting
// compaction.
func (m *Miner) RetiredEdges() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.retireEpoch) - m.live
}

// Hypergraph returns the current physical hypergraph — live edges plus
// not-yet-compacted retired ones — or nil while the stream is empty. The
// value is an immutable snapshot.
func (m *Miner) Hypergraph() *hypergraph.Hypergraph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h
}

// Store returns the DAL over the current physical hypergraph (see
// Hypergraph for the retired-edge caveat), or nil while empty.
func (m *Miner) Store() *dal.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// LiveEdgeSets returns copies of the live hyperedge vertex sets — the
// from-scratch oracle's input.
func (m *Miner) LiveEdgeSets() [][]uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]uint32, 0, m.live)
	for id := range m.retireEpoch {
		if m.retireEpoch[id] == 0 {
			out = append(out, append([]uint32(nil), m.h.EdgeVertices(uint32(id))...))
		}
	}
	return out
}
