// The OHMT stream snapshot: a versioned, CRC32C-framed, bounds-checked
// binary capture of everything a streaming miner needs to resume
// exactly-once — the live edge log with add epochs (the batch-log
// watermark) and every standing query's cumulative counters. Follows the
// OHMC/OHMS conventions: little-endian u64 framing, magic + version header,
// incremental allocation during decode so corrupt lengths cannot balloon
// memory, a trailing checksum so torn or flipped bytes are refused at load
// time, and atomic temp+fsync+rename persistence.
//
// Retired edges are deliberately absent: resurrection assigns a fresh add
// epoch anyway, so garbage is not semantic state and every resume starts
// compacted.
package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ohminer/internal/crcio"
	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

const (
	// Magic identifies the stream snapshot format ("OHMT", T for temporal).
	Magic uint64 = 0x4f484d54
	// Version is the current format version.
	Version uint64 = 1

	maxSnapVertices = 1 << 31
	maxSnapEdges    = 1 << 26
	maxSnapEdgeLen  = 1 << 20
	maxSnapQueries  = 1 << 16
	maxSnapPattern  = 1 << 16
)

// ErrCorrupt wraps every decode or validation failure: the bytes are not a
// well-formed, internally consistent stream snapshot.
var ErrCorrupt = errors.New("stream: corrupt snapshot")

// SnapshotEdge is one live hyperedge in the log.
type SnapshotEdge struct {
	Verts    []uint32 // normalized: sorted, deduped, within the universe
	AddEpoch uint64   // last add/refresh epoch, in [1, Epoch]
}

// SnapshotQuery is one standing query's durable state.
type SnapshotQuery struct {
	ID         uint64
	BaseEpoch  uint64
	Base       uint64 // ordered baseline count at registration
	CumAdded   uint64
	CumRetired uint64
	EventSeq   uint64
	Pattern    string // pattern literal, reparsed on load
}

// Snapshot is the decoded stream snapshot.
type Snapshot struct {
	NumVertices uint64
	Window      uint64
	Epoch       uint64
	NextQID     uint64
	Edges       []SnapshotEdge
	Queries     []SnapshotQuery
}

// Encode writes the snapshot in OHMT framing.
func (s *Snapshot) Encode(w io.Writer) error {
	cw := crcio.NewWriter(w)
	head := []uint64{
		Magic, Version, s.NumVertices, s.Window, s.Epoch, s.NextQID,
		uint64(len(s.Edges)), uint64(len(s.Queries)),
	}
	if err := binary.Write(cw, binary.LittleEndian, head); err != nil {
		return err
	}
	for _, e := range s.Edges {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(e.Verts))); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, e.Verts); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, e.AddEpoch); err != nil {
			return err
		}
	}
	for _, q := range s.Queries {
		qh := []uint64{q.ID, q.BaseEpoch, q.Base, q.CumAdded, q.CumRetired, q.EventSeq}
		if err := binary.Write(cw, binary.LittleEndian, qh); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(q.Pattern))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(q.Pattern)); err != nil {
			return err
		}
	}
	return cw.WriteTrailer()
}

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// readVerts reads n uint32s with chunked allocation so a corrupt length
// cannot allocate unbounded memory before the read fails.
func readVerts(r io.Reader, n uint32) ([]uint32, error) {
	const chunkMax = 1 << 12
	out := make([]uint32, 0, min32(n, chunkMax))
	buf := make([]uint32, min32(n, chunkMax))
	remaining := n
	for remaining > 0 {
		part := buf[:min32(remaining, chunkMax)]
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= uint32(len(part))
	}
	return out, nil
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Decode reads, checksums, and validates one snapshot. It never panics on
// corrupt input: framing errors, truncated tails, flipped bytes (checksum),
// and semantically inconsistent contents all return an error wrapping
// ErrCorrupt.
func Decode(r io.Reader) (*Snapshot, error) {
	cr := crcio.NewReader(r)
	var head [8]uint64
	if err := binary.Read(cr, binary.LittleEndian, head[:]); err != nil {
		return nil, corruptf("short header: %v", err)
	}
	if head[0] != Magic {
		return nil, corruptf("bad magic %#x", head[0])
	}
	if head[1] != Version {
		return nil, corruptf("unsupported version %d", head[1])
	}
	s := &Snapshot{
		NumVertices: head[2],
		Window:      head[3],
		Epoch:       head[4],
		NextQID:     head[5],
	}
	numEdges, numQueries := head[6], head[7]
	if s.NumVertices == 0 || s.NumVertices > maxSnapVertices {
		return nil, corruptf("vertex count %d out of range", s.NumVertices)
	}
	if numEdges > maxSnapEdges {
		return nil, corruptf("edge count %d exceeds limit", numEdges)
	}
	if numQueries > maxSnapQueries {
		return nil, corruptf("query count %d exceeds limit", numQueries)
	}
	for i := uint64(0); i < numEdges; i++ {
		var n uint32
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return nil, corruptf("edge %d: short length: %v", i, err)
		}
		if n == 0 || n > maxSnapEdgeLen {
			return nil, corruptf("edge %d: vertex count %d out of range", i, n)
		}
		verts, err := readVerts(cr, n)
		if err != nil {
			return nil, corruptf("edge %d: short vertex list: %v", i, err)
		}
		var ae uint64
		if err := binary.Read(cr, binary.LittleEndian, &ae); err != nil {
			return nil, corruptf("edge %d: short epoch: %v", i, err)
		}
		s.Edges = append(s.Edges, SnapshotEdge{Verts: verts, AddEpoch: ae})
	}
	for i := uint64(0); i < numQueries; i++ {
		var qh [6]uint64
		if err := binary.Read(cr, binary.LittleEndian, qh[:]); err != nil {
			return nil, corruptf("query %d: short record: %v", i, err)
		}
		var n uint32
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return nil, corruptf("query %d: short pattern length: %v", i, err)
		}
		if n == 0 || n > maxSnapPattern {
			return nil, corruptf("query %d: pattern length %d out of range", i, n)
		}
		lit := make([]byte, n)
		if _, err := io.ReadFull(cr, lit); err != nil {
			return nil, corruptf("query %d: short pattern: %v", i, err)
		}
		s.Queries = append(s.Queries, SnapshotQuery{
			ID: qh[0], BaseEpoch: qh[1], Base: qh[2],
			CumAdded: qh[3], CumRetired: qh[4], EventSeq: qh[5],
			Pattern: string(lit),
		})
	}
	if err := cr.CheckTrailer("stream snapshot"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the snapshot's internal consistency beyond framing.
func (s *Snapshot) Validate() error {
	if s.NumVertices == 0 || s.NumVertices > maxSnapVertices {
		return corruptf("vertex count %d out of range", s.NumVertices)
	}
	seen := make(map[string]bool, len(s.Edges))
	for i, e := range s.Edges {
		if len(e.Verts) == 0 {
			return corruptf("edge %d: empty", i)
		}
		for j, v := range e.Verts {
			if uint64(v) >= s.NumVertices {
				return corruptf("edge %d: vertex %d out of range", i, v)
			}
			if j > 0 && e.Verts[j-1] >= v {
				return corruptf("edge %d: vertices not strictly ascending", i)
			}
		}
		if e.AddEpoch == 0 || e.AddEpoch > s.Epoch {
			return corruptf("edge %d: add epoch %d outside (0, %d]", i, e.AddEpoch, s.Epoch)
		}
		key := edgeKey(e.Verts)
		if seen[key] {
			return corruptf("edge %d: duplicate vertex set", i)
		}
		seen[key] = true
	}
	ids := make(map[uint64]bool, len(s.Queries))
	canon := make(map[string]bool, len(s.Queries))
	for i, q := range s.Queries {
		if q.ID == 0 || q.ID >= s.NextQID {
			return corruptf("query %d: id %d outside [1, %d)", i, q.ID, s.NextQID)
		}
		if ids[q.ID] {
			return corruptf("query %d: duplicate id %d", i, q.ID)
		}
		ids[q.ID] = true
		if q.BaseEpoch > s.Epoch {
			return corruptf("query %d: base epoch %d beyond %d", i, q.BaseEpoch, s.Epoch)
		}
		if q.Base+q.CumAdded < q.CumRetired {
			return corruptf("query %d: negative cumulative total", i)
		}
		p, err := pattern.Parse(q.Pattern)
		if err != nil {
			return corruptf("query %d: bad pattern: %v", i, err)
		}
		if p.Labeled() || p.EdgeLabeled() {
			return corruptf("query %d: labeled pattern", i)
		}
		ck, ok := pattern.CanonicalKey(p)
		if !ok {
			ck = "lit:" + p.String()
		}
		if canon[ck] {
			return corruptf("query %d: duplicate canonical pattern", i)
		}
		canon[ck] = true
	}
	return nil
}

// Marshal encodes to a byte slice.
func (s *Snapshot) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes and validates a byte slice.
func Unmarshal(b []byte) (*Snapshot, error) {
	return Decode(bytes.NewReader(b))
}

// WriteFile atomically persists the snapshot at path (temp + fsync +
// rename), so a crash mid-write leaves the previous snapshot intact.
func (s *Snapshot) WriteFile(path string) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ohmt-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := s.Encode(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, nil
}

// ReadFile loads and validates a snapshot written by WriteFile.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Sink receives stream snapshots on the configured cadence.
type Sink interface {
	WriteSnapshot(s *Snapshot) (int64, error)
}

// FileSink persists every snapshot to one path, atomically replacing the
// previous one.
type FileSink struct {
	Path string
}

// WriteSnapshot implements Sink.
func (fs *FileSink) WriteSnapshot(s *Snapshot) (int64, error) {
	return s.WriteFile(fs.Path)
}

// MemSink retains the latest snapshot, already encoded, in memory — the
// test double standing in for durable storage.
type MemSink struct {
	mu     sync.Mutex
	data   []byte
	epoch  uint64
	writes int
}

// WriteSnapshot implements Sink.
func (ms *MemSink) WriteSnapshot(s *Snapshot) (int64, error) {
	b, err := s.Marshal()
	if err != nil {
		return 0, err
	}
	ms.mu.Lock()
	ms.data = b
	ms.epoch = s.Epoch
	ms.writes++
	ms.mu.Unlock()
	return int64(len(b)), nil
}

// Bytes returns the latest encoded snapshot (nil when nothing was written).
func (ms *MemSink) Bytes() []byte {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.data
}

// Epoch reports the epoch of the latest snapshot, 0 when none.
func (ms *MemSink) Epoch() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.epoch
}

// Writes reports how many snapshots the sink received.
func (ms *MemSink) Writes() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.writes
}

// snapshotLocked captures the miner's durable state. Caller holds m.mu.
func (m *Miner) snapshotLocked() *Snapshot {
	s := &Snapshot{
		NumVertices: uint64(m.cfg.NumVertices),
		Window:      m.cfg.Window,
		Epoch:       m.epoch,
		NextQID:     m.nextQID,
	}
	for id := range m.retireEpoch {
		if m.retireEpoch[id] != 0 {
			continue
		}
		s.Edges = append(s.Edges, SnapshotEdge{
			Verts:    append([]uint32(nil), m.h.EdgeVertices(uint32(id))...),
			AddEpoch: m.addEpoch[id],
		})
	}
	qids := make([]uint64, 0, len(m.queries))
	for id := range m.queries {
		qids = append(qids, id)
	}
	sortU64(qids)
	for _, id := range qids {
		q := m.queries[id]
		s.Queries = append(s.Queries, SnapshotQuery{
			ID: q.id, BaseEpoch: q.baseEpoch, Base: q.base,
			CumAdded: q.cumAdd, CumRetired: q.cumRet, EventSeq: q.seq,
			Pattern: q.lit,
		})
	}
	return s
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func (m *Miner) writeSnapshotLocked() error {
	if _, err := m.cfg.Snapshot.WriteSnapshot(m.snapshotLocked()); err != nil {
		return fmt.Errorf("stream: snapshot write: %w", err)
	}
	m.sinceSnap = 0
	m.dirty = false
	return nil
}

// SnapshotState captures the current durable state without writing it.
func (m *Miner) SnapshotState() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

// WriteSnapshot forces a snapshot to the configured sink regardless of
// cadence.
func (m *Miner) WriteSnapshot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if m.cfg.Snapshot == nil {
		return errors.New("stream: no snapshot sink configured")
	}
	return m.writeSnapshotLocked()
}

// Load reconstructs a miner from a snapshot. The snapshot's semantic fields
// (vertex universe, window, epoch, query counters) override cfg's; cfg
// supplies the runtime knobs (engine options, compaction, sink, cadence).
// Cumulative query totals continue exactly where the snapshot left them —
// nothing is re-mined on load except nothing at all: baselines and deltas
// are durable state.
func Load(s *Snapshot, cfg Config) (*Miner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg.NumVertices = int(s.NumVertices)
	cfg.Window = s.Window
	m, err := NewMiner(cfg)
	if err != nil {
		return nil, err
	}
	m.epoch = s.Epoch
	m.nextQID = s.NextQID
	if m.nextQID == 0 {
		m.nextQID = 1
	}
	if len(s.Edges) > 0 {
		edges := make([][]uint32, len(s.Edges))
		for i, e := range s.Edges {
			edges[i] = e.Verts
		}
		h, err := hypergraph.Build(cfg.NumVertices, edges, nil)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if h.NumEdges() != len(edges) {
			return nil, corruptf("edge log deduplicated on rebuild")
		}
		m.h = h
		m.store = dal.Build(h)
		m.addEpoch = make([]uint64, len(edges))
		m.retireEpoch = make([]uint64, len(edges))
		for i, e := range s.Edges {
			m.addEpoch[i] = e.AddEpoch
			m.index[edgeKey(e.Verts)] = uint32(i)
		}
		m.live = len(edges)
	}
	for _, sq := range s.Queries {
		p, err := pattern.Parse(sq.Pattern)
		if err != nil {
			return nil, corruptf("query %d: bad pattern: %v", sq.ID, err)
		}
		canon, ok := pattern.CanonicalKey(p)
		if !ok {
			canon = "lit:" + p.String()
		}
		q := &query{
			id:        sq.ID,
			p:         p,
			lit:       p.String(),
			canon:     canon,
			aut:       uint64(p.Automorphisms()),
			baseEpoch: sq.BaseEpoch,
			base:      sq.Base,
			cumAdd:    sq.CumAdded,
			cumRet:    sq.CumRetired,
			seq:       sq.EventSeq,
		}
		m.queries[q.id] = q
		m.byCanon[canon] = q.id
	}
	return m, nil
}

// LoadFile is Load over a snapshot file.
func LoadFile(path string, cfg Config) (*Miner, error) {
	s, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(s, cfg)
}
