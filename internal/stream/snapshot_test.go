package stream

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ohminer/internal/engine"
	"ohminer/internal/faultinject"
	"ohminer/internal/pattern"
)

// buildStream feeds a deterministic scripted stream (adds + retires) into a
// fresh miner with two standing queries and returns it.
func buildStream(t *testing.T, cfg Config, batches int, seed int64) *Miner {
	t.Helper()
	cfg.NumVertices = 14
	m, err := NewMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterQuery(pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	if _, err := m.ApplyBatch(Batch{Seq: 1, Add: randRaw(rng, 14, 8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterQuery(pattern.MustNew([][]uint32{{0, 1, 2}, {2, 3}}, nil)); err != nil {
		t.Fatal(err)
	}
	for b := 2; b <= batches; b++ {
		batch := Batch{Seq: uint64(b), Add: randRaw(rng, 14, 3)}
		if live := m.LiveEdgeSets(); len(live) > 2 {
			batch.Retire = live[:1]
		}
		if _, err := m.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	return m
}

func minersEquivalent(t *testing.T, a, b *Miner) {
	t.Helper()
	if a.Epoch() != b.Epoch() || a.LiveEdges() != b.LiveEdges() {
		t.Fatalf("epoch/live mismatch: %d/%d vs %d/%d", a.Epoch(), a.LiveEdges(), b.Epoch(), b.LiveEdges())
	}
	qa, qb := a.Queries(), b.Queries()
	if len(qa) != len(qb) {
		t.Fatalf("query count %d vs %d", len(qa), len(qb))
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("query %d: %+v vs %+v", i, qa[i], qb[i])
		}
	}
}

// TestSnapshotRoundtrip: Marshal → Unmarshal → Load reproduces the miner,
// and both copies stay in lockstep on further batches.
func TestSnapshotRoundtrip(t *testing.T) {
	m := buildStream(t, Config{Window: 5}, 6, 11)
	b, err := m.SnapshotState().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Load(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	minersEquivalent(t, m, m2)

	// Continue both with the same feed; they must remain identical,
	// including window expiries driven by the restored add epochs.
	rng := rand.New(rand.NewSource(77))
	for b := 0; b < 4; b++ {
		batch := Batch{Add: randRaw(rng, 14, 3)}
		if live := m.LiveEdgeSets(); len(live) > 1 {
			batch.Retire = live[:1]
		}
		r1, err := m.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("orig batch %d: %v", b, err)
		}
		r2, err := m2.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("restored batch %d: %v", b, err)
		}
		if r1.Expired != r2.Expired || len(r1.Deltas) != len(r2.Deltas) {
			t.Fatalf("batch %d diverged: %+v vs %+v", b, r1, r2)
		}
		for i := range r1.Deltas {
			d1, d2 := r1.Deltas[i], r2.Deltas[i]
			d1.ElapsedMS, d2.ElapsedMS = 0, 0
			if d1 != d2 {
				t.Fatalf("batch %d delta %d: %+v vs %+v", b, i, d1, d2)
			}
		}
	}
	minersEquivalent(t, m, m2)
}

// TestSnapshotCadence: snapshots land on the configured cadence and the
// MemSink sees monotone epochs.
func TestSnapshotCadence(t *testing.T) {
	sink := &MemSink{}
	m := buildStream(t, Config{Snapshot: sink, SnapshotEvery: 2}, 6, 3)
	if sink.Writes() == 0 {
		t.Fatal("no snapshots written")
	}
	// Force one more and reload from it.
	if err := m.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	s, err := Unmarshal(sink.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Load(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	minersEquivalent(t, m, m2)
}

// TestSnapshotCorruption: every truncation and every single-byte flip of a
// valid snapshot is refused with ErrCorrupt — never a panic, never a
// silently wrong miner.
func TestSnapshotCorruption(t *testing.T) {
	m := buildStream(t, Config{Window: 4}, 5, 23)
	valid, err := m.SnapshotState().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(valid); err != nil {
		t.Fatalf("valid snapshot refused: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Unmarshal(valid[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		if _, err := Unmarshal(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d accepted: %v", i, err)
		}
	}
}

// TestSnapshotFileAtomic: WriteFile leaves no temp droppings and ReadFile
// round-trips.
func TestSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ohmt")
	m := buildStream(t, Config{}, 3, 3)
	if _, err := m.SnapshotState().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("stray files: %v", ents)
	}
	m2, err := LoadFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	minersEquivalent(t, m, m2)
}

// TestSnapshotValidateRejects: structurally well-framed but semantically
// invalid snapshots are refused by Validate via Load.
func TestSnapshotValidateRejects(t *testing.T) {
	base := func() *Snapshot {
		return &Snapshot{
			NumVertices: 6,
			Epoch:       2,
			NextQID:     2,
			Edges: []SnapshotEdge{
				{Verts: []uint32{0, 1}, AddEpoch: 1},
				{Verts: []uint32{1, 2}, AddEpoch: 2},
			},
			Queries: []SnapshotQuery{
				{ID: 1, BaseEpoch: 1, Base: 2, CumAdded: 2, CumRetired: 1, Pattern: "0 1;1 2"},
			},
		}
	}
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"vertex-out-of-range", func(s *Snapshot) { s.Edges[0].Verts = []uint32{0, 6} }},
		{"unsorted-edge", func(s *Snapshot) { s.Edges[0].Verts = []uint32{1, 0} }},
		{"dup-edge", func(s *Snapshot) { s.Edges[1].Verts = []uint32{0, 1} }},
		{"zero-add-epoch", func(s *Snapshot) { s.Edges[0].AddEpoch = 0 }},
		{"future-add-epoch", func(s *Snapshot) { s.Edges[0].AddEpoch = 3 }},
		{"query-id-zero", func(s *Snapshot) { s.Queries[0].ID = 0 }},
		{"query-id-beyond-next", func(s *Snapshot) { s.Queries[0].ID = 2 }},
		{"negative-total", func(s *Snapshot) { s.Queries[0].CumRetired = 99 }},
		{"bad-pattern", func(s *Snapshot) { s.Queries[0].Pattern = "not a pattern" }},
		{"future-base-epoch", func(s *Snapshot) { s.Queries[0].BaseEpoch = 9 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(s)
			if _, err := Load(s, Config{}); err == nil {
				t.Fatal("accepted")
			}
		})
	}
	if _, err := Load(base(), Config{}); err != nil {
		t.Fatalf("baseline refused: %v", err)
	}
}

// TestSnapshotFailurePoisonsAck: when the sink fails on the cadence write,
// ApplyBatch surfaces the error so callers do not ack durability they
// don't have, while in-memory state stays usable for retry.
func TestSnapshotFailureSurfaced(t *testing.T) {
	fail := faultinject.StreamNoSpaceSink[*Snapshot]{}
	m, err := NewMiner(Config{NumVertices: 6, Snapshot: fail, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}}}); err == nil {
		t.Fatal("snapshot failure not surfaced")
	}
	// State applied in memory; a later forced snapshot to a good sink works.
	if m.Epoch() != 1 || m.LiveEdges() != 1 {
		t.Fatalf("state lost: epoch %d live %d", m.Epoch(), m.LiveEdges())
	}
}

// TestChaosStreamCrashResume is the fault-injection drill from the issue:
// SIGKILL (modeled as abandoning the miner) mid-stream right after a
// durable snapshot, reload from disk, replay the feed idempotently, and
// prove the per-query cumulative counts are exactly-once — equal to an
// uninterrupted control run and to a from-scratch mine.
func TestChaosStreamCrashResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.ohmt")
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)

	// Pre-script the whole feed so control and crashed runs see identical
	// batches (retire choices must not depend on run-specific live order).
	const nv, nBatches = 12, 8
	rng := rand.New(rand.NewSource(99))
	feed := make([]Batch, nBatches)
	var window [][]uint32
	for i := range feed {
		feed[i] = Batch{Seq: uint64(i + 1), Add: randRaw(rng, nv, 3)}
		for _, raw := range feed[i].Add {
			if e, err := normalize(raw, nv); err == nil {
				window = append(window, e)
			}
		}
		if i > 0 && len(window) > 4 {
			feed[i].Retire = [][]uint32{window[0]}
			window = window[1:]
		}
	}
	run := func(m *Miner, from int) {
		for i := from; i < nBatches; i++ {
			if _, err := m.ApplyBatch(feed[i]); err != nil && !errors.Is(err, ErrStale) {
				t.Fatalf("batch %d: %v", i+1, err)
			}
		}
	}

	// Control: uninterrupted.
	control, err := NewMiner(Config{NumVertices: nv})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	run(control, 0)

	// Victim: crash after the 3rd successful snapshot write (cadence 1 →
	// after batch 3, but registration also persists, so count writes).
	crashed := false
	sink := &faultinject.StreamCrashSink[*Snapshot]{
		Inner:   &FileSink{Path: path},
		After:   4,
		OnCrash: func() { crashed = true },
	}
	victim, err := NewMiner(Config{NumVertices: nv, Snapshot: sink, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nBatches && !crashed; i++ {
		if _, err := victim.ApplyBatch(feed[i]); err != nil {
			t.Fatalf("victim batch %d: %v", i+1, err)
		}
	}
	if !crashed {
		t.Fatal("crash never fired")
	}
	// victim is abandoned here — the SIGKILL. Resume from disk and replay
	// the ENTIRE feed: already-applied batches answer ErrStale, the rest
	// apply.
	resumed, err := LoadFile(path, Config{NumVertices: nv, Snapshot: &FileSink{Path: path}, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	run(resumed, 0)
	minersEquivalent(t, control, resumed)

	// And the resumed totals equal a from-scratch mine of the live graph.
	want := oracle(t, nv, resumed.LiveEdgeSets(), p, engine.Options{})
	q := resumed.Queries()[0]
	if q.Total != want {
		t.Fatalf("resumed total %d, oracle %d", q.Total, want)
	}

	// Torn-snapshot leg: a non-atomic writer tears the file; the loader
	// must refuse it rather than resume from garbage.
	torn := filepath.Join(dir, "torn.ohmt")
	snap := resumed.SnapshotState()
	good, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ts := &faultinject.StreamTornSink[*Snapshot]{Path: torn, TearAt: 1, TearBytes: len(good) / 2}
	if _, err := ts.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(torn, Config{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn snapshot: %v", err)
	}
}
