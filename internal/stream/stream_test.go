package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
	"ohminer/internal/pattern"
)

// oracle mines the given edge sets from scratch — the ground truth every
// streamed cumulative count must equal exactly.
func oracle(t *testing.T, nv int, sets [][]uint32, p *pattern.Pattern, opts engine.Options) uint64 {
	t.Helper()
	if len(sets) == 0 {
		return 0
	}
	h, err := hypergraph.Build(nv, sets, nil)
	if err != nil {
		t.Fatalf("oracle build: %v", err)
	}
	res, err := engine.Mine(dal.Build(h), p, opts)
	if err != nil {
		t.Fatalf("oracle mine: %v", err)
	}
	return res.Ordered
}

func testPatterns() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil),
		pattern.MustNew([][]uint32{{0, 1, 2}, {2, 3}}, nil),
		pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil),
	}
}

// randRaw returns n raw (unnormalized) vertex lists.
func randRaw(rng *rand.Rand, nv, n int) [][]uint32 {
	out := make([][]uint32, n)
	for i := range out {
		sz := 2 + rng.Intn(3)
		for j := 0; j < sz; j++ {
			out[i] = append(out[i], uint32(rng.Intn(nv)))
		}
	}
	return out
}

// feedAndCheck drives a scripted random stream against m, asserting after
// every batch that each standing query's cumulative total exactly equals a
// from-scratch mine of the live graph.
func feedAndCheck(t *testing.T, m *Miner, rng *rand.Rand, nv, batches int, withRetires bool, opts engine.Options) {
	t.Helper()
	pats := testPatterns()
	infos := make([]QueryInfo, len(pats))
	for i, p := range pats {
		info, err := m.RegisterQuery(p)
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		infos[i] = info
	}
	for b := 0; b < batches; b++ {
		batch := Batch{Add: randRaw(rng, nv, 3+rng.Intn(5))}
		if withRetires {
			live := m.LiveEdgeSets()
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			k := rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			batch.Retire = live[:k]
		}
		res, err := m.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if len(res.Deltas) != len(pats) {
			t.Fatalf("batch %d: %d deltas for %d queries", b, len(res.Deltas), len(pats))
		}
		sets := m.LiveEdgeSets()
		for i, p := range pats {
			want := oracle(t, nv, sets, p, opts)
			d := res.Deltas[i]
			if d.QueryID != infos[i].ID {
				t.Fatalf("batch %d: delta %d for query %d", b, i, d.QueryID)
			}
			if d.Total != want {
				t.Fatalf("batch %d pattern %d: streamed total %d (added %d retired %d), oracle %d",
					b, i, d.Total, d.Added, d.Retired, want)
			}
			tc, err := m.TotalCount(p)
			if err != nil {
				t.Fatalf("batch %d: TotalCount: %v", b, err)
			}
			if tc.Ordered != want {
				t.Fatalf("batch %d pattern %d: TotalCount %d, oracle %d", b, i, tc.Ordered, want)
			}
			if d.Unique != want/uint64(p.Automorphisms()) {
				t.Fatalf("batch %d pattern %d: unique %d, want %d/%d", b, i, d.Unique, want, p.Automorphisms())
			}
		}
	}
}

// TestStreamDifferential is the acceptance-criteria suite: streamed
// cumulative counts equal from-scratch TotalCount after every batch, for
// add-only and add+retire sequences, across all three kernel families and
// both scheduler paths.
func TestStreamDifferential(t *testing.T) {
	kernels := []struct {
		name string
		k    intset.Kernel
	}{
		{"scalar", intset.Scalar},
		{"fast", intset.Fast},
		{"adaptive", intset.Adaptive},
	}
	scheds := []struct {
		name  string
		depth int
	}{
		{"steal", 0},
		{"legacy", -1},
	}
	for _, kc := range kernels {
		for _, sc := range scheds {
			for _, withRetires := range []bool{false, true} {
				mode := "addonly"
				if withRetires {
					mode = "retire"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", kc.name, sc.name, mode), func(t *testing.T) {
					opts := engine.Options{Workers: 2, Kernel: kc.k, SplitDepth: sc.depth}
					m, err := NewMiner(Config{NumVertices: 18, Engine: opts})
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(len(kc.name)*100 + len(sc.name))))
					// Seed the stream before registering queries so baselines
					// are non-trivial.
					if _, err := m.ApplyBatch(Batch{Add: randRaw(rng, 18, 12)}); err != nil {
						t.Fatal(err)
					}
					feedAndCheck(t, m, rng, 18, 4, withRetires, opts)
				})
			}
		}
	}
}

// TestValidateBeforeMutate is the regression test for the internal/dynamic
// state-poisoning bug: a rejected batch must leave the miner untouched and
// later batches must count correctly.
func TestValidateBeforeMutate(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	if _, err := m.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}, {1, 2}}}); err != nil {
		t.Fatal(err)
	}

	bad := []Batch{
		{Add: [][]uint32{{2, 3}, {7, 99}}},                    // vertex out of range
		{Add: [][]uint32{{2, 3}}, Retire: [][]uint32{{4, 5}}}, // retire of unknown edge
		{Add: [][]uint32{{2, 3}, {}}},                         // empty hyperedge
	}
	for i, b := range bad {
		if _, err := m.ApplyBatch(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		if m.Epoch() != 1 {
			t.Fatalf("bad batch %d advanced epoch to %d", i, m.Epoch())
		}
		if m.LiveEdges() != 2 {
			t.Fatalf("bad batch %d poisoned state: %d live edges", i, m.LiveEdges())
		}
	}

	// The good parts of a previously rejected batch apply cleanly afterward.
	res, err := m.ApplyBatch(Batch{Add: [][]uint32{{2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, 8, m.LiveEdgeSets(), p, engine.Options{Workers: 1})
	if res.Deltas[0].Total != want {
		t.Fatalf("total %d after recovery, oracle %d", res.Deltas[0].Total, want)
	}
}

// TestWindowExpiry: with Window=2, an edge added at epoch t is auto-retired
// applying epoch t+2 unless refreshed.
func TestWindowExpiry(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 8, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	if _, err := m.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	// Epoch 1: chain 0-1-2.
	r1, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}, {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Deltas[0].Total != 2 { // ordered: both orders of the chain
		t.Fatalf("epoch 1 total %d", r1.Deltas[0].Total)
	}
	// Epoch 2: refresh {0,1}, add {2,3}.
	r2, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}, {2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Refreshed != 1 || r2.Added != 1 || r2.Expired != 0 {
		t.Fatalf("epoch 2: %+v", r2)
	}
	// Epoch 3: {1,2} (added epoch 1, never refreshed) expires; {0,1} lives.
	r3, err := m.ApplyBatch(Batch{Add: [][]uint32{{4, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Expired != 1 {
		t.Fatalf("epoch 3 expired %d", r3.Expired)
	}
	sets := m.LiveEdgeSets()
	if len(sets) != 3 { // {0,1}, {2,3}, {4,5}
		t.Fatalf("live %v", sets)
	}
	want := oracle(t, 8, sets, p, engine.Options{})
	if r3.Deltas[0].Total != want {
		t.Fatalf("epoch 3 total %d, oracle %d", r3.Deltas[0].Total, want)
	}
	// Epoch 4: everything from epoch ≤2 expires.
	r4, err := m.ApplyBatch(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Expired != 2 || m.LiveEdges() != 1 {
		t.Fatalf("epoch 4: expired %d live %d", r4.Expired, m.LiveEdges())
	}
}

// TestRebuildMatchesIncremental: the Rebuild ablation path and the
// incremental path are observationally identical on the same feed.
func TestRebuildMatchesIncremental(t *testing.T) {
	const nv = 16
	mi, err := NewMiner(Config{NumVertices: nv})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMiner(Config{NumVertices: nv, Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	for _, m := range []*Miner{mi, mr} {
		if _, err := m.RegisterQuery(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for b := 0; b < 5; b++ {
		batch := Batch{Add: randRaw(rng, nv, 4)}
		live := mi.LiveEdgeSets()
		if len(live) > 2 {
			batch.Retire = live[:2]
		}
		ri, err := mi.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("incremental batch %d: %v", b, err)
		}
		rr, err := mr.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("rebuild batch %d: %v", b, err)
		}
		di, dr := ri.Deltas[0], rr.Deltas[0]
		if di.Added != dr.Added || di.Retired != dr.Retired || di.Total != dr.Total {
			t.Fatalf("batch %d: incremental %+v vs rebuild %+v", b, di, dr)
		}
		if ri.Added != rr.Added || ri.Retired != rr.Retired {
			t.Fatalf("batch %d: edge accounting differs: %+v vs %+v", b, ri, rr)
		}
	}
}

// TestCompaction: aggressive thresholds trigger compaction; counts are
// unaffected and garbage is reclaimed.
func TestCompaction(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 14, CompactFraction: 0.01, CompactMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	if _, err := m.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sawCompaction := false
	for b := 0; b < 6; b++ {
		batch := Batch{Add: randRaw(rng, 14, 4)}
		if live := m.LiveEdgeSets(); len(live) > 1 {
			batch.Retire = live[:1]
		}
		res, err := m.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		sawCompaction = sawCompaction || res.Compacted
		want := oracle(t, 14, m.LiveEdgeSets(), p, engine.Options{})
		if res.Deltas[0].Total != want {
			t.Fatalf("batch %d: total %d, oracle %d", b, res.Deltas[0].Total, want)
		}
	}
	if !sawCompaction {
		t.Fatal("no compaction triggered despite aggressive thresholds")
	}
	// After retiring and compacting, physical garbage must have been bounded:
	// one more batch with a retire, then verify RetiredEdges resets on the
	// following compaction.
	live := m.LiveEdgeSets()
	if _, err := m.ApplyBatch(Batch{Retire: live[:1]}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 13}}}); err != nil {
		t.Fatal(err)
	}
	if m.RetiredEdges() != 0 {
		t.Fatalf("garbage %d after compaction", m.RetiredEdges())
	}
}

// TestRegisterDedup: isomorphic patterns share one standing query.
func TestRegisterDedup(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.RegisterQuery(pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.Existing {
		t.Fatal("first registration marked existing")
	}
	// Same chain shape under a different vertex labeling.
	b, err := m.RegisterQuery(pattern.MustNew([][]uint32{{5, 3}, {3, 9}}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Existing || b.ID != a.ID {
		t.Fatalf("isomorphic registration not deduped: %+v vs %+v", a, b)
	}
	c, err := m.RegisterQuery(pattern.MustNew([][]uint32{{0, 1, 2}, {2, 3}}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if c.Existing || c.ID == a.ID {
		t.Fatalf("distinct pattern deduped: %+v", c)
	}
	if len(m.Queries()) != 2 {
		t.Fatalf("%d queries", len(m.Queries()))
	}
}

// TestSeqDiscipline: sequenced batches replay idempotently and refuse gaps.
func TestSeqDiscipline(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Seq: 1, Add: [][]uint32{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Seq: 1, Add: [][]uint32{{0, 1}}}); !errors.Is(err, ErrStale) {
		t.Fatalf("replay: %v", err)
	}
	if m.Epoch() != 1 || m.LiveEdges() != 1 {
		t.Fatal("stale replay mutated state")
	}
	if _, err := m.ApplyBatch(Batch{Seq: 3, Add: [][]uint32{{1, 2}}}); !errors.Is(err, ErrGap) {
		t.Fatalf("gap: %v", err)
	}
	if _, err := m.ApplyBatch(Batch{Seq: 2, Add: [][]uint32{{1, 2}}}); err != nil {
		t.Fatal(err)
	}
}

// TestRetireReadd: retiring and re-adding a set in one batch counts the
// embedding churn on both sides while leaving the total unchanged.
func TestRetireReadd(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	if _, err := m.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}, {1, 2}}}); err != nil {
		t.Fatal(err)
	}
	res, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}}, Retire: [][]uint32{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Deltas[0]
	if d.Added != 2 || d.Retired != 2 || d.Total != 2 {
		t.Fatalf("retire+readd delta: %+v", d)
	}
	if res.Added != 1 || res.Retired != 1 || m.LiveEdges() != 2 {
		t.Fatalf("retire+readd accounting: %+v live %d", res, m.LiveEdges())
	}
	// A plain re-add of a live edge is a refresh: zero delta.
	res, err = m.ApplyBatch(Batch{Add: [][]uint32{{1, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	d = res.Deltas[0]
	if res.Refreshed != 1 || d.Added != 0 || d.Retired != 0 || d.Total != 2 {
		t.Fatalf("refresh: %+v delta %+v", res, d)
	}
}

// TestLatestDelta: the ad-hoc per-batch delta matches the standing query's
// pushed event.
func TestLatestDelta(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	if _, err := m.RegisterQuery(p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LatestDelta(p); err == nil {
		t.Fatal("LatestDelta before any batch should fail")
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := m.ApplyBatch(Batch{Add: randRaw(rng, 10, 8)}); err != nil {
		t.Fatal(err)
	}
	live := m.LiveEdgeSets()
	res, err := m.ApplyBatch(Batch{Add: randRaw(rng, 10, 3), Retire: live[:1]})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.LatestDelta(p)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Deltas[0]
	if d.Added != want.Added || d.Retired != want.Retired {
		t.Fatalf("LatestDelta %+v vs pushed %+v", d, want)
	}
}

// TestEmptyStream: queries registered on an empty stream have zero
// baselines and count up from the first batch.
func TestEmptyStream(t *testing.T) {
	m, err := NewMiner(Config{NumVertices: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	info, err := m.RegisterQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.Total != 0 {
		t.Fatalf("empty baseline %d", info.Total)
	}
	tc, err := m.TotalCount(p)
	if err != nil || tc.Ordered != 0 {
		t.Fatalf("empty TotalCount %v %v", tc.Ordered, err)
	}
	res, err := m.ApplyBatch(Batch{Add: [][]uint32{{0, 1}, {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deltas[0].Total != 2 {
		t.Fatalf("total %d", res.Deltas[0].Total)
	}
	// Retiring everything empties the live graph again.
	if _, err := m.ApplyBatch(Batch{Retire: [][]uint32{{0, 1}, {1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if m.LiveEdges() != 0 {
		t.Fatalf("live %d", m.LiveEdges())
	}
	tc, err = m.TotalCount(p)
	if err != nil || tc.Ordered != 0 {
		t.Fatalf("emptied TotalCount %v %v", tc.Ordered, err)
	}
}
