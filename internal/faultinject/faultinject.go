// Package faultinject provides deterministic failure points for robustness
// testing of the mining engine's checkpoint/resume machinery. Every fault
// fires at an explicit, reproducible point — the N-th embedding, the K-th
// checkpoint write — rather than at a random time, so a chaos test that
// fails replays identically. Derive maps a seed to such points when a table
// of tests wants variety without hand-picking constants.
//
// The faults model the real-world failure classes a long mining run meets:
//
//   - PanicAfter: a worker dies mid-subtree (a buggy user callback) — the
//     engine must convert it to ErrWorkerPanic, and the last durable
//     snapshot must still resume to the exact total.
//   - CrashSink: the process is killed right after the K-th checkpoint
//     lands (SIGKILL, OOM) — everything mined since that snapshot is lost,
//     and resume must reproduce it exactly once.
//   - TornSink: a non-atomic writer tears the snapshot file mid-write
//     (power loss without the temp+rename discipline) — the loader must
//     reject the torn file as corrupt instead of resuming from garbage.
//   - NoSpaceSink: the disk is full — checkpointing fails persistently,
//     which must never affect the mining result.
//   - SlowEmbedding: a straggling worker stretches the run across many
//     checkpoint periods, maximizing quiesce/restart cycles.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ohminer/internal/checkpoint"
)

// ErrNoSpace is the failure NoSpaceSink reports, modeling ENOSPC.
var ErrNoSpace = errors.New("faultinject: no space left on device")

// Derive maps (seed, salt) to a deterministic value in [1, max] — the
// standard way to pick fault points in a test table without hand-chosen
// constants that might all dodge the same bug.
func Derive(seed uint64, salt string, max uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(salt))
	return h.Sum64()%max + 1
}

// PanicAfter wraps an embedding callback so the n-th invocation panics —
// the deterministic stand-in for a worker crashing mid-subtree. fn may be
// nil for a callback that only counts.
func PanicAfter(n uint64, fn func([]uint32)) func([]uint32) {
	var calls atomic.Uint64
	return func(c []uint32) {
		if calls.Add(1) == n {
			// Panicking is this function's entire purpose: it simulates a
			// crashing callback so tests can prove the engine's recovery.
			panic(fmt.Sprintf("faultinject: injected worker panic at embedding %d", n)) //ohmlint:allow no-panic-lib -- injected fault
		}
		if fn != nil {
			fn(c)
		}
	}
}

// SlowEmbedding returns an embedding callback that busy-waits d per call
// (busy, not sleeping: sleep granularity would quantize the delay), slowing
// the run enough to span many checkpoint periods.
func SlowEmbedding(d time.Duration) func([]uint32) {
	return func([]uint32) {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
	}
}

// CrashSink forwards snapshots to Inner and invokes OnCrash exactly once,
// right after the After-th successful write — the moment a real process
// would be SIGKILLed with its freshest checkpoint already durable. Writes
// after the crash point keep succeeding (the dying process may get a few
// more in before the kill lands).
type CrashSink struct {
	Inner   checkpoint.Sink
	After   int
	OnCrash func()

	mu     sync.Mutex
	writes int
}

// WriteSnapshot implements checkpoint.Sink.
func (cs *CrashSink) WriteSnapshot(s *checkpoint.Snapshot) (int64, error) {
	n, err := cs.Inner.WriteSnapshot(s)
	if err != nil {
		return n, err
	}
	cs.mu.Lock()
	cs.writes++
	fire := cs.writes == cs.After
	cs.mu.Unlock()
	if fire && cs.OnCrash != nil {
		cs.OnCrash()
	}
	return n, nil
}

// Writes reports the number of successful snapshot writes so far.
func (cs *CrashSink) Writes() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.writes
}

// TornSink persists snapshots to Path like checkpoint.FileSink, except the
// TearAt-th write is torn: only the first TearBytes bytes reach the file,
// written in place with no temp+rename discipline — the corruption a
// non-atomic writer leaves behind on power loss. Later writes stay torn
// too (the process died; nothing repairs the file).
type TornSink struct {
	Path      string
	TearAt    int
	TearBytes int

	mu     sync.Mutex
	writes int
}

// WriteSnapshot implements checkpoint.Sink.
func (ts *TornSink) WriteSnapshot(s *checkpoint.Snapshot) (int64, error) {
	ts.mu.Lock()
	ts.writes++
	tear := ts.writes >= ts.TearAt
	ts.mu.Unlock()
	if !tear {
		return s.WriteFile(ts.Path)
	}
	var buf tornBuffer
	if err := s.Encode(&buf); err != nil {
		return 0, err
	}
	data := buf.data
	if ts.TearBytes < len(data) {
		data = data[:ts.TearBytes]
	}
	if err := os.WriteFile(ts.Path, data, 0o644); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

type tornBuffer struct{ data []byte }

func (b *tornBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// HookAfter wraps an embedding callback so hook fires exactly once, on the
// n-th invocation (before fn) — the deterministic trigger for cluster fault
// scenarios: cutting a worker's network mid-task, cancelling its context to
// model a SIGKILL, or healing a partition at a chosen point in the run.
func HookAfter(n uint64, hook func(), fn func([]uint32)) func([]uint32) {
	var calls atomic.Uint64
	return func(c []uint32) {
		if calls.Add(1) == n && hook != nil {
			hook()
		}
		if fn != nil {
			fn(c)
		}
	}
}

// ErrPartitioned is the failure PartitionTransport reports while cut.
var ErrPartitioned = errors.New("faultinject: network partitioned")

// PartitionTransport is an http.RoundTripper modeling a network partition
// between a cluster worker and its coordinator: while cut, every request
// fails with ErrPartitioned before reaching the wire; Heal restores the
// path. The worker under test keeps mining through the partition (heartbeats
// merely error), its lease expires and is reassigned, and after Heal its
// late zombie report arrives — the exactly-once fencing scenario.
type PartitionTransport struct {
	// Inner performs real round trips while the path is up; nil means
	// http.DefaultTransport.
	Inner http.RoundTripper

	cut      atomic.Bool
	requests atomic.Uint64
	dropped  atomic.Uint64
}

// Cut severs the path: subsequent requests fail until Heal.
func (pt *PartitionTransport) Cut() { pt.cut.Store(true) }

// Heal restores the path.
func (pt *PartitionTransport) Heal() { pt.cut.Store(false) }

// Dropped reports how many requests the partition swallowed.
func (pt *PartitionTransport) Dropped() uint64 { return pt.dropped.Load() }

// Requests reports the total round trips attempted (dropped included).
func (pt *PartitionTransport) Requests() uint64 { return pt.requests.Load() }

// RoundTrip implements http.RoundTripper.
func (pt *PartitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pt.requests.Add(1)
	if pt.cut.Load() {
		pt.dropped.Add(1)
		return nil, ErrPartitioned
	}
	inner := pt.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// NoSpaceSink fails every write with ErrNoSpace — the full-disk scenario.
type NoSpaceSink struct {
	writes atomic.Uint64
}

// WriteSnapshot implements checkpoint.Sink.
func (ns *NoSpaceSink) WriteSnapshot(*checkpoint.Snapshot) (int64, error) {
	ns.writes.Add(1)
	return 0, ErrNoSpace
}

// Attempts reports how many writes were refused.
func (ns *NoSpaceSink) Attempts() uint64 { return ns.writes.Load() }

// --- io.Writer fault points (the coordinator WAL seam) -------------------
//
// The cluster coordinator's WAL issues exactly one Write per record frame,
// so these writers count records, not bytes: "After: 3" means the fault
// fires around the 3rd logged state transition. They plug into
// cluster.Config.WALWrap. The OnCrash/Break hooks run under the
// coordinator's internal locks — they must only signal (close a channel,
// set a flag), never call back into the coordinator.

// ErrKilled is the failure CrashWriter reports after its crash point.
var ErrKilled = errors.New("faultinject: process killed")

// CrashWriter models a SIGKILL between two WAL records: the first After
// writes pass through (and the After-th fires OnCrash exactly once, with
// that record already durable), then every later write fails with ErrKilled
// — the dead process gets nothing more onto the disk. The test restarts a
// coordinator from the same directory and must find exactly the first
// After records.
type CrashWriter struct {
	W       io.Writer
	After   int
	OnCrash func()

	mu     sync.Mutex
	writes int
}

// Write implements io.Writer.
func (cw *CrashWriter) Write(p []byte) (int, error) {
	cw.mu.Lock()
	if cw.writes >= cw.After {
		cw.mu.Unlock()
		return 0, ErrKilled
	}
	cw.writes++
	fire := cw.writes == cw.After
	cw.mu.Unlock()
	n, err := cw.W.Write(p)
	if fire && cw.OnCrash != nil {
		cw.OnCrash()
	}
	return n, err
}

// Writes reports how many writes reached the underlying writer.
func (cw *CrashWriter) Writes() int {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.writes
}

// TornWriter tears the At-th write: only the first KeepBytes bytes reach
// the underlying writer and the call reports failure — the partial append a
// power loss leaves mid-record. Writes after the tear fail with ErrKilled
// (the torn process is gone). The writer under test must either roll the
// torn tail back or wedge; a replayer must treat the remainder as a torn
// tail, never as valid records.
type TornWriter struct {
	W         io.Writer
	At        int
	KeepBytes int

	mu     sync.Mutex
	writes int
}

// Write implements io.Writer.
func (tw *TornWriter) Write(p []byte) (int, error) {
	tw.mu.Lock()
	tw.writes++
	writes := tw.writes
	tw.mu.Unlock()
	if writes > tw.At {
		return 0, ErrKilled
	}
	if writes < tw.At {
		return tw.W.Write(p)
	}
	keep := tw.KeepBytes
	if keep > len(p) {
		keep = len(p)
	}
	n, err := tw.W.Write(p[:keep])
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("faultinject: write torn after %d of %d bytes", n, len(p))
}

// NoSpaceWriter fails writes with ErrNoSpace while broken — the disk that
// fills up (Break) and is later freed (Heal). Unlike CrashWriter the
// process lives through it, so the writer under test should degrade,
// keep serving what it can, and recover on its own after Heal.
type NoSpaceWriter struct {
	W io.Writer

	broken  atomic.Bool
	dropped atomic.Uint64
}

// Break makes every subsequent write fail with ErrNoSpace.
func (nw *NoSpaceWriter) Break() { nw.broken.Store(true) }

// Heal restores the writer.
func (nw *NoSpaceWriter) Heal() { nw.broken.Store(false) }

// Dropped reports how many writes failed while broken.
func (nw *NoSpaceWriter) Dropped() uint64 { return nw.dropped.Load() }

// Write implements io.Writer.
func (nw *NoSpaceWriter) Write(p []byte) (int, error) {
	if nw.broken.Load() {
		nw.dropped.Add(1)
		return 0, ErrNoSpace
	}
	return nw.W.Write(p)
}
