package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDeriveDeterministicAndBounded(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		for _, max := range []uint64{1, 5, 1000} {
			a := Derive(seed, "salt", max)
			b := Derive(seed, "salt", max)
			if a != b {
				t.Fatalf("seed %d: not deterministic (%d vs %d)", seed, a, b)
			}
			if a < 1 || a > max {
				t.Fatalf("seed %d: %d outside [1, %d]", seed, a, max)
			}
		}
	}
	if Derive(1, "a", 1000) == Derive(1, "b", 1000) && Derive(2, "a", 1000) == Derive(2, "b", 1000) {
		t.Error("salts do not separate fault points")
	}
}

func TestPanicAfter(t *testing.T) {
	calls := 0
	fn := PanicAfter(3, func([]uint32) { calls++ })
	fn(nil)
	fn(nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("third call did not panic")
			}
		}()
		fn(nil)
	}()
	fn(nil) // calls after the fault pass through again
	if calls != 3 {
		t.Errorf("wrapped callback ran %d times, want 3", calls)
	}
}

func TestSlowEmbeddingDelays(t *testing.T) {
	fn := SlowEmbedding(time.Millisecond)
	start := time.Now()
	fn(nil)
	if d := time.Since(start); d < time.Millisecond {
		t.Errorf("delayed only %v", d)
	}
}

func TestHookAfterFiresExactlyOnce(t *testing.T) {
	hooks, calls := 0, 0
	fn := HookAfter(3, func() { hooks++ }, func([]uint32) { calls++ })
	for i := 0; i < 6; i++ {
		fn(nil)
	}
	if hooks != 1 {
		t.Errorf("hook fired %d times, want exactly 1", hooks)
	}
	if calls != 6 {
		t.Errorf("wrapped callback ran %d times, want 6 (every call passes through)", calls)
	}
	// Nil hook and nil callback are both legal.
	HookAfter(1, nil, nil)(nil)
}

func TestPartitionTransportCutAndHeal(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer srv.Close()

	pt := &PartitionTransport{}
	client := &http.Client{Transport: pt}

	get := func() error {
		resp, err := client.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}
	if err := get(); err != nil {
		t.Fatalf("request before cut: %v", err)
	}
	pt.Cut()
	if err := get(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("request during partition: err=%v, want ErrPartitioned", err)
	}
	if err := get(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("second request during partition: err=%v, want ErrPartitioned", err)
	}
	pt.Heal()
	if err := get(); err != nil {
		t.Fatalf("request after heal: %v", err)
	}
	if hits != 2 {
		t.Errorf("server saw %d requests, want 2: the partition leaked traffic", hits)
	}
	if pt.Requests() != 4 || pt.Dropped() != 2 {
		t.Errorf("requests=%d dropped=%d, want 4/2", pt.Requests(), pt.Dropped())
	}
}
