package faultinject

import (
	"testing"
	"time"
)

func TestDeriveDeterministicAndBounded(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		for _, max := range []uint64{1, 5, 1000} {
			a := Derive(seed, "salt", max)
			b := Derive(seed, "salt", max)
			if a != b {
				t.Fatalf("seed %d: not deterministic (%d vs %d)", seed, a, b)
			}
			if a < 1 || a > max {
				t.Fatalf("seed %d: %d outside [1, %d]", seed, a, max)
			}
		}
	}
	if Derive(1, "a", 1000) == Derive(1, "b", 1000) && Derive(2, "a", 1000) == Derive(2, "b", 1000) {
		t.Error("salts do not separate fault points")
	}
}

func TestPanicAfter(t *testing.T) {
	calls := 0
	fn := PanicAfter(3, func([]uint32) { calls++ })
	fn(nil)
	fn(nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("third call did not panic")
			}
		}()
		fn(nil)
	}()
	fn(nil) // calls after the fault pass through again
	if calls != 3 {
		t.Errorf("wrapped callback ran %d times, want 3", calls)
	}
}

func TestSlowEmbeddingDelays(t *testing.T) {
	fn := SlowEmbedding(time.Millisecond)
	start := time.Now()
	fn(nil)
	if d := time.Since(start); d < time.Millisecond {
		t.Errorf("delayed only %v", d)
	}
}
