// Stream-snapshot fault points: the same failure classes the checkpoint
// sinks model (process killed right after a durable write, torn non-atomic
// write, full disk), retargeted at the streaming subsystem's OHMT
// snapshots so its exactly-once resume gets the identical chaos treatment.
// The sinks are generic over the snapshot type: internal/stream imports
// internal/engine, which this package's other fault points serve, so a
// direct dependency here would cycle through the engine's chaos tests.
// Instantiate as e.g. StreamCrashSink[*stream.Snapshot] and the method set
// satisfies stream.Sink exactly.
package faultinject

import (
	"os"
	"sync"
)

// SnapshotSink is the shape of stream.Sink with the snapshot type held
// abstract (see the package comment for why).
type SnapshotSink[S any] interface {
	WriteSnapshot(s S) (int64, error)
}

// SnapshotMarshaler is the subset of the snapshot API the torn sink needs.
type SnapshotMarshaler interface {
	Marshal() ([]byte, error)
	WriteFile(path string) (int64, error)
}

// StreamCrashSink forwards stream snapshots to Inner and invokes OnCrash
// exactly once, right after the After-th successful write — the moment a
// real streaming server would be SIGKILLed with its freshest snapshot
// already durable. Writes after the crash point keep succeeding.
type StreamCrashSink[S any] struct {
	Inner   SnapshotSink[S]
	After   int
	OnCrash func()

	mu     sync.Mutex
	writes int
}

// WriteSnapshot implements stream.Sink.
func (cs *StreamCrashSink[S]) WriteSnapshot(s S) (int64, error) {
	n, err := cs.Inner.WriteSnapshot(s)
	if err != nil {
		return n, err
	}
	cs.mu.Lock()
	cs.writes++
	fire := cs.writes == cs.After
	cs.mu.Unlock()
	if fire && cs.OnCrash != nil {
		cs.OnCrash()
	}
	return n, nil
}

// Writes reports the number of successful snapshot writes so far.
func (cs *StreamCrashSink[S]) Writes() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.writes
}

// StreamTornSink persists stream snapshots to Path like stream.FileSink,
// except the TearAt-th and later writes are torn: only the first TearBytes
// bytes reach the file, written in place with no temp+rename discipline —
// the corruption a non-atomic writer leaves behind on power loss.
type StreamTornSink[S SnapshotMarshaler] struct {
	Path      string
	TearAt    int
	TearBytes int

	mu     sync.Mutex
	writes int
}

// WriteSnapshot implements stream.Sink.
func (ts *StreamTornSink[S]) WriteSnapshot(s S) (int64, error) {
	ts.mu.Lock()
	ts.writes++
	tear := ts.writes >= ts.TearAt
	ts.mu.Unlock()
	if !tear {
		return s.WriteFile(ts.Path)
	}
	b, err := s.Marshal()
	if err != nil {
		return 0, err
	}
	if ts.TearBytes < len(b) {
		b = b[:ts.TearBytes]
	}
	if err := os.WriteFile(ts.Path, b, 0o644); err != nil {
		return 0, err
	}
	return int64(len(b)), nil
}

// StreamNoSpaceSink models ENOSPC for stream snapshots: every write fails
// with ErrNoSpace. Applied state stays correct in memory; durability (and
// the ack it gates) is what suffers.
type StreamNoSpaceSink[S any] struct{}

// WriteSnapshot implements stream.Sink.
func (StreamNoSpaceSink[S]) WriteSnapshot(S) (int64, error) {
	return 0, ErrNoSpace
}
