// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Sec. 5). Each experiment is registered
// under the paper's figure/table identifier and produces text tables with
// the same rows/series the paper reports; cmd/ohmbench and the repository's
// bench_test.go are thin wrappers around this package.
//
// Absolute numbers differ from the paper (single-core container, synthetic
// scaled datasets — see DESIGN.md), but the shape of each result — which
// system wins, by roughly what factor, and where the trends go — is the
// reproduction target recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
)

// RunOpts configures an experiment run.
type RunOpts struct {
	// Quick trims datasets/pattern settings to keep a run in seconds; the
	// full grid mirrors the paper.
	Quick bool
	// Workers is the mining goroutine count (≤0: GOMAXPROCS).
	Workers int
	// Seed drives pattern sampling.
	Seed int64
	// CellBudget bounds the time spent per (dataset, setting, variant)
	// cell; combinatorially exploding cells are truncated to the patterns
	// that completed, and compared systems are aligned on the common
	// prefix (0 = unbounded).
	CellBudget time.Duration
	// Recorder, when non-nil, additionally captures every measured cell as
	// a machine-readable CellRecord (ohmbench -json).
	Recorder *Recorder
}

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID is the paper identifier, e.g. "fig12", "table5".
	ID string
	// Title summarizes the paper content being reproduced.
	Title string
	// Run executes the experiment.
	Run func(c *Context, opts RunOpts) ([]*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments in paper order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return expOrder(out[i].ID) < expOrder(out[j].ID) })
	return out
}

func expOrder(id string) int {
	order := []string{"fig3", "fig12", "table5", "fig13", "fig14", "fig15", "fig16", "fig17a", "fig17b", "table6", "sched", "kern", "sym", "ckpt", "stream"}
	for i, x := range order {
		if x == id {
			return i
		}
	}
	return len(order)
}

// ByID returns the experiment registered under id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// Context caches generated datasets and their DAL stores across
// experiments; generation and DAL construction are deterministic, so
// sharing is safe.
type Context struct {
	mu     sync.Mutex
	stores map[string]*dal.Store
}

// NewContext returns an empty dataset cache.
func NewContext() *Context {
	return &Context{stores: map[string]*dal.Store{}}
}

// Dataset returns the bench-scale store for a Table 3 preset tag.
func (c *Context) Dataset(tag string) (*dal.Store, error) {
	return c.dataset(tag, 0)
}

// LabeledDataset returns the preset generated with vertex labels.
func (c *Context) LabeledDataset(tag string, labels int) (*dal.Store, error) {
	return c.dataset(tag, labels)
}

func (c *Context) dataset(tag string, labels int) (*dal.Store, error) {
	key := fmt.Sprintf("%s/%d", tag, labels)
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stores[key]; ok {
		return s, nil
	}
	p, err := gen.PresetByTag(tag)
	if err != nil {
		return nil, err
	}
	cfg := p.Config
	if labels > 0 {
		cfg = p.Labeled(labels)
	}
	h, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	s := dal.Build(h)
	c.stores[key] = s
	return s, nil
}

// Hypergraph is a convenience accessor.
func (c *Context) Hypergraph(tag string) (*hypergraph.Hypergraph, error) {
	s, err := c.Dataset(tag)
	if err != nil {
		return nil, err
	}
	return s.Hypergraph(), nil
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
