package exp

import (
	"fmt"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "fig17a",
		Title: "Larger hypergraphs CD/AM + synthetic (paper: 7.6x-14.5x, synthetic 7.9x-20.1x)",
		Run: func(c *Context, opts RunOpts) ([]*Table, error) {
			tables, err := speedupGrid(c, opts, speedupGridSpec{
				Title:    "Figure 17(a): speedup on larger hypergraphs",
				Variant:  engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap},
				Datasets: datasetsFor(opts, []string{"CD", "AM", "SYN"}, []string{"CD"}),
				Note:     "CD/AM/SYN are scale-reduced (DESIGN.md); paper: CD 7.6x-12.2x, AM 9.9x-14.5x, 100M synthetic 7.9x-20.1x",
			})
			return tables, err
		},
	})
	register(Experiment{
		ID:    "fig17b",
		Title: "Dense patterns on SB/HB/TC (paper: 5.3x-13.0x)",
		Run:   runFig17b,
	})
}

// runFig17b mines dense patterns — every hyperedge pair overlaps — which
// maximizes the number of overlap computations OHMiner must perform
// (Sec. 5.5 sensitivity study).
func runFig17b(c *Context, opts RunOpts) ([]*Table, error) {
	ohm := engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap}
	hgm := engine.Variant{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles}
	t := &Table{
		Title:  "Figure 17(b): dense patterns (every hyperedge pair overlaps)",
		Header: []string{"dataset", "edges", "OHMiner", "HGMatch", "speedup", "embeddings"},
		Notes:  []string{"paper: SB 6.9x-10.2x, HB 5.3x-8.9x, TC 6.4x-13.0x"},
	}
	sizes := []int{3, 4}
	if !opts.Quick {
		sizes = []int{3, 4, 5}
	}
	for _, tag := range datasetsFor(opts, []string{"SB", "HB", "TC"}, []string{"SB"}) {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		for _, m := range sizes {
			pats, err := sampleDenseSet(store, m, opts, saltFor(tag, fmt.Sprintf("dense%d", m)))
			if err != nil {
				return nil, fmt.Errorf("%s dense-%d: %w", tag, m, err)
			}
			fast, counts, err := mineSet(store, pats, ohm, opts, false, nil)
			if err != nil {
				return nil, err
			}
			base, _, err := mineSet(store, pats, hgm, opts, false, counts)
			if err != nil {
				return nil, err
			}
			fastAvg, baseAvg, common, truncated := align(fast, base)
			if common == 0 {
				if lb, ok := lowerBound(fast, opts.CellBudget); ok {
					t.AddRow(tag, fmt.Sprintf("%d [1/lb]", m), ms(fast.PerPattern[0]),
						">"+ms(opts.CellBudget), lb, "-")
				} else {
					t.AddRow(tag, fmt.Sprintf("%d", m), "-", "-", "timeout", "-")
				}
				continue
			}
			t.AddRow(tag, fmt.Sprintf("%d%s", m, cellNote(common, len(pats), truncated)),
				ms(fastAvg), ms(baseAvg), speedup(baseAvg, fastAvg), fmt.Sprintf("%d", fast.Ordered))
		}
	}
	return []*Table{t}, nil
}

// sampleDenseSet draws dense patterns deterministically, mirroring
// pattern.SampleSet but with the all-pairs-overlap constraint.
func sampleDenseSet(store *dal.Store, m int, opts RunOpts, salt int64) ([]*pattern.Pattern, error) {
	h := store.Hypergraph()
	count := 3
	if opts.Quick {
		count = 2
	}
	rng := newRand(opts.Seed*1000003 + salt)
	out := make([]*pattern.Pattern, 0, count)
	for len(out) < count {
		p, err := pattern.SampleDense(h, m, m, 60, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
