package exp

import (
	"testing"

	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

// TestGoldenCounts pins exact embedding counts for fixed generator seeds
// and pattern samples. Everything in the pipeline is deterministic —
// dataset generation, pattern sampling, plan compilation, counting — so
// any change to these numbers means observable behaviour changed: either a
// deliberate generator/sampler revision (update the table, note it in the
// commit) or a mining bug (fix it).
func TestGoldenCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden counts mine full presets")
	}
	golden := []struct {
		tag     string
		setting string
		idx     int
		ordered uint64
		aut     int
	}{
		{"CH", "P2", 0, 66327, 1},
		{"CH", "P2", 1, 84752, 2},
		{"CH", "P3", 0, 131616, 1},
		{"CH", "P3", 1, 131616, 1},
		{"SB", "P2", 0, 6012, 1},
		{"SB", "P2", 1, 4431, 1},
		{"SB", "P3", 0, 3650, 1},
		{"SB", "P3", 1, 16330, 2},
		{"WT", "P2", 0, 9585, 1},
		{"WT", "P2", 1, 621, 1},
		{"WT", "P3", 0, 216328, 2},
		{"WT", "P3", 1, 5718, 1},
	}
	settings := map[string]pattern.Setting{
		"P2": {Name: "P2", NumEdges: 2, VertMin: 5, VertMax: 15, Count: 2},
		"P3": {Name: "P3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 2},
	}
	c := NewContext()
	type key struct{ tag, setting string }
	pats := map[key][]*pattern.Pattern{}
	for _, g := range golden {
		store, err := c.Dataset(g.tag)
		if err != nil {
			t.Fatal(err)
		}
		k := key{g.tag, g.setting}
		if pats[k] == nil {
			ps, err := pattern.SampleSet(store.Hypergraph(), settings[g.setting], 42)
			if err != nil {
				t.Fatal(err)
			}
			pats[k] = ps
		}
		res, err := engine.Mine(store, pats[k][g.idx], engine.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ordered != g.ordered || res.Automorphisms != g.aut {
			t.Errorf("%s/%s[%d]: ordered=%d aut=%d, golden %d/%d",
				g.tag, g.setting, g.idx, res.Ordered, res.Automorphisms, g.ordered, g.aut)
		}
	}
}
