package exp

import (
	"ohminer/internal/engine"
	"testing"
	"time"
)

func TestAlign(t *testing.T) {
	msec := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	a := measurement{PerPattern: msec(10, 20, 30)}
	b := measurement{PerPattern: msec(100, 200), Truncated: true}
	avgA, avgB, common, truncated := align(a, b)
	if common != 2 || !truncated {
		t.Fatalf("common=%d truncated=%v", common, truncated)
	}
	if avgA != 15*time.Millisecond || avgB != 150*time.Millisecond {
		t.Fatalf("avgs %v %v", avgA, avgB)
	}
	// Both empty.
	_, _, common, _ = align(measurement{}, measurement{})
	if common != 0 {
		t.Fatalf("common=%d", common)
	}
	// No truncation: full overlap.
	_, _, common, truncated = align(a, measurement{PerPattern: msec(1, 2, 3)})
	if common != 3 || truncated {
		t.Fatalf("common=%d truncated=%v", common, truncated)
	}
}

func TestLowerBound(t *testing.T) {
	fast := measurement{PerPattern: []time.Duration{100 * time.Millisecond}}
	s, ok := lowerBound(fast, 10*time.Second)
	if !ok || s != ">=100x" {
		t.Fatalf("%q %v", s, ok)
	}
	if _, ok := lowerBound(measurement{}, 10*time.Second); ok {
		t.Fatal("bound from empty measurement")
	}
	if _, ok := lowerBound(fast, 0); ok {
		t.Fatal("bound without budget")
	}
}

func TestCellNote(t *testing.T) {
	if got := cellNote(3, 5, true); got != " [3/5]" {
		t.Fatalf("%q", got)
	}
	if got := cellNote(5, 5, true); got != "" {
		t.Fatalf("%q", got)
	}
	if got := cellNote(3, 5, false); got != "" {
		t.Fatalf("%q", got)
	}
}

func TestFormatters(t *testing.T) {
	if ms(1500*time.Millisecond) != "1.5s" {
		t.Fatalf("%q", ms(1500*time.Millisecond))
	}
	if ms(50*time.Millisecond) != "50ms" {
		t.Fatalf("%q", ms(50*time.Millisecond))
	}
	if ms(1500*time.Microsecond) != "1.50ms" {
		t.Fatalf("%q", ms(1500*time.Microsecond))
	}
	if pct(0.5) != "50%" {
		t.Fatalf("%q", pct(0.5))
	}
	if speedup(0, 0) != "-" {
		t.Fatal("zero division not guarded")
	}
}

func TestSaltForDistinct(t *testing.T) {
	if saltFor("SB", "P3") == saltFor("SB", "P4") {
		t.Fatal("salts collide")
	}
	if saltFor("SB", "P3") != saltFor("SB", "P3") {
		t.Fatal("salt not deterministic")
	}
}

func TestSettingsForQuick(t *testing.T) {
	full := settingsFor(RunOpts{})
	if len(full) != 5 {
		t.Fatalf("full settings: %d", len(full))
	}
	quick := settingsFor(RunOpts{Quick: true})
	if len(quick) != 2 || quick[0].Count != 2 {
		t.Fatalf("quick settings: %+v", quick)
	}
	named := settingsFor(RunOpts{Quick: true}, "P3", "P4")
	if len(named) != 2 || named[0].Name != "P3" || named[1].Name != "P4" {
		t.Fatalf("named settings: %+v", named)
	}
}

func TestDatasetsFor(t *testing.T) {
	full := []string{"A", "B", "C"}
	quick := []string{"A"}
	if got := datasetsFor(RunOpts{}, full, quick); len(got) != 3 {
		t.Fatalf("%v", got)
	}
	if got := datasetsFor(RunOpts{Quick: true}, full, quick); len(got) != 1 {
		t.Fatalf("%v", got)
	}
}

func TestMineSetBudget(t *testing.T) {
	c := NewContext()
	store, err := c.Dataset("CH")
	if err != nil {
		t.Fatal(err)
	}
	set := settingsFor(RunOpts{Quick: true}, "P3")[0]
	pats, err := samplePatterns(store, set, RunOpts{Seed: 42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A vanishing budget must truncate without completing anything.
	v := engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap}
	m, _, err := mineSet(store, pats, v, RunOpts{Workers: 1, CellBudget: time.Nanosecond}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Truncated || m.Runs != 0 {
		t.Fatalf("truncation: %+v", m)
	}
	// A generous budget completes all patterns.
	m2, counts, err := mineSet(store, pats, v, RunOpts{Workers: 1, CellBudget: time.Hour}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Truncated || m2.Runs != len(pats) || len(counts) != len(pats) {
		t.Fatalf("full run: %+v", m2)
	}
}
