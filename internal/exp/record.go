package exp

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// CellRecord is one machine-readable measurement cell, written by ohmbench
// -json to BENCH_engine.json so the performance trajectory is tracked across
// revisions.
type CellRecord struct {
	// Exp is the experiment ID ("sched", "fig12", ...); empty for generic
	// mineSet cells recorded without experiment context.
	Exp string `json:"exp,omitempty"`
	// Variant is the engine configuration name (OHMiner, HGMatch, ...).
	Variant string `json:"variant"`
	// Dataset tags the input hypergraph; Pattern describes the mined pattern
	// (setting name, literal, or index).
	Dataset string `json:"dataset,omitempty"`
	Pattern string `json:"pattern"`
	// Workers and Scheduler identify the parallel configuration
	// ("stealing" or "legacy"). MaxProcs records GOMAXPROCS at run time:
	// wall-clock worker scaling is bounded by it, so a reader comparing
	// cells across machines needs it alongside Workers.
	Workers   int     `json:"workers,omitempty"`
	Scheduler string  `json:"scheduler,omitempty"`
	MaxProcs  int     `json:"gomaxprocs,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Ordered   uint64  `json:"ordered"`
	Truncated bool    `json:"truncated,omitempty"`
	// Scheduler counters from engine.Stats.
	Steals    uint64 `json:"steals"`
	Publishes uint64 `json:"publishes"`
	IdleSpins uint64 `json:"idle_spins"`
	// Kernel names the set-kernel family the cell ran on ("scalar", "fast",
	// "adaptive"); set by the kernel ablation.
	Kernel string `json:"kernel,omitempty"`
	// Per-operation container classifications from engine.Stats: how many
	// set operations ran with both operands array-backed, both
	// bitmap-windowed, or one of each.
	KernelArray  uint64 `json:"kernel_array,omitempty"`
	KernelBitmap uint64 `json:"kernel_bitmap,omitempty"`
	KernelMixed  uint64 `json:"kernel_mixed,omitempty"`
	// Symmetry-breaking ablation fields: Restricted reports whether the
	// plan carried ordering restrictions, Unique the unordered count, and
	// Embeddings the enumerated-tuple count (one per orbit when
	// restricted).
	Restricted bool   `json:"restricted,omitempty"`
	Unique     uint64 `json:"unique,omitempty"`
	Embeddings uint64 `json:"embeddings,omitempty"`
}

// Recorder collects CellRecords across experiments; attach one via
// RunOpts.Recorder. Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	cells []CellRecord
}

// Record appends one cell.
func (r *Recorder) Record(c CellRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cells = append(r.cells, c)
	r.mu.Unlock()
}

// Cells returns a copy of everything recorded so far.
func (r *Recorder) Cells() []CellRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CellRecord, len(r.cells))
	copy(out, r.cells)
	return out
}

// WriteJSON writes the recorded cells as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Cells())
}

// WriteFile writes the recorded cells to the named file.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
