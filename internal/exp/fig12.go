package exp

import (
	"fmt"

	"ohminer/internal/engine"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "OHMiner vs HGMatch speedup, unlabeled HPM (paper: 5.4x-22.2x)",
		Run: func(c *Context, opts RunOpts) ([]*Table, error) {
			return speedupGrid(c, opts, speedupGridSpec{
				Title:    "Figure 12: OHMiner speedup over HGMatch (unlabeled)",
				Variant:  engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap},
				Datasets: datasetsFor(opts, []string{"CH", "CP", "SB", "HB", "WT", "TC"}, []string{"SB", "WT"}),
				Note:     "paper reports 5.4x-22.2x across P2-P6; shape target: OHMiner wins on every cell",
			})
		},
	})
	register(Experiment{
		ID:    "fig13",
		Title: "OHM-V (HGMatch generation + OHMiner validation) vs HGMatch (paper: 1.05x-7.5x)",
		Run: func(c *Context, opts RunOpts) ([]*Table, error) {
			return speedupGrid(c, opts, speedupGridSpec{
				Title:    "Figure 13: OHM-V speedup over HGMatch",
				Variant:  engine.Variant{Name: "OHM-V", Gen: engine.GenHGMatch, Val: engine.ValOverlap},
				Datasets: datasetsFor(opts, []string{"CH", "CP", "SB", "HB", "WT", "TC"}, []string{"SB", "WT"}),
				Note:     "paper reports 1.05x-7.5x: validation alone already beats HGMatch, by less than full OHMiner",
			})
		},
	})
}

type speedupGridSpec struct {
	Title    string
	Variant  engine.Variant
	Datasets []string
	Note     string
}

// speedupGrid runs the Variant and the HGMatch baseline over a dataset ×
// pattern-setting grid and tabulates per-cell average times and speedups —
// the template behind Figures 12, 13 and 17.
func speedupGrid(c *Context, opts RunOpts, spec speedupGridSpec) ([]*Table, error) {
	baseline := engine.Variant{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles}
	t := &Table{
		Title:  spec.Title,
		Header: []string{"dataset", "setting", spec.Variant.Name, "HGMatch", "speedup", "embeddings"},
	}
	if spec.Note != "" {
		t.Notes = append(t.Notes, spec.Note)
	}
	for _, tag := range spec.Datasets {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		for _, set := range settingsFor(opts) {
			progressf("  [%s] %s/%s\n", spec.Title[:9], tag, set.Name)
			pats, err := samplePatterns(store, set, opts, saltFor(tag, set.Name))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tag, set.Name, err)
			}
			fast, counts, err := mineSet(store, pats, spec.Variant, opts, false, nil)
			if err != nil {
				return nil, err
			}
			base, _, err := mineSet(store, pats, baseline, opts, false, counts)
			if err != nil {
				return nil, err
			}
			fastAvg, baseAvg, common, truncated := align(fast, base)
			if common == 0 {
				if lb, ok := lowerBound(fast, opts.CellBudget); ok {
					t.AddRow(tag, set.Name+" [1/lb]", ms(fast.PerPattern[0]),
						">"+ms(opts.CellBudget), lb, "-")
				} else {
					t.AddRow(tag, set.Name, "-", "-", "timeout", "-")
				}
				continue
			}
			t.AddRow(tag, set.Name+cellNote(common, len(pats), truncated),
				ms(fastAvg), ms(baseAvg), speedup(baseAvg, fastAvg), fmt.Sprintf("%d", fast.Ordered))
		}
	}
	return []*Table{t}, nil
}
