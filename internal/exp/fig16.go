package exp

import (
	"fmt"
	"runtime"

	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "Thread scalability 1-128 workers (paper: OHMiner scales better than HGMatch)",
		Run:   runFig16,
	})
}

// runFig16 sweeps the worker count for both systems and reports times
// normalized to each system's single-worker run, as in Figure 16.
//
// Substitution note (DESIGN.md): the reproduction environment has a single
// CPU core, so wall-clock cannot improve with workers; the sweep still
// exercises the dynamic-scheduling code path and reports the normalized
// series plus the scheduling overhead. On a multi-core host the same
// harness produces genuine scaling curves.
func runFig16(c *Context, opts RunOpts) ([]*Table, error) {
	workerCounts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if opts.Quick {
		workerCounts = []int{1, 4, 16}
	}
	systems := []engine.Variant{
		{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap},
		{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles},
	}
	t := &Table{
		Title:  "Figure 16: normalized speedup vs own 1-worker time",
		Header: []string{"dataset", "system", "workers", "time", "self-speedup"},
		Notes: []string{
			fmt.Sprintf("host has %d CPU core(s), GOMAXPROCS=%d: scaling is expected to be flat here; see EXPERIMENTS.md", runtime.NumCPU(), runtime.GOMAXPROCS(0)),
			"paper (128 threads, 64 cores): OHMiner 62.2x vs HGMatch 44.1x self-speedup on HB p3",
		},
	}
	set := pattern.Setting{Name: "p3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 2}
	for _, tag := range datasetsFor(opts, []string{"HB", "WT"}, []string{"WT"}) {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		pats, err := samplePatterns(store, set, opts, saltFor(tag, set.Name))
		if err != nil {
			return nil, err
		}
		for _, sys := range systems {
			var base measurement
			for i, wc := range workerCounts {
				o := opts
				o.Workers = wc
				m, _, err := mineSet(store, pats, sys, o, false, nil)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					base = m
				}
				t.AddRow(tag, sys.Name, fmt.Sprintf("%d", wc), ms(m.AvgTime), speedup(base.AvgTime, m.AvgTime))
			}
		}
	}
	return []*Table{t}, nil
}
