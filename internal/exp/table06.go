package exp

import (
	"fmt"
	"time"

	"ohminer/internal/engine"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "table6",
		Title: "Overheads: pattern compile time, DAL build time/memory, DAL-T/HPM-T",
		Run:   runTable6,
	})
}

// runTable6 reproduces the overhead accounting of Table 6:
//
//	OIG-T      — time to compile a 6-hyperedge pattern sampled from the dataset
//	DAL-T      — DAL construction time
//	DAL-M      — DAL memory footprint
//	HGMatch-M  — memory of the baseline's store (the plain dual-CSR hypergraph)
//	DAL-T/HPM-T — DAL build time relative to one p3 mining workload
func runTable6(c *Context, opts RunOpts) ([]*Table, error) {
	t := &Table{
		Title:  "Table 6: overheads of OHMiner",
		Header: []string{"dataset", "OIG-T", "DAL-T", "DAL-M", "HGMatch-M", "DAL-T/HPM-T"},
		Notes: []string{
			"paper: OIG-T 0.04ms-1.85ms; DAL-T 0.02s-5.83s amortized to 0.1%-3.4% of HPM time",
			"HGMatch-M is the dual-CSR hypergraph the baseline mines from",
		},
	}
	datasets := datasetsFor(opts,
		[]string{"CH", "CP", "SB", "HB", "WT", "TC", "CD", "AM"},
		[]string{"CH", "SB", "WT"})
	ohm := engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap}
	for _, tag := range datasets {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		h := store.Hypergraph()

		// OIG-T: compile a 6-hyperedge sampled pattern (the paper's largest
		// setting; compilation cost grows with hyperedge count).
		rng := newRand(opts.Seed*1000003 + saltFor(tag, "compile"))
		oigT := time.Duration(0)
		p6, err := pattern.Sample(h, 6, 6, 60, rng)
		if err != nil {
			// Fall back to a smaller pattern on sparse datasets.
			p6, err = pattern.Sample(h, 4, 4, 60, rng)
		}
		if err == nil {
			plan, cerr := oig.Compile(p6, oig.ModeMerged)
			if cerr != nil {
				return nil, cerr
			}
			oigT = plan.CompileTime
		}

		// HPM-T: one p3 workload mined by OHMiner.
		set := pattern.Setting{Name: "p3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 2}
		pats, err := samplePatterns(store, set, opts, saltFor(tag, "table6"))
		hpmT := time.Duration(0)
		if err == nil {
			m, _, merr := mineSet(store, pats, ohm, opts, false, nil)
			if merr != nil {
				return nil, merr
			}
			hpmT = m.AvgTime * time.Duration(m.Runs)
		}
		ratio := "-"
		if hpmT > 0 {
			// The paper's column is DAL build time relative to one HPM
			// workload's mining time (can exceed 100% when the workload is
			// small, as with the bench-scale p3 pair used here).
			ratio = fmt.Sprintf("%.0f%%", 100*float64(store.BuildTime())/float64(hpmT))
		}
		t.AddRow(tag,
			fmt.Sprintf("%.3fms", float64(oigT)/float64(time.Millisecond)),
			fmt.Sprintf("%.2fs", store.BuildTime().Seconds()),
			mb(store.MemoryBytes()), mb(h.MemoryBytes()), ratio)
	}
	return []*Table{t}, nil
}

func mb(bytes int64) string {
	v := float64(bytes) / (1 << 20)
	if v >= 1000 {
		return fmt.Sprintf("%.2fGB", v/1024)
	}
	return fmt.Sprintf("%.1fMB", v)
}
