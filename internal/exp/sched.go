package exp

import (
	"fmt"
	"runtime"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// The "sched" experiment is the scaling ablation for the work-stealing
// subtree scheduler: 1/2/4/8 workers on a balanced input (many first-step
// candidates, where first-level dynamic distribution already parallelizes)
// and on a skewed input (a single first-step candidate, where the legacy
// scheduler degenerates to one worker and only subtree stealing helps).

func init() {
	register(Experiment{
		ID:    "sched",
		Title: "Work-stealing scheduler scaling ablation (balanced vs skewed, legacy vs stealing)",
		Run:   runSched,
	})
}

// fanInput builds a hub-and-fan chain workload. Every hub hyperedge
// {5h..5h+4} (degree 5) is joined to fan A-hyperedges of degree fan+1
// through one shared vertex; each A-hyperedge fans out to fan B-hyperedges
// of degree 2 through per-pair port vertices, so B-hyperedges of different
// A's never touch. Mining the chain pattern hub→A→B yields exactly
// hubs·fan² embeddings, and with hubs == 1 every one of them hangs off a
// single first-step candidate — the worst case for first-level scheduling.
func fanInput(hubs, fan int) (*dal.Store, *oig.Plan, uint64, error) {
	ports := hubs * fan * fan
	portBase := uint32(5 * hubs)
	leafBase := portBase + uint32(ports)
	var edges [][]uint32
	for h := 0; h < hubs; h++ {
		edges = append(edges, []uint32{uint32(5 * h), uint32(5*h + 1), uint32(5*h + 2), uint32(5*h + 3), uint32(5*h + 4)})
	}
	port := func(h, i, j int) uint32 { return portBase + uint32((h*fan+i)*fan+j) }
	for h := 0; h < hubs; h++ {
		for i := 0; i < fan; i++ {
			a := []uint32{uint32(5*h + 4)}
			for j := 0; j < fan; j++ {
				a = append(a, port(h, i, j))
			}
			edges = append(edges, a)
		}
	}
	leaf := uint32(0)
	for h := 0; h < hubs; h++ {
		for i := 0; i < fan; i++ {
			for j := 0; j < fan; j++ {
				edges = append(edges, []uint32{port(h, i, j), leafBase + leaf})
				leaf++
			}
		}
	}
	hg, err := hypergraph.Build(int(leafBase)+ports, edges, nil)
	if err != nil {
		return nil, nil, 0, err
	}

	// Chain pattern hub(5) → A(fan+1) → B(2), matching order pinned to the
	// chain so the hub is always the first step.
	pe1 := []uint32{4}
	for j := 0; j < fan; j++ {
		pe1 = append(pe1, uint32(5+j))
	}
	p, err := pattern.New([][]uint32{{0, 1, 2, 3, 4}, pe1, {5, uint32(5 + fan)}}, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	plan, err := oig.CompileOrdered(p, oig.ModeMerged, []int{0, 1, 2})
	if err != nil {
		return nil, nil, 0, err
	}
	return dal.Build(hg), plan, uint64(hubs) * uint64(fan) * uint64(fan), nil
}

// minMine runs the cell `repeats` times and keeps the fastest run (standard
// benchmarking practice; the counts of every repeat must agree).
func minMine(store *dal.Store, plan *oig.Plan, opts engine.Options, repeats int) (engine.Result, error) {
	var best engine.Result
	for r := 0; r < repeats; r++ {
		res, err := engine.MineWithPlan(store, plan, opts)
		if err != nil {
			return res, err
		}
		if r == 0 || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best, nil
}

func runSched(c *Context, opts RunOpts) ([]*Table, error) {
	type input struct {
		name string
		hubs int
		fan  int
	}
	inputs := []input{
		{name: "balanced", hubs: 8, fan: 140},
		{name: "skewed", hubs: 1, fan: 400},
	}
	repeats := 5
	if opts.Quick {
		inputs = []input{
			{name: "balanced", hubs: 8, fan: 40},
			{name: "skewed", hubs: 1, fan: 110},
		}
		repeats = 2
	}

	t := &Table{
		Title:  "Scheduler ablation: legacy first-level distribution vs work stealing",
		Header: []string{"input", "workers", "legacy", "stealing", "speedup", "steals", "publishes"},
		Notes: []string{
			"legacy = first-level-only dynamic loop (SplitDepth < 0); on the skewed input it clamps to 1 worker",
			"skewed input has ONE first-step candidate; all parallelism there comes from subtree stealing",
			fmt.Sprintf("wall-clock scaling is bounded by GOMAXPROCS=%d on this host; counts are verified identical across all cells", runtime.GOMAXPROCS(0)),
		},
	}
	for _, in := range inputs {
		store, plan, want, err := fanInput(in.hubs, in.fan)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, workers := range []int{1, 2, 4, 8} {
			legacy, err := minMine(store, plan, engine.Options{Workers: workers, SplitDepth: -1}, repeats)
			if err != nil {
				return nil, err
			}
			steal, err := minMine(store, plan, engine.Options{Workers: workers}, repeats)
			if err != nil {
				return nil, err
			}
			if legacy.Ordered != want || steal.Ordered != want {
				return nil, fmt.Errorf("sched: %s workers=%d counts legacy=%d stealing=%d, want %d",
					in.name, workers, legacy.Ordered, steal.Ordered, want)
			}
			t.AddRow(in.name, fmt.Sprintf("%d", workers), ms(legacy.Elapsed), ms(steal.Elapsed),
				speedup(legacy.Elapsed, steal.Elapsed),
				fmt.Sprintf("%d", steal.Stats.Steals), fmt.Sprintf("%d", steal.Stats.Publishes))
			for sched, res := range map[string]engine.Result{"legacy": legacy, "stealing": steal} {
				opts.Recorder.Record(CellRecord{
					Exp:       "sched",
					Variant:   "OHMiner",
					Dataset:   in.name,
					Pattern:   fmt.Sprintf("chain3 hubs=%d fan=%d", in.hubs, in.fan),
					Workers:   workers,
					Scheduler: sched,
					MaxProcs:  runtime.GOMAXPROCS(0),
					ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
					Ordered:   res.Ordered,
					Truncated: res.Truncated,
					Steals:    res.Stats.Steals,
					Publishes: res.Stats.Publishes,
					IdleSpins: res.Stats.IdleSpins,
				})
			}
		}
		progressf("    sched/%-8s 4 worker counts in %v\n", in.name, time.Since(start).Round(time.Millisecond))
	}
	return []*Table{t}, nil
}
