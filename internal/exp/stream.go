package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ohminer/internal/engine"
	"ohminer/internal/pattern"
	"ohminer/internal/stream"
)

// The "stream" experiment is the incremental-maintenance ablation for the
// streaming subsystem: the same scripted batch feed (adds + retires over a
// seeded graph) runs on two stream miners, one maintaining its hypergraph
// and DAL incrementally (the default) and one rebuilding both from scratch
// every batch (Config.Rebuild, the differential baseline). Standing-query
// deltas and cumulative totals must agree batch-for-batch — the measured
// quantity is apply latency, where incremental maintenance should win by
// roughly the graph-size/batch-size ratio.

func init() {
	register(Experiment{
		ID:    "stream",
		Title: "Streaming ablation: incremental derived-state maintenance vs per-batch rebuild",
		Run:   runStream,
	})
}

func runStream(c *Context, opts RunOpts) ([]*Table, error) {
	nv, initial, batches, adds, retires := 1200, 20000, 10, 200, 120
	if opts.Quick {
		nv, initial, batches, adds, retires = 600, 4000, 6, 120, 80
	}
	patterns := []string{"0 1; 1 2", "0 1; 1 2; 2 0"}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The feed is scripted up front so both variants consume identical
	// batches: a seeding batch, then `batches` batches of random pair/triple
	// adds and retires drawn from the edges known live at that point.
	rng := rand.New(rand.NewSource(opts.Seed + 41))
	randEdge := func() []uint32 {
		v := uint32(rng.Intn(nv - 2))
		if rng.Intn(2) == 0 {
			return []uint32{v, v + 1 + uint32(rng.Intn(2))}
		}
		return []uint32{v, v + 1, v + 2}
	}
	// live tracks the distinct edges known live so retires always name a
	// currently-live edge exactly once; duplicate random adds are dropped
	// (the miner would treat them as refreshes, desynchronizing this
	// bookkeeping from its live set).
	live := map[string][]uint32{}
	liveKeys := []string{}
	addFresh := func(batch *stream.Batch, n int) {
		for i := 0; i < n; i++ {
			e := randEdge()
			k := fmt.Sprint(e)
			if _, ok := live[k]; ok {
				continue
			}
			batch.Add = append(batch.Add, e)
			live[k] = e
			liveKeys = append(liveKeys, k)
		}
	}
	feed := make([]stream.Batch, 0, batches+1)
	seed := stream.Batch{Seq: 1}
	addFresh(&seed, initial)
	feed = append(feed, seed)
	for b := 0; b < batches; b++ {
		batch := stream.Batch{Seq: uint64(b + 2)}
		// Retires are drawn from edges live before this batch, so they are
		// valid regardless of apply-order semantics; adds then never
		// collide with a live or just-retired key.
		for i := 0; i < retires && len(liveKeys) > 0; i++ {
			j := rng.Intn(len(liveKeys))
			k := liveKeys[j]
			batch.Retire = append(batch.Retire, live[k])
			delete(live, k)
			liveKeys[j] = liveKeys[len(liveKeys)-1]
			liveKeys = liveKeys[:len(liveKeys)-1]
		}
		addFresh(&batch, adds)
		feed = append(feed, batch)
	}

	type variant struct {
		name    string
		rebuild bool
		apply   time.Duration
		finals  []stream.QueryInfo
		deltas  [][]stream.Delta // [batch][query]
	}
	variants := []*variant{{name: "rebuild", rebuild: true}, {name: "incremental"}}
	for _, v := range variants {
		m, err := stream.NewMiner(stream.Config{
			NumVertices: nv,
			Rebuild:     v.rebuild,
			Engine:      engine.Options{Workers: workers},
		})
		if err != nil {
			return nil, fmt.Errorf("stream: %s: %w", v.name, err)
		}
		// Seed the graph, then register the standing queries so every
		// measured batch evaluates them.
		if _, err := m.ApplyBatch(feed[0]); err != nil {
			return nil, fmt.Errorf("stream: %s: seed: %w", v.name, err)
		}
		for _, lit := range patterns {
			p, err := pattern.Parse(lit)
			if err != nil {
				return nil, fmt.Errorf("stream: pattern %q: %w", lit, err)
			}
			if _, err := m.RegisterQuery(p); err != nil {
				return nil, fmt.Errorf("stream: %s: register %q: %w", v.name, lit, err)
			}
		}
		start := time.Now()
		for _, b := range feed[1:] {
			res, err := m.ApplyBatch(b)
			if err != nil {
				return nil, fmt.Errorf("stream: %s: batch %d: %w", v.name, b.Seq, err)
			}
			ds := append([]stream.Delta(nil), res.Deltas...)
			for i := range ds {
				ds[i].ElapsedMS = 0
			}
			v.deltas = append(v.deltas, ds)
		}
		v.apply = time.Since(start)
		v.finals = m.Queries()
		progressf("    stream/%-11s %d batches in %v\n", v.name, batches, v.apply.Round(time.Millisecond))
	}

	// Differential gate: both variants must produce identical deltas for
	// every (batch, query) cell — incremental maintenance is only a win if
	// it is also exact.
	rb, inc := variants[0], variants[1]
	for bi := range rb.deltas {
		for qi := range rb.deltas[bi] {
			if rb.deltas[bi][qi] != inc.deltas[bi][qi] {
				return nil, fmt.Errorf("stream: batch %d query %d: rebuild %+v != incremental %+v",
					bi, qi, rb.deltas[bi][qi], inc.deltas[bi][qi])
			}
		}
	}

	t := &Table{
		Title:  "Streaming ablation: incremental derived-state maintenance vs per-batch rebuild",
		Header: []string{"cell", "rebuild", "incremental", "speedup"},
		Notes: []string{
			fmt.Sprintf("feed: %d seed edges, then %d batches of ~%d adds + %d retires over %d vertices", initial, batches, adds, retires, nv),
			"apply is the wall-clock total over all measured batches (derived-state maintenance + standing-query deltas)",
			"every per-batch delta and final total is verified identical across variants before timing is reported",
			"rebuild reconstructs the hypergraph and DAL from live edges each batch; incremental extends them in place",
		},
	}
	t.AddRow(fmt.Sprintf("apply Σ (B=%d)", batches), ms(rb.apply), ms(inc.apply), speedup(rb.apply, inc.apply))
	for qi, q := range inc.finals {
		if rb.finals[qi].Total != q.Total || rb.finals[qi].Unique != q.Unique {
			return nil, fmt.Errorf("stream: query %q final totals diverge: rebuild %d/%d, incremental %d/%d",
				q.Pattern, rb.finals[qi].Total, rb.finals[qi].Unique, q.Total, q.Unique)
		}
		t.AddRow("total "+q.Pattern, fmt.Sprintf("%d", rb.finals[qi].Total), fmt.Sprintf("%d", q.Total), "-")
	}
	for _, v := range variants {
		for _, q := range v.finals {
			opts.Recorder.Record(CellRecord{
				Exp:       "stream",
				Variant:   v.name,
				Dataset:   fmt.Sprintf("synthetic-stream nv=%d e0=%d", nv, initial),
				Pattern:   q.Pattern,
				Workers:   workers,
				MaxProcs:  runtime.GOMAXPROCS(0),
				ElapsedMs: float64(v.apply) / float64(time.Millisecond),
				Ordered:   q.Total,
				Unique:    q.Unique,
			})
		}
	}
	return []*Table{t}, nil
}
