package exp

import (
	"fmt"
	"runtime"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// The "sym" experiment is the symmetry-breaking ablation: the same mining
// runs on a plan compiled without ordering restrictions (the legacy
// enumeration visiting every ordered tuple) and on the default restricted
// plan (one canonical tuple per unordered embedding, GraphZero-style). Two
// symmetric inputs with |Aut| = 2 and 6 measure the win; the asymmetric
// skew-hub input is the control where both variants compile to the same
// search and must tie. Every input's embedding count has a closed form, and
// both variants must reproduce it exactly — the restricted run's Ordered is
// reconstructed as Unique x |Aut|, so agreement here is the end-to-end proof
// of the unique-count fix.

func init() {
	register(Experiment{
		ID:    "sym",
		Title: "Symmetry-breaking ablation: ordered enumeration vs canonical-orbit restrictions",
		Run:   runSym,
	})
}

func runSym(c *Context, opts RunOpts) ([]*Table, error) {
	type input struct {
		name  string
		desc  string
		aut   uint64
		build func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error)
	}
	inputs := []input{
		{"ring2", "chain2 ring r=150000", 2, func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return ringInput(150000) }},
		{"clique3", "triangle block-clique core=160 k=36", 6, func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return cliqueInput(160, 36) }},
		{"asym", "pair+pendant core=256 hubs=5000 pendants=10", 1, func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return skewInput(256, 5000, 10) }},
	}
	repeats := 3
	if opts.Quick {
		inputs = []input{
			{"ring2", "chain2 ring r=25000", 2, func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return ringInput(25000) }},
			{"clique3", "triangle block-clique core=64 k=16", 6, func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return cliqueInput(64, 16) }},
			{"asym", "pair+pendant core=96 hubs=600 pendants=8", 1, func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return skewInput(96, 600, 8) }},
		}
		repeats = 2
	}

	t := &Table{
		Title:  "Symmetry-breaking ablation: ordered enumeration vs canonical-orbit restrictions",
		Header: []string{"input", "|Aut|", "norestrict", "restrict", "speedup", "enum-reduction", "unique"},
		Notes: []string{
			"norestrict enumerates every ordered tuple (|Aut| per embedding); restrict enumerates one canonical tuple per orbit",
			"enum-reduction is the ratio of enumerated embeddings (engine.Stats.Embeddings), = |Aut| by construction",
			"Ordered and Unique are verified identical across both variants against each input's closed form",
			"the asymmetric control compiles to an unrestricted plan either way, so its reduction is 1",
			"cells run one mining worker so compiler effects are not masked by parallel speedup",
		},
	}
	for _, in := range inputs {
		store, p, _, want, err := in.build()
		if err != nil {
			return nil, fmt.Errorf("sym: %s: %w", in.name, err)
		}
		if got := uint64(p.Automorphisms()); got != in.aut {
			return nil, fmt.Errorf("sym: %s: pattern has %d automorphisms, the input promises %d", in.name, got, in.aut)
		}
		start := time.Now()
		variants := []struct {
			name       string
			norestrict bool
		}{
			{"norestrict", true},
			{"restrict", false},
		}
		results := make([]engine.Result, len(variants))
		for i, v := range variants {
			plan, err := oig.CompileWith(p, oig.ModeMerged, oig.CompileOptions{NoRestrictions: v.norestrict})
			if err != nil {
				return nil, fmt.Errorf("sym: %s/%s: %w", in.name, v.name, err)
			}
			if !v.norestrict && in.aut > 1 && !plan.Restricted {
				return nil, fmt.Errorf("sym: %s: compiler emitted no restrictions for a pattern with %d automorphisms", in.name, in.aut)
			}
			res, err := minMine(store, plan, engine.Options{Workers: 1, Instrument: true}, repeats)
			if err != nil {
				return nil, fmt.Errorf("sym: %s/%s: %w", in.name, v.name, err)
			}
			// Cross-variant count equality against the closed form: the
			// restricted run must reconstruct the exact ordered total and
			// both must agree on the unordered count.
			if res.Ordered != want {
				return nil, fmt.Errorf("sym: %s/%s counted %d ordered embeddings, want %d", in.name, v.name, res.Ordered, want)
			}
			if res.Unique != want/in.aut || res.UniqueRemainder != 0 {
				return nil, fmt.Errorf("sym: %s/%s: Unique=%d (remainder %d), want %d", in.name, v.name, res.Unique, res.UniqueRemainder, want/in.aut)
			}
			results[i] = res
			opts.Recorder.Record(CellRecord{
				Exp:        "sym",
				Variant:    "OHMiner",
				Dataset:    in.name,
				Pattern:    in.desc,
				Workers:    1,
				MaxProcs:   runtime.GOMAXPROCS(0),
				ElapsedMs:  float64(res.Elapsed) / float64(time.Millisecond),
				Ordered:    res.Ordered,
				Unique:     res.Unique,
				Restricted: res.Restricted,
				Embeddings: res.Stats.Embeddings,
			})
		}
		off, on := results[0], results[1]
		reduction := "-"
		if on.Stats.Embeddings > 0 {
			reduction = fmt.Sprintf("%.2fx", float64(off.Stats.Embeddings)/float64(on.Stats.Embeddings))
		}
		t.AddRow(in.name, fmt.Sprintf("%d", in.aut),
			ms(off.Elapsed), ms(on.Elapsed),
			speedup(off.Elapsed, on.Elapsed), reduction,
			fmt.Sprintf("%d", on.Unique))
		progressf("    sym/%-8s %d variants in %v\n", in.name, len(variants), time.Since(start).Round(time.Millisecond))
	}
	return []*Table{t}, nil
}
