package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/engine"
)

// The "ckpt" experiment measures what crash safety costs: the same workload
// mined with checkpointing off and with progressively tighter snapshot
// periods, against the invariant that the count stays exact in every cell.
// A checkpoint is a full quiesce — every worker unwinds to a saved frontier,
// the round restarts from cold deques — so overhead scales with quiesce
// frequency, not with the snapshot encode itself; the table shows where the
// period stops being free so operators can pick one deliberately.

func init() {
	register(Experiment{
		ID:    "ckpt",
		Title: "Checkpoint overhead: snapshot period vs mining time (exact counts required)",
		Run:   runCkpt,
	})
}

func runCkpt(c *Context, opts RunOpts) ([]*Table, error) {
	// fan=400 mines for ~130ms per run — long enough that even the widest
	// period below quiesces several times; quick mode trims to ~70ms runs
	// with proportionally tighter periods.
	hubs, fan := 8, 400
	repeats := 3
	periods := []time.Duration{50 * time.Millisecond, 20 * time.Millisecond, 5 * time.Millisecond}
	if opts.Quick {
		hubs, fan = 8, 250
		repeats = 2
		periods = []time.Duration{20 * time.Millisecond, 5 * time.Millisecond, time.Millisecond}
	}
	store, plan, want, err := fanInput(hubs, fan)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "ohm-ckpt-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	base := engine.Options{Workers: opts.Workers}
	baseline, err := minMine(store, plan, base, repeats)
	if err != nil {
		return nil, err
	}
	if baseline.Ordered != want {
		return nil, fmt.Errorf("ckpt: baseline counted %d, want %d", baseline.Ordered, want)
	}

	t := &Table{
		Title:  "Checkpoint overhead vs snapshot period",
		Header: []string{"period", "elapsed", "overhead", "snapshots", "bytes/snap"},
		Notes: []string{
			"same workload as the sched ablation (balanced hub-and-fan chain); counts verified exact in every cell",
			"overhead = elapsed increase over the checkpoint-free baseline; negative values are run-to-run noise",
			"a snapshot is one frontier encode + atomic file replace; the period bounds lost work after a crash",
		},
	}
	t.AddRow("off", ms(baseline.Elapsed), "—", "0", "—")
	start := time.Now()
	for _, every := range periods {
		o := base
		o.Checkpoint = &checkpoint.FileSink{Path: filepath.Join(dir, "bench.ckpt")}
		o.CheckpointEvery = every
		res, err := minMine(store, plan, o, repeats)
		if err != nil {
			return nil, err
		}
		if res.Ordered != want || res.Truncated {
			return nil, fmt.Errorf("ckpt: every=%v counted %d (truncated=%v), want exactly %d",
				every, res.Ordered, res.Truncated, want)
		}
		overhead := float64(res.Elapsed-baseline.Elapsed) / float64(baseline.Elapsed)
		perSnap := "—"
		if res.Stats.Checkpoints > 0 {
			perSnap = fmt.Sprintf("%d", res.Stats.CheckpointBytes/res.Stats.Checkpoints)
		}
		t.AddRow(every.String(), ms(res.Elapsed), fmt.Sprintf("%+.1f%%", overhead*100),
			fmt.Sprintf("%d", res.Stats.Checkpoints), perSnap)
		opts.Recorder.Record(CellRecord{
			Exp:       "ckpt",
			Variant:   "OHMiner",
			Dataset:   "balanced",
			Pattern:   fmt.Sprintf("chain3 hubs=%d fan=%d every=%v", hubs, fan, every),
			Workers:   opts.Workers,
			Scheduler: "stealing",
			MaxProcs:  runtime.GOMAXPROCS(0),
			ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
			Ordered:   res.Ordered,
			Steals:    res.Stats.Steals,
			Publishes: res.Stats.Publishes,
			IdleSpins: res.Stats.IdleSpins,
		})
	}
	progressf("    ckpt     %d periods in %v\n", len(periods), time.Since(start).Round(time.Millisecond))
	return []*Table{t}, nil
}
