package exp

import (
	"fmt"
	"time"

	"ohminer/internal/dal"

	"ohminer/internal/engine"
	"ohminer/internal/intset"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "extras",
		Title: "Repository ablations: merge optimization, kernels, matching order (beyond the paper's figures)",
		Run:   runExtras,
	})
}

// runExtras measures the design choices DESIGN.md calls out that the
// paper's figures do not isolate directly:
//
//   - ModeMerged vs ModeSimple plans on identical DAL generation (the OIG
//     merge optimization in isolation);
//   - fast vs scalar set kernels (the SIMD stand-in, cf. the paper's
//     3.8x-19.6x no-SIMD claim);
//   - structural vs data-aware matching order.
func runExtras(c *Context, opts RunOpts) ([]*Table, error) {
	t := &Table{
		Title:  "Extras: repository-level ablations (times per cell, OHMiner generation)",
		Header: []string{"dataset", "setting", "merged", "simple", "scalar-kernel", "data-aware-order"},
		Notes: []string{
			"merged = full OHMiner; simple = IEP-only plan; scalar = no-SIMD stand-in; data-aware = selectivity-first matching order",
		},
	}
	configs := []struct {
		name string
		opts engine.Options
	}{
		{"merged", engine.Options{Gen: engine.GenDAL, Val: engine.ValOverlap}},
		{"simple", engine.Options{Gen: engine.GenDAL, Val: engine.ValOverlapSimple}},
		{"scalar", engine.Options{Gen: engine.GenDAL, Val: engine.ValOverlap, Kernel: intset.Scalar}},
		{"data-aware", engine.Options{Gen: engine.GenDAL, Val: engine.ValOverlap, DataAwareOrder: true}},
	}
	for _, tag := range datasetsFor(opts, []string{"SB", "HB", "WT"}, []string{"SB"}) {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		for _, set := range settingsFor(opts, "P3", "P4") {
			progressf("  [extras] %s/%s\n", tag, set.Name)
			pats, err := samplePatterns(store, set, opts, saltFor(tag, set.Name))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tag, set.Name, err)
			}
			cells := make([]string, len(configs))
			var counts []uint64
			for i, cfg := range configs {
				m, cs, err := mineVariantSet(store, pats, cfg.opts, opts, counts)
				if err != nil {
					return nil, err
				}
				if counts == nil {
					counts = cs
				}
				if m.Runs == 0 {
					cells[i] = "timeout"
					continue
				}
				cells[i] = ms(m.AvgTime)
			}
			t.AddRow(tag, set.Name, cells[0], cells[1], cells[2], cells[3])
		}
	}
	return []*Table{t}, nil
}

// mineVariantSet is mineSet for an arbitrary engine.Options configuration.
func mineVariantSet(store *dal.Store, pats []*pattern.Pattern, eng engine.Options, opts RunOpts, check []uint64) (measurement, []uint64, error) {
	var m measurement
	counts := make([]uint64, 0, len(pats))
	for i, p := range pats {
		eng.Workers = opts.Workers
		if opts.CellBudget > 0 {
			eng.Deadline = opts.CellBudget
		}
		res, err := engine.Mine(store, p, eng)
		if err != nil {
			return m, nil, err
		}
		if res.Truncated {
			m.Truncated = true
			break
		}
		m.PerPattern = append(m.PerPattern, res.Elapsed)
		m.AvgTime += res.Elapsed
		m.Runs++
		counts = append(counts, res.Ordered)
		if check != nil && i < len(check) && check[i] != res.Ordered {
			return m, nil, fmt.Errorf("ablation config disagrees on pattern %d: %d vs %d",
				i, res.Ordered, check[i])
		}
	}
	if m.Runs > 0 {
		m.AvgTime /= time.Duration(m.Runs)
	}
	return m, counts, nil
}
