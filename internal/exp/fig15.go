package exp

import (
	"fmt"

	"ohminer/internal/engine"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Ablation: OHM-I, OHM-V, OHM-G, OHMiner speedups over HGMatch",
		Run:   runFig15,
	})
}

// runFig15 reproduces the optimization-technique ablation (Sec. 5.3):
//
//	OHM-I = HGMatch generation + IEP-only overlap validation (1.40x-3.01x)
//	OHM-V = HGMatch generation + full OHMiner validation     (2.01x-4.74x)
//	OHM-G = OHMiner generation + HGMatch validation          (1.11x-1.45x)
//	OHMiner = both                                           (OHM-V x 2.56-3.70)
func runFig15(c *Context, opts RunOpts) ([]*Table, error) {
	variants := []engine.Variant{
		{Name: "OHM-I", Gen: engine.GenHGMatch, Val: engine.ValOverlapSimple},
		{Name: "OHM-V", Gen: engine.GenHGMatch, Val: engine.ValOverlap},
		{Name: "OHM-G", Gen: engine.GenDAL, Val: engine.ValProfiles},
		{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap},
	}
	baseline := engine.Variant{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles}
	t := &Table{
		Title:  "Figure 15: speedup over HGMatch by optimization technique",
		Header: []string{"dataset", "setting", "OHM-I", "OHM-V", "OHM-G", "OHMiner"},
		Notes: []string{
			"expected ordering per paper: OHM-G < OHM-I < OHM-V < OHMiner",
			"OHM-I = IEP set-ops only; OHM-V adds merge+pruning; OHM-G = DAL generation only",
		},
	}
	for _, tag := range datasetsFor(opts, []string{"SB", "HB", "WT"}, []string{"SB"}) {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		for _, set := range settingsFor(opts, "P3") {
			pats, err := samplePatterns(store, set, opts, saltFor(tag, set.Name))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tag, set.Name, err)
			}
			base, counts, err := mineSet(store, pats, baseline, opts, false, nil)
			if err != nil {
				return nil, err
			}
			cells := make([]string, len(variants))
			minCommon := len(pats)
			anyTrunc := base.Truncated
			for i, v := range variants {
				m, _, err := mineSet(store, pats, v, opts, false, counts)
				if err != nil {
					return nil, err
				}
				vAvg, bAvg, common, truncated := align(m, base)
				anyTrunc = anyTrunc || truncated
				if common < minCommon {
					minCommon = common
				}
				if common == 0 {
					if lb, ok := lowerBound(m, opts.CellBudget); ok {
						cells[i] = lb
					} else {
						cells[i] = "timeout"
					}
					continue
				}
				cells[i] = speedup(bAvg, vAvg)
			}
			t.AddRow(tag, set.Name+cellNote(minCommon, len(pats), anyTrunc),
				cells[0], cells[1], cells[2], cells[3])
		}
	}
	return []*Table{t}, nil
}
