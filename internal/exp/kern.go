package exp

import (
	"fmt"
	"runtime"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// The "kern" experiment is the set-kernel ablation: the same mining runs on
// the scalar merge kernel, the galloping "fast" kernel (the static SIMD
// stand-in, cf. the paper's no-SIMD ablation), and the adaptive kernel that
// picks per operation among word-parallel bitmap windows, window probes, and
// galloping from the operands' actual containers. Three synthetic inputs pin
// the three density regimes: a sparse ring where every set is a tiny array
// (adaptive must not regress), a dense block-clique where every operand is
// bitmap-backed (the SWAR win), and a skewed input mixing huge windowed
// hyperedges with degree-2 pendants (the mixed probe win). Every input's
// embedding count has a closed form, and every kernel must reproduce it.

func init() {
	register(Experiment{
		ID:    "kern",
		Title: "Set-kernel ablation: scalar vs gallop (fast) vs density-adaptive containers",
		Run:   runKern,
	})
}

// ringInput builds a cycle of r degree-2 hyperedges {i, i+1 mod r} and the
// 2-chain pattern. Adjacent ring edges share exactly one vertex, so the
// ordered count is 2r. Every vertex set and adjacency group is far below the
// window threshold: the adaptive kernel must stay on the array path.
func ringInput(r int) (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) {
	edges := make([][]uint32, r)
	for i := 0; i < r; i++ {
		a, b := uint32(i), uint32((i+1)%r)
		if a > b {
			a, b = b, a
		}
		edges[i] = []uint32{a, b}
	}
	h, err := hypergraph.Build(r, edges, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	p, err := pattern.New([][]uint32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	plan, err := oig.CompileOrdered(p, oig.ModeMerged, []int{0, 1})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return dal.Build(h), p, plan, 2 * uint64(r), nil
}

// cliqueInput builds k hyperedges that all share the dense core {0..core-1}
// and differ in one private vertex, plus the matching triangle pattern
// (three core+private edges). Every pair and the triple overlap in exactly
// the core, so every ordered triple of distinct data edges matches:
// k·(k-1)·(k-2) embeddings. Vertex sets and adjacency groups are contiguous
// and large, so the adaptive kernel runs entirely on bitmap windows.
func cliqueInput(core, k int) (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) {
	mk := func(private uint32) []uint32 {
		e := make([]uint32, core+1)
		for v := 0; v < core; v++ {
			e[v] = uint32(v)
		}
		e[core] = private
		return e
	}
	edges := make([][]uint32, k)
	for i := 0; i < k; i++ {
		edges[i] = mk(uint32(core + i))
	}
	h, err := hypergraph.Build(core+k, edges, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	p, err := pattern.New([][]uint32{mk(uint32(core)), mk(uint32(core + 1)), mk(uint32(core + 2))}, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	plan, err := oig.CompileOrdered(p, oig.ModeMerged, []int{0, 1, 2})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return dal.Build(h), p, plan, uint64(k) * uint64(k-1) * uint64(k-2), nil
}

// skewInput builds hubs pairs of dense hyperedges (A_h, B_h) sharing a
// contiguous core-vertex block and differing in one private vertex each,
// plus pendants degree-2 hyperedges per pair hanging off A_h's private
// vertex. The pattern is A∩B = core, A∩C = {A's private}, B∩C = ∅, so the
// ordered count is hubs·pendants (only A_h carries pendants; the swapped
// binding dies on generation). The hot operations are skewed across density
// classes: dense∩dense pair counts on bitmap windows, and huge∩tiny pendant
// checks on the mixed probe path.
func skewInput(core, hubs, pendants int) (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) {
	stride := uint32(core + 2)
	leafBase := uint32(hubs) * stride
	edges := make([][]uint32, 0, 2*hubs+hubs*pendants)
	for h := 0; h < hubs; h++ {
		base := uint32(h) * stride
		a := make([]uint32, core+1)
		b := make([]uint32, core+1)
		for v := 0; v < core; v++ {
			a[v] = base + uint32(v)
			b[v] = base + uint32(v)
		}
		a[core] = base + uint32(core)
		b[core] = base + uint32(core) + 1
		edges = append(edges, a, b)
	}
	leaf := uint32(0)
	for h := 0; h < hubs; h++ {
		priv := uint32(h)*stride + uint32(core)
		for j := 0; j < pendants; j++ {
			edges = append(edges, []uint32{priv, leafBase + leaf})
			leaf++
		}
	}
	h, err := hypergraph.Build(int(leafBase)+hubs*pendants, edges, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	pe := func(private uint32) []uint32 {
		e := make([]uint32, core+1)
		for v := 0; v < core; v++ {
			e[v] = uint32(v)
		}
		e[core] = private
		return e
	}
	p, err := pattern.New([][]uint32{pe(uint32(core)), pe(uint32(core + 1)), {uint32(core), uint32(core + 2)}}, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	plan, err := oig.CompileOrdered(p, oig.ModeMerged, []int{0, 1, 2})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return dal.Build(h), p, plan, uint64(hubs) * uint64(pendants), nil
}

func runKern(c *Context, opts RunOpts) ([]*Table, error) {
	type input struct {
		name  string
		desc  string
		build func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error)
	}
	inputs := []input{
		{"sparse", "chain2 ring r=150000", func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return ringInput(150000) }},
		{"dense", "triangle block-clique core=160 k=36", func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return cliqueInput(160, 36) }},
		{"skewhub", "pair+pendant core=256 hubs=5000 pendants=10", func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return skewInput(256, 5000, 10) }},
	}
	repeats := 3
	if opts.Quick {
		inputs = []input{
			{"sparse", "chain2 ring r=25000", func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return ringInput(25000) }},
			{"dense", "triangle block-clique core=64 k=16", func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return cliqueInput(64, 16) }},
			{"skewhub", "pair+pendant core=96 hubs=600 pendants=8", func() (*dal.Store, *pattern.Pattern, *oig.Plan, uint64, error) { return skewInput(96, 600, 8) }},
		}
		repeats = 2
	}

	kernels := []struct {
		name string
		k    intset.Kernel
	}{
		{"scalar", intset.Scalar},
		{"fast", intset.Fast},
		{"adaptive", intset.Adaptive},
	}

	t := &Table{
		Title:  "Kernel ablation: scalar merge vs gallop (fast) vs adaptive containers",
		Header: []string{"input", "scalar", "fast", "adaptive", "fast/adaptive", "array", "bitmap", "mixed"},
		Notes: []string{
			"adaptive picks per operation among SWAR bitmap windows, window probes, and galloping from the operands' containers",
			"array/bitmap/mixed are the adaptive run's per-operation container classifications (engine.Stats)",
			"counts are verified against each input's closed form on every kernel, so all three families agree exactly",
			"cells run one mining worker so kernel time is not masked by parallel speedup",
		},
	}
	for _, in := range inputs {
		store, _, plan, want, err := in.build()
		if err != nil {
			return nil, fmt.Errorf("kern: %s: %w", in.name, err)
		}
		start := time.Now()
		elapsed := make([]time.Duration, len(kernels))
		var adaptive engine.Result
		for i, k := range kernels {
			res, err := minMine(store, plan, engine.Options{Workers: 1, Kernel: k.k}, repeats)
			if err != nil {
				return nil, fmt.Errorf("kern: %s/%s: %w", in.name, k.name, err)
			}
			if res.Ordered != want {
				return nil, fmt.Errorf("kern: %s/%s counted %d ordered embeddings, want %d", in.name, k.name, res.Ordered, want)
			}
			elapsed[i] = res.Elapsed
			if k.name == "adaptive" {
				adaptive = res
			}
			opts.Recorder.Record(CellRecord{
				Exp:          "kern",
				Variant:      "OHMiner",
				Dataset:      in.name,
				Pattern:      in.desc,
				Workers:      1,
				Kernel:       k.name,
				MaxProcs:     runtime.GOMAXPROCS(0),
				ElapsedMs:    float64(res.Elapsed) / float64(time.Millisecond),
				Ordered:      res.Ordered,
				KernelArray:  res.Stats.KernelArray,
				KernelBitmap: res.Stats.KernelBitmap,
				KernelMixed:  res.Stats.KernelMixed,
			})
		}
		t.AddRow(in.name, ms(elapsed[0]), ms(elapsed[1]), ms(elapsed[2]),
			speedup(elapsed[1], elapsed[2]),
			fmt.Sprintf("%d", adaptive.Stats.KernelArray),
			fmt.Sprintf("%d", adaptive.Stats.KernelBitmap),
			fmt.Sprintf("%d", adaptive.Stats.KernelMixed))
		progressf("    kern/%-8s %d kernels in %v\n", in.name, len(kernels), time.Since(start).Round(time.Millisecond))
	}
	return []*Table{t}, nil
}
