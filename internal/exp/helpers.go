package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

// newRand builds a deterministic RNG for workload sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// measurement is one averaged mining result over a pattern set.
type measurement struct {
	AvgTime    time.Duration
	PerPattern []time.Duration // completed patterns only
	Ordered    uint64          // total across completed patterns
	Runs       int             // completed patterns
	Truncated  bool            // cell budget exhausted before all patterns ran
	GenFrac    float64         // instrumented runs only
	ValFrac    float64
	Stats      engine.Stats
}

// Progress, when non-nil, receives one line per measured cell so that long
// full-grid runs are observable (cmd/ohmbench points it at stderr).
var Progress io.Writer

func progressf(format string, args ...any) {
	if Progress != nil {
		fmt.Fprintf(Progress, format, args...)
	}
}

// mineSet mines every pattern with the given variant and returns the
// averaged wall time. Counts are cross-checked against check (when
// non-nil): a mismatch is a correctness bug, so it fails loudly.
func mineSet(store *dal.Store, pats []*pattern.Pattern, v engine.Variant, opts RunOpts, instrument bool, check []uint64) (measurement, []uint64, error) {
	start := time.Now()
	var m measurement
	defer func() {
		trunc := ""
		if m.Truncated {
			trunc = fmt.Sprintf(" (budget hit after %d)", m.Runs)
		}
		progressf("    %-8s %d patterns in %v%s\n", v.Name, len(pats), time.Since(start).Round(time.Millisecond), trunc)
	}()
	counts := make([]uint64, 0, len(pats))
	for i, p := range pats {
		var deadline time.Duration
		if opts.CellBudget > 0 {
			remaining := opts.CellBudget - time.Since(start)
			if remaining <= 0 {
				m.Truncated = true
				break
			}
			deadline = remaining
		}
		res, err := engine.Mine(store, p, engine.Options{
			Gen: v.Gen, Val: v.Val, Workers: opts.Workers, Instrument: instrument,
			Deadline: deadline,
		})
		if err != nil {
			return m, nil, fmt.Errorf("%s on pattern %d: %w", v.Name, i, err)
		}
		if res.Truncated {
			// The run hit the budget mid-pattern; its time and count are
			// incomparable, so drop it and stop.
			m.Truncated = true
			break
		}
		m.PerPattern = append(m.PerPattern, res.Elapsed)
		m.AvgTime += res.Elapsed
		m.Ordered += res.Ordered
		m.Runs++
		m.Stats.GenTime += res.Stats.GenTime
		m.Stats.ValTime += res.Stats.ValTime
		m.Stats.Candidates += res.Stats.Candidates
		m.Stats.SetOps += res.Stats.SetOps
		m.Stats.NMFetches += res.Stats.NMFetches
		m.Stats.RedundantNMFetches += res.Stats.RedundantNMFetches
		m.Stats.ProfileVertices += res.Stats.ProfileVertices
		m.Stats.RedundantProfileVertices += res.Stats.RedundantProfileVertices
		m.Stats.Publishes += res.Stats.Publishes
		m.Stats.Steals += res.Stats.Steals
		m.Stats.IdleSpins += res.Stats.IdleSpins
		if opts.Recorder != nil {
			opts.Recorder.Record(CellRecord{
				Variant:   v.Name,
				Pattern:   fmt.Sprintf("#%d %s", i, p),
				Workers:   opts.Workers,
				Scheduler: "stealing",
				ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
				Ordered:   res.Ordered,
				Steals:    res.Stats.Steals,
				Publishes: res.Stats.Publishes,
				IdleSpins: res.Stats.IdleSpins,
			})
		}
		counts = append(counts, res.Ordered)
		if check != nil && i < len(check) && check[i] != res.Ordered {
			return m, nil, fmt.Errorf("%s disagrees on pattern %d: %d vs %d embeddings",
				v.Name, i, res.Ordered, check[i])
		}
	}
	if m.Runs > 0 {
		m.AvgTime /= time.Duration(m.Runs)
	}
	if tot := m.Stats.GenTime + m.Stats.ValTime; tot > 0 {
		m.GenFrac = float64(m.Stats.GenTime) / float64(tot)
		m.ValFrac = float64(m.Stats.ValTime) / float64(tot)
	}
	return m, counts, nil
}

// speedup formats a ratio of two durations.
func speedup(base, fast time.Duration) string {
	if fast <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(fast))
}

// align compares two measurements of the same pattern set fairly when one
// (or both) hit the cell budget: averages are recomputed over the common
// prefix of completed patterns. It returns the aligned averages, the common
// pattern count, and whether truncation occurred.
func align(a, b measurement) (avgA, avgB time.Duration, common int, truncated bool) {
	common = len(a.PerPattern)
	if len(b.PerPattern) < common {
		common = len(b.PerPattern)
	}
	truncated = a.Truncated || b.Truncated
	if common == 0 {
		return 0, 0, 0, truncated
	}
	for i := 0; i < common; i++ {
		avgA += a.PerPattern[i]
		avgB += b.PerPattern[i]
	}
	avgA /= time.Duration(common)
	avgB /= time.Duration(common)
	return avgA, avgB, common, truncated
}

// lowerBound renders a conservative speedup bound when the baseline could
// not finish even one pattern within the budget: the baseline spent at
// least the whole budget on the first pattern the fast system finished in
// PerPattern[0].
func lowerBound(fast measurement, budget time.Duration) (string, bool) {
	if budget <= 0 || len(fast.PerPattern) == 0 {
		return "", false
	}
	return fmt.Sprintf(">=%.0fx", float64(budget)/float64(fast.PerPattern[0])), true
}

// cellNote annotates a row measured on fewer patterns than sampled.
func cellNote(common, total int, truncated bool) string {
	if !truncated || common == total {
		return ""
	}
	return fmt.Sprintf(" [%d/%d]", common, total)
}

// ms formats a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	v := float64(d) / float64(time.Millisecond)
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.1fs", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0fms", v)
	default:
		return fmt.Sprintf("%.2fms", v)
	}
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// settingsFor returns the Table 4 pattern settings to use, trimmed in quick
// mode.
func settingsFor(opts RunOpts, quickNames ...string) []pattern.Setting {
	all := pattern.Settings()
	if !opts.Quick {
		return all
	}
	if len(quickNames) == 0 {
		quickNames = []string{"P2", "P3"}
	}
	var out []pattern.Setting
	for _, s := range all {
		for _, n := range quickNames {
			if s.Name == n {
				s.Count = 2
				out = append(out, s)
			}
		}
	}
	return out
}

// datasetsFor trims the dataset list in quick mode.
func datasetsFor(opts RunOpts, full []string, quick []string) []string {
	if opts.Quick {
		return quick
	}
	return full
}

// samplePatterns draws the pattern set for one dataset/setting pair with a
// deterministic per-pair seed.
func samplePatterns(store *dal.Store, set pattern.Setting, opts RunOpts, salt int64) ([]*pattern.Pattern, error) {
	return pattern.SampleSet(store.Hypergraph(), set, opts.Seed*1000003+salt)
}

// saltFor derives a stable salt from dataset tag and setting name.
func saltFor(tag, setting string) int64 {
	var s int64
	for _, r := range tag + "/" + setting {
		s = s*131 + int64(r)
	}
	return s
}
