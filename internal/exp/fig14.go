package exp

import (
	"fmt"

	"ohminer/internal/engine"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Labeled HPM speedup, single thread (paper: 5.1x-22.0x)",
		Run:   runFig14,
	})
}

// runFig14 reproduces the labeled-HPM comparison: vertex labels prune the
// search space hard, so the paper (and this harness) runs single-threaded.
// Three label classes keep the bench-scale workloads out of the degenerate
// microsecond regime where fixed overheads mask the algorithmic gap (with
// 8 classes over the scaled datasets nearly every cell collapses to the
// single sampled instance).
func runFig14(c *Context, opts RunOpts) ([]*Table, error) {
	const numLabels = 3
	ohm := engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap}
	hgm := engine.Variant{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles}
	t := &Table{
		Title:  "Figure 14: OHMiner speedup over HGMatch (labeled, 1 thread)",
		Header: []string{"dataset", "setting", "OHMiner", "HGMatch", "speedup", "embeddings"},
		Notes:  []string{fmt.Sprintf("vertices carry %d Zipf-distributed label classes; paper reports 5.1x-22.0x", numLabels)},
	}
	single := opts
	single.Workers = 1
	for _, tag := range datasetsFor(opts, []string{"CH", "CP", "SB", "HB", "WT", "TC"}, []string{"SB", "WT"}) {
		store, err := c.LabeledDataset(tag, numLabels)
		if err != nil {
			return nil, err
		}
		for _, set := range settingsFor(opts) {
			pats, err := samplePatterns(store, set, single, saltFor(tag, set.Name))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tag, set.Name, err)
			}
			fast, counts, err := mineSet(store, pats, ohm, single, false, nil)
			if err != nil {
				return nil, err
			}
			base, _, err := mineSet(store, pats, hgm, single, false, counts)
			if err != nil {
				return nil, err
			}
			fastAvg, baseAvg, common, truncated := align(fast, base)
			if common == 0 {
				if lb, ok := lowerBound(fast, opts.CellBudget); ok {
					t.AddRow(tag, set.Name+" [1/lb]", ms(fast.PerPattern[0]),
						">"+ms(opts.CellBudget), lb, "-")
				} else {
					t.AddRow(tag, set.Name, "-", "-", "timeout", "-")
				}
				continue
			}
			t.AddRow(tag, set.Name+cellNote(common, len(pats), truncated),
				ms(fastAvg), ms(baseAvg), speedup(baseAvg, fastAvg), fmt.Sprintf("%d", fast.Ordered))
		}
	}
	return []*Table{t}, nil
}
