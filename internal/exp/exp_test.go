package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig12", "table5", "fig13", "fig14", "fig15", "fig16", "fig17a", "fig17b", "table6", "sched", "kern", "sym", "ckpt", "stream", "extras", "taxonomy"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d is %s, want %s", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, err := ByID("fig12"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "long-column"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("x", "y")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T ==", "long-column", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink failed" }

func TestTableRenderWriteError(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a"}}
	tbl.AddRow("x")
	if err := tbl.Render(failWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestDatasetCache(t *testing.T) {
	c := NewContext()
	s1, err := c.Dataset("CH")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Dataset("CH")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("dataset not cached")
	}
	l, err := c.LabeledDataset("CH", 4)
	if err != nil {
		t.Fatal(err)
	}
	if l == s1 || !l.Hypergraph().Labeled() {
		t.Fatal("labeled dataset wrong")
	}
	if _, err := c.Dataset("nope"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

// TestAllExperimentsQuick executes every experiment in quick mode — the
// end-to-end harness smoke test. It is the slowest test in the repository;
// -short skips it.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	c := NewContext()
	opts := RunOpts{Quick: true, Seed: 42, Workers: 1}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(c, opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			var buf bytes.Buffer
			for _, tbl := range tables {
				if err := tbl.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tbl.Title)
				}
			}
			t.Logf("\n%s", buf.String())
		})
	}
}
