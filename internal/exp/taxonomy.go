package exp

import (
	"fmt"

	"ohminer/internal/engine"
	"ohminer/internal/mbv"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "taxonomy",
		Title: "Three-approach comparison: match-by-vertex vs HGMatch vs OHMiner (Sec. 2.3 taxonomy)",
		Run:   runTaxonomy,
	})
}

// runTaxonomy reproduces the paper's system-taxonomy claim at small scale:
// match-by-vertex systems (the pre-HGMatch category) explode with the
// vertex-bijection space, HGMatch's match-by-hyperedge removes that, and
// OHMiner removes the remaining vertex-granularity redundancy. The paper
// cites 4 orders of magnitude between the first two on full workloads; the
// scaled-down datasets here show the same ordering with smaller gaps.
func runTaxonomy(c *Context, opts RunOpts) ([]*Table, error) {
	t := &Table{
		Title:  "Taxonomy: time per approach (small workloads; match-by-vertex is exponential)",
		Header: []string{"dataset", "pattern", "match-by-vertex", "HGMatch", "OHMiner", "mbv/OHMiner", "mappings/tuples"},
		Notes: []string{
			"mappings/tuples = vertex bijections explored per hyperedge tuple (the match-by-vertex blow-up factor)",
			"HGMatch outperforms match-by-vertex by ~4 orders of magnitude on full workloads (Sec. 5.1)",
		},
	}
	// Only CH: on datasets with wide hyperedges (SB and up) the
	// match-by-vertex search space is astronomically large even for
	// 2-hyperedge patterns — the very weakness this experiment measures —
	// so full mode would not terminate in useful time.
	datasets := datasetsFor(opts, []string{"CH"}, []string{"CH"})
	for _, tag := range datasets {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		h := store.Hypergraph()
		// Small patterns with modest vertex counts: match-by-vertex cannot
		// go further.
		set := pattern.Setting{Name: "p2", NumEdges: 2, VertMin: 3, VertMax: 8, Count: 2}
		pats, err := samplePatterns(store, set, opts, saltFor(tag, "taxonomy"))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tag, err)
		}
		for i, p := range pats {
			progressf("  [taxonomy] %s pattern %d\n", tag, i)
			mres, err := mbv.Mine(h, p)
			if err != nil {
				return nil, err
			}
			hres, err := engine.Mine(store, p, engine.Options{
				Gen: engine.GenHGMatch, Val: engine.ValProfiles, Workers: opts.Workers})
			if err != nil {
				return nil, err
			}
			ores, err := engine.Mine(store, p, engine.Options{Workers: opts.Workers})
			if err != nil {
				return nil, err
			}
			if mres.Ordered != hres.Ordered || hres.Ordered != ores.Ordered {
				return nil, fmt.Errorf("taxonomy count mismatch on %s: mbv=%d hgm=%d ohm=%d",
					p, mres.Ordered, hres.Ordered, ores.Ordered)
			}
			blowup := "-"
			if mres.Ordered > 0 {
				blowup = fmt.Sprintf("%d", mres.VertexMappings/mres.Ordered)
			}
			t.AddRow(tag, fmt.Sprintf("p2-%d", i),
				ms(mres.Elapsed), ms(hres.Elapsed), ms(ores.Elapsed),
				speedup(mres.Elapsed, ores.Elapsed), blowup)
		}
	}
	return []*Table{t}, nil
}
