package exp

import (
	"fmt"

	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "table5",
		Title: "Absolute execution times of HGMatch and OHMiner (p3/p4/p5 on SB/HB/WT)",
		Run:   runTable5,
	})
}

// runTable5 reproduces Table 5: one representative pattern per setting and
// dataset, absolute times for both systems. The paper's rows are p3, p4, p5
// on SB, HB, WT; quick mode trims to p3/p4.
func runTable5(c *Context, opts RunOpts) ([]*Table, error) {
	settings := []pattern.Setting{
		{Name: "p3", NumEdges: 3, VertMin: 10, VertMax: 20, Count: 1},
		{Name: "p4", NumEdges: 4, VertMin: 10, VertMax: 30, Count: 1},
		{Name: "p5", NumEdges: 5, VertMin: 15, VertMax: 35, Count: 1},
	}
	if opts.Quick {
		settings = settings[:2]
	}
	t := &Table{
		Title:  "Table 5: execution times (one sampled pattern per cell)",
		Header: []string{"pattern", "dataset", "HGMatch", "OHMiner", "speedup", "embeddings"},
		Notes: []string{
			"paper (full-scale datasets): speedups 7.22x-22.50x; datasets here are bench-scale (see DESIGN.md)",
		},
	}
	ohm := engine.Variant{Name: "OHMiner", Gen: engine.GenDAL, Val: engine.ValOverlap}
	hgm := engine.Variant{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles}
	for _, set := range settings {
		for _, tag := range []string{"SB", "HB", "WT"} {
			store, err := c.Dataset(tag)
			if err != nil {
				return nil, err
			}
			pats, err := samplePatterns(store, set, opts, saltFor(tag, set.Name))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tag, set.Name, err)
			}
			fast, counts, err := mineSet(store, pats, ohm, opts, false, nil)
			if err != nil {
				return nil, err
			}
			base, _, err := mineSet(store, pats, hgm, opts, false, counts)
			if err != nil {
				return nil, err
			}
			fastAvg, baseAvg, common, truncated := align(fast, base)
			if common == 0 {
				if lb, ok := lowerBound(fast, opts.CellBudget); ok {
					t.AddRow(set.Name+" [1/lb]", tag, ">"+ms(opts.CellBudget),
						ms(fast.PerPattern[0]), lb, "-")
				} else {
					t.AddRow(set.Name, tag, "-", "-", "timeout", "-")
				}
				continue
			}
			t.AddRow(set.Name+cellNote(common, len(pats), truncated), tag,
				ms(baseAvg), ms(fastAvg), speedup(baseAvg, fastAvg), fmt.Sprintf("%d", fast.Ordered))
		}
	}
	return []*Table{t}, nil
}
