package exp

import (
	"fmt"

	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "HGMatch characteristics: phase breakdown, redundancy, connection density",
		Run:   runFig3,
	})
}

// runFig3 reproduces the four motivation measurements of Figure 3 by
// running the instrumented HGMatch configuration:
//
//	(a) candidate generation + validation dominate execution time
//	(b) redundant computations (repeated incident-hyperedge derivations)
//	(c) redundant vertices in candidate validation (68%-91% in the paper)
//	(d) connection density of degree-mapped subhypergraphs (≤0.11)
func runFig3(c *Context, opts RunOpts) ([]*Table, error) {
	hgm := engine.Variant{Name: "HGMatch", Gen: engine.GenHGMatch, Val: engine.ValProfiles}
	datasets := datasetsFor(opts, []string{"SB", "HB", "WT"}, []string{"SB", "WT"})
	// Instrumented HGMatch on P5+ is disproportionately slow; P3/P4 already
	// exhibit the Figure 3 trends.
	settings := settingsFor(opts, "P3")
	if !opts.Quick {
		settings = settingsFor(RunOpts{Quick: true, Seed: opts.Seed}, "P3", "P4")
		for i := range settings {
			settings[i].Count = 3
		}
	}

	breakdown := &Table{
		Title:  "Figure 3(a,b,c): HGMatch phase breakdown and redundancy",
		Header: []string{"dataset", "setting", "gen%", "val%", "redundant NM fetches", "redundant profile verts"},
		Notes: []string{
			"paper: generation+validation 97%-99% of time, validation up to 85%",
			"paper: redundant computations up to 90%; redundant vertices 68%-91% of validation",
		},
	}
	density := &Table{
		Title:  "Figure 3(d): connection density of degree-mapped subhypergraphs",
		Header: []string{"dataset", "setting", "density"},
		Notes:  []string{"paper: at most 0.11 — most degree-matched hyperedge pairs are disconnected"},
	}
	for _, tag := range datasets {
		store, err := c.Dataset(tag)
		if err != nil {
			return nil, err
		}
		for _, set := range settings {
			progressf("  [fig3] %s/%s\n", tag, set.Name)
			pats, err := samplePatterns(store, set, opts, saltFor(tag, set.Name))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tag, set.Name, err)
			}
			m, _, err := mineSet(store, pats, hgm, opts, true, nil)
			if err != nil {
				return nil, err
			}
			redNM := "-"
			if m.Stats.NMFetches > 0 {
				redNM = pct(float64(m.Stats.RedundantNMFetches) / float64(m.Stats.NMFetches))
			}
			redProf := "-"
			if m.Stats.ProfileVertices > 0 {
				redProf = pct(float64(m.Stats.RedundantProfileVertices) / float64(m.Stats.ProfileVertices))
			}
			breakdown.AddRow(tag, set.Name, pct(m.GenFrac), pct(m.ValFrac), redNM, redProf)

			density.AddRow(tag, set.Name, fmt.Sprintf("%.4f", avgConnectionDensity(store.Hypergraph(), pats, opts.Seed)))
		}
	}
	return []*Table{breakdown, density}, nil
}

// avgConnectionDensity averages the Fig. 3(d) metric over the pattern set:
// among data hyperedges degree-mapped from the pattern's hyperedges, the
// fraction of pairs that overlap.
func avgConnectionDensity(h *hypergraph.Hypergraph, pats []*pattern.Pattern, seed int64) float64 {
	total := 0.0
	for _, p := range pats {
		degs := make([]int, p.NumEdges())
		for i := range degs {
			degs[i] = p.Degree(i)
		}
		total += hypergraph.ConnectionDensity(h, degs, 400, seed)
	}
	return total / float64(len(pats))
}
