package hypergraph

import "testing"

func TestCliqueExpansion(t *testing.T) {
	h := MustBuild(4, [][]uint32{{0, 1, 2}, {2, 3}}, nil)
	adj := h.CliqueExpansion()
	want := map[int][]uint32{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1, 3},
		3: {2},
	}
	for v, w := range want {
		got := adj[v]
		if len(got) != len(w) {
			t.Fatalf("adj[%d]=%v want %v", v, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("adj[%d]=%v want %v", v, got, w)
			}
		}
	}
	if h.NumCliqueEdges() != 4 {
		t.Fatalf("clique edges %d want 4", h.NumCliqueEdges())
	}
}

// TestExpansionLosesInformation: a single 3-vertex hyperedge and three
// pairwise 2-vertex hyperedges have the same clique expansion — the
// conversion cannot distinguish a true 3-way interaction from three
// pairwise ones, which is the paper's core motivation for hypergraph-native
// mining.
func TestExpansionLosesInformation(t *testing.T) {
	triangle3way := MustBuild(3, [][]uint32{{0, 1, 2}}, nil)
	trianglePairs := MustBuild(3, [][]uint32{{0, 1}, {1, 2}, {0, 2}}, nil)
	a := triangle3way.CliqueExpansion()
	b := trianglePairs.CliqueExpansion()
	for v := range a {
		if len(a[v]) != len(b[v]) {
			t.Fatalf("expected identical expansions, differ at %d", v)
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatalf("expected identical expansions, differ at %d", v)
			}
		}
	}
	// Yet as hypergraphs they are clearly different.
	if triangle3way.NumEdges() == trianglePairs.NumEdges() {
		t.Fatal("fixtures should differ as hypergraphs")
	}
}

func TestStarExpansion(t *testing.T) {
	h := MustBuild(3, [][]uint32{{0, 1}, {1, 2}}, nil)
	adj := h.StarExpansion()
	if len(adj) != 5 { // 3 vertices + 2 hyperedge nodes
		t.Fatalf("star nodes %d", len(adj))
	}
	// Hyperedge node 3 (= edge 0) connects to vertices 0,1.
	if len(adj[3]) != 2 || adj[3][0] != 0 || adj[3][1] != 1 {
		t.Fatalf("edge node adjacency %v", adj[3])
	}
	// Vertex 1 connects to both hyperedge nodes.
	if len(adj[1]) != 2 || adj[1][0] != 3 || adj[1][1] != 4 {
		t.Fatalf("vertex adjacency %v", adj[1])
	}
	// Lossless: total bipartite degree equals 2×incidence.
	total := 0
	for _, l := range adj {
		total += len(l)
	}
	if total != 2*h.TotalIncidence() {
		t.Fatalf("bipartite degree %d want %d", total, 2*h.TotalIncidence())
	}
}
