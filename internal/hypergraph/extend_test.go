package hypergraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomUniqueEdges returns n distinct normalized (sorted, deduped)
// hyperedges over [0, nv).
func randomUniqueEdges(rng *rand.Rand, nv, n int) [][]uint32 {
	seen := map[string]bool{}
	var out [][]uint32
	for len(out) < n {
		k := 1 + rng.Intn(4)
		set := map[uint32]bool{}
		for len(set) < k {
			set[uint32(rng.Intn(nv))] = true
		}
		e := make([]uint32, 0, k)
		for v := range set {
			e = append(e, v)
		}
		for i := 1; i < len(e); i++ {
			for j := i; j > 0 && e[j-1] > e[j]; j-- {
				e[j-1], e[j] = e[j], e[j-1]
			}
		}
		key := fmt.Sprint(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

func hypergraphsEqual(t *testing.T, want, got *Hypergraph) {
	t.Helper()
	if !reflect.DeepEqual(want.edgeOff, got.edgeOff) {
		t.Fatalf("edgeOff mismatch:\nwant %v\ngot  %v", want.edgeOff, got.edgeOff)
	}
	if !reflect.DeepEqual(want.edgeVerts, got.edgeVerts) {
		t.Fatalf("edgeVerts mismatch:\nwant %v\ngot  %v", want.edgeVerts, got.edgeVerts)
	}
	if !reflect.DeepEqual(want.vertOff, got.vertOff) {
		t.Fatalf("vertOff mismatch:\nwant %v\ngot  %v", want.vertOff, got.vertOff)
	}
	if !reflect.DeepEqual(want.vertEdges, got.vertEdges) {
		t.Fatalf("vertEdges mismatch:\nwant %v\ngot  %v", want.vertEdges, got.vertEdges)
	}
}

// TestExtendEqualsBuild: extending a built hypergraph by a batch produces the
// same CSR state as building the concatenated edge list from scratch, across
// random splits — the invariant the streaming subsystem's incremental apply
// rests on.
func TestExtendEqualsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nv := 6 + rng.Intn(20)
		n := 2 + rng.Intn(30)
		edges := randomUniqueEdges(rng, nv, n)
		cut := 1 + rng.Intn(n-1)

		full, err := Build(nv, edges, nil)
		if err != nil {
			t.Fatalf("full build: %v", err)
		}
		base, err := Build(nv, edges[:cut], nil)
		if err != nil {
			t.Fatalf("base build: %v", err)
		}
		ext, err := Extend(base, edges[cut:])
		if err != nil {
			t.Fatalf("extend: %v", err)
		}
		hypergraphsEqual(t, full, ext)

		// Multi-step extension must agree too.
		step := base
		for i := cut; i < n; i++ {
			step, err = Extend(step, edges[i:i+1])
			if err != nil {
				t.Fatalf("extend step %d: %v", i, err)
			}
		}
		hypergraphsEqual(t, full, step)
	}
}

func TestExtendFromNil(t *testing.T) {
	edges := [][]uint32{{0, 1}, {1, 2}}
	// Extending nil needs the vertex universe — which nil cannot carry — so
	// it only succeeds when the edges themselves define it as empty (no
	// edges → ErrEmpty), mirroring Build's contract.
	if _, err := Extend(nil, nil); err != ErrEmpty {
		t.Fatalf("Extend(nil, nil): want ErrEmpty, got %v", err)
	}
	// With a zero-vertex universe every vertex is out of range.
	if _, err := Extend(nil, edges); err == nil {
		t.Fatal("Extend(nil, edges) with no universe should fail")
	}
}

func TestExtendPreservesOriginal(t *testing.T) {
	base, err := Build(5, [][]uint32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges, wantIncid := base.NumEdges(), base.VertexDegree(1)
	ext, err := Extend(base, [][]uint32{{1, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if base.NumEdges() != wantEdges || base.VertexDegree(1) != wantIncid {
		t.Fatal("Extend mutated its input")
	}
	if ext.NumEdges() != 3 || ext.VertexDegree(1) != 3 {
		t.Fatalf("extended shape wrong: edges=%d deg(1)=%d", ext.NumEdges(), ext.VertexDegree(1))
	}
	// No-op extension returns the input unchanged.
	same, err := Extend(base, nil)
	if err != nil || same != base {
		t.Fatalf("empty extend: got %p want %p (err %v)", same, base, err)
	}
}

func TestExtendRejectsBadEdges(t *testing.T) {
	base, err := Build(4, [][]uint32{{0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][][]uint32{
		{{}},          // empty edge
		{{2, 1}},      // unsorted
		{{1, 1}},      // duplicate vertex
		{{3, 4}},      // vertex out of range
		{{0, 2}, {5}}, // later edge bad
	}
	for i, batch := range cases {
		if _, err := Extend(base, batch); err == nil {
			t.Fatalf("case %d: expected error for %v", i, batch)
		}
	}

	labeled, err := BuildEdgeLabeled(4, [][]uint32{{0, 1}, {1, 2}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extend(labeled, [][]uint32{{0, 2}}); err != ErrExtendLabeled {
		t.Fatalf("want ErrExtendLabeled, got %v", err)
	}
}
