package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hardens the text parser: arbitrary input must never panic, and
// anything that parses must survive a write/parse roundtrip with identical
// structure.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"0 1 2\n2 3\n",
		"# c\n0 1\n#labels\n0 1\n1 0\n",
		"0 1\n#edgelabels\n0 7\n",
		"",
		"#labels\n",
		"0",
		"4294967295\n", // sparse-id guard: must be rejected, not allocated
		"0 0 0\n",
		"1 2\n\n\n3 4 1\n% x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		h, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := h.Write(&buf); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		h2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if h2.NumEdges() != h.NumEdges() || h2.TotalIncidence() != h.TotalIncidence() {
			t.Fatalf("roundtrip mismatch: %s vs %s", h, h2)
		}
	})
}
