package hypergraph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample is the data hypergraph of Figure 1(b): 12 vertices, 5 edges.
//
//	e1={v1..v6} e2={v4..v9} e3={v4,v5,v6,v10,v11,v12,v7,v8} e4={...} e5={...}
//
// We use a structurally similar fixture with known incidences.
func paperExample(t *testing.T) *Hypergraph {
	t.Helper()
	edges := [][]uint32{
		{0, 1, 2, 3, 4, 5},         // e1
		{3, 4, 5, 6, 7, 8},         // e2
		{3, 4, 5, 6, 7, 9, 10, 11}, // e3
	}
	h, err := Build(12, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildBasics(t *testing.T) {
	h := paperExample(t)
	if h.NumVertices() != 12 || h.NumEdges() != 3 {
		t.Fatalf("got %s", h)
	}
	if d := h.Degree(2); d != 8 {
		t.Fatalf("Degree(e3)=%d want 8", d)
	}
	if got := h.EdgeVertices(0); len(got) != 6 || got[0] != 0 || got[5] != 5 {
		t.Fatalf("EdgeVertices(0)=%v", got)
	}
	// v3 and v4 are in all three edges.
	for _, v := range []uint32{3, 4} {
		ne := h.VertexEdges(v)
		if len(ne) != 3 {
			t.Fatalf("VertexEdges(%d)=%v", v, ne)
		}
	}
	if h.VertexDegree(0) != 1 || h.VertexDegree(9) != 1 {
		t.Fatal("vertex degrees wrong")
	}
	if h.Labeled() {
		t.Fatal("unexpectedly labeled")
	}
}

func TestBuildDedup(t *testing.T) {
	// Duplicate vertices within an edge and duplicate edges (in different
	// orders) must be removed; empty edges dropped.
	edges := [][]uint32{
		{2, 1, 1, 2, 0},
		{0, 1, 2},
		{2, 0, 1},
		{},
		{3},
	}
	h, err := Build(4, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges=%d want 2 (dedup failed)", h.NumEdges())
	}
	if got := h.EdgeVertices(0); len(got) != 3 {
		t.Fatalf("EdgeVertices(0)=%v", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(2, [][]uint32{{0, 5}}, nil); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := Build(2, nil, nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Build(2, [][]uint32{{}}, nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty for all-empty edges, got %v", err)
	}
	if _, err := Build(3, [][]uint32{{0}}, []uint32{1}); err == nil {
		t.Fatal("bad label length accepted")
	}
}

func TestLabels(t *testing.T) {
	h, err := Build(4, [][]uint32{{0, 1}, {2, 3}}, []uint32{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Labeled() || h.NumLabels() != 3 {
		t.Fatalf("labels: %v %d", h.Labeled(), h.NumLabels())
	}
	if h.Label(2) != 1 {
		t.Fatalf("Label(2)=%d", h.Label(2))
	}
}

func TestDualCSRConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(30)
		ne := 1 + rng.Intn(40)
		edges := make([][]uint32, ne)
		for i := range edges {
			sz := 1 + rng.Intn(6)
			for j := 0; j < sz; j++ {
				edges[i] = append(edges[i], uint32(rng.Intn(nv)))
			}
		}
		h, err := Build(nv, edges, nil)
		if err != nil {
			return false
		}
		// v ∈ EdgeVertices(e)  ⇔  e ∈ VertexEdges(v)
		for e := 0; e < h.NumEdges(); e++ {
			for _, v := range h.EdgeVertices(uint32(e)) {
				found := false
				for _, ee := range h.VertexEdges(v) {
					if ee == uint32(e) {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		total := 0
		for v := 0; v < h.NumVertices(); v++ {
			ne := h.VertexEdges(uint32(v))
			total += len(ne)
			if !sort.SliceIsSorted(ne, func(i, j int) bool { return ne[i] < ne[j] }) {
				return false
			}
		}
		return total == h.TotalIncidence()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseWriteRoundtrip(t *testing.T) {
	in := "# comment\n0 1 2\n2 3\n% other comment\n1 4\n#labels\n0 0\n1 1\n2 0\n3 1\n4 2\n"
	h, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 3 || h.NumVertices() != 5 || !h.Labeled() {
		t.Fatalf("parsed %s", h)
	}
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumEdges() != h.NumEdges() || h2.NumVertices() != h.NumVertices() {
		t.Fatalf("roundtrip mismatch: %s vs %s", h, h2)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if h.Label(uint32(v)) != h2.Label(uint32(v)) {
			t.Fatalf("label mismatch at %d", v)
		}
	}
}

func TestEdgeLabelRoundtrip(t *testing.T) {
	h, err := BuildEdgeLabeled(5,
		[][]uint32{{0, 1, 2}, {0, 1, 2}, {2, 3, 4}},
		[]uint32{0, 1, 0, 1, 2},
		[]uint32{7, 8, 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 3 || !h.EdgeLabeled() {
		t.Fatalf("built %s", h)
	}
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.EdgeLabeled() || h2.NumEdges() != 3 {
		t.Fatalf("roundtrip: %s edgeLabeled=%v", h2, h2.EdgeLabeled())
	}
	for e := 0; e < 3; e++ {
		if h.EdgeLabel(uint32(e)) != h2.EdgeLabel(uint32(e)) {
			t.Fatalf("edge %d label %d != %d", e, h.EdgeLabel(uint32(e)), h2.EdgeLabel(uint32(e)))
		}
	}
}

func TestBuildEdgeLabeledErrors(t *testing.T) {
	if _, err := BuildEdgeLabeled(3, [][]uint32{{0, 1}}, nil, []uint32{0, 1}); err == nil {
		t.Fatal("edge label count mismatch accepted")
	}
	// Identical set + identical label is a duplicate.
	h, err := BuildEdgeLabeled(3, [][]uint32{{0, 1}, {1, 0}}, nil, []uint32{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1 {
		t.Fatalf("NumEdges=%d want 1", h.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"0 x 2\n",
		"#labels\n0\n",
		"#labels\n0 y\n",
		"0 1\n#labels\n7 0\n",     // label for unknown vertex
		"0 1\n#edgelabels\n5 0\n", // edge label for unknown hyperedge
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) accepted", c)
		}
	}
}

func TestOverlapAndConnected(t *testing.T) {
	h := paperExample(t)
	ov := h.Overlap(0, 1)
	if len(ov) != 3 || ov[0] != 3 || ov[2] != 5 {
		t.Fatalf("Overlap(e1,e2)=%v", ov)
	}
	if !h.Connected(0, 2) || !h.Connected(1, 2) {
		t.Fatal("expected connections missing")
	}
}

func TestStats(t *testing.T) {
	h := paperExample(t)
	s := ComputeStats(h)
	if s.NumEdges != 3 || s.MaxEdgeDeg != 8 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgEdgeDeg < 6.6 || s.AvgEdgeDeg > 6.7 {
		t.Fatalf("AD=%f", s.AvgEdgeDeg)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestConnectionDensity(t *testing.T) {
	h := paperExample(t)
	// All three edges have degree 6,6,8 and all pairs overlap → density 1.
	d := ConnectionDensity(h, []int{6, 8}, 0, 1)
	if d != 1 {
		t.Fatalf("density=%f want 1", d)
	}
	// A degree matching no edge → 0.
	if d := ConnectionDensity(h, []int{99}, 0, 1); d != 0 {
		t.Fatalf("density=%f want 0", d)
	}
}

func TestMemoryBytes(t *testing.T) {
	h := paperExample(t)
	if h.MemoryBytes() <= 0 {
		t.Fatal("non-positive memory estimate")
	}
}
