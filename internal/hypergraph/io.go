package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text format: one hyperedge per line, whitespace-separated vertex IDs.
// Lines starting with '#' or '%' are comments. This matches the common
// publication format of the Benson hypergraph collection used by the paper.
//
// Two optional blocks may follow:
//
//	#labels      — one "vertex label" pair per subsequent line
//	#edgelabels  — one "edgeIndex label" pair per subsequent line, where
//	               edgeIndex counts hyperedge lines in file order
//
// Parse reads a hypergraph in text format from r.
func Parse(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var edges [][]uint32
	maxV := -1
	const (
		modeEdges = iota
		modeLabels
		modeEdgeLabels
	)
	mode := modeEdges
	labelMap := map[uint32]uint32{}
	edgeLabelMap := map[uint32]uint32{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line {
		case "#labels":
			mode = modeLabels
			continue
		case "#edgelabels":
			mode = modeEdgeLabels
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if mode != modeEdges {
			if len(fields) != 2 {
				return nil, fmt.Errorf("hypergraph: line %d: label lines need two fields", lineNo)
			}
			k, err := strconv.ParseUint(fields[0], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("hypergraph: line %d: %v", lineNo, err)
			}
			l, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("hypergraph: line %d: %v", lineNo, err)
			}
			if mode == modeLabels {
				labelMap[uint32(k)] = uint32(l)
			} else {
				edgeLabelMap[uint32(k)] = uint32(l)
			}
			continue
		}
		edge := make([]uint32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("hypergraph: line %d: %v", lineNo, err)
			}
			if int(v) > maxV {
				maxV = int(v)
			}
			edge = append(edge, uint32(v))
		}
		edges = append(edges, edge)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hypergraph: read: %w", err)
	}
	// Vertex IDs must be (reasonably) dense: the CSR representation
	// allocates O(maxID) storage, so a stray huge ID in a malformed file
	// would otherwise exhaust memory before any semantic check runs.
	incidence := 0
	for _, e := range edges {
		incidence += len(e)
	}
	if maxV >= 0 && maxV+1 > denseIDBudget(incidence) {
		return nil, fmt.Errorf("hypergraph: vertex id %d too sparse for %d incidence entries (dense ids required)", maxV, incidence)
	}
	var labels []uint32
	if len(labelMap) > 0 {
		labels = make([]uint32, maxV+1)
		for v, l := range labelMap {
			if int(v) > maxV {
				return nil, fmt.Errorf("hypergraph: label for unknown vertex %d", v)
			}
			labels[v] = l
		}
	}
	var edgeLabels []uint32
	if len(edgeLabelMap) > 0 {
		edgeLabels = make([]uint32, len(edges))
		for e, l := range edgeLabelMap {
			if int(e) >= len(edges) {
				return nil, fmt.Errorf("hypergraph: edge label for unknown hyperedge %d", e)
			}
			edgeLabels[e] = l
		}
	}
	return BuildEdgeLabeled(maxV+1, edges, labels, edgeLabels)
}

// denseIDBudget bounds the vertex universe a parsed file may declare:
// generous slack over the incidence count, with a floor for tiny files.
func denseIDBudget(incidence int) int {
	budget := 1000 * incidence
	if budget < 1<<20 {
		budget = 1 << 20
	}
	return budget
}

// Load reads a hypergraph in text format from the named file.
func Load(path string) (*Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Write serializes h in the text format understood by Parse.
func (h *Hypergraph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for e := 0; e < h.NumEdges(); e++ {
		buf = buf[:0]
		for i, v := range h.EdgeVertices(uint32(e)) {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendUint(buf, uint64(v), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if h.Labeled() {
		if _, err := bw.WriteString("#labels\n"); err != nil {
			return err
		}
		for v := 0; v < h.NumVertices(); v++ {
			buf = buf[:0]
			buf = strconv.AppendUint(buf, uint64(v), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, uint64(h.Label(uint32(v))), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	if h.EdgeLabeled() {
		if _, err := bw.WriteString("#edgelabels\n"); err != nil {
			return err
		}
		for e := 0; e < h.NumEdges(); e++ {
			buf = buf[:0]
			buf = strconv.AppendUint(buf, uint64(e), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, uint64(h.EdgeLabel(uint32(e))), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Save writes h to the named file in text format.
func (h *Hypergraph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
