package hypergraph

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
)

// ErrEmpty is returned when a build would produce a hypergraph with no
// hyperedges.
var ErrEmpty = errors.New("hypergraph: no hyperedges")

// Build constructs a hypergraph from raw hyperedge vertex lists.
//
// Preprocessing matches the paper (Sec. 5.1): duplicate vertices within a
// hyperedge are removed, hyperedges are sorted internally, duplicate
// hyperedges (identical vertex sets) are removed, and empty hyperedges are
// dropped. Vertex IDs must be dense in [0, numVertices); labels, when
// non-nil, must have length numVertices.
func Build(numVertices int, edges [][]uint32, labels []uint32) (*Hypergraph, error) {
	return BuildEdgeLabeled(numVertices, edges, labels, nil)
}

// BuildEdgeLabeled is Build for hyperedge-labeled hypergraphs (the
// extension of Sec. 4.3.1): edgeLabels assigns a label to every input
// hyperedge (before preprocessing). Two hyperedges with identical vertex
// sets but different labels are distinct; identical set + identical label
// is a duplicate and removed.
func BuildEdgeLabeled(numVertices int, edges [][]uint32, labels, edgeLabels []uint32) (*Hypergraph, error) {
	if labels != nil && len(labels) != numVertices {
		return nil, fmt.Errorf("hypergraph: %d labels for %d vertices", len(labels), numVertices)
	}
	if edgeLabels != nil && len(edgeLabels) != len(edges) {
		return nil, fmt.Errorf("hypergraph: %d edge labels for %d hyperedges", len(edgeLabels), len(edges))
	}

	// Normalize each edge: copy, sort, dedup vertices.
	norm := make([][]uint32, 0, len(edges))
	var normLabels []uint32
	if edgeLabels != nil {
		normLabels = make([]uint32, 0, len(edges))
	}
	for i, raw := range edges {
		if len(raw) == 0 {
			continue
		}
		e := append([]uint32(nil), raw...)
		sort.Slice(e, func(a, b int) bool { return e[a] < e[b] })
		w := 1
		for k := 1; k < len(e); k++ {
			if e[k] != e[w-1] {
				e[w] = e[k]
				w++
			}
		}
		e = e[:w]
		if int(e[len(e)-1]) >= numVertices {
			return nil, fmt.Errorf("hypergraph: vertex %d out of range [0,%d)", e[len(e)-1], numVertices)
		}
		norm = append(norm, e)
		if edgeLabels != nil {
			normLabels = append(normLabels, edgeLabels[i])
		}
	}
	if len(norm) == 0 {
		return nil, ErrEmpty
	}

	// Remove duplicate hyperedges via content hashing with full comparison
	// on collisions; an edge label is part of the identity.
	seed := maphash.MakeSeed()
	byHash := make(map[uint64][]int, len(norm))
	uniq := norm[:0]
	uniqLabels := normLabels[:0]
	labelOf := func(idx int) uint32 {
		if normLabels == nil {
			return 0
		}
		return normLabels[idx]
	}
	uniqLabelOf := func(idx int) uint32 {
		if normLabels == nil {
			return 0
		}
		return uniqLabels[idx]
	}
	for i, e := range norm {
		var mh maphash.Hash
		mh.SetSeed(seed)
		for _, v := range e {
			var b [4]byte
			b[0] = byte(v)
			b[1] = byte(v >> 8)
			b[2] = byte(v >> 16)
			b[3] = byte(v >> 24)
			mh.Write(b[:])
		}
		hv := mh.Sum64()
		dup := false
		for _, k := range byHash[hv] {
			if sameEdge(uniq[k], e) && uniqLabelOf(k) == labelOf(i) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		byHash[hv] = append(byHash[hv], len(uniq))
		uniq = append(uniq, e)
		if normLabels != nil {
			uniqLabels = append(uniqLabels, normLabels[i])
		}
	}

	h := &Hypergraph{}
	if normLabels != nil {
		h.edgeLabels = append([]uint32(nil), uniqLabels...)
	}
	if labels != nil {
		h.labels = append([]uint32(nil), labels...)
		maxL := uint32(0)
		for _, l := range h.labels {
			if l > maxL {
				maxL = l
			}
		}
		h.numLabels = int(maxL) + 1
	}

	// Edge CSR.
	total := 0
	for _, e := range uniq {
		total += len(e)
	}
	h.edgeOff = make([]uint32, len(uniq)+1)
	h.edgeVerts = make([]uint32, 0, total)
	for i, e := range uniq {
		h.edgeVerts = append(h.edgeVerts, e...)
		h.edgeOff[i+1] = uint32(len(h.edgeVerts))
	}

	// Vertex CSR (counting sort; edges visited in increasing ID order, so
	// each vertex's incident list comes out sorted).
	counts := make([]uint32, numVertices+1)
	for _, v := range h.edgeVerts {
		counts[v+1]++
	}
	for v := 1; v <= numVertices; v++ {
		counts[v] += counts[v-1]
	}
	h.vertOff = counts
	h.vertEdges = make([]uint32, total)
	cursor := make([]uint32, numVertices)
	copy(cursor, h.vertOff[:numVertices])
	for e := range uniq {
		for _, v := range uniq[e] {
			h.vertEdges[cursor[v]] = uint32(e)
			cursor[v]++
		}
	}
	return h, nil
}

// MustBuild is Build that panics on error; intended for tests and examples
// with literal inputs.
func MustBuild(numVertices int, edges [][]uint32, labels []uint32) *Hypergraph {
	h, err := Build(numVertices, edges, labels)
	if err != nil {
		panic(err)
	}
	return h
}

func sameEdge(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
