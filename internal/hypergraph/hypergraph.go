// Package hypergraph defines the in-memory hypergraph representation shared
// by every component of the system.
//
// A hypergraph H = (V, E) stores both incidence directions in CSR form:
// edge → sorted vertex list (the hyperedge contents) and vertex → sorted
// incident-edge list. Hyperedge vertex lists are the primary operands of the
// overlap-centric execution model, so they are kept sorted and duplicate-free
// at construction time; the builder also removes duplicate hyperedges, the
// preprocessing step the paper applies to all datasets (Sec. 5.1).
//
// Vertices may carry integer labels for labeled HPM. Label IDs are dense
// (0..NumLabels-1).
package hypergraph

import "fmt"

// Hypergraph is an immutable hypergraph with dual CSR incidence.
// Construct with Build or Parse; the zero value is an empty hypergraph.
type Hypergraph struct {
	edgeOff    []uint32 // len NumEdges+1; offsets into edgeVerts
	edgeVerts  []uint32 // concatenated sorted vertex lists
	vertOff    []uint32 // len NumVertices+1; offsets into vertEdges
	vertEdges  []uint32 // concatenated sorted incident-edge lists
	labels     []uint32 // per-vertex label, nil when unlabeled
	numLabels  int
	edgeLabels []uint32 // per-hyperedge label, nil when unlabeled
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() int {
	if len(h.vertOff) == 0 {
		return 0
	}
	return len(h.vertOff) - 1
}

// NumEdges returns |E|.
func (h *Hypergraph) NumEdges() int {
	if len(h.edgeOff) == 0 {
		return 0
	}
	return len(h.edgeOff) - 1
}

// EdgeVertices returns the sorted vertex list of hyperedge e. The slice
// aliases internal storage and must not be modified.
//
//ohmlint:hotpath
func (h *Hypergraph) EdgeVertices(e uint32) []uint32 {
	return h.edgeVerts[h.edgeOff[e]:h.edgeOff[e+1]]
}

// Degree returns D(e), the number of vertices in hyperedge e.
//
//ohmlint:hotpath
func (h *Hypergraph) Degree(e uint32) int {
	return int(h.edgeOff[e+1] - h.edgeOff[e])
}

// VertexEdges returns the sorted incident hyperedge list N(v). The slice
// aliases internal storage and must not be modified.
//
//ohmlint:hotpath
func (h *Hypergraph) VertexEdges(v uint32) []uint32 {
	return h.vertEdges[h.vertOff[v]:h.vertOff[v+1]]
}

// VertexDegree returns D(v), the number of hyperedges incident to vertex v.
//
//ohmlint:hotpath
func (h *Hypergraph) VertexDegree(v uint32) int {
	return int(h.vertOff[v+1] - h.vertOff[v])
}

// Labeled reports whether vertices carry labels.
func (h *Hypergraph) Labeled() bool { return h.labels != nil }

// NumLabels returns the number of distinct vertex labels (0 when unlabeled).
func (h *Hypergraph) NumLabels() int { return h.numLabels }

// Label returns the label of vertex v; it panics when the hypergraph is
// unlabeled.
//
//ohmlint:hotpath
func (h *Hypergraph) Label(v uint32) uint32 { return h.labels[v] }

// Labels returns the full per-vertex label slice (nil when unlabeled). The
// slice aliases internal storage and must not be modified.
func (h *Hypergraph) Labels() []uint32 { return h.labels }

// EdgeLabeled reports whether hyperedges carry labels — the
// hyperedge-labeled extension of Sec. 4.3.1.
func (h *Hypergraph) EdgeLabeled() bool { return h.edgeLabels != nil }

// EdgeLabel returns the label of hyperedge e; it panics when hyperedges are
// unlabeled.
//
//ohmlint:hotpath
func (h *Hypergraph) EdgeLabel(e uint32) uint32 { return h.edgeLabels[e] }

// TotalIncidence returns Σ_e D(e) (= Σ_v D(v)), the incidence count.
func (h *Hypergraph) TotalIncidence() int { return len(h.edgeVerts) }

// AvgEdgeDegree returns the average hyperedge degree (AD in Table 3).
func (h *Hypergraph) AvgEdgeDegree() float64 {
	if h.NumEdges() == 0 {
		return 0
	}
	return float64(len(h.edgeVerts)) / float64(h.NumEdges())
}

// MaxEdgeDegree returns the largest hyperedge degree.
func (h *Hypergraph) MaxEdgeDegree() int {
	max := 0
	for e := 0; e < h.NumEdges(); e++ {
		if d := h.Degree(uint32(e)); d > max {
			max = d
		}
	}
	return max
}

// MemoryBytes estimates the resident size of the CSR arrays. Used for the
// Table 6 memory accounting.
func (h *Hypergraph) MemoryBytes() int64 {
	n := len(h.edgeOff) + len(h.edgeVerts) + len(h.vertOff) + len(h.vertEdges) + len(h.labels) + len(h.edgeLabels)
	return int64(n) * 4
}

// Fingerprint returns a content hash of the hypergraph structure (FNV-1a
// over both CSR directions and labels). Derived artifacts (e.g. a persisted
// DAL) embed it to detect mismatched inputs at load time.
func (h *Hypergraph) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	hash := uint64(offset)
	mix := func(arr []uint32) {
		for _, v := range arr {
			hash ^= uint64(v)
			hash *= prime
		}
		hash ^= uint64(len(arr))
		hash *= prime
	}
	mix(h.edgeOff)
	mix(h.edgeVerts)
	mix(h.labels)
	mix(h.edgeLabels)
	return hash
}

// String summarizes the hypergraph for logs.
func (h *Hypergraph) String() string {
	tag := ""
	if h.Labeled() {
		tag = fmt.Sprintf(", %d labels", h.numLabels)
	}
	return fmt.Sprintf("hypergraph{|V|=%d, |E|=%d, AD=%.2f%s}",
		h.NumVertices(), h.NumEdges(), h.AvgEdgeDegree(), tag)
}
