package hypergraph

import (
	"errors"
	"fmt"
)

// ErrExtendLabeled is returned when Extend is asked to grow an
// edge-labeled hypergraph; the streaming subsystem that drives Extend is
// unlabeled-edge only.
var ErrExtendLabeled = errors.New("hypergraph: cannot extend an edge-labeled hypergraph")

// Extend returns a new hypergraph equal to h plus the given hyperedges
// appended, with IDs continuing from h.NumEdges() — the incremental growth
// step of the streaming subsystem. Unlike Build it does not re-normalize or
// re-hash the existing edges: the caller (internal/stream keeps a content
// index across batches) guarantees each new edge is sorted, duplicate-free,
// non-empty, within the vertex universe, and not a duplicate of any existing
// edge; violations of the locally checkable invariants are reported as
// errors, cross-edge uniqueness is the caller's contract. h itself is not
// modified; per-vertex labels (a property of the fixed vertex universe) are
// shared with the result. Extending a nil hypergraph builds the initial one.
func Extend(h *Hypergraph, edges [][]uint32) (*Hypergraph, error) {
	if h != nil && h.EdgeLabeled() {
		return nil, ErrExtendLabeled
	}
	if len(edges) == 0 {
		if h == nil {
			return nil, ErrEmpty
		}
		return h, nil
	}
	var (
		numVertices int
		oldEdges    int
		oldVerts    []uint32
	)
	if h != nil {
		numVertices = h.NumVertices()
		oldEdges = h.NumEdges()
		oldVerts = h.edgeVerts
	}
	extra := 0
	for _, e := range edges {
		if len(e) == 0 {
			return nil, errors.New("hypergraph: extend with empty hyperedge")
		}
		for i, v := range e {
			if i > 0 && e[i-1] >= v {
				return nil, fmt.Errorf("hypergraph: extend edge not sorted/deduped at vertex %d", v)
			}
			if int(v) >= numVertices {
				return nil, fmt.Errorf("hypergraph: vertex %d out of range [0,%d)", v, numVertices)
			}
		}
		extra += len(e)
	}

	out := &Hypergraph{}
	if h != nil {
		out.labels = h.labels
		out.numLabels = h.numLabels
	}

	// Edge CSR: old arrays copied, new edges appended.
	out.edgeOff = make([]uint32, oldEdges+len(edges)+1)
	if h != nil {
		copy(out.edgeOff, h.edgeOff)
	}
	out.edgeVerts = make([]uint32, 0, len(oldVerts)+extra)
	out.edgeVerts = append(out.edgeVerts, oldVerts...)
	for i, e := range edges {
		out.edgeVerts = append(out.edgeVerts, e...)
		out.edgeOff[oldEdges+i+1] = uint32(len(out.edgeVerts))
	}

	// Vertex CSR: every new edge has a larger ID than every old one, so each
	// vertex's incident list is its old (sorted) segment followed by the new
	// IDs in batch order — a copy plus appends, no sorting.
	counts := make([]uint32, numVertices+1)
	for v := 0; v < numVertices; v++ {
		if h != nil {
			counts[v+1] = uint32(h.VertexDegree(uint32(v)))
		}
	}
	for _, e := range edges {
		for _, v := range e {
			counts[v+1]++
		}
	}
	for v := 1; v <= numVertices; v++ {
		counts[v] += counts[v-1]
	}
	out.vertOff = counts
	out.vertEdges = make([]uint32, len(oldVerts)+extra)
	cursor := make([]uint32, numVertices)
	copy(cursor, out.vertOff[:numVertices])
	if h != nil {
		for v := 0; v < numVertices; v++ {
			seg := h.VertexEdges(uint32(v))
			copy(out.vertEdges[cursor[v]:], seg)
			cursor[v] += uint32(len(seg))
		}
	}
	for i, e := range edges {
		id := uint32(oldEdges + i)
		for _, v := range e {
			out.vertEdges[cursor[v]] = id
			cursor[v]++
		}
	}
	return out, nil
}
