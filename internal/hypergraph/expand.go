package hypergraph

import "sort"

// Graph conversions. The paper's related work notes that, lacking
// hypergraph-native systems, practitioners convert hypergraphs to ordinary
// graphs (losing the multi-entity semantics); these helpers implement the
// two standard conversions so that the loss is demonstrable (see
// TestExpansionLosesInformation and the README discussion).

// CliqueExpansion returns the ordinary graph in which two vertices are
// adjacent iff they co-occur in at least one hyperedge, as adjacency lists
// (sorted, no self-loops). Distinct hypergraphs can produce identical
// clique expansions — the information loss hypergraph-native mining avoids.
func (h *Hypergraph) CliqueExpansion() [][]uint32 {
	adj := make([]map[uint32]bool, h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		verts := h.EdgeVertices(uint32(e))
		for i, u := range verts {
			for _, v := range verts[i+1:] {
				if adj[u] == nil {
					adj[u] = map[uint32]bool{}
				}
				if adj[v] == nil {
					adj[v] = map[uint32]bool{}
				}
				adj[u][v] = true
				adj[v][u] = true
			}
		}
	}
	out := make([][]uint32, h.NumVertices())
	for v := range out {
		if adj[v] == nil {
			continue
		}
		lst := make([]uint32, 0, len(adj[v]))
		for u := range adj[v] {
			lst = append(lst, u)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		out[v] = lst
	}
	return out
}

// StarExpansion returns the bipartite incidence graph: vertex IDs
// 0..NumVertices-1 are the original vertices, NumVertices..NumVertices+
// NumEdges-1 represent hyperedges, and each hyperedge node is adjacent to
// its member vertices. Unlike clique expansion it is lossless, but patterns
// over it require two-mode semantics.
func (h *Hypergraph) StarExpansion() [][]uint32 {
	n := h.NumVertices()
	out := make([][]uint32, n+h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		eid := uint32(n + e)
		verts := h.EdgeVertices(uint32(e))
		out[eid] = append([]uint32(nil), verts...)
		for _, v := range verts {
			out[v] = append(out[v], eid)
		}
	}
	return out
}

// NumCliqueEdges returns the number of ordinary edges in the clique
// expansion.
func (h *Hypergraph) NumCliqueEdges() int {
	adj := h.CliqueExpansion()
	total := 0
	for _, l := range adj {
		total += len(l)
	}
	return total / 2
}
