package hypergraph

import (
	"fmt"
	"math/rand"
	"sort"

	"ohminer/internal/intset"
)

// Stats summarizes the structural properties the evaluation section cares
// about (Table 3 columns plus the overlap/connection-density measurements of
// Fig. 3(d)).
type Stats struct {
	NumVertices   int
	NumEdges      int
	AvgEdgeDeg    float64
	MaxEdgeDeg    int
	AvgVertexDeg  float64
	MaxVertexDeg  int
	EdgeDegreeP50 int
	EdgeDegreeP99 int
}

// ComputeStats gathers summary statistics for h.
func ComputeStats(h *Hypergraph) Stats {
	s := Stats{
		NumVertices: h.NumVertices(),
		NumEdges:    h.NumEdges(),
		AvgEdgeDeg:  h.AvgEdgeDegree(),
	}
	degs := make([]int, h.NumEdges())
	for e := range degs {
		degs[e] = h.Degree(uint32(e))
		if degs[e] > s.MaxEdgeDeg {
			s.MaxEdgeDeg = degs[e]
		}
	}
	sort.Ints(degs)
	if len(degs) > 0 {
		s.EdgeDegreeP50 = degs[len(degs)/2]
		s.EdgeDegreeP99 = degs[len(degs)*99/100]
	}
	totalVD := 0
	for v := 0; v < h.NumVertices(); v++ {
		d := h.VertexDegree(uint32(v))
		totalVD += d
		if d > s.MaxVertexDeg {
			s.MaxVertexDeg = d
		}
	}
	if h.NumVertices() > 0 {
		s.AvgVertexDeg = float64(totalVD) / float64(h.NumVertices())
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d AD=%.2f maxD(e)=%d avgD(v)=%.2f maxD(v)=%d",
		s.NumVertices, s.NumEdges, s.AvgEdgeDeg, s.MaxEdgeDeg, s.AvgVertexDeg, s.MaxVertexDeg)
}

// ConnectionDensity estimates the connection density C of Fig. 3: among
// hyperedges of the data hypergraph whose degrees match the degrees of a
// pattern's hyperedges, what fraction of pairs overlap? It samples up to
// sampleSize candidate edges per distinct pattern degree, computes pairwise
// connectivity between the degree-mapped groups, and returns
// Cons * 2 / (n*(n-1)) over the sampled sub-population.
func ConnectionDensity(h *Hypergraph, patternDegrees []int, sampleSize int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	// Bucket data edges by degree, keeping only the degrees the pattern uses.
	want := map[int]bool{}
	for _, d := range patternDegrees {
		want[d] = true
	}
	var pool []uint32
	for e := 0; e < h.NumEdges(); e++ {
		if want[h.Degree(uint32(e))] {
			pool = append(pool, uint32(e))
		}
	}
	if len(pool) < 2 {
		return 0
	}
	if sampleSize > 0 && len(pool) > sampleSize {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		pool = pool[:sampleSize]
	}
	cons := 0
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			if intset.Intersects(h.EdgeVertices(pool[i]), h.EdgeVertices(pool[j])) {
				cons++
			}
		}
	}
	n := len(pool)
	return float64(cons) * 2 / float64(n*(n-1))
}

// Overlap returns the overlap (set of common vertices) between hyperedges a
// and b, allocating the result.
func (h *Hypergraph) Overlap(a, b uint32) []uint32 {
	return intset.Intersect(h.EdgeVertices(a), h.EdgeVertices(b), nil)
}

// Connected reports whether hyperedges a and b share at least one vertex.
// This is the definition-level check; the DAL store provides the fast path.
func (h *Hypergraph) Connected(a, b uint32) bool {
	return intset.Intersects(h.EdgeVertices(a), h.EdgeVertices(b))
}
