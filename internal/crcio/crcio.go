// Package crcio provides the CRC32-Castagnoli checksum plumbing shared by
// the on-disk formats of this repository: the dal store file and the
// checkpoint snapshot both end in a little-endian CRC32C trailer computed
// over every preceding byte, so torn writes and bit-flips are detected at
// load time instead of surfacing as silently wrong mining results.
package crcio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Writer tees everything written through it into a running CRC32C.
type Writer struct {
	W   io.Writer
	sum uint32
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{W: w} }

func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.W.Write(p)
	w.sum = crc32.Update(w.sum, castagnoli, p[:n])
	return n, err
}

// Sum32 returns the CRC of everything written so far.
func (w *Writer) Sum32() uint32 { return w.sum }

// WriteTrailer appends the current CRC as a little-endian uint32 to the
// underlying writer (the trailer itself is not folded into the sum).
func (w *Writer) WriteTrailer() error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.sum)
	_, err := w.W.Write(buf[:])
	return err
}

// Reader tees everything read through it into a running CRC32C.
type Reader struct {
	R   io.Reader
	sum uint32
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{R: r} }

func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.R.Read(p)
	r.sum = crc32.Update(r.sum, castagnoli, p[:n])
	return n, err
}

// Sum32 returns the CRC of everything read so far.
func (r *Reader) Sum32() uint32 { return r.sum }

// CheckTrailer reads the 4-byte little-endian trailer from the underlying
// reader (bypassing the sum) and compares it with the CRC of everything read
// so far; what describes the format for error messages ("dal", "checkpoint").
func (r *Reader) CheckTrailer(what string) error {
	want := r.sum
	var buf [4]byte
	if _, err := io.ReadFull(r.R, buf[:]); err != nil {
		return fmt.Errorf("%s: missing checksum trailer: %w", what, err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return fmt.Errorf("%s: corrupt payload: checksum mismatch (file %#x, computed %#x)", what, got, want)
	}
	return nil
}
