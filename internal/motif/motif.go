// Package motif implements hypergraph motif counting on top of the mining
// engine — the downstream-application layer the paper's introduction
// motivates (pattern search in biological and collaboration networks): it
// enumerates every isomorphism class of K-hyperedge patterns within size
// bounds (via pattern.EnumerateShapes) and counts each class's occurrences,
// yielding a motif census comparable across hypergraphs, plus a frequency
// filter for frequent-subhypergraph queries.
package motif

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

// Entry is one census row: a shape and its occurrence counts.
type Entry struct {
	Shape pattern.Shape
	// Pattern is the concrete representative that was mined.
	Pattern *pattern.Pattern
	// Ordered/Unique are the embedding counts (Unique = per unordered
	// subhypergraph).
	Ordered uint64
	Unique  uint64
	// Elapsed is the mining time for this shape.
	Elapsed time.Duration
	// Truncated marks counts cut short by Options.Deadline/Limit.
	Truncated bool
}

// Options bounds a census run.
type Options struct {
	// K is the number of hyperedges per motif (1..4).
	K int
	// MaxRegionSize bounds each Venn region of the enumerated shapes.
	MaxRegionSize int
	// MaxVertices bounds the motif vertex count.
	MaxVertices int
	// Engine configures the underlying miner (variant, workers, limits,
	// per-shape Deadline).
	Engine engine.Options
	// SkipAbsentDegrees drops shapes containing a hyperedge degree that no
	// data hyperedge has — they cannot match and mining them wastes a scan.
	SkipAbsentDegrees bool
}

// Census counts every K-hyperedge motif within the bounds. Entries come
// back sorted by descending Unique count, ties by shape key.
func Census(store *dal.Store, opts Options) ([]Entry, error) {
	shapes, err := pattern.EnumerateShapes(opts.K, opts.MaxRegionSize, opts.MaxVertices)
	if err != nil {
		return nil, err
	}
	degreePresent := map[int]bool{}
	if opts.SkipAbsentDegrees {
		h := store.Hypergraph()
		for e := 0; e < h.NumEdges(); e++ {
			degreePresent[h.Degree(uint32(e))] = true
		}
	}
	entries := make([]Entry, 0, len(shapes))
	for _, s := range shapes {
		p, err := s.Pattern()
		if err != nil {
			return nil, fmt.Errorf("motif: realize %s: %w", s, err)
		}
		if opts.SkipAbsentDegrees {
			absent := false
			for i := 0; i < p.NumEdges(); i++ {
				if !degreePresent[p.Degree(i)] {
					absent = true
					break
				}
			}
			if absent {
				entries = append(entries, Entry{Shape: s, Pattern: p})
				continue
			}
		}
		res, err := engine.Mine(store, p, opts.Engine)
		if err != nil {
			return nil, fmt.Errorf("motif: mine %s: %w", s, err)
		}
		entries = append(entries, Entry{
			Shape: s, Pattern: p,
			Ordered: res.Ordered, Unique: res.Unique,
			Elapsed: res.Elapsed, Truncated: res.Truncated,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Unique != entries[j].Unique {
			return entries[i].Unique > entries[j].Unique
		}
		return entries[i].Shape.Key() < entries[j].Shape.Key()
	})
	return entries, nil
}

// Frequent filters a census to motifs with at least minUnique unordered
// occurrences — the frequent-subhypergraph query.
func Frequent(entries []Entry, minUnique uint64) []Entry {
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Unique >= minUnique {
			out = append(out, e)
		}
	}
	return out
}

// Profile compares two hypergraphs by their normalized motif frequency
// vectors over a shared census configuration, returning the cosine
// similarity — a structural fingerprint comparison in the spirit of
// graphlet kernels, here over hyperedge motifs.
func Profile(a, b []Entry) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("motif: census sizes differ (%d vs %d)", len(a), len(b))
	}
	byKey := make(map[string]uint64, len(b))
	for _, e := range b {
		byKey[e.Shape.Key()] = e.Unique
	}
	var dot, na, nb float64
	for _, e := range a {
		other, ok := byKey[e.Shape.Key()]
		if !ok {
			return 0, fmt.Errorf("motif: censuses cover different shapes (%s)", e.Shape)
		}
		x, y := float64(e.Unique), float64(other)
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}
