package motif

import (
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
)

// pathFixture: a path of five 2-vertex hyperedges.
func pathFixture(t *testing.T) *dal.Store {
	t.Helper()
	h := hypergraph.MustBuild(6, [][]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
	}, nil)
	return dal.Build(h)
}

func TestCensusPathGraph(t *testing.T) {
	store := pathFixture(t)
	entries, err := Census(store, Options{K: 2, MaxRegionSize: 2, MaxVertices: 4,
		Engine: engine.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The only 2-edge motif present is two 2-vertex edges sharing one
	// vertex: 4 adjacent pairs on a 5-edge path.
	var hits int
	for _, e := range entries {
		if e.Unique > 0 {
			hits++
			if e.Unique != 4 {
				t.Fatalf("motif %s count %d want 4", e.Shape, e.Unique)
			}
			if e.Pattern.Degree(0) != 2 || e.Pattern.Degree(1) != 2 {
				t.Fatalf("unexpected shape matched: %s", e.Shape)
			}
			// Cross-check against brute force.
			if bf := bruteforce.Count(store.Hypergraph(), e.Pattern); bf != e.Ordered {
				t.Fatalf("census %d vs brute force %d", e.Ordered, bf)
			}
		}
	}
	if hits != 1 {
		t.Fatalf("%d motifs matched, want 1", hits)
	}
	// Sorted descending by count.
	for i := 1; i < len(entries); i++ {
		if entries[i].Unique > entries[i-1].Unique {
			t.Fatal("census not sorted")
		}
	}
}

func TestCensusSkipAbsentDegrees(t *testing.T) {
	store := pathFixture(t)
	all, err := Census(store, Options{K: 2, MaxRegionSize: 2, MaxVertices: 4,
		Engine: engine.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := Census(store, Options{K: 2, MaxRegionSize: 2, MaxVertices: 4,
		SkipAbsentDegrees: true, Engine: engine.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(skipped) {
		t.Fatalf("entry counts differ: %d vs %d", len(all), len(skipped))
	}
	// Counts of matching motifs must agree.
	byKey := map[string]uint64{}
	for _, e := range all {
		byKey[e.Shape.Key()] = e.Unique
	}
	for _, e := range skipped {
		if e.Unique != byKey[e.Shape.Key()] {
			t.Fatalf("skip-absent changed count for %s: %d vs %d", e.Shape, e.Unique, byKey[e.Shape.Key()])
		}
	}
}

func TestFrequent(t *testing.T) {
	entries := []Entry{{Unique: 10}, {Unique: 3}, {Unique: 0}}
	if got := Frequent(entries, 3); len(got) != 2 {
		t.Fatalf("frequent: %d", len(got))
	}
	if got := Frequent(entries, 100); len(got) != 0 {
		t.Fatalf("frequent: %d", len(got))
	}
}

func TestProfileSimilarity(t *testing.T) {
	mk := func(seed int64) []Entry {
		h := gen.MustGenerate(gen.Config{Name: "p", NumVertices: 90, NumEdges: 250,
			Communities: 6, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: seed})
		entries, err := Census(dal.Build(h), Options{K: 2, MaxRegionSize: 2, MaxVertices: 6,
			SkipAbsentDegrees: true, Engine: engine.Options{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return entries
	}
	a := mk(1)
	b := mk(2)
	// Same generator family → high similarity; identity → 1.
	self, err := Profile(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if self < 0.999 {
		t.Fatalf("self similarity %f", self)
	}
	cross, err := Profile(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cross <= 0 || cross > 1.0000001 {
		t.Fatalf("cross similarity %f", cross)
	}
	if _, err := Profile(a, a[:1]); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
