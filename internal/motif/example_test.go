package motif_test

import (
	"fmt"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/motif"
)

// ExampleCensus counts every 2-hyperedge motif class on a 5-edge path: the
// only occurring class is "two 2-vertex hyperedges sharing one vertex",
// four times.
func ExampleCensus() {
	h := hypergraph.MustBuild(6, [][]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
	}, nil)
	entries, err := motif.Census(dal.Build(h), motif.Options{
		K: 2, MaxRegionSize: 2, MaxVertices: 4,
		SkipAbsentDegrees: true,
		Engine:            engine.Options{Workers: 1},
	})
	if err != nil {
		panic(err)
	}
	for _, e := range entries {
		if e.Unique > 0 {
			fmt.Println(e.Shape, "occurs", e.Unique, "times")
		}
	}
	// Output: shape{01:1 10:1 11:1} occurs 4 times
}
