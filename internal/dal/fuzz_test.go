package dal

import (
	"bytes"
	"testing"

	"ohminer/internal/hypergraph"
)

// FuzzLoad hammers the store decoder with mutated bytes: whatever the input,
// Load must either return a descriptive error or an intact store — never
// panic, and never allocate beyond what the attached hypergraph bounds (the
// header limits are graph-relative, so a hostile length field fails fast).
func FuzzLoad(f *testing.F) {
	h := hypergraph.MustBuild(8, [][]uint32{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {4, 5}, {5, 6, 7}, {0, 7},
	}, nil)
	var buf bytes.Buffer
	if err := Build(h).Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(bytes.Clone(valid))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	for _, off := range []int{0, 8, 16, 24, 32, 40, 48, 56, 64, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data), h)
		if err != nil {
			return
		}
		// The CRC trailer makes accepting a mutated file (within the
		// fuzzer's reach) a checksum collision; anything accepted must be
		// the original store, byte for byte, and re-serializable.
		var out bytes.Buffer
		if err := s.Save(&out); err != nil {
			t.Fatalf("re-save of accepted store failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), valid) {
			t.Fatal("accepted store differs from the original")
		}
	})
}
