package dal

import (
	"bytes"
	"testing"

	"ohminer/internal/gen"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 300, NumEdges: 700,
		Communities: 15, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 9, EdgeSizeMean: 5, Seed: 13})
	orig := Build(h)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), h)
	if err != nil {
		t.Fatal(err)
	}
	// Full structural equality.
	for e := 0; e < h.NumEdges(); e++ {
		a, b := orig.Adj(uint32(e)), loaded.Adj(uint32(e))
		if len(a) != len(b) {
			t.Fatalf("edge %d adjacency length differs", e)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge %d adjacency differs at %d", e, i)
			}
		}
		for _, d := range orig.Degrees() {
			ga, gb := orig.AdjWithDegree(uint32(e), d), loaded.AdjWithDegree(uint32(e), d)
			if len(ga) != len(gb) {
				t.Fatalf("edge %d degree %d group differs", e, d)
			}
			for i := range ga {
				if ga[i] != gb[i] {
					t.Fatalf("edge %d degree %d group differs at %d", e, d, i)
				}
			}
		}
	}
}

func TestLoadRejectsWrongHypergraph(t *testing.T) {
	h1 := gen.MustGenerate(gen.Config{Name: "a", NumVertices: 100, NumEdges: 200,
		Communities: 5, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: 1})
	h2 := gen.MustGenerate(gen.Config{Name: "b", NumVertices: 100, NumEdges: 200,
		Communities: 5, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: 2})
	var buf bytes.Buffer
	if err := Build(h1).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), h2); err == nil {
		t.Fatal("store loaded against a different hypergraph")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "a", NumVertices: 80, NumEdges: 150,
		Communities: 5, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: 3})
	var buf bytes.Buffer
	if err := Build(h).Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncated file.
	if _, err := Load(bytes.NewReader(data[:len(data)/2]), h); err == nil {
		t.Error("truncated store accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Load(bytes.NewReader(bad), h); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), data...)
	bad[8] = 99
	if _, err := Load(bytes.NewReader(bad), h); err == nil {
		t.Error("bad version accepted")
	}
	// Flipped payload byte: either the fingerprint check (header) or the
	// structural validation must catch gross corruption of offsets.
	bad = append([]byte(nil), data...)
	bad[8*8+3] ^= 0x80 // inside adjOff[0]
	if _, err := Load(bytes.NewReader(bad), h); err == nil {
		t.Error("corrupt offsets accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "a", NumVertices: 60, NumEdges: 100,
		Communities: 4, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: 4})
	s := Build(h)
	path := t.TempDir() + "/store.dal"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNeighbors(0) != s.NumNeighbors(0) {
		t.Fatal("loaded store differs")
	}
	if _, err := LoadFile(path+"x", h); err == nil {
		t.Fatal("missing file accepted")
	}
}
