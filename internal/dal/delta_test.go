package dal

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ohminer/internal/hypergraph"
)

// randomUniqueEdges returns n distinct normalized hyperedges over [0, nv).
func randomUniqueEdges(rng *rand.Rand, nv, n int) [][]uint32 {
	seen := map[string]bool{}
	var out [][]uint32
	for len(out) < n {
		k := 1 + rng.Intn(4)
		set := map[uint32]bool{}
		for len(set) < k {
			set[uint32(rng.Intn(nv))] = true
		}
		e := make([]uint32, 0, k)
		for v := range set {
			e = append(e, v)
		}
		for i := 1; i < len(e); i++ {
			for j := i; j > 0 && e[j-1] > e[j]; j-- {
				e[j-1], e[j] = e[j], e[j-1]
			}
		}
		key := fmt.Sprint(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

// storesEqual compares every derived array of two stores. BuildDelta's
// contract is bit-identical state, not just equivalent answers, so the
// comparison is white-box; buildTime is the one field allowed to differ.
func storesEqual(t *testing.T, want, got *Store) {
	t.Helper()
	check := func(name string, w, g []uint32) {
		t.Helper()
		if len(w) != len(g) {
			t.Fatalf("%s length: want %d got %d", name, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s[%d]: want %d got %d", name, i, w[i], g[i])
			}
		}
	}
	check("adjOff", want.adjOff, got.adjOff)
	check("adj", want.adj, got.adj)
	check("grpOff", want.grpOff, got.grpOff)
	check("grpDeg", want.grpDeg, got.grpDeg)
	check("grpStart", want.grpStart, got.grpStart)
	check("degList", want.degList, got.degList)
	check("degOff", want.degOff, got.degOff)
	check("degEdges", want.degEdges, got.degEdges)
	check("grpWinOff", want.grpWinOff, got.grpWinOff)
	check("grpWinBase", want.grpWinBase, got.grpWinBase)
	check("evOff", want.evOff, got.evOff)
	check("evBase", want.evBase, got.evBase)
	if len(want.winWords) != len(got.winWords) {
		t.Fatalf("winWords length: want %d got %d", len(want.winWords), len(got.winWords))
	}
	for i := range want.winWords {
		if want.winWords[i] != got.winWords[i] {
			t.Fatalf("winWords[%d]: want %#x got %#x", i, want.winWords[i], got.winWords[i])
		}
	}
	if len(want.evWords) != len(got.evWords) {
		t.Fatalf("evWords length: want %d got %d", len(want.evWords), len(got.evWords))
	}
	for i := range want.evWords {
		if want.evWords[i] != got.evWords[i] {
			t.Fatalf("evWords[%d]: want %#x got %#x", i, want.evWords[i], got.evWords[i])
		}
	}
}

// TestBuildDeltaEqualsBuild: growing a store incrementally — in one batch or
// edge by edge — lands on exactly the state a from-scratch Build produces.
func TestBuildDeltaEqualsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nv := 6 + rng.Intn(24)
		n := 2 + rng.Intn(40)
		edges := randomUniqueEdges(rng, nv, n)
		cut := 1 + rng.Intn(n-1)

		fullH, err := hypergraph.Build(nv, edges, nil)
		if err != nil {
			t.Fatal(err)
		}
		full := Build(fullH)

		baseH, err := hypergraph.Build(nv, edges[:cut], nil)
		if err != nil {
			t.Fatal(err)
		}
		extH, err := hypergraph.Extend(baseH, edges[cut:])
		if err != nil {
			t.Fatal(err)
		}
		delta := BuildDelta(Build(baseH), extH)
		storesEqual(t, full, delta)

		// Edge-at-a-time growth.
		h := baseH
		st := Build(baseH)
		for i := cut; i < n; i++ {
			h, err = hypergraph.Extend(h, edges[i:i+1])
			if err != nil {
				t.Fatal(err)
			}
			st = BuildDelta(st, h)
		}
		storesEqual(t, full, st)
	}
}

// TestBuildDeltaPreservesPrev: the previous store must stay fully usable
// after a delta build (streaming readers may still be mining it).
func TestBuildDeltaPreservesPrev(t *testing.T) {
	baseH := hypergraph.MustBuild(8, [][]uint32{{0, 1, 2}, {2, 3}, {4, 5}}, nil)
	prev := Build(baseH)
	wantAdj := append([]uint32(nil), prev.Adj(1)...)
	wantMem := prev.MemoryBytes()

	extH, err := hypergraph.Extend(baseH, [][]uint32{{1, 3, 6}, {5, 7}})
	if err != nil {
		t.Fatal(err)
	}
	next := BuildDelta(prev, extH)
	if next.Hypergraph().NumEdges() != 5 {
		t.Fatalf("next edges = %d", next.Hypergraph().NumEdges())
	}
	if !reflect.DeepEqual(append([]uint32(nil), prev.Adj(1)...), wantAdj) {
		t.Fatal("BuildDelta mutated prev's adjacency")
	}
	if prev.MemoryBytes() != wantMem {
		t.Fatal("BuildDelta changed prev's footprint")
	}
	// Edge 1 ({2,3}) gained neighbor 3 ({1,3,6}): verify through the public
	// accessors of the new store.
	if !next.Connected(1, 3) || next.Connected(1, 4) {
		t.Fatal("connectivity wrong after delta build")
	}
	// No new edges: BuildDelta is an identity.
	if got := BuildDelta(next, extH); got != next {
		t.Fatal("no-op BuildDelta should return prev")
	}
	// Nil prev falls back to full build.
	storesEqual(t, Build(extH), BuildDelta(nil, extH))
}
