// Package dal implements the Degree-aware Data Store of Sec. 4.5.
//
// For every hyperedge e the store keeps adj(e) — the hyperedges overlapping
// e — sorted by (neighbor degree, neighbor ID), a layout the paper calls the
// Degree-aware Adjacency List (DAL, Table 2). A per-edge degree index
// locates the contiguous group of neighbors sharing one degree, so candidate
// generation for a pattern hyperedge of degree d touches only the
// degree-d group of each already-matched edge's adjacency list instead of
// re-deriving incident hyperedges from individual vertices.
//
// Construction happens once per hypergraph (offline preprocessing in the
// paper); BuildTime and MemoryBytes feed the Table 6 overhead accounting.
package dal

import (
	"sort"
	"time"

	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
)

// Store is the immutable degree-aware adjacency structure over one
// hypergraph.
type Store struct {
	h *hypergraph.Hypergraph

	// CSR of neighbor IDs per edge, each segment sorted by (degree, id).
	adjOff []uint32
	adj    []uint32

	// Degree-group index: for edge e, groups are
	// grpDeg[grpOff[e]:grpOff[e+1]] with matching absolute start offsets
	// into adj in grpStart; group k of edge e spans
	// adj[grpStart[grpOff[e]+k] : end], where end is the next group's start
	// (or adjOff[e+1] for the last group).
	grpOff   []uint32
	grpDeg   []uint32
	grpStart []uint32

	// Global degree index: degList holds the sorted distinct hyperedge
	// degrees; the edges of degree degList[k] are
	// degEdges[degOff[k]:degOff[k+1]], ascending. Built once so
	// EdgesWithDegree (the first mining step of every run) and data-aware
	// ordering answer from a CSR lookup instead of an O(E) scan.
	degList  []uint32
	degOff   []uint32
	degEdges []uint32

	// Adaptive-container arenas: bitmap windows (intset.PlanWords density
	// rule) packed back to back for the degree groups of the adjacency CSR
	// and for the hyperedge vertex sets. Group k's window words are
	// winWords[grpWinOff[k]:grpWinOff[k+1]] at base grpWinBase[k] (equal
	// offsets mean the group stayed array-only); edge e's vertex-set window
	// is evWords[evOff[e]:evOff[e+1]] at base evBase[e]. Built once here so
	// the engine's hot paths assemble intset.Set views without ever
	// converting or allocating; like the degree index, the arenas are derived
	// state rebuilt after Load rather than serialized.
	winWords   []uint64
	grpWinOff  []uint32
	grpWinBase []uint32
	evWords    []uint64
	evOff      []uint32
	evBase     []uint32

	buildTime time.Duration
}

// Build constructs the DAL for h.
func Build(h *hypergraph.Hypergraph) *Store {
	start := time.Now()
	m := h.NumEdges()
	s := &Store{h: h}

	// Pass 1: neighbor discovery with a timestamped mark array. A hyperedge
	// e's neighbors are the union of the incident-edge lists of its
	// vertices, minus e itself.
	mark := make([]uint32, m)
	stamp := uint32(0)
	counts := make([]uint32, m+1)
	neighbors := make([][]uint32, m)
	for e := 0; e < m; e++ {
		stamp++
		var nbr []uint32
		for _, v := range h.EdgeVertices(uint32(e)) {
			for _, o := range h.VertexEdges(v) {
				if o == uint32(e) || mark[o] == stamp {
					continue
				}
				mark[o] = stamp
				nbr = append(nbr, o)
			}
		}
		neighbors[e] = nbr
		counts[e+1] = counts[e] + uint32(len(nbr))
	}

	// Pass 2: sort each segment by (degree, id) and build the group index.
	s.adjOff = counts
	s.adj = make([]uint32, counts[m])
	s.grpOff = make([]uint32, m+1)
	for e := 0; e < m; e++ {
		nbr := neighbors[e]
		sort.Slice(nbr, func(i, j int) bool {
			di, dj := h.Degree(nbr[i]), h.Degree(nbr[j])
			if di != dj {
				return di < dj
			}
			return nbr[i] < nbr[j]
		})
		copy(s.adj[s.adjOff[e]:], nbr)
		base := s.adjOff[e]
		for i := 0; i < len(nbr); {
			d := h.Degree(nbr[i])
			s.grpDeg = append(s.grpDeg, uint32(d))
			s.grpStart = append(s.grpStart, base+uint32(i))
			for i < len(nbr) && h.Degree(nbr[i]) == d {
				i++
			}
		}
		s.grpOff[e+1] = uint32(len(s.grpDeg))
	}
	s.buildDegreeIndex()
	s.buildContainers()
	s.buildTime = time.Since(start)
	return s
}

// buildContainers plans a bitmap window for every adjacency degree group and
// every hyperedge vertex set that passes intset's density rule, packing the
// words into shared arenas. Also invoked after Load (derived state, not part
// of the serialized format).
func (s *Store) buildContainers() {
	m := s.h.NumEdges()
	s.grpWinOff = make([]uint32, len(s.grpDeg)+1)
	s.grpWinBase = make([]uint32, len(s.grpDeg))
	s.winWords = s.winWords[:0]
	for e := 0; e < m; e++ {
		for k := s.grpOff[e]; k < s.grpOff[e+1]; k++ {
			s.grpWinOff[k] = uint32(len(s.winWords))
			grp := s.groupSlice(uint32(e), k)
			if base, nw, lo, hi, ok := intset.PlanWords(grp); ok {
				s.grpWinBase[k] = base
				start := len(s.winWords)
				s.winWords = append(s.winWords, make([]uint64, nw)...)
				intset.FillWords(s.winWords[start:], base, grp[lo:hi])
			}
		}
	}
	s.grpWinOff[len(s.grpDeg)] = uint32(len(s.winWords))

	s.evOff = make([]uint32, m+1)
	s.evBase = make([]uint32, m)
	s.evWords = s.evWords[:0]
	for e := 0; e < m; e++ {
		s.evOff[e] = uint32(len(s.evWords))
		verts := s.h.EdgeVertices(uint32(e))
		if base, nw, lo, hi, ok := intset.PlanWords(verts); ok {
			s.evBase[e] = base
			start := len(s.evWords)
			s.evWords = append(s.evWords, make([]uint64, nw)...)
			intset.FillWords(s.evWords[start:], base, verts[lo:hi])
		}
	}
	s.evOff[m] = uint32(len(s.evWords))
}

// groupSlice returns the adjacency slice of group k of edge e.
func (s *Store) groupSlice(e, k uint32) []uint32 {
	start := s.grpStart[k]
	end := s.adjOff[e+1]
	if k+1 < s.grpOff[e+1] {
		end = s.grpStart[k+1]
	}
	return s.adj[start:end]
}

// buildDegreeIndex derives the global degree→edges CSR from the hypergraph.
// Also invoked after Load: the index is cheap to rebuild, so it is not part
// of the serialized format.
func (s *Store) buildDegreeIndex() {
	m := s.h.NumEdges()
	count := map[uint32]uint32{}
	for e := 0; e < m; e++ {
		count[uint32(s.h.Degree(uint32(e)))]++
	}
	s.degList = make([]uint32, 0, len(count))
	for d := range count {
		s.degList = append(s.degList, d)
	}
	sort.Slice(s.degList, func(i, j int) bool { return s.degList[i] < s.degList[j] })
	s.degOff = make([]uint32, len(s.degList)+1)
	pos := make(map[uint32]uint32, len(s.degList))
	for i, d := range s.degList {
		s.degOff[i+1] = s.degOff[i] + count[d]
		pos[d] = uint32(i)
	}
	s.degEdges = make([]uint32, m)
	cursor := append([]uint32(nil), s.degOff[:len(s.degList)]...)
	for e := 0; e < m; e++ {
		k := pos[uint32(s.h.Degree(uint32(e)))]
		s.degEdges[cursor[k]] = uint32(e)
		cursor[k]++
	}
}

// degreeGroup binary-searches the distinct-degree list and returns the CSR
// group index for degree d, or -1 when no hyperedge has that degree.
func (s *Store) degreeGroup(d int) int {
	if d < 0 {
		return -1
	}
	lo, hi := 0, len(s.degList)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.degList[mid] < uint32(d) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.degList) || s.degList[lo] != uint32(d) {
		return -1
	}
	return lo
}

// Hypergraph returns the hypergraph the store indexes.
func (s *Store) Hypergraph() *hypergraph.Hypergraph { return s.h }

// Adj returns the full adjacency list A(e), sorted by (degree, id). The
// slice aliases internal storage.
//
//ohmlint:hotpath
func (s *Store) Adj(e uint32) []uint32 {
	return s.adj[s.adjOff[e]:s.adjOff[e+1]]
}

// NumNeighbors returns |A(e)|.
//
//ohmlint:hotpath
func (s *Store) NumNeighbors(e uint32) int {
	return int(s.adjOff[e+1] - s.adjOff[e])
}

// adjGroup binary-searches the (small) per-edge group table for the group of
// e's neighbors with degree exactly d; ok is false when no neighbor has that
// degree.
//
//ohmlint:hotpath
func (s *Store) adjGroup(e uint32, d int) (k uint32, ok bool) {
	lo, hi := s.grpOff[e], s.grpOff[e+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if s.grpDeg[mid] < uint32(d) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == s.grpOff[e+1] || s.grpDeg[lo] != uint32(d) {
		return 0, false
	}
	return lo, true
}

// AdjWithDegree returns the group of e's neighbors whose degree is exactly
// d, sorted by ID. The slice aliases internal storage; it is empty when no
// neighbor has that degree.
//
//ohmlint:hotpath
func (s *Store) AdjWithDegree(e uint32, d int) []uint32 {
	k, ok := s.adjGroup(e, d)
	if !ok {
		return nil
	}
	return s.groupSlice(e, k)
}

// AdjSetWithDegree is AdjWithDegree in adaptive-container form: the same
// degree group wrapped as an intset.Set carrying its prebuilt bitmap window
// (if the group's density earned one at Build time). The Set aliases arena
// storage; nothing is converted or allocated.
//
//ohmlint:hotpath
func (s *Store) AdjSetWithDegree(e uint32, d int) intset.Set {
	k, ok := s.adjGroup(e, d)
	if !ok {
		return intset.Set{}
	}
	grp := s.groupSlice(e, k)
	if s.grpWinOff[k] == s.grpWinOff[k+1] {
		return intset.ArrayView(grp)
	}
	return intset.View(grp, s.winWords[s.grpWinOff[k]:s.grpWinOff[k+1]], s.grpWinBase[k])
}

// EdgeVertexSet returns hyperedge e's vertex set as an adaptive container:
// the hypergraph's sorted vertex slice plus the arena bitmap window when the
// set is dense enough. The Set aliases shared storage.
//
//ohmlint:hotpath
func (s *Store) EdgeVertexSet(e uint32) intset.Set {
	verts := s.h.EdgeVertices(e)
	if s.evOff[e] == s.evOff[e+1] {
		return intset.ArrayView(verts)
	}
	return intset.View(verts, s.evWords[s.evOff[e]:s.evOff[e+1]], s.evBase[e])
}

// Connected reports whether hyperedges a and b overlap, by probing the
// degree group of a's adjacency list matching b's degree — an O(1) window
// test when the group is bitmap-backed, binary search otherwise.
// Connected(e, e) is false: an edge is not its own neighbor.
//
//ohmlint:hotpath
func (s *Store) Connected(a, b uint32) bool {
	if a == b {
		return false
	}
	// Probe the shorter adjacency list.
	if s.NumNeighbors(b) < s.NumNeighbors(a) {
		a, b = b, a
	}
	return s.AdjSetWithDegree(a, s.h.Degree(b)).Contains(b)
}

// Degrees returns the sorted distinct hyperedge degrees present in the
// hypergraph, useful for workload construction. The slice is freshly
// allocated and may be modified.
func (s *Store) Degrees() []int {
	out := make([]int, len(s.degList))
	for i, d := range s.degList {
		out[i] = int(d)
	}
	return out
}

// EdgesWithDegree returns all hyperedge IDs of degree d, ascending — a CSR
// group lookup on the precomputed degree index, not a scan. The slice
// aliases internal storage and must be treated as read-only.
func (s *Store) EdgesWithDegree(d int) []uint32 {
	k := s.degreeGroup(d)
	if k < 0 {
		return nil
	}
	return s.degEdges[s.degOff[k]:s.degOff[k+1]]
}

// NumEdgesWithDegree returns the number of hyperedges of degree d without
// materializing the list.
func (s *Store) NumEdgesWithDegree(d int) int {
	k := s.degreeGroup(d)
	if k < 0 {
		return 0
	}
	return int(s.degOff[k+1] - s.degOff[k])
}

// BuildTime returns the wall-clock construction duration (DAL-T, Table 6).
func (s *Store) BuildTime() time.Duration { return s.buildTime }

// ContainerStats summarizes the adaptive-container arenas: how many
// adjacency degree groups and hyperedge vertex sets carry bitmap windows,
// and the arena footprint. Surfaced by ohmstat next to the Table 6 numbers.
type ContainerStats struct {
	// AdjGroups is the total number of adjacency degree groups;
	// AdjWindowed of them are bitmap-backed.
	AdjGroups   int
	AdjWindowed int
	// EdgeSets is the hyperedge count; EdgeWindowed of their vertex sets are
	// bitmap-backed.
	EdgeSets     int
	EdgeWindowed int
	// WindowBytes is the total arena size of all window words.
	WindowBytes int64
}

// Containers reports the adaptive-container statistics of the store.
func (s *Store) Containers() ContainerStats {
	st := ContainerStats{
		AdjGroups: len(s.grpDeg),
		EdgeSets:  s.h.NumEdges(),
	}
	for k := range s.grpDeg {
		if s.grpWinOff[k] != s.grpWinOff[k+1] {
			st.AdjWindowed++
		}
	}
	for e := 0; e < st.EdgeSets; e++ {
		if s.evOff[e] != s.evOff[e+1] {
			st.EdgeWindowed++
		}
	}
	st.WindowBytes = int64(len(s.winWords)+len(s.evWords)) * 8
	return st
}

// EdgeWindowFrac returns the fraction of degree-d hyperedges whose vertex
// set is bitmap-backed — the density statistic the plan compiler turns into
// per-op container hints (a dense degree class makes window probing pay; an
// all-array class makes the metadata lookup pure overhead).
func (s *Store) EdgeWindowFrac(d int) float64 {
	k := s.degreeGroup(d)
	if k < 0 {
		return 0
	}
	edges := s.degEdges[s.degOff[k]:s.degOff[k+1]]
	windowed := 0
	for _, e := range edges {
		if s.evOff[e] != s.evOff[e+1] {
			windowed++
		}
	}
	return float64(windowed) / float64(len(edges))
}

// MemoryBytes estimates the resident size of the DAL arrays (DAL-M,
// Table 6), including the global degree index and the container arenas.
func (s *Store) MemoryBytes() int64 {
	n := len(s.adjOff) + len(s.adj) + len(s.grpOff) + len(s.grpDeg) + len(s.grpStart) +
		len(s.degList) + len(s.degOff) + len(s.degEdges) +
		len(s.grpWinOff) + len(s.grpWinBase) + len(s.evOff) + len(s.evBase)
	return int64(n)*4 + int64(len(s.winWords)+len(s.evWords))*8
}
