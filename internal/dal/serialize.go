package dal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ohminer/internal/crcio"
	"ohminer/internal/hypergraph"
)

// Binary persistence for the DAL. The paper amortizes DAL construction as
// offline preprocessing reused across HPM applications (Sec. 4.5/Table 6);
// Save/Load make that concrete: construction runs once, subsequent
// processes load the index in a single sequential read. The header embeds
// the source hypergraph's fingerprint, so loading against a different
// hypergraph fails instead of silently mis-indexing, and the file ends in a
// CRC32C trailer over every preceding byte (shared with the checkpoint
// snapshot format via internal/crcio), so torn writes and bit-flips are
// rejected at load time instead of surfacing as silently wrong mining
// results.

const (
	dalMagic = 0x4f484d44 // "OHMD"
	// dalVersion 2 appended the CRC32C trailer; version-1 files (no
	// trailer) are rejected with a rebuild hint rather than risking an
	// undetected corruption window.
	dalVersion = 2
)

// Save writes the store in binary form.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := crcio.NewWriter(bw)
	header := []uint64{
		dalMagic,
		dalVersion,
		s.h.Fingerprint(),
		uint64(len(s.adjOff)),
		uint64(len(s.adj)),
		uint64(len(s.grpOff)),
		uint64(len(s.grpDeg)),
		uint64(len(s.grpStart)),
	}
	for _, v := range header {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("dal: save header: %w", err)
		}
	}
	for _, arr := range [][]uint32{s.adjOff, s.adj, s.grpOff, s.grpDeg, s.grpStart} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("dal: save data: %w", err)
		}
	}
	if err := cw.WriteTrailer(); err != nil {
		return fmt.Errorf("dal: save trailer: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the store to the named file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a store previously written by Save and attaches it to h, which
// must be the identical hypergraph (verified via fingerprint).
func Load(r io.Reader, h *hypergraph.Hypergraph) (*Store, error) {
	cr := crcio.NewReader(bufio.NewReader(r))
	header := make([]uint64, 8)
	for i := range header {
		if err := binary.Read(cr, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("dal: corrupt store: short header: %w", err)
		}
	}
	if header[0] != dalMagic {
		return nil, fmt.Errorf("dal: not a DAL store (magic %#x, want %#x)", header[0], dalMagic)
	}
	if header[1] != dalVersion {
		return nil, fmt.Errorf("dal: unsupported store version %d (this build reads version %d; rebuild the store from the hypergraph)", header[1], dalVersion)
	}
	if header[2] != h.Fingerprint() {
		return nil, fmt.Errorf("dal: store was built for a different hypergraph (fingerprint %#x, want %#x)", header[2], h.Fingerprint())
	}
	m := h.NumEdges()
	if header[3] != uint64(m+1) || header[5] != uint64(m+1) {
		return nil, fmt.Errorf("dal: corrupt store: offset tables sized %d/%d for %d hyperedges", header[3], header[5], m)
	}
	// Bound the array lengths relative to the hypergraph before allocating:
	// a corrupt header must produce an error, not a multi-gigabyte
	// allocation. Each hyperedge has at most m-1 distinct neighbors, so the
	// adjacency table can never exceed m*(m-1) entries, and the group
	// tables cannot outnumber the adjacency entries they partition
	// (validate() enforces the exact relationships after the read).
	if maxAdj := uint64(m) * uint64(m-1); header[4] > maxAdj {
		return nil, fmt.Errorf("dal: corrupt store: %d adjacency entries exceed the %d possible for %d hyperedges", header[4], maxAdj, m)
	}
	if header[6] != header[7] {
		return nil, fmt.Errorf("dal: corrupt store: group tables disagree (%d vs %d)", header[6], header[7])
	}
	if header[6] > header[4]+1 {
		return nil, fmt.Errorf("dal: corrupt store: %d groups over %d adjacency entries", header[6], header[4])
	}
	s := &Store{
		h:        h,
		adjOff:   make([]uint32, header[3]),
		adj:      make([]uint32, header[4]),
		grpOff:   make([]uint32, header[5]),
		grpDeg:   make([]uint32, header[6]),
		grpStart: make([]uint32, header[7]),
	}
	for _, arr := range [][]uint32{s.adjOff, s.adj, s.grpOff, s.grpDeg, s.grpStart} {
		if err := binary.Read(cr, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("dal: corrupt store: short data: %w", err)
		}
	}
	// The checksum runs before structural validation so a damaged file is
	// reported as corruption rather than as a puzzling structural defect.
	if err := cr.CheckTrailer("dal"); err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	// The global degree index and the adaptive-container arenas are derived
	// state, so they are rebuilt here instead of being part of the file
	// format (the density rule may also evolve across builds; a stale
	// serialized window layout would pin old thresholds).
	s.buildDegreeIndex()
	s.buildContainers()
	return s, nil
}

// LoadFile reads a store from the named file.
func LoadFile(path string, h *hypergraph.Hypergraph) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, h)
}

// validate performs structural sanity checks on a loaded store so that a
// corrupt file cannot cause out-of-range panics during mining.
func (s *Store) validate() error {
	m := s.h.NumEdges()
	if s.adjOff[0] != 0 || int(s.adjOff[m]) != len(s.adj) {
		return fmt.Errorf("dal: corrupt adjacency offsets")
	}
	if s.grpOff[0] != 0 || int(s.grpOff[m]) != len(s.grpDeg) || len(s.grpDeg) != len(s.grpStart) {
		return fmt.Errorf("dal: corrupt group offsets")
	}
	for e := 0; e < m; e++ {
		if s.adjOff[e] > s.adjOff[e+1] || s.grpOff[e] > s.grpOff[e+1] {
			return fmt.Errorf("dal: non-monotonic offsets at edge %d", e)
		}
	}
	for _, n := range s.adj {
		if int(n) >= m {
			return fmt.Errorf("dal: neighbor id %d out of range", n)
		}
	}
	for i, st := range s.grpStart {
		if int(st) > len(s.adj) {
			return fmt.Errorf("dal: group start %d out of range", i)
		}
	}
	return nil
}
