package dal_test

import (
	"fmt"

	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
)

// ExampleStore_AdjWithDegree reproduces Table 2: e1's adjacency list,
// grouped by neighbor degree, answers "which hyperedges of degree 8
// overlap e1?" without touching any vertex's incident list.
func ExampleStore_AdjWithDegree() {
	h := hypergraph.MustBuild(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},         // e1 (ID 0), degree 6
		{3, 4, 5, 6, 7, 8},         // e2 (ID 1), degree 6
		{3, 4, 5, 6, 7, 9, 10, 11}, // e3 (ID 2), degree 8
		{0, 1, 2, 9, 12, 13},       // e4 (ID 3), degree 6
		{1, 3, 4, 5, 6, 7, 8, 14},  // e5 (ID 4), degree 8
	}, nil)
	store := dal.Build(h)
	fmt.Println("A(e1) degree-6 group:", store.AdjWithDegree(0, 6))
	fmt.Println("A(e1) degree-8 group:", store.AdjWithDegree(0, 8))
	fmt.Println("e1 and e3 connected:", store.Connected(0, 2))
	// Output:
	// A(e1) degree-6 group: [1 3]
	// A(e1) degree-8 group: [2 4]
	// e1 and e3 connected: true
}
