// Incremental DAL maintenance for the streaming subsystem: BuildDelta grows
// an existing store by the hyperedges a batch appended instead of re-running
// the full offline preprocessing pass. The resulting store is
// field-for-field identical to Build on the extended hypergraph
// (differential-tested in delta_test.go); only the work is different —
// neighbor discovery runs for the new edges alone, untouched adjacency
// segments, group tables, and container windows are copied from the previous
// store, and only segments that gained a neighbor are re-sorted and
// re-planned.
package dal

import (
	"sort"
	"time"

	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
)

// BuildDelta constructs the DAL for h, which must extend prev's hypergraph:
// edges [0, prev.NumEdges()) are unchanged (same vertex sets, hence same
// degrees) and any further edges are new. This is the contract
// hypergraph.Extend provides. prev is not modified and remains valid — a
// concurrent reader mining the old store is unaffected. A nil prev falls
// back to a full Build.
func BuildDelta(prev *Store, h *hypergraph.Hypergraph) *Store {
	if prev == nil {
		return Build(h)
	}
	m0 := prev.h.NumEdges()
	m := h.NumEdges()
	if m == m0 {
		return prev
	}
	start := time.Now()
	s := &Store{h: h}

	less := func(a, b uint32) bool {
		da, db := h.Degree(a), h.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}

	// Neighbor discovery for the new edges only. Existing edges' vertex sets
	// are immutable, so the only adjacency changes anywhere in the store are
	// (a) the new edges' own lists and (b) new IDs inserted into the lists of
	// the old edges they overlap — collected in ins while scanning.
	mark := make([]uint32, m)
	stamp := uint32(0)
	newNbr := make([][]uint32, m-m0)
	ins := make(map[uint32][]uint32)
	for e := m0; e < m; e++ {
		stamp++
		var nbr []uint32
		for _, v := range h.EdgeVertices(uint32(e)) {
			for _, o := range h.VertexEdges(v) {
				if o == uint32(e) || mark[o] == stamp {
					continue
				}
				mark[o] = stamp
				nbr = append(nbr, o)
				if o < uint32(m0) {
					ins[o] = append(ins[o], uint32(e))
				}
			}
		}
		sort.Slice(nbr, func(i, j int) bool { return less(nbr[i], nbr[j]) })
		newNbr[e-m0] = nbr
	}
	for _, lst := range ins {
		sort.Slice(lst, func(i, j int) bool { return less(lst[i], lst[j]) })
	}

	affected := make([]bool, m)
	for e := m0; e < m; e++ {
		affected[e] = true
	}
	for o := range ins {
		affected[o] = true
	}

	s.adjOff = make([]uint32, m+1)
	for e := 0; e < m0; e++ {
		s.adjOff[e+1] = s.adjOff[e] + uint32(prev.NumNeighbors(uint32(e))+len(ins[uint32(e)]))
	}
	for e := m0; e < m; e++ {
		s.adjOff[e+1] = s.adjOff[e] + uint32(len(newNbr[e-m0]))
	}
	s.adj = make([]uint32, s.adjOff[m])

	s.grpOff = make([]uint32, m+1)
	s.grpDeg = make([]uint32, 0, len(prev.grpDeg))
	s.grpStart = make([]uint32, 0, len(prev.grpStart))
	for e := 0; e < m; e++ {
		dst := s.adj[s.adjOff[e]:s.adjOff[e+1]]
		if e < m0 {
			old := prev.Adj(uint32(e))
			add := ins[uint32(e)]
			if len(add) == 0 {
				// Untouched segment: bytes and group table carry over, with
				// the absolute group starts rebased to the new adj offsets.
				copy(dst, old)
				shift := s.adjOff[e] - prev.adjOff[e]
				for k := prev.grpOff[e]; k < prev.grpOff[e+1]; k++ {
					s.grpDeg = append(s.grpDeg, prev.grpDeg[k])
					s.grpStart = append(s.grpStart, prev.grpStart[k]+shift)
				}
				s.grpOff[e+1] = uint32(len(s.grpDeg))
				continue
			}
			// Merge the new neighbors into the (degree, id)-sorted segment;
			// old entries keep their relative order because old degrees are
			// unchanged.
			i, j, k := 0, 0, 0
			for i < len(old) && j < len(add) {
				if less(old[i], add[j]) {
					dst[k] = old[i]
					i++
				} else {
					dst[k] = add[j]
					j++
				}
				k++
			}
			k += copy(dst[k:], old[i:])
			copy(dst[k:], add[j:])
		} else {
			copy(dst, newNbr[e-m0])
		}
		base := s.adjOff[e]
		for i := 0; i < len(dst); {
			d := h.Degree(dst[i])
			s.grpDeg = append(s.grpDeg, uint32(d))
			s.grpStart = append(s.grpStart, base+uint32(i))
			for i < len(dst) && h.Degree(dst[i]) == d {
				i++
			}
		}
		s.grpOff[e+1] = uint32(len(s.grpDeg))
	}

	s.buildDegreeIndex()
	s.buildContainersDelta(prev, affected)
	s.buildTime = time.Since(start)
	return s
}

// buildContainersDelta is buildContainers with reuse: adjacency windows of
// unaffected edges are copied out of prev's arena (their groups are
// byte-identical, only the arena offsets move), and the vertex-set arena —
// which never changes for an existing edge — is copied wholesale with new
// edges' windows appended.
func (s *Store) buildContainersDelta(prev *Store, affected []bool) {
	m := s.h.NumEdges()
	m0 := prev.h.NumEdges()

	s.grpWinOff = make([]uint32, len(s.grpDeg)+1)
	s.grpWinBase = make([]uint32, len(s.grpDeg))
	s.winWords = make([]uint64, 0, len(prev.winWords))
	for e := 0; e < m; e++ {
		if e < m0 && !affected[e] {
			pk0, pk1 := prev.grpOff[e], prev.grpOff[e+1]
			k0 := s.grpOff[e]
			w0, w1 := prev.grpWinOff[pk0], prev.grpWinOff[pk1]
			for i := uint32(0); i < pk1-pk0; i++ {
				s.grpWinOff[k0+i] = uint32(len(s.winWords)) + (prev.grpWinOff[pk0+i] - w0)
				s.grpWinBase[k0+i] = prev.grpWinBase[pk0+i]
			}
			s.winWords = append(s.winWords, prev.winWords[w0:w1]...)
			continue
		}
		for k := s.grpOff[e]; k < s.grpOff[e+1]; k++ {
			s.grpWinOff[k] = uint32(len(s.winWords))
			grp := s.groupSlice(uint32(e), k)
			if base, nw, lo, hi, ok := intset.PlanWords(grp); ok {
				s.grpWinBase[k] = base
				start := len(s.winWords)
				s.winWords = append(s.winWords, make([]uint64, nw)...)
				intset.FillWords(s.winWords[start:], base, grp[lo:hi])
			}
		}
	}
	s.grpWinOff[len(s.grpDeg)] = uint32(len(s.winWords))

	s.evOff = make([]uint32, m+1)
	s.evBase = make([]uint32, m)
	copy(s.evOff, prev.evOff[:m0+1])
	copy(s.evBase, prev.evBase)
	s.evWords = make([]uint64, len(prev.evWords), len(prev.evWords)+(m-m0))
	copy(s.evWords, prev.evWords)
	for e := m0; e < m; e++ {
		s.evOff[e] = uint32(len(s.evWords))
		verts := s.h.EdgeVertices(uint32(e))
		if base, nw, lo, hi, ok := intset.PlanWords(verts); ok {
			s.evBase[e] = base
			start := len(s.evWords)
			s.evWords = append(s.evWords, make([]uint64, nw)...)
			intset.FillWords(s.evWords[start:], base, verts[lo:hi])
		}
	}
	s.evOff[m] = uint32(len(s.evWords))
}
