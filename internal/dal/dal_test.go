package dal

import (
	"math/rand"
	"testing"

	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
)

// fig1Hypergraph reproduces the data hypergraph of Figure 1(b)/Table 2:
// e1..e5 with degrees 6,6,8,6,8 and the adjacency of Table 2.
func fig1Hypergraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	// Vertex numbering: v1..v12 → 0..11 plus two extra for e4/e5 shape.
	edges := [][]uint32{
		{0, 1, 2, 3, 4, 5},         // e1 = {v1..v6}
		{3, 4, 5, 6, 7, 8},         // e2 = {v4..v9}
		{3, 4, 5, 6, 7, 9, 10, 11}, // e3 = {v4,v5,v6,v7,v8→v7? structure per Fig 1}
		{0, 1, 2, 12, 13, 9},       // e4: overlaps e1 {v1,v2,v3} and e3 {v10}
		{1, 3, 4, 5, 6, 7, 8, 14},  // e5: degree 8, overlaps e1,e2,e3
	}
	return hypergraph.MustBuild(15, edges, nil)
}

func TestTable2Shape(t *testing.T) {
	h := fig1Hypergraph(t)
	s := Build(h)

	// e1's neighbors grouped by degree: degree-6 group then degree-8 group.
	adj := s.Adj(0)
	if len(adj) != 4 {
		t.Fatalf("A(e1)=%v", adj)
	}
	d6 := s.AdjWithDegree(0, 6)
	d8 := s.AdjWithDegree(0, 8)
	if len(d6) != 2 || len(d8) != 2 {
		t.Fatalf("groups d6=%v d8=%v", d6, d8)
	}
	if d6[0] != 1 || d6[1] != 3 { // e2, e4
		t.Fatalf("d6=%v want [1 3]", d6)
	}
	if d8[0] != 2 || d8[1] != 4 { // e3, e5
		t.Fatalf("d8=%v want [2 4]", d8)
	}
	if got := s.AdjWithDegree(0, 7); got != nil {
		t.Fatalf("AdjWithDegree(e1,7)=%v want nil", got)
	}
}

func TestConnected(t *testing.T) {
	h := fig1Hypergraph(t)
	s := Build(h)
	for a := 0; a < h.NumEdges(); a++ {
		for b := 0; b < h.NumEdges(); b++ {
			want := a != b && h.Connected(uint32(a), uint32(b))
			if got := s.Connected(uint32(a), uint32(b)); got != want {
				t.Errorf("Connected(%d,%d)=%v want %v", a, b, got, want)
			}
		}
	}
}

// TestAgainstDefinition cross-checks the store on a random hypergraph: the
// adjacency must equal the set of overlapping edges, and degree groups must
// partition it.
func TestAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		nv := 10 + rng.Intn(40)
		ne := 5 + rng.Intn(60)
		raw := make([][]uint32, ne)
		for i := range raw {
			sz := 1 + rng.Intn(5)
			for j := 0; j < sz; j++ {
				raw[i] = append(raw[i], uint32(rng.Intn(nv)))
			}
		}
		h, err := hypergraph.Build(nv, raw, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := Build(h)
		for e := 0; e < h.NumEdges(); e++ {
			// Reference adjacency by definition.
			var ref []uint32
			for o := 0; o < h.NumEdges(); o++ {
				if o != e && intset.Intersects(h.EdgeVertices(uint32(e)), h.EdgeVertices(uint32(o))) {
					ref = append(ref, uint32(o))
				}
			}
			adj := s.Adj(uint32(e))
			if len(adj) != len(ref) {
				t.Fatalf("edge %d: |adj|=%d want %d", e, len(adj), len(ref))
			}
			// Same membership (adj is degree-sorted, ref is id-sorted).
			got := map[uint32]bool{}
			for _, o := range adj {
				got[o] = true
			}
			for _, o := range ref {
				if !got[o] {
					t.Fatalf("edge %d: missing neighbor %d", e, o)
				}
			}
			// Degree groups partition adj, each sorted by ID and all of one
			// degree; union of groups over Degrees() covers adj.
			covered := 0
			for _, d := range s.Degrees() {
				g := s.AdjWithDegree(uint32(e), d)
				if !intset.SortedUnique(g) {
					t.Fatalf("edge %d degree %d group not sorted: %v", e, d, g)
				}
				for _, o := range g {
					if h.Degree(o) != d {
						t.Fatalf("edge %d: neighbor %d in wrong group %d", e, o, d)
					}
				}
				covered += len(g)
			}
			if covered != len(adj) {
				t.Fatalf("edge %d: groups cover %d of %d", e, covered, len(adj))
			}
		}
	}
}

func TestEdgesWithDegree(t *testing.T) {
	h := fig1Hypergraph(t)
	s := Build(h)
	d8 := s.EdgesWithDegree(8)
	if len(d8) != 2 || d8[0] != 2 || d8[1] != 4 {
		t.Fatalf("EdgesWithDegree(8)=%v", d8)
	}
	if got := s.EdgesWithDegree(99); got != nil {
		t.Fatalf("EdgesWithDegree(99)=%v", got)
	}
}

func TestOverheadAccounting(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 500, NumEdges: 800,
		Communities: 25, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 8, EdgeSizeMean: 4, Seed: 9})
	s := Build(h)
	if s.BuildTime() <= 0 {
		t.Fatal("BuildTime not recorded")
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
	if s.Hypergraph() != h {
		t.Fatal("Hypergraph() identity lost")
	}
}

func BenchmarkBuild(b *testing.B) {
	h := gen.MustGenerate(gen.Config{Name: "b", NumVertices: 2000, NumEdges: 4000,
		Communities: 80, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 12, EdgeSizeMean: 6, Seed: 11})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(h)
	}
}

func BenchmarkConnected(b *testing.B) {
	h := gen.MustGenerate(gen.Config{Name: "b", NumVertices: 2000, NumEdges: 4000,
		Communities: 80, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 12, EdgeSizeMean: 6, Seed: 11})
	s := Build(h)
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]uint32, 1024)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(h.NumEdges())), uint32(rng.Intn(h.NumEdges()))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		s.Connected(p[0], p[1])
	}
}
