package engine

// Chaos tests: drive the checkpoint/resume machinery through injected
// failures (internal/faultinject) and require exact-count recovery every
// time. These run race-instrumented via `make chaos` (wired into `make
// ci`); every fault point is derived deterministically from the table seed,
// so a failure replays identically.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/faultinject"
)

const chaosTick = 2 * time.Millisecond

// chaosOpts is the shared option block: both scheduler paths get the same
// throttled workload so each run spans many checkpoint periods. The 100µs
// throttle stretches the 3540-embedding workload to >100ms of wall time:
// a checkpoint costs a full quiesce/restart cycle, and under heavy load
// (race-instrumented CI) a cycle can take tens of milliseconds, so the run
// must be long enough to fit every derived fault point with margin.
func chaosOpts(split int, sink checkpoint.Sink) Options {
	return Options{
		Workers:         3,
		SplitDepth:      split,
		SplitThreshold:  2,
		Checkpoint:      sink,
		CheckpointEvery: chaosTick,
		OnEmbedding:     faultinject.SlowEmbedding(100 * time.Microsecond),
	}
}

// TestChaosKillAtKthCheckpoint kills the run (context cancellation — the
// SIGKILL stand-in: everything after the last durable snapshot is lost)
// right after the k-th checkpoint lands on disk, then resumes from the file
// and requires the exact uninterrupted total. Several kill points, both
// scheduler paths, and a second resume of the same snapshot to prove
// idempotence.
func TestChaosKillAtKthCheckpoint(t *testing.T) {
	store, p, want := slowWorkload(t)
	for _, split := range []int{0, -1} {
		for seed := uint64(1); seed <= 3; seed++ {
			// Capped at 3: every run reliably reaches 3 checkpoints even
			// when a loaded machine stretches each quiesce cycle.
			killAt := int(faultinject.Derive(seed, "kill", 3))
			t.Run(fmt.Sprintf("split=%d/killAt=%d", split, killAt), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				sink := &faultinject.CrashSink{
					Inner:   &checkpoint.FileSink{Path: path},
					After:   killAt,
					OnCrash: cancel,
				}
				res1, err := MineContext(ctx, store, p, chaosOpts(split, sink))
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("kill missed: err=%v after %d writes", err, sink.Writes())
				}
				if !res1.Truncated {
					t.Error("killed run not Truncated")
				}
				if res1.Ordered >= want {
					t.Fatalf("kill came after completion (%d >= %d); cannot exercise resume", res1.Ordered, want)
				}

				snap, err := checkpoint.ReadFile(path)
				if err != nil {
					t.Fatalf("read snapshot: %v", err)
				}
				for attempt := 1; attempt <= 2; attempt++ {
					res, err := ResumeFromCheckpoint(context.Background(), store, p,
						snap, chaosOpts(split, nil))
					if err != nil {
						t.Fatalf("resume attempt %d: %v", attempt, err)
					}
					if res.Ordered != want {
						t.Errorf("resume attempt %d: total %d, want %d (snapshot carried %d)",
							attempt, res.Ordered, want, snap.Ordered)
					}
					if res.Truncated {
						t.Errorf("resume attempt %d: completed run Truncated", attempt)
					}
				}
			})
		}
	}
}

// TestChaosTornCheckpointRejected tears the snapshot file mid-write (the
// corruption a non-atomic writer leaves on power loss) at several tear
// lengths; the loader must reject every torn file as corrupt — resuming
// from garbage would be worse than starting over.
func TestChaosTornCheckpointRejected(t *testing.T) {
	store, p, _ := slowWorkload(t)
	for seed := uint64(1); seed <= 4; seed++ {
		// Max tear length stays below the smallest complete snapshot (~204
		// bytes for a one-task frontier), so every torn file is truly short.
		tearBytes := int(faultinject.Derive(seed, "tear", 150))
		t.Run(fmt.Sprintf("tearBytes=%d", tearBytes), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			sink := &faultinject.TornSink{Path: path, TearAt: 2, TearBytes: tearBytes}
			crash := &faultinject.CrashSink{Inner: sink, After: 2, OnCrash: cancel}
			if _, err := MineContext(ctx, store, p, chaosOpts(0, crash)); !errors.Is(err, context.Canceled) {
				t.Fatalf("kill missed: %v", err)
			}
			if _, err := checkpoint.ReadFile(path); !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("torn snapshot (%d bytes) not rejected as corrupt: %v", tearBytes, err)
			}
		})
	}
}

// TestChaosPanicThenResume crashes a worker mid-run with an injected panic
// (a buggy user callback). The run must surface ErrWorkerPanic — with the
// deferred emitMu release, not a deadlock — and the last snapshot written
// before the panic must resume to the exact total: the partial work of the
// crashed round is lost, never double-counted.
func TestChaosPanicThenResume(t *testing.T) {
	store, p, want := slowWorkload(t)
	// Fault points live in callback space: the symmetry-broken plan fires
	// OnEmbedding once per orbit, so the run makes want/|Aut| calls total.
	calls := want / uint64(p.Automorphisms())
	for _, split := range []int{0, -1} {
		for seed := uint64(1); seed <= 2; seed++ {
			// Late enough that checkpoints exist, early enough to lose work.
			panicAt := 500 + faultinject.Derive(seed, "panic", calls-1000)
			t.Run(fmt.Sprintf("split=%d/panicAt=%d", split, panicAt), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				opts := chaosOpts(split, &checkpoint.FileSink{Path: path})
				opts.OnEmbedding = faultinject.PanicAfter(panicAt,
					faultinject.SlowEmbedding(100*time.Microsecond))
				res, err := Mine(store, p, opts)
				if !errors.Is(err, ErrWorkerPanic) {
					t.Fatalf("err=%v, want ErrWorkerPanic", err)
				}
				if !res.Truncated {
					t.Error("panicked run not Truncated")
				}
				if _, err := os.Stat(path); err != nil {
					t.Skipf("panic landed before the first checkpoint (%v); nothing to resume", err)
				}
				snap, err := checkpoint.ReadFile(path)
				if err != nil {
					t.Fatalf("read snapshot: %v", err)
				}
				got, err := ResumeFromCheckpoint(context.Background(), store, p,
					snap, chaosOpts(split, nil))
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if got.Ordered != want {
					t.Errorf("resumed total %d, want %d (snapshot carried %d)", got.Ordered, want, snap.Ordered)
				}
			})
		}
	}
}

// TestChaosFullDisk: persistent checkpoint failure (ENOSPC) must never
// change the mining result — the run completes exact with the failures
// merely counted.
func TestChaosFullDisk(t *testing.T) {
	store, p, want := slowWorkload(t)
	for _, split := range []int{0, -1} {
		sink := &faultinject.NoSpaceSink{}
		res, err := Mine(store, p, chaosOpts(split, sink))
		if err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		if res.Ordered != want || res.Truncated {
			t.Errorf("split=%d: Ordered=%d Truncated=%v, want %d/false", split, res.Ordered, res.Truncated, want)
		}
		if sink.Attempts() == 0 || res.Stats.CheckpointErrors != sink.Attempts() {
			t.Errorf("split=%d: %d refused writes, stats count %d", split, sink.Attempts(), res.Stats.CheckpointErrors)
		}
	}
}
