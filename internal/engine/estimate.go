package engine

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// Estimate holds an approximate embedding count (the sampling-based
// direction of ASAP/Arya from the paper's related work, applied to the
// overlap-centric engine as an extension).
type Estimate struct {
	// Ordered is the estimated ordered-embedding count.
	Ordered float64
	// Unique is Ordered / automorphisms.
	Unique float64
	// StdErr is the standard error of the Ordered estimate under uniform
	// root sampling.
	StdErr float64
	// SampledRoots / TotalRoots describe the sample.
	SampledRoots int
	TotalRoots   int
	Elapsed      time.Duration
}

// EstimateCount approximates the embedding count by mining the complete
// subtrees of a uniform sample of first-hyperedge candidates ("roots") and
// scaling by the inverse sampling fraction. fraction ∈ (0, 1]; fraction 1
// degenerates to an exact count. Deterministic in seed.
func EstimateCount(store *dal.Store, p *pattern.Pattern, fraction float64, seed int64, opts Options) (Estimate, error) {
	if fraction <= 0 || fraction > 1 {
		return Estimate{}, errors.New("engine: fraction must be in (0, 1]")
	}
	mode := oig.ModeMerged
	if opts.Val == ValOverlapSimple {
		mode = oig.ModeSimple
	}
	// The estimator's per-root scaling and variance math are defined over
	// ordered tuples, so the plan is always compiled without
	// symmetry-breaking restrictions.
	plan, err := oig.CompileWith(p, mode, oig.CompileOptions{NoRestrictions: true})
	if err != nil {
		return Estimate{}, err
	}
	start := time.Now()

	// Limits would interact with the scaling; estimation always mines the
	// sampled subtrees to completion.
	opts.Limit = 0
	e := &shared{store: store, plan: plan, opts: opts, kernel: opts.Kernel}
	if e.kernel.Intersect == nil {
		e.kernel = intset.Adaptive
	}
	roots := e.firstCandidates()
	n := len(roots)
	est := Estimate{TotalRoots: n}
	aut := plan.Pattern.Automorphisms()
	if n == 0 {
		est.Elapsed = time.Since(start)
		return est, nil
	}

	k := int(math.Ceil(fraction * float64(n)))
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	// Partial Fisher–Yates: uniform sample without replacement.
	sample := append([]uint32(nil), roots...)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		sample[i], sample[j] = sample[j], sample[i]
	}
	sample = sample[:k]

	// Mine each sampled root's complete subtree.
	w := newWorker(e, nil)
	perRoot := make([]float64, k)
	var total uint64
	for i, root := range sample {
		before := w.count
		w.mineFrom(root)
		perRoot[i] = float64(w.count - before)
		total = w.count
	}

	scale := float64(n) / float64(k)
	est.Ordered = float64(total) * scale
	est.Unique = est.Ordered / float64(aut)
	est.SampledRoots = k
	if k > 1 {
		mean := float64(total) / float64(k)
		var ss float64
		for _, c := range perRoot {
			d := c - mean
			ss += d * d
		}
		variance := ss / float64(k-1)
		// Finite-population correction for sampling without replacement.
		fpc := float64(n-k) / float64(n-1)
		est.StdErr = float64(n) * math.Sqrt(variance*fpc/float64(k))
	}
	est.Elapsed = time.Since(start)
	return est, nil
}
