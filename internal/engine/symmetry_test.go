package engine

// Tests for the symmetry-breaking compiler pass end-to-end: restricted and
// unrestricted plans must agree with each other and with the brute-force
// oracle on every shape, truncated restricted runs must report exact Unique
// counts, and the checkpoint layer must refuse to mix the two counting
// spaces.

import (
	"math/rand"
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// TestSymmetryDifferentialShapes sweeps every 2- and 3-hyperedge shape,
// mining each realization with restrictions on and off across both
// scheduler paths and all three kernel families: Ordered and Unique must
// match the brute-force oracle (and each other) everywhere. This is the
// differential proof that enforcing the stabilizer-chain restrictions
// changes the work, never the answer.
func TestSymmetryDifferentialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	h := randHypergraph(rng, false)
	store := dal.Build(h)
	for _, k := range []int{2, 3} {
		shapes, err := pattern.EnumerateShapes(k, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shapes {
			p, err := s.Pattern()
			if err != nil {
				t.Fatal(err)
			}
			want := bruteforce.Count(h, p)
			aut := uint64(p.Automorphisms())
			for _, norestrict := range []bool{false, true} {
				plan, err := oig.CompileWith(p, oig.ModeMerged, oig.CompileOptions{NoRestrictions: norestrict})
				if err != nil {
					t.Fatalf("shape %s: %v", s.Key(), err)
				}
				wantRestricted := !norestrict && aut > 1
				if plan.Restricted != wantRestricted {
					t.Fatalf("shape %s: Restricted=%v with NoRestrictions=%v (aut=%d)",
						s.Key(), plan.Restricted, norestrict, aut)
				}
				for _, kernel := range []intset.Kernel{intset.Adaptive, intset.Fast, intset.Scalar} {
					for _, split := range []int{0, -1} {
						res, err := MineWithPlan(store, plan, Options{Workers: 2, Kernel: kernel, SplitDepth: split})
						if err != nil {
							t.Fatalf("shape %s norestrict=%v: %v", s.Key(), norestrict, err)
						}
						if res.Ordered != want || res.Unique != want/aut || res.UniqueRemainder != 0 {
							t.Fatalf("shape %s norestrict=%v kernel=%s split=%d: Ordered=%d Unique=%d rem=%d, want %d/%d/0\npattern %s",
								s.Key(), norestrict, kernel.Name, split, res.Ordered, res.Unique, res.UniqueRemainder, want, want/aut, p)
						}
						if res.Restricted != wantRestricted {
							t.Fatalf("shape %s: result Restricted=%v under NoRestrictions=%v", s.Key(), res.Restricted, norestrict)
						}
					}
				}
			}
		}
	}
}

// TestTruncatedUniqueCounts is the regression test for the truncated-run
// Unique bug: a limit landing mid-orbit on a symmetric pattern. The
// restricted run counts orbits directly, so Unique is exact at any cut; the
// legacy unrestricted run cannot split an orbit silently — the remainder
// must surface in UniqueRemainder instead of being floored away.
func TestTruncatedUniqueCounts(t *testing.T) {
	store, p, want := slowWorkload(t) // star data, chain2 pattern, |Aut| = 2
	if aut := p.Automorphisms(); aut != 2 {
		t.Fatalf("workload pattern has %d automorphisms, want 2", aut)
	}
	const limit = 7 // odd: guaranteed mid-orbit in ordered space

	// Restricted: 7 enumerated canonical tuples = 7 exact unique embeddings.
	res, err := Mine(store, p, Options{Workers: 1, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Restricted || !res.Truncated {
		t.Fatalf("restricted=%v truncated=%v, want true/true", res.Restricted, res.Truncated)
	}
	if res.Unique != limit || res.Ordered != limit*2 || res.UniqueRemainder != 0 {
		t.Errorf("restricted: Unique=%d Ordered=%d rem=%d, want %d/%d/0",
			res.Unique, res.Ordered, res.UniqueRemainder, limit, limit*2)
	}

	// Legacy: 7 enumerated ordered tuples floor to 3 unique with the odd
	// tuple flagged, and the identity Unique*aut+rem == Ordered holds.
	res, err = Mine(store, p, Options{Workers: 1, Limit: limit, NoSymmetryBreak: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restricted || !res.Truncated {
		t.Fatalf("legacy: restricted=%v truncated=%v, want false/true", res.Restricted, res.Truncated)
	}
	if res.Ordered != limit {
		t.Fatalf("legacy: Ordered=%d, want exactly %d (single worker)", res.Ordered, limit)
	}
	if res.Unique != limit/2 || res.UniqueRemainder != 1 {
		t.Errorf("legacy: Unique=%d rem=%d, want %d/1", res.Unique, res.UniqueRemainder, limit/2)
	}
	if res.Unique*2+res.UniqueRemainder != res.Ordered {
		t.Errorf("legacy: Unique*aut+rem = %d, want Ordered=%d", res.Unique*2+res.UniqueRemainder, res.Ordered)
	}

	// Complete runs agree across both modes and match the oracle.
	for _, nsb := range []bool{false, true} {
		res, err := Mine(store, p, Options{Workers: 2, NoSymmetryBreak: nsb})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ordered != want || res.Unique != want/2 || res.UniqueRemainder != 0 {
			t.Errorf("complete nsb=%v: Ordered=%d Unique=%d rem=%d, want %d/%d/0",
				nsb, res.Ordered, res.Unique, res.UniqueRemainder, want, want/2)
		}
	}
}

// TestSnapshotRejectsCountingSpaceMismatch: a snapshot fingerprinted by an
// unrestricted plan must not resume onto a restricted one (and vice versa) —
// the two count in different spaces — and a restricted plan must refuse a
// snapshot whose ordered total is not a whole number of orbits.
func TestSnapshotRejectsCountingSpaceMismatch(t *testing.T) {
	store, p, _ := slowWorkload(t)
	restricted, err := oig.Compile(p, oig.ModeMerged)
	if err != nil {
		t.Fatal(err)
	}
	if !restricted.Restricted {
		t.Fatal("default compile of a symmetric pattern is not restricted")
	}
	legacy, err := oig.CompileWith(p, oig.ModeMerged, oig.CompileOptions{NoRestrictions: true})
	if err != nil {
		t.Fatal(err)
	}
	if oig.Fingerprint(restricted) == oig.Fingerprint(legacy) {
		t.Fatal("restricted and unrestricted plans share a fingerprint")
	}

	mkSnap := func(plan *oig.Plan, ordered uint64) *checkpoint.Snapshot {
		return &checkpoint.Snapshot{
			Seq:     1,
			PlanFP:  planFingerprint(plan),
			GraphFP: store.Hypergraph().Fingerprint(),
			Ordered: ordered,
			Frontier: []checkpoint.Task{
				{Depth: 0, Cands: []uint32{0, 1, 2}},
			},
		}
	}

	// Cross-space resume attempts: both directions must fail validation.
	if err := ValidateSnapshot(store, restricted, mkSnap(legacy, 10)); err == nil {
		t.Error("restriction-less snapshot accepted by a restricted plan")
	}
	if err := ValidateSnapshot(store, legacy, mkSnap(restricted, 10)); err == nil {
		t.Error("restricted snapshot accepted by an unrestricted plan")
	}

	// Matching fingerprints still reject a non-orbit-multiple counter.
	if err := ValidateSnapshot(store, restricted, mkSnap(restricted, 11)); err == nil {
		t.Error("restricted plan accepted Ordered=11 with |Aut|=2")
	}
	if err := ValidateSnapshot(store, restricted, mkSnap(restricted, 10)); err != nil {
		t.Errorf("valid restricted snapshot rejected: %v", err)
	}
}
