package engine

// Task-range seeding: the pieces of the mining driver that the distributed
// layer (internal/cluster) needs as standalone steps. A single-node run
// compiles a plan, enumerates the candidates of the first pattern hyperedge,
// and explores them; a cluster coordinator performs exactly the first two
// steps, partitions the candidate pool into depth-0 frontier tasks, and
// ships each range to a worker as an OHMC snapshot (the checkpoint wire
// format). The frontier tasks partition the search space, so per-range
// counts merged exactly once equal the single-node total — the same
// invariant checkpoint/resume rests on, extracted from that machinery.

import (
	"fmt"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// CompilePlan compiles the execution plan Mine/MineContext would use for
// (store, p, opts): the plan mode follows opts.Val and the matching order
// follows opts.DataAwareOrder. Extracted so checkpoint resume and cluster
// workers compile plans whose fingerprints provably match the original
// run's — a lease or snapshot produced against this plan validates against
// an independently compiled one on any node holding the same store.
func CompilePlan(store *dal.Store, p *pattern.Pattern, opts Options) (*oig.Plan, error) {
	mode := oig.ModeMerged
	if opts.Val == ValOverlapSimple {
		mode = oig.ModeSimple
	}
	co := oig.CompileOptions{
		// Anchored counting (PositionFilter) must see every ordered tuple:
		// a restriction can kill the one orbit member the filter accepts.
		NoRestrictions: opts.NoSymmetryBreak || opts.PositionFilter != nil,
	}
	if opts.DataAwareOrder {
		co.Order = dataAwareOrder(store, p)
	}
	plan, err := oig.CompileWith(p, mode, co)
	if err != nil {
		return nil, err
	}
	applyContainerHints(store, plan)
	// Re-verify after the hint pass: hints are excluded from the semantic
	// fingerprint (perf-only), so this both asserts the hint rules
	// (bitmap hints need an Edge operand) and proves no counting-relevant
	// field drifted.
	if err := oig.VerifyProgram(plan); err != nil {
		return nil, fmt.Errorf("engine: container-hint pass produced an invalid plan: %w", err)
	}
	return plan, nil
}

// applyContainerHints refines every op's container hint from the DAL's
// density statistics: for each hyperedge operand the op reads, the degree
// class of the matching-order position it binds tells how often a candidate
// vertex set is bitmap-backed. A class that is mostly windowed makes the
// op's edge operands worth resolving through the container arena
// (HintBitmap); classes with no windows at all make the metadata lookup
// pure overhead (HintArray); mixed classes stay HintAuto. Hints never
// change results — only which resolution path the workers take — so they
// are applied after compilation and excluded from the plan fingerprint.
func applyContainerHints(store *dal.Store, plan *oig.Plan) {
	// One fraction per matching-order position (= per degree class).
	frac := make([]float64, len(plan.Steps))
	for t := range plan.Steps {
		frac[t] = store.EdgeWindowFrac(plan.Steps[t].Degree)
	}
	edgeFrac := func(o oig.Operand, lo, hi float64) (float64, float64) {
		if o.Edge {
			f := frac[o.Pos]
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		return lo, hi
	}
	for t := range plan.Steps {
		for i := range plan.Steps[t].Ops {
			op := &plan.Steps[t].Ops[i]
			lo, hi := 1.0, -1.0
			lo, hi = edgeFrac(op.A, lo, hi)
			switch op.Kind {
			case oig.OpIntersect, oig.OpIntersectEq, oig.OpEmptyCheck, oig.OpSubsetCheck, oig.OpIntersectCount:
				lo, hi = edgeFrac(op.B, lo, hi)
			}
			switch op.Kind {
			case oig.OpIntersectEq, oig.OpEqCheck:
				lo, hi = edgeFrac(op.Eq, lo, hi)
			}
			switch {
			case hi < 0:
				// No hyperedge operands (slot-only op): arrays by definition.
				op.Hint = oig.HintArray
			case hi == 0:
				// No candidate of any referenced degree class is windowed.
				op.Hint = oig.HintArray
			case lo >= 0.5:
				op.Hint = oig.HintBitmap
			default:
				op.Hint = oig.HintAuto
			}
		}
	}
}

// FirstCandidates enumerates the candidate pool of the first pattern
// hyperedge — every data hyperedge passing the degree, label, and
// PositionFilter constraints — exactly as the mining driver seeds it. The
// returned slice is freshly allocated and safe to retain or repartition.
func FirstCandidates(store *dal.Store, plan *oig.Plan, opts Options) []uint32 {
	e := &shared{store: store, plan: plan, opts: opts}
	cands := e.firstCandidates()
	// firstCandidates may return the DAL's shared degree-index storage when
	// no filtering applies; copy so callers own what they hold.
	return append([]uint32(nil), cands...)
}

// PartitionFrontier splits a first-position candidate pool into at most
// parts contiguous depth-0 frontier tasks of near-equal candidate count.
// Each task is independently minable (ResumeWithPlanContext over a snapshot
// holding just that task), and together they cover the pool exactly once.
func PartitionFrontier(cands []uint32, parts int) []checkpoint.Task {
	if len(cands) == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > len(cands) {
		parts = len(cands)
	}
	per := (len(cands) + parts - 1) / parts
	out := make([]checkpoint.Task, 0, parts)
	for i := 0; i < len(cands); i += per {
		end := i + per
		if end > len(cands) {
			end = len(cands)
		}
		out = append(out, checkpoint.Task{
			Cands: append([]uint32(nil), cands[i:end]...),
		})
	}
	return out
}

// PlanFingerprint exposes the snapshot plan fingerprint (pattern structure,
// labels, matching order, plan mode) so the cluster coordinator can stamp
// the OHMC snapshots it leases out; workers then get the same
// wrong-plan/wrong-dataset protection resume has.
func PlanFingerprint(plan *oig.Plan) uint64 { return planFingerprint(plan) }

// PackStats flattens the Stats counters into the opaque slice snapshots and
// cluster task reports carry; UnpackStats inverts it.
func PackStats(s Stats) []uint64 { return packStats(s) }

// UnpackStats is the inverse of PackStats.
func UnpackStats(vs []uint64) Stats { return unpackStats(vs) }
