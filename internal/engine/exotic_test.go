package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// exoticPatterns are handcrafted to hit the merged compiler's rare paths,
// which random sampling almost never produces:
//
//   - nested hyperedges (pe1 ⊂ pe0): subset checks replace intersections;
//   - a hyperedge equal to an overlap (pe2 == pe0∩pe1): OpEqCheck;
//   - a class whose union covers a hyperedge outside all minimal members
//     (pe0∩pe1 == pe0∩pe1∩pe2 ⊊ pe0∩pe2): subset-completion OpSubsetCheck;
//   - two overlaps equal as sets with disjoint derivations: OpIntersectEq.
func exoticPatterns(t *testing.T) []*pattern.Pattern {
	t.Helper()
	return []*pattern.Pattern{
		// Nested: pe1 inside pe0.
		pattern.MustNew([][]uint32{{0, 1, 2, 3}, {1, 2}}, nil),
		// Doubly nested chain.
		pattern.MustNew([][]uint32{{0, 1, 2, 3, 4}, {1, 2, 3}, {2, 3}}, nil),
		// pe2 equals the overlap of pe0 and pe1.
		pattern.MustNew([][]uint32{{0, 1, 2, 3}, {2, 3, 4, 5}, {2, 3}}, nil),
		// Subset completion: pe0∩pe1 = {3,4} = triple overlap, but
		// pe0∩pe2 and pe1∩pe2 are strictly larger.
		pattern.MustNew([][]uint32{
			{1, 2, 3, 4},
			{3, 4, 5, 6},
			{2, 3, 4, 5, 9},
		}, nil),
		// Equal overlaps from disjoint pairs: pe0∩pe1 == pe2∩pe3 == {4,5}.
		pattern.MustNew([][]uint32{
			{0, 1, 4, 5},
			{2, 3, 4, 5},
			{4, 5, 6, 7},
			{4, 5, 8, 9},
		}, nil),
	}
}

// TestExoticPatternsDifferential mines each exotic pattern on random
// hypergraphs seeded with genuine embeddings and near-misses, across all
// variants and both plan modes, against brute force.
func TestExoticPatternsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for pi, p := range exoticPatterns(t) {
		// Plans must verify structurally.
		for _, mode := range []oig.Mode{oig.ModeSimple, oig.ModeMerged} {
			plan, err := oig.Compile(p, mode)
			if err != nil {
				t.Fatalf("pattern %d: %v", pi, err)
			}
			if err := oig.Verify(plan); err != nil {
				t.Fatalf("pattern %d mode %s: %v", pi, mode, err)
			}
		}
		for trial := 0; trial < 6; trial++ {
			h := plantedHypergraph(rng, p)
			store := dal.Build(h)
			want := bruteforce.Count(h, p)
			if trial == 0 && want == 0 {
				t.Logf("pattern %d trial 0: no planted embedding survived (acceptable)", pi)
			}
			for _, v := range Variants() {
				res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 1})
				if err != nil {
					t.Fatalf("pattern %d %s: %v", pi, v.Name, err)
				}
				if res.Ordered != want {
					t.Fatalf("pattern %d trial %d %s: Ordered=%d want %d\npattern: %s\nplan:\n%s",
						pi, trial, v.Name, res.Ordered, want, p, res.Plan)
				}
			}
		}
	}
}

// plantedHypergraph embeds a vertex-renamed copy of the pattern into random
// noise, plus "near miss" copies with one vertex perturbed, so both the
// accept and reject paths of every plan op are exercised.
func plantedHypergraph(rng *rand.Rand, p *pattern.Pattern) *hypergraph.Hypergraph {
	const nv = 40
	var edges [][]uint32
	// Noise.
	for i := 0; i < 25; i++ {
		sz := 2 + rng.Intn(4)
		e := make([]uint32, sz)
		for j := range e {
			e[j] = uint32(rng.Intn(nv))
		}
		edges = append(edges, e)
	}
	// Planted copy with a random injective vertex renaming.
	perm := rng.Perm(nv)
	for i := 0; i < p.NumEdges(); i++ {
		e := make([]uint32, 0, p.Degree(i))
		for _, u := range p.Edge(i) {
			e = append(e, uint32(perm[u]))
		}
		edges = append(edges, e)
	}
	// Near-miss copy: same renaming shifted by one on a single vertex of
	// one edge (breaks one overlap size).
	perm2 := rng.Perm(nv)
	for i := 0; i < p.NumEdges(); i++ {
		e := make([]uint32, 0, p.Degree(i))
		for k, u := range p.Edge(i) {
			v := uint32(perm2[u])
			if i == 0 && k == 0 {
				v = uint32(perm2[(int(u)+1)%p.NumVertices()])
			}
			e = append(e, v)
		}
		edges = append(edges, e)
	}
	h, err := hypergraph.Build(nv, edges, nil)
	if err != nil {
		panic(err)
	}
	return h
}
