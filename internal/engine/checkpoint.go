package engine

// Crash-safe checkpoint/resume support. A long mining run periodically
// quiesces its workers at a safe point (the per-candidate stop check they
// already pay for), captures the global frontier — every unexplored subtree
// task, i.e. the queued deque/overflow tasks plus the remainder each worker
// walked away from while unwinding — together with the partial counters,
// and hands the snapshot to the configured checkpoint.Sink. The frontier
// tasks partition the unexplored search space exactly, so the counts of a
// resumed run are provably neither lost nor double-counted: every ordered
// embedding is either already in Snapshot.Ordered or reachable from exactly
// one frontier task.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// planFingerprint hashes everything that fixes the meaning of a frontier
// task. It delegates to the IR verifier's semantic fingerprint, which covers
// the pattern structure rendered in matching order, the vertex and hyperedge
// labels, the matching-order permutation, the plan mode, and every compiled
// step and operation that affects counting. A snapshot resumed against a
// plan with a different fingerprint would interpret bound prefixes against
// the wrong positions (or validate them against the wrong checks), so
// resume refuses it. Compilation is deterministic, so two nodes compiling
// the same (pattern, mode, order) agree on the fingerprint.
func planFingerprint(plan *oig.Plan) uint64 {
	return oig.Fingerprint(plan)
}

// packStats flattens the Stats counters into the opaque slice a snapshot
// carries; unpackStats inverts it. The order is part of the snapshot format
// (bump checkpoint.Version when it changes); new counters are appended at
// the end, which unpackStats tolerates missing, so old snapshots resume
// with those counters zeroed instead of failing.
func packStats(s Stats) []uint64 {
	return []uint64{
		s.Candidates, s.Embeddings, s.SetOps,
		s.NMFetches, s.RedundantNMFetches,
		s.ProfileVertices, s.RedundantProfileVertices,
		uint64(s.GenTime), uint64(s.ValTime),
		s.Publishes, s.Steals, s.IdleSpins,
		s.Checkpoints, s.CheckpointBytes, s.CheckpointErrors,
		s.KernelArray, s.KernelBitmap, s.KernelMixed,
	}
}

func unpackStats(vs []uint64) Stats {
	var s Stats
	dst := []*uint64{
		&s.Candidates, &s.Embeddings, &s.SetOps,
		&s.NMFetches, &s.RedundantNMFetches,
		&s.ProfileVertices, &s.RedundantProfileVertices,
		nil, nil, // GenTime/ValTime handled below
		&s.Publishes, &s.Steals, &s.IdleSpins,
		&s.Checkpoints, &s.CheckpointBytes, &s.CheckpointErrors,
		&s.KernelArray, &s.KernelBitmap, &s.KernelMixed,
	}
	for i, v := range vs {
		if i >= len(dst) {
			break
		}
		switch i {
		case 7:
			s.GenTime = time.Duration(v)
		case 8:
			s.ValTime = time.Duration(v)
		default:
			*dst[i] = v
		}
	}
	return s
}

// ValidateSnapshot checks that snap can be resumed against (store, plan):
// matching fingerprints plus structural bounds on every frontier task, so a
// snapshot that passed its CRC but was written for different inputs (or
// hand-edited) is rejected with a descriptive error instead of causing
// out-of-range panics during mining.
func ValidateSnapshot(store *dal.Store, plan *oig.Plan, snap *checkpoint.Snapshot) error {
	// Verify the plan itself before trusting the snapshot's fingerprint
	// comparison: a plan corrupted after compilation (or a miscompiled one)
	// must be rejected with the IR verifier's diagnostic rather than mine to
	// a silent miscount.
	if err := oig.VerifyProgram(plan); err != nil {
		return fmt.Errorf("engine: refusing to resume onto an invalid plan: %w", err)
	}
	if got, want := snap.PlanFP, planFingerprint(plan); got != want {
		return fmt.Errorf("engine: snapshot was written for a different plan (fingerprint %#x, want %#x): pattern, labels, matching order, and validation mode must all match", got, want)
	}
	if got, want := snap.GraphFP, store.Hypergraph().Fingerprint(); got != want {
		return fmt.Errorf("engine: snapshot was written for a different data hypergraph (fingerprint %#x, want %#x)", got, want)
	}
	if plan.Restricted {
		// Restricted plans count whole orbits: a valid snapshot's ordered
		// total is always a multiple of |Aut|. A remainder means the counter
		// was corrupted or written in a different counting space.
		if aut := uint64(plan.Pattern.Automorphisms()); snap.Ordered%aut != 0 {
			return fmt.Errorf("engine: snapshot Ordered=%d is not a multiple of the pattern's %d automorphisms; a symmetry-broken run counts whole orbits, so the counter is corrupt or from an incompatible counting space", snap.Ordered, aut)
		}
	}
	m := plan.Pattern.NumEdges()
	ne := uint32(store.Hypergraph().NumEdges())
	for i := range snap.Frontier {
		t := &snap.Frontier[i]
		if int(t.Depth) >= m {
			return fmt.Errorf("engine: snapshot frontier task %d at depth %d exceeds the %d-hyperedge pattern", i, t.Depth, m)
		}
		if len(t.Prefix) != int(t.Depth) {
			return fmt.Errorf("engine: snapshot frontier task %d has a %d-long prefix for depth %d", i, len(t.Prefix), t.Depth)
		}
		for _, id := range t.Prefix {
			if id >= ne {
				return fmt.Errorf("engine: snapshot frontier task %d binds hyperedge %d, beyond the %d hyperedges of the data", i, id, ne)
			}
		}
		for _, id := range t.Cands {
			if id >= ne {
				return fmt.Errorf("engine: snapshot frontier task %d lists candidate %d, beyond the %d hyperedges of the data", i, id, ne)
			}
		}
	}
	return nil
}

// ResumeFromCheckpoint compiles the plan for (p, opts) — exactly as
// MineContext would — and continues the interrupted run the snapshot
// captured. The returned Result accumulates on top of the snapshot's
// counters: its Ordered includes every embedding counted before the crash,
// so a resumed run that finishes reports the same totals as an
// uninterrupted one.
func ResumeFromCheckpoint(ctx context.Context, store *dal.Store, p *pattern.Pattern, snap *checkpoint.Snapshot, opts Options) (Result, error) {
	plan, err := CompilePlan(store, p, opts)
	if err != nil {
		return Result{}, err
	}
	return ResumeWithPlanContext(ctx, store, plan, snap, opts)
}

// ResumeWithPlanContext is ResumeFromCheckpoint over a precompiled plan
// (which must be the plan the snapshot fingerprints).
func ResumeWithPlanContext(ctx context.Context, store *dal.Store, plan *oig.Plan, snap *checkpoint.Snapshot, opts Options) (Result, error) {
	if snap == nil {
		return Result{}, errors.New("engine: resume needs a snapshot")
	}
	if err := ValidateSnapshot(store, plan, snap); err != nil {
		return Result{}, err
	}
	return mineResumable(ctx, store, plan, opts, snap)
}

// buildSnapshot assembles the serializable snapshot for the current quiesce
// point.
func (e *shared) buildSnapshot(seq uint64, frontier []task, ordered uint64, stats Stats) *checkpoint.Snapshot {
	fr := make([]checkpoint.Task, len(frontier))
	for i := range frontier {
		fr[i] = checkpoint.Task{
			Depth:  uint32(frontier[i].depth),
			Prefix: frontier[i].prefix,
			Cands:  frontier[i].cands,
		}
	}
	return &checkpoint.Snapshot{
		Seq:      seq,
		PlanFP:   planFingerprint(e.plan),
		GraphFP:  e.store.Hypergraph().Fingerprint(),
		Ordered:  ordered,
		Stats:    packStats(stats),
		Frontier: fr,
	}
}

// collectFrontier gathers every unexplored subtree after a quiesce: the
// remainders each worker saved while unwinding, plus whatever never left
// the distribution structures — queued deque and overflow tasks on the
// work-stealing path, or the unclaimed tail of the round's item list on the
// legacy path. Together these partition the unexplored search space.
func (e *shared) collectFrontier(ws []*worker, rs roundState, first []uint32, tasks []task) []task {
	var out []task
	for _, w := range ws {
		out = append(out, w.saved...)
		w.saved = nil
	}
	if rs.sched != nil {
		for i := range rs.sched.deques {
			out = rs.sched.deques[i].drainTasks(out)
		}
		rs.sched.ovMu.Lock()
		out = append(out, rs.sched.overflow...)
		rs.sched.overflow = nil
		rs.sched.ovMu.Unlock()
		return out
	}
	if tasks != nil {
		out = append(out, tasks[rs.claimed:]...)
	} else if int(rs.claimed) < len(first) {
		out = append(out, task{cands: append([]uint32(nil), first[rs.claimed:]...)})
	}
	return out
}
