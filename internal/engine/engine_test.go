package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// fig1 builds the running example of the paper: the Figure 1(b) hypergraph
// and the Figure 1(a) pattern, whose only embedding is {e1, e2, e3}.
func fig1(t *testing.T) (*dal.Store, *pattern.Pattern) {
	t.Helper()
	h := hypergraph.MustBuild(15, [][]uint32{
		{0, 1, 2, 3, 4, 5},         // e1
		{3, 4, 5, 6, 7, 8},         // e2
		{3, 4, 5, 6, 7, 9, 10, 11}, // e3
		{0, 1, 2, 9, 12, 13},       // e4
		{1, 3, 4, 5, 6, 7, 8, 14},  // e5
	}, nil)
	p := pattern.MustNew([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 9, 10, 11},
	}, nil)
	return dal.Build(h), p
}

func TestFig1AllVariants(t *testing.T) {
	store, p := fig1(t)
	want := bruteforce.Count(store.Hypergraph(), p)
	if want != 1 {
		t.Fatalf("brute force found %d ordered embeddings, want 1", want)
	}
	for _, v := range Variants() {
		res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Ordered != want {
			t.Errorf("%s: Ordered=%d want %d", v.Name, res.Ordered, want)
		}
		if res.Unique != 1 || res.Automorphisms != 1 {
			t.Errorf("%s: unique=%d aut=%d", v.Name, res.Unique, res.Automorphisms)
		}
	}
}

func randHypergraph(rng *rand.Rand, labeled bool) *hypergraph.Hypergraph {
	nv := 12 + rng.Intn(25)
	ne := 15 + rng.Intn(40)
	edges := make([][]uint32, ne)
	for i := range edges {
		sz := 2 + rng.Intn(5)
		for j := 0; j < sz; j++ {
			edges[i] = append(edges[i], uint32(rng.Intn(nv)))
		}
	}
	var labels []uint32
	if labeled {
		labels = make([]uint32, nv)
		for v := range labels {
			labels[v] = uint32(rng.Intn(3))
		}
	}
	h, err := hypergraph.Build(nv, edges, labels)
	if err != nil {
		panic(err)
	}
	return h
}

// TestDifferentialAllVariants is the central correctness test: every engine
// variant, all three kernel families, 1 and 3 workers, against the
// brute-force oracle on randomized hypergraphs and patterns.
func TestDifferentialAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		h := randHypergraph(rng, false)
		store := dal.Build(h)
		m := 2 + rng.Intn(3)
		p, err := pattern.Sample(h, m, 2, 30, rng)
		if err != nil {
			continue // graph too sparse for this pattern; fine
		}
		want := bruteforce.Count(h, p)
		for _, v := range Variants() {
			for _, kernel := range []intset.Kernel{intset.Adaptive, intset.Fast, intset.Scalar} {
				for _, workers := range []int{1, 3} {
					res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Kernel: kernel, Workers: workers})
					if err != nil {
						t.Fatalf("trial %d %s: %v", trial, v.Name, err)
					}
					if res.Ordered != want {
						t.Fatalf("trial %d %s kernel=%s workers=%d: Ordered=%d want %d\npattern %s\nplan:\n%s",
							trial, v.Name, kernel.Name, workers, res.Ordered, want, p, res.Plan)
					}
				}
			}
		}
	}
}

// TestDifferentialLabeled repeats the differential test on labeled inputs.
func TestDifferentialLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		h := randHypergraph(rng, true)
		store := dal.Build(h)
		p, err := pattern.Sample(h, 2+rng.Intn(2), 2, 30, rng)
		if err != nil {
			continue
		}
		want := bruteforce.Count(h, p)
		for _, v := range Variants() {
			res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 2})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.Name, err)
			}
			if res.Ordered != want {
				t.Fatalf("trial %d %s: Ordered=%d want %d (labeled)\npattern %s",
					trial, v.Name, res.Ordered, want, p)
			}
		}
	}
}

// TestDifferentialDense exercises dense patterns (Sec. 5.5), which stress
// the validation path with many overlaps.
func TestDifferentialDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 40, NumEdges: 60,
		Communities: 3, MemberOverlap: 1.5, EdgeSizeMin: 3, EdgeSizeMax: 8, EdgeSizeMean: 5, Seed: 77})
	store := dal.Build(h)
	for trial := 0; trial < 10; trial++ {
		p, err := pattern.SampleDense(h, 3, 3, 25, rng)
		if err != nil {
			t.Skip("dense sampling failed on tiny graph")
		}
		want := bruteforce.Count(h, p)
		for _, v := range Variants() {
			res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ordered != want {
				t.Fatalf("%s: Ordered=%d want %d for dense %s", v.Name, res.Ordered, want, p)
			}
		}
	}
}

func TestSingleEdgePattern(t *testing.T) {
	store, _ := fig1(t)
	p := pattern.MustNew([][]uint32{{0, 1, 2, 3, 4, 5}}, nil)
	res, err := Mine(store, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three degree-6 edges in the fixture.
	if res.Ordered != 3 {
		t.Fatalf("Ordered=%d want 3", res.Ordered)
	}
}

func TestAutomorphismAccounting(t *testing.T) {
	// A symmetric path pattern on a path-ish hypergraph: each unordered
	// embedding is found exactly Automorphisms() times.
	h := hypergraph.MustBuild(8, [][]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
	}, nil)
	store := dal.Build(h)
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil)
	res, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Automorphisms != 2 {
		t.Fatalf("automorphisms=%d", res.Automorphisms)
	}
	// Paths of 3 consecutive edges: (e0,e1,e2), (e1,e2,e3), (e2,e3,e4) →
	// 3 unique, 6 ordered.
	if res.Unique != 3 || res.Ordered != 6 {
		t.Fatalf("unique=%d ordered=%d", res.Unique, res.Ordered)
	}
}

func TestOnEmbedding(t *testing.T) {
	store, p := fig1(t)
	var got [][]uint32
	_, err := Mine(store, p, Options{Workers: 2, OnEmbedding: func(c []uint32) {
		got = append(got, append([]uint32(nil), c...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("callbacks: %d", len(got))
	}
	// The embedding must be {e1,e2,e3} = IDs {0,1,2} in matching order.
	seen := map[uint32]bool{}
	for _, e := range got[0] {
		seen[e] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("embedding %v", got[0])
	}
}

func TestLimit(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "t", NumVertices: 100, NumEdges: 300,
		Communities: 5, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 6, EdgeSizeMean: 3, Seed: 55})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(3))
	p, err := pattern.Sample(h, 2, 2, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Ordered < 10 {
		t.Skipf("workload too small (%d embeddings)", full.Ordered)
	}
	limited, err := Mine(store, p, Options{Workers: 1, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Ordered < 5 || limited.Ordered >= full.Ordered {
		t.Fatalf("limited=%d full=%d", limited.Ordered, full.Ordered)
	}
}

func TestInstrumentStats(t *testing.T) {
	store, p := fig1(t)
	res, err := Mine(store, p, Options{Gen: GenHGMatch, Val: ValProfiles, Workers: 1, Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Candidates == 0 || st.ProfileVertices == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	if st.RedundantProfileVertices == 0 {
		t.Fatalf("expected redundant profile vertices on fig1: %+v", st)
	}
	if st.GenTime <= 0 || st.ValTime <= 0 {
		t.Fatalf("phase timers missing: %+v", st)
	}
	res2, err := Mine(store, p, Options{Gen: GenDAL, Val: ValOverlap, Workers: 1, Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.SetOps == 0 {
		t.Fatalf("overlap validation counted no set ops: %+v", res2.Stats)
	}
}

func TestMineErrors(t *testing.T) {
	store, p := fig1(t)
	// Mismatched plan mode.
	plan := oig.MustCompile(p, oig.ModeSimple)
	if _, err := MineWithPlan(store, plan, Options{Val: ValOverlap}); err == nil {
		t.Error("merged validation accepted simple plan")
	}
	plan2 := oig.MustCompile(p, oig.ModeMerged)
	if _, err := MineWithPlan(store, plan2, Options{Val: ValOverlapSimple}); err == nil {
		t.Error("simple validation accepted merged plan")
	}
	// Labeled pattern on unlabeled hypergraph.
	lp := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, []uint32{0, 0, 1})
	if _, err := Mine(store, lp, Options{}); err == nil {
		t.Error("labeled pattern accepted on unlabeled hypergraph")
	}
}

func TestVariantByName(t *testing.T) {
	v, err := VariantByName("OHM-V")
	if err != nil || v.Gen != GenHGMatch || v.Val != ValOverlap {
		t.Fatalf("%+v %v", v, err)
	}
	if _, err := VariantByName("nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestNoMatchingDegree(t *testing.T) {
	store, _ := fig1(t)
	p := pattern.MustNew([][]uint32{{0, 1, 2}}, nil) // degree 3: absent
	res, err := Mine(store, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered != 0 {
		t.Fatalf("Ordered=%d want 0", res.Ordered)
	}
}
