package engine

import (
	"math"
	"math/rand"
	"testing"

	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

func estimateFixture(t *testing.T) (*dal.Store, *pattern.Pattern, uint64) {
	t.Helper()
	h := gen.MustGenerate(gen.Config{Name: "est", NumVertices: 400, NumEdges: 1500,
		Communities: 20, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 8, EdgeSizeMean: 4, Seed: 71})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(5))
	p, err := pattern.Sample(h, 3, 3, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Ordered < 100 {
		t.Skipf("fixture too small: %d embeddings", exact.Ordered)
	}
	return store, p, exact.Ordered
}

func TestEstimateExactAtFullFraction(t *testing.T) {
	store, p, exact := estimateFixture(t)
	est, err := EstimateCount(store, p, 1.0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Ordered != float64(exact) {
		t.Fatalf("fraction=1 estimate %.0f != exact %d", est.Ordered, exact)
	}
	if est.SampledRoots != est.TotalRoots {
		t.Fatalf("sampled %d of %d at fraction 1", est.SampledRoots, est.TotalRoots)
	}
}

func TestEstimateConverges(t *testing.T) {
	store, p, exact := estimateFixture(t)
	// Average over several seeds: an unbiased estimator's mean should land
	// near the truth.
	var sum float64
	const seeds = 12
	for s := int64(0); s < seeds; s++ {
		est, err := EstimateCount(store, p, 0.3, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum += est.Ordered
		if est.StdErr < 0 {
			t.Fatalf("negative stderr: %+v", est)
		}
	}
	mean := sum / seeds
	if rel := math.Abs(mean-float64(exact)) / float64(exact); rel > 0.4 {
		t.Fatalf("mean estimate %.0f deviates %.0f%% from exact %d", mean, rel*100, exact)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	store, p, _ := estimateFixture(t)
	a, err := EstimateCount(store, p, 0.25, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateCount(store, p, 0.25, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ordered != b.Ordered || a.SampledRoots != b.SampledRoots {
		t.Fatalf("estimate not deterministic: %+v vs %+v", a, b)
	}
}

func TestEstimateErrors(t *testing.T) {
	store, p, _ := estimateFixture(t)
	for _, f := range []float64{0, -0.5, 1.5} {
		if _, err := EstimateCount(store, p, f, 1, Options{}); err == nil {
			t.Errorf("fraction %f accepted", f)
		}
	}
}

func TestEstimateNoRoots(t *testing.T) {
	store, _ := fig1(t)
	p := pattern.MustNew([][]uint32{{0, 1, 2}}, nil) // degree 3 absent
	est, err := EstimateCount(store, p, 0.5, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Ordered != 0 || est.TotalRoots != 0 {
		t.Fatalf("%+v", est)
	}
}
