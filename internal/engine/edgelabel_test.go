package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// TestEdgeLabeledBasics checks the hyperedge-labeled extension (Sec. 4.3.1)
// on a hand-built case: two hyperedges with identical vertex sets but
// different labels are distinct, and patterns select by label.
func TestEdgeLabeledBasics(t *testing.T) {
	h, err := hypergraph.BuildEdgeLabeled(6,
		[][]uint32{
			{0, 1, 2}, // label 0 ("meeting")
			{0, 1, 2}, // label 1 ("email")  — same vertices, kept distinct
			{2, 3, 4}, // label 0
			{2, 3, 5}, // label 1
		},
		nil,
		[]uint32{0, 1, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 4 || !h.EdgeLabeled() {
		t.Fatalf("built %s with %d edges", h, h.NumEdges())
	}
	store := dal.Build(h)

	// Unlabeled pattern: a pair of overlapping 3-vertex edges.
	up := pattern.MustNew([][]uint32{{0, 1, 2}, {2, 3, 4}}, nil)
	ur, err := Mine(store, up, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteforce.Count(h, up); ur.Ordered != want {
		t.Fatalf("unlabeled: %d want %d", ur.Ordered, want)
	}

	// Edge-labeled pattern: a label-0 edge overlapping a label-1 edge in
	// one vertex.
	lp, err := pattern.NewEdgeLabeled([][]uint32{{0, 1, 2}, {2, 3, 4}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Mine(store, lp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteforce.Count(h, lp); lr.Ordered != want {
		t.Fatalf("edge-labeled: %d want %d", lr.Ordered, want)
	}
	if lr.Ordered == 0 || lr.Ordered >= ur.Ordered {
		t.Fatalf("edge labels should prune: labeled=%d unlabeled=%d", lr.Ordered, ur.Ordered)
	}
}

// TestEdgeLabeledDifferential runs all variants against brute force on
// random hyperedge-labeled inputs.
func TestEdgeLabeledDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		nv := 10 + rng.Intn(20)
		ne := 15 + rng.Intn(30)
		edges := make([][]uint32, ne)
		elabels := make([]uint32, ne)
		for i := range edges {
			sz := 2 + rng.Intn(4)
			for j := 0; j < sz; j++ {
				edges[i] = append(edges[i], uint32(rng.Intn(nv)))
			}
			elabels[i] = uint32(rng.Intn(2))
		}
		h, err := hypergraph.BuildEdgeLabeled(nv, edges, nil, elabels)
		if err != nil {
			t.Fatal(err)
		}
		store := dal.Build(h)
		// Sample a structural pattern, then attach random edge labels.
		sp, err := pattern.Sample(h, 2+rng.Intn(2), 2, 25, rng)
		if err != nil {
			continue
		}
		pedges := make([][]uint32, sp.NumEdges())
		plabels := make([]uint32, sp.NumEdges())
		for i := range pedges {
			pedges[i] = sp.Edge(i)
			plabels[i] = uint32(rng.Intn(2))
		}
		p, err := pattern.NewEdgeLabeled(pedges, nil, plabels)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.Count(h, p)
		for _, v := range Variants() {
			res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 2})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.Name, err)
			}
			if res.Ordered != want {
				t.Fatalf("trial %d %s: Ordered=%d want %d (edge-labeled %s)",
					trial, v.Name, res.Ordered, want, p)
			}
		}
	}
}

func TestEdgeLabeledErrors(t *testing.T) {
	store, _ := fig1(t) // unlabeled hypergraph
	p, err := pattern.NewEdgeLabeled([][]uint32{{0, 1}, {1, 2}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(store, p, Options{}); err == nil {
		t.Fatal("edge-labeled pattern accepted on unlabeled hypergraph")
	}
}

func TestEdgeLabeledAutomorphisms(t *testing.T) {
	// Symmetric path: labels on the end edges break or keep the symmetry.
	sym, err := pattern.NewEdgeLabeled([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil, []uint32{5, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := sym.Automorphisms(); got != 2 {
		t.Fatalf("symmetric labels: automorphisms=%d want 2", got)
	}
	asym, err := pattern.NewEdgeLabeled([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil, []uint32{5, 9, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := asym.Automorphisms(); got != 1 {
		t.Fatalf("asymmetric labels: automorphisms=%d want 1", got)
	}
}

// TestDuplicateSetDistinctLabels: a pattern with two identical vertex sets
// under different labels is legal and matches pairs of co-extensive data
// hyperedges.
func TestDuplicateSetDistinctLabels(t *testing.T) {
	h, err := hypergraph.BuildEdgeLabeled(4,
		[][]uint32{{0, 1, 2}, {0, 1, 2}, {1, 2, 3}},
		nil, []uint32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	store := dal.Build(h)
	p, err := pattern.NewEdgeLabeled([][]uint32{{0, 1, 2}, {0, 1, 2}}, nil, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteforce.Count(h, p)
	if want != 1 {
		t.Fatalf("brute force: %d want 1", want)
	}
	for _, v := range Variants() {
		res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Ordered != want {
			t.Fatalf("%s: Ordered=%d want %d", v.Name, res.Ordered, want)
		}
	}
	// An unlabeled pattern with duplicate sets is still rejected.
	if _, err := pattern.New([][]uint32{{0, 1, 2}, {0, 1, 2}}, nil); err == nil {
		t.Fatal("duplicate unlabeled edges accepted")
	}
}
