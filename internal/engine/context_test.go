package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestContextCancelPartialResult is the acceptance test for engine
// cancellation: cancelling the context mid-run on the skewed-hub workload
// must return promptly with ctx.Err() and a partial, truncated Result.
// The OnEmbedding callback throttles the run so it cannot finish before
// the cancel lands; the observed cancel→return latency is bounded.
func TestContextCancelPartialResult(t *testing.T) {
	store, plan := skewedInput(t, 24)
	total := uint64(24 * 24)

	for _, split := range []int{0, -1} {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		var once sync.Once
		var cancelled atomic2 // time the cancel was issued, set by the canceller
		go func() {
			<-started
			cancelled.set(time.Now())
			cancel()
		}()
		res, err := MineWithPlanContext(ctx, store, plan, Options{
			Workers: 4, SplitThreshold: 2, SplitDepth: split,
			OnEmbedding: func([]uint32) {
				once.Do(func() { close(started) })
				time.Sleep(time.Millisecond)
			},
		})
		latency := time.Since(cancelled.get())
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("split=%d: err=%v, want context.Canceled", split, err)
		}
		if res.Ordered == 0 || res.Ordered >= total {
			t.Errorf("split=%d: partial Ordered=%d, want in (0, %d)", split, res.Ordered, total)
		}
		if !res.Truncated {
			t.Errorf("split=%d: cancelled run not marked truncated", split)
		}
		// Workers poll the stop flag once per candidate; with a 1 ms
		// per-embedding throttle and 4 workers the unwind is bounded far
		// below this (generous, CI-safe) budget.
		if latency > 5*time.Second {
			t.Errorf("split=%d: cancel→return latency %v", split, latency)
		}
	}
}

// atomic2 is a tiny mutex-guarded time cell (test-only; avoids importing
// sync/atomic for a non-integer).
type atomic2 struct {
	mu sync.Mutex
	t  time.Time
}

func (a *atomic2) set(t time.Time) { a.mu.Lock(); a.t = t; a.mu.Unlock() }
func (a *atomic2) get() time.Time  { a.mu.Lock(); defer a.mu.Unlock(); return a.t }

// TestContextPreCancelled: an already-dead context never starts mining.
func TestContextPreCancelled(t *testing.T) {
	store, plan := skewedInput(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineWithPlanContext(ctx, store, plan, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res.Ordered != 0 {
		t.Fatalf("pre-cancelled run mined %d embeddings", res.Ordered)
	}
}

// TestContextCompletedRunNoError: a context that stays live must not
// disturb a normal run.
func TestContextCompletedRunNoError(t *testing.T) {
	store, plan := skewedInput(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := MineWithPlanContext(ctx, store, plan, Options{Workers: 2, SplitThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered != 64 || res.Truncated {
		t.Fatalf("Ordered=%d truncated=%v, want 64/false", res.Ordered, res.Truncated)
	}
}

// TestWorkerPanicReturnsError: a panic on a worker goroutine (here a user
// OnEmbedding callback) must surface as ErrWorkerPanic from Mine instead
// of killing the process, on both scheduler paths, and must stop the
// remaining workers.
func TestWorkerPanicReturnsError(t *testing.T) {
	store, plan := skewedInput(t, 8)
	for _, split := range []int{0, -1} {
		res, err := MineWithPlanContext(context.Background(), store, plan, Options{
			Workers: 4, SplitThreshold: 2, SplitDepth: split,
			OnEmbedding: func([]uint32) { panic("callback boom") },
		})
		if !errors.Is(err, ErrWorkerPanic) {
			t.Fatalf("split=%d: err=%v, want ErrWorkerPanic", split, err)
		}
		if !strings.Contains(err.Error(), "callback boom") {
			t.Errorf("split=%d: error %q does not carry the panic value", split, err)
		}
		if !res.Truncated {
			t.Errorf("split=%d: panicked run not marked truncated", split)
		}
	}
}

// TestLimitExactSemantics pins the Limit/Truncated contract on both the
// work-stealing and the legacy scheduler paths: a limit the run never
// outgrows (exactly-at-total and one-past-total) must NOT mark the result
// truncated — exploration exhausted the search space — while a limit below
// the total must.
func TestLimitExactSemantics(t *testing.T) {
	store, plan := skewedInput(t, 8)
	total := uint64(64)
	for _, split := range []int{0, -1} {
		for _, lim := range []uint64{total, total + 1} {
			res, err := MineWithPlanContext(context.Background(), store, plan, Options{
				Workers: 1, Limit: lim, SplitThreshold: 2, SplitDepth: split,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ordered != total {
				t.Errorf("split=%d limit=%d: Ordered=%d want %d", split, lim, res.Ordered, total)
			}
			if res.Truncated {
				t.Errorf("split=%d limit=%d: exhausted run marked truncated", split, lim)
			}
		}
		res, err := MineWithPlanContext(context.Background(), store, plan, Options{
			Workers: 1, Limit: total - 1, SplitThreshold: 2, SplitDepth: split,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Errorf("split=%d: limit %d below total %d not marked truncated", split, total-1, total)
		}
		if res.Ordered < total-1 {
			t.Errorf("split=%d: Ordered=%d below limit %d", split, res.Ordered, total-1)
		}
	}
}
