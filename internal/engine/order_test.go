package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/bruteforce"
	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// TestDataAwareOrderCorrectness: the data-aware matching order must not
// change results, only (potentially) performance.
func TestDataAwareOrderCorrectness(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "o", NumVertices: 60, NumEdges: 150,
		Communities: 4, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 6, EdgeSizeMean: 3.5, Seed: 101})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		p, err := pattern.Sample(h, 2+rng.Intn(3), 2, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteforce.Count(h, p)
		for _, da := range []bool{false, true} {
			res, err := Mine(store, p, Options{Workers: 1, DataAwareOrder: da})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ordered != want {
				t.Fatalf("trial %d dataAware=%v: %d want %d (pattern %s, order %v)",
					trial, da, res.Ordered, want, p, res.Plan.Order)
			}
		}
	}
}

// TestDataAwareOrderPlansVerify: data-aware plans satisfy the structural
// verifier for both modes.
func TestDataAwareOrderPlansVerify(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "o", NumVertices: 100, NumEdges: 300,
		Communities: 6, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 8, EdgeSizeMean: 4, Seed: 102})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		p, err := pattern.Sample(h, 2+rng.Intn(4), 2, 30, rng)
		if err != nil {
			t.Fatal(err)
		}
		order := dataAwareOrder(store, p)
		for _, mode := range []oig.Mode{oig.ModeSimple, oig.ModeMerged} {
			plan, err := oig.CompileOrdered(p, mode, order)
			if err != nil {
				t.Fatal(err)
			}
			if err := oig.Verify(plan); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// TestDataAwareOrderPicksSelectiveRoot: with a degree that is rare in the
// data, the data-aware order must start with it.
func TestDataAwareOrderPicksSelectiveRoot(t *testing.T) {
	// Data: many degree-2 edges, exactly one degree-4 edge.
	edges := [][]uint32{{0, 1, 2, 3}}
	for i := uint32(0); i < 20; i++ {
		edges = append(edges, []uint32{i % 10, (i + 1) % 10})
	}
	h, err := hypergraph.Build(10, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := dal.Build(h)
	// Pattern: a degree-2 edge overlapping a degree-4 edge.
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2, 3, 4}}, nil)
	order := dataAwareOrder(store, p)
	if order[0] != 1 {
		t.Fatalf("data-aware order %v should start with the rare degree-4 edge", order)
	}
}
