package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
	"ohminer/internal/venn"
)

// TestEmittedEmbeddingsAreIsomorphic validates every emitted embedding
// against the venn package's Theorem-1 checker — the executable
// specification — rather than trusting the engine's own plan checks.
// Embeddings arrive in matching order, so they are compared against the
// plan's reordered pattern.
func TestEmittedEmbeddingsAreIsomorphic(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "v", NumVertices: 120, NumEdges: 400,
		Communities: 8, MemberOverlap: 1.2, EdgeSizeMin: 2, EdgeSizeMax: 8, EdgeSizeMean: 4, Seed: 61})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(21))
	verified := 0
	for trial := 0; trial < 12; trial++ {
		p, err := pattern.Sample(h, 2+rng.Intn(3), 2, 30, rng)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := oig.Compile(p, oig.ModeMerged)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		_, err = MineWithPlan(store, plan, Options{Workers: 1, OnEmbedding: func(c []uint32) {
			if checked >= 50 { // cap the expensive per-embedding verification
				return
			}
			checked++
			emb := make([][]uint32, len(c))
			for i, e := range c {
				emb[i] = h.EdgeVertices(e)
			}
			iso, verr := venn.Isomorphic(plan.Pattern.Edges(), emb)
			if verr != nil {
				t.Errorf("venn: %v", verr)
				return
			}
			if !iso {
				t.Errorf("trial %d: emitted non-isomorphic embedding %v for pattern %s",
					trial, c, plan.Pattern)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		verified += checked
	}
	if verified == 0 {
		t.Skip("no embeddings produced by any trial")
	}
	t.Logf("verified %d embeddings against the Theorem-1 specification", verified)
}
