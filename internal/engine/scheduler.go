package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the work-stealing subtree scheduler. The paper's
// engine (Sec. 4.4) distributes only the candidates of the first pattern
// hyperedge over threads, which serializes a run whose work hangs off a few
// skewed first-edge subtrees — the load imbalance HGMatch's dynamic task
// splitting targets. Here every worker owns a bounded deque of subtree
// tasks; near the top of the tree a busy worker publishes its untouched
// sibling candidate ranges, and idle workers steal them instead of exiting,
// so Workers > |first candidates| is useful and skew no longer serializes.
//
// DFS semantics are preserved: a task is a (prefix, candidate range)
// continuation, and whoever executes it explores exactly the subtrees the
// publisher would have explored, in the same per-subtree depth-first order.
// Only the interleaving across subtrees changes, which the embedding counts
// are invariant to.

// task packages one stealable unit of work: continue the depth-first search
// at matching-order position depth, binding each candidate in cands, with
// the first depth positions already bound to prefix. Both slices are owned
// by whatever structure holds the task (a deque slot or a worker's run
// buffer) and are copied on every hand-off — worker scratch never crosses
// goroutines.
type task struct {
	depth  int
	prefix []uint32
	cands  []uint32
}

const (
	// defaultSplitDepth is the number of top tree levels at which sibling
	// ranges are published (positions 0 and 1). Deeper subtrees are cheap
	// enough that publication overhead outweighs the balance gain.
	defaultSplitDepth = 2
	// defaultSplitThreshold is the minimum remaining candidate count at a
	// splittable level before half of it is worth publishing.
	defaultSplitThreshold = 4
	// dequeCap bounds each worker's deque; a full deque just means the
	// worker keeps the remaining range for itself.
	dequeCap = 32
)

// deque is a bounded work-stealing deque of tasks. The owner pushes and
// pops at the tail (LIFO keeps the deepest, most cache-warm task local);
// thieves take from the head (FIFO hands over the shallowest task, i.e. the
// largest subtree, minimizing steal frequency). Publication is rare — only
// near the root of the search tree — so a mutex per operation costs nothing
// measurable, and every slot's buffers are reused across the run.
type deque struct {
	mu sync.Mutex
	// ring holds the queued tasks; guarded by mu.
	ring [dequeCap]task
	head uint64 // next slot a thief takes; tasks live in [head, tail); guarded by mu
	tail uint64 // next free slot for the owner; guarded by mu
}

// push copies (depth, prefix, cands) into the deque; it reports false when
// the deque is full. Called only by the owning worker.
func (d *deque) push(depth int, prefix, cands []uint32) bool {
	d.mu.Lock()
	if d.tail-d.head == dequeCap {
		d.mu.Unlock()
		return false
	}
	sl := &d.ring[d.tail%dequeCap]
	sl.depth = depth
	sl.prefix = append(sl.prefix[:0], prefix...)
	sl.cands = append(sl.cands[:0], cands...)
	d.tail++
	d.mu.Unlock()
	return true
}

// pop moves the most recently pushed task into dst (copying, so the slot
// can be reused immediately). Called only by the owning worker.
func (d *deque) pop(dst *task) bool {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return false
	}
	d.tail--
	sl := &d.ring[d.tail%dequeCap]
	dst.depth = sl.depth
	dst.prefix = append(dst.prefix[:0], sl.prefix...)
	dst.cands = append(dst.cands[:0], sl.cands...)
	d.mu.Unlock()
	return true
}

// steal moves the oldest task into dst. Called by other workers.
func (d *deque) steal(dst *task) bool {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return false
	}
	sl := &d.ring[d.head%dequeCap]
	dst.depth = sl.depth
	dst.prefix = append(dst.prefix[:0], sl.prefix...)
	dst.cands = append(dst.cands[:0], sl.cands...)
	d.head++
	d.mu.Unlock()
	return true
}

// drainTasks appends a copy of every queued task to out and empties the
// deque — frontier collection after a quiesce (checkpoint.go). Copies are
// deliberate: the slot buffers belong to the deque and a next round would
// overwrite them.
func (d *deque) drainTasks(out []task) []task {
	d.mu.Lock()
	for ; d.head != d.tail; d.head++ {
		sl := &d.ring[d.head%dequeCap]
		out = append(out, task{
			depth:  sl.depth,
			prefix: append([]uint32(nil), sl.prefix...),
			cands:  append([]uint32(nil), sl.cands...),
		})
	}
	d.mu.Unlock()
	return out
}

// scheduler shares the deques and the termination state of one mining run.
type scheduler struct {
	deques []deque
	// overflow holds seeded tasks that did not fit the bounded deques — a
	// resumed or post-quiesce frontier can be arbitrarily long. Workers
	// fall back to it when their own deque is empty and nothing is
	// stealable.
	ovMu     sync.Mutex
	overflow []task // guarded by ovMu
	// pending counts unfinished tasks: seeded root tasks plus every
	// publication, decremented when a task's whole subtree is done. A task
	// is counted before it becomes visible in any deque, so pending == 0
	// proves no queued task exists and no running task can publish more —
	// the termination condition for idle workers.
	pending atomic.Int64
}

func newScheduler(workers int) *scheduler {
	return &scheduler{deques: make([]deque, workers)}
}

// seed distributes the first-position candidates over the deques as
// depth-0 tasks, one contiguous chunk per worker (stealing rebalances any
// skew between the chunks afterwards).
func (s *scheduler) seed(first []uint32) {
	workers := len(s.deques)
	chunks := workers
	if chunks > len(first) {
		chunks = len(first)
	}
	per := (len(first) + chunks - 1) / chunks
	n := 0
	for i := 0; i < len(first); i += per {
		end := i + per
		if end > len(first) {
			end = len(first)
		}
		s.deques[n%workers].push(0, nil, first[i:end])
		n++
	}
	s.pending.Store(int64(n))
}

// seedTasks distributes an already-materialized task list — a resumed or
// post-quiesce frontier — over the deques round-robin. Tasks beyond the
// bounded deque capacity land in the overflow list, which workers drain
// once the deques run dry. The task slices stay owned by the caller's
// frontier (never mutated during a round) until a worker copies them into
// its run buffer.
func (s *scheduler) seedTasks(tasks []task) {
	workers := len(s.deques)
	s.ovMu.Lock()
	for i := range tasks {
		t := &tasks[i]
		if !s.deques[i%workers].push(t.depth, t.prefix, t.cands) {
			s.overflow = append(s.overflow, *t)
		}
	}
	s.ovMu.Unlock()
	s.pending.Store(int64(len(tasks)))
}

// takeOverflow copies one overflow task into dst; it reports false when the
// overflow list is empty.
func (s *scheduler) takeOverflow(dst *task) bool {
	s.ovMu.Lock()
	n := len(s.overflow)
	if n == 0 {
		s.ovMu.Unlock()
		return false
	}
	t := &s.overflow[n-1]
	dst.depth = t.depth
	dst.prefix = append(dst.prefix[:0], t.prefix...)
	dst.cands = append(dst.cands[:0], t.cands...)
	s.overflow = s.overflow[:n-1]
	s.ovMu.Unlock()
	return true
}

// run is a worker's scheduling loop: drain the own deque, then steal from
// peers, then spin briefly until new work is published or the run ends.
// It is a hot-path root: nothing reachable from here may allocate in steady
// state (deque hand-offs reuse slot and run buffers).
//
//ohmlint:hotpath
func (w *worker) run() {
	s := w.sched
	own := &s.deques[w.id]
	backoff := 0
	for {
		if w.e.stopped.Load() {
			return
		}
		if own.pop(&w.task) || w.trySteal() || s.takeOverflow(&w.task) {
			backoff = 0
			w.runTask(&w.task)
			s.pending.Add(-1)
			continue
		}
		if s.pending.Load() == 0 {
			return
		}
		w.stats.IdleSpins++
		if backoff++; backoff > 16 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// trySteal scans the peers round-robin starting after the own deque and
// copies the first available task into the worker's run buffer.
func (w *worker) trySteal() bool {
	s := w.sched
	n := len(s.deques)
	for k := 1; k < n; k++ {
		if s.deques[(w.id+k)%n].steal(&w.task) {
			w.stats.Steals++
			return true
		}
	}
	return false
}

// runTask executes a task: rebind the prefix, rebuild the overlap slots the
// prefix's validation produced (stolen and resumed tasks arrive without the
// publisher's scratch state), and explore the candidate range. Scheduler
// workers pass their run buffer; the legacy round loop passes frontier
// tasks directly (explore never mutates the candidate slice contents).
func (w *worker) runTask(t *task) {
	copy(w.c[:t.depth], t.prefix)
	if t.depth > 1 && w.e.opts.Val != ValProfiles {
		w.rebuildSlots(t.depth)
	}
	w.explore(t.depth, t.cands)
}

// rebuildSlots re-executes the slot-materializing operations of steps
// 1..depth-1 so that operations at and beyond depth can resolve their slot
// operands. The prefix already passed validation, so only the intersections
// that write slots need re-running — checks are skipped. The same adaptive
// containers (and container hints) as validateOverlaps apply, so stolen
// prefixes revalidate on the same kernel paths the publisher used.
func (w *worker) rebuildSlots(depth int) {
	kernel := w.e.kernel
	for t := 1; t < depth; t++ {
		ops := w.e.plan.Steps[t].Ops
		for i := range ops {
			op := &ops[i]
			if op.Out < 0 {
				continue
			}
			w.stats.SetOps++
			a, b := w.resolveSet(op.A, op.Hint), w.resolveSet(op.B, op.Hint)
			w.slots[op.Out] = kernel.IntersectSets(a, b, w.slots[op.Out][:0])
		}
	}
}

// publish copies the current prefix and an untouched sibling candidate
// range into the worker's own deque for thieves; it reports false when the
// deque is full (the caller then keeps the range).
func (w *worker) publish(depth int, rest []uint32) bool {
	s := w.sched
	// Count the task before it becomes stealable so pending never
	// undercounts (see scheduler.pending).
	s.pending.Add(1)
	if !s.deques[w.id].push(depth, w.c[:depth], rest) {
		s.pending.Add(-1)
		return false
	}
	w.stats.Publishes++
	return true
}
