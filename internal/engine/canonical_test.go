package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// TestCanonicalEmissionCount: with UniqueOnly, the callback fires exactly
// Unique times, once per unordered embedding.
func TestCanonicalEmissionCount(t *testing.T) {
	h := hypergraph.MustBuild(8, [][]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
	}, nil)
	store := dal.Build(h)
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil) // 2 automorphisms
	var emitted [][]uint32
	res, err := Mine(store, p, Options{Workers: 1, UniqueOnly: true, OnEmbedding: func(c []uint32) {
		emitted = append(emitted, append([]uint32(nil), c...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered != 6 || res.Unique != 3 {
		t.Fatalf("ordered=%d unique=%d", res.Ordered, res.Unique)
	}
	if len(emitted) != int(res.Unique) {
		t.Fatalf("emitted %d canonical tuples, want %d", len(emitted), res.Unique)
	}
	// No two emitted tuples may be automorphic images of each other: as
	// sets they must be distinct.
	seen := map[[3]uint32]bool{}
	for _, c := range emitted {
		key := [3]uint32{c[0], c[1], c[2]}
		// normalize by sorting
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if key[1] > key[2] {
			key[1], key[2] = key[2], key[1]
		}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			t.Fatalf("duplicate unordered embedding %v", key)
		}
		seen[key] = true
	}
}

// TestCanonicalEmissionRandom: canonical emission count equals Unique on
// random workloads with symmetric patterns, for both 1 and 3 workers.
func TestCanonicalEmissionRandom(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "c", NumVertices: 80, NumEdges: 250,
		Communities: 5, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: 91})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(17))
	checkedSymmetric := false
	for trial := 0; trial < 20; trial++ {
		p, err := pattern.Sample(h, 2+rng.Intn(2), 2, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.Automorphisms() > 1 {
			checkedSymmetric = true
		}
		for _, workers := range []int{1, 3} {
			emitted := 0
			res, err := Mine(store, p, Options{Workers: workers, UniqueOnly: true,
				OnEmbedding: func([]uint32) { emitted++ }})
			if err != nil {
				t.Fatal(err)
			}
			if uint64(emitted) != res.Unique {
				t.Fatalf("trial %d workers=%d: emitted %d want %d (aut=%d, pattern %s)",
					trial, workers, emitted, res.Unique, res.Automorphisms, p)
			}
		}
	}
	if !checkedSymmetric {
		t.Log("warning: no symmetric pattern sampled; only identity automorphisms exercised")
	}
}

func TestAutomorphismPermsIdentityFirst(t *testing.T) {
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {0, 2}}, nil)
	perms := p.AutomorphismPerms()
	if len(perms) != 6 {
		t.Fatalf("triangle perms: %d", len(perms))
	}
	for i, v := range perms[0] {
		if i != v {
			t.Fatalf("identity not first: %v", perms[0])
		}
	}
}
