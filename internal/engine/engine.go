// Package engine implements the overlap-centric parallel execution engine
// of Sec. 4.4 — and, through its configuration matrix, every system variant
// the paper evaluates:
//
//	OHMiner   = GenDAL     + ValOverlap        (merged plan, Sec. 4)
//	OHM-G     = GenDAL     + ValProfiles       (Fig. 15)
//	OHM-V     = GenHGMatch + ValOverlap        (Fig. 13/15)
//	OHM-I     = GenHGMatch + ValOverlapSimple  (IEP only, Fig. 15)
//	HGMatch   = GenHGMatch + ValProfiles       (baseline, Sec. 2.3)
//
// The engine explores the search tree depth-first. Subtree tasks (a bound
// prefix plus a remaining candidate range) are distributed over worker
// goroutines by a work-stealing scheduler (scheduler.go): busy workers
// publish untouched sibling ranges near the top of the tree and idle workers
// steal them, generalizing the paper's first-level dynamic scheduling so
// skewed subtrees no longer serialize. Each worker owns all its scratch
// state, so the steady-state hot path allocates nothing. The intset kernel
// choice reproduces the SIMD ablation: Adaptive (density-aware containers,
// the default) vs Fast (static gallop/merge) vs Scalar (textbook merge).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// GenMode selects the candidate-generation strategy.
type GenMode int

const (
	// GenDAL intersects degree-pruned DAL adjacency groups (OHMiner,
	// Sec. 4.5).
	GenDAL GenMode = iota
	// GenHGMatch re-derives candidates from the incident hyperedges of the
	// individual vertices of already-matched hyperedges — the
	// vertex-granularity approach of HGMatch with its inherent redundancy
	// (Sec. 2.3, Fig. 2(a)).
	GenHGMatch
)

func (g GenMode) String() string {
	if g == GenHGMatch {
		return "hgmatch"
	}
	return "dal"
}

// ValMode selects the validation strategy.
type ValMode int

const (
	// ValOverlap executes the merged overlap-centric plan — full OHMiner
	// validation with merge + group pruning.
	ValOverlap ValMode = iota
	// ValOverlapSimple executes the simple (IEP-only) plan: every
	// non-implied overlap intersected and size-checked.
	ValOverlapSimple
	// ValProfiles recomputes per-vertex profiles of the whole partial
	// embedding and compares the multiset against the pattern's — the
	// hash-based vertex-granularity validation of HGMatch (Fig. 2(b)).
	ValProfiles
)

func (v ValMode) String() string {
	switch v {
	case ValOverlapSimple:
		return "overlap-simple"
	case ValProfiles:
		return "profiles"
	default:
		return "overlap"
	}
}

// Variant names the paper's system configurations.
type Variant struct {
	Name string
	Gen  GenMode
	Val  ValMode
}

// Variants returns the evaluation matrix of Sec. 5.3.
func Variants() []Variant {
	return []Variant{
		{Name: "OHMiner", Gen: GenDAL, Val: ValOverlap},
		{Name: "OHM-G", Gen: GenDAL, Val: ValProfiles},
		{Name: "OHM-V", Gen: GenHGMatch, Val: ValOverlap},
		{Name: "OHM-I", Gen: GenHGMatch, Val: ValOverlapSimple},
		{Name: "HGMatch", Gen: GenHGMatch, Val: ValProfiles},
	}
}

// VariantByName returns the named configuration.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("engine: unknown variant %q", name)
}

// Options configures a mining run.
type Options struct {
	Gen GenMode
	Val ValMode
	// Kernel selects the set-operation family; the zero value means
	// intset.Adaptive (density-aware containers with SWAR bitmap kernels and
	// rarest-first k-way intersection). Pass intset.Fast to pin the static
	// gallop/merge family, or intset.Scalar for the no-SIMD ablation.
	Kernel intset.Kernel
	// Workers is the goroutine count; ≤0 means GOMAXPROCS.
	Workers int
	// Instrument enables the Stats counters and phase timers used by the
	// Fig. 3 reproduction (adds measurable overhead).
	Instrument bool
	// Limit stops the exploration once at least this many embeddings were
	// enumerated (0 = unlimited): ordered tuples on an unrestricted plan,
	// one canonical tuple per unordered embedding on a symmetry-broken one.
	// The final count may slightly exceed Limit because workers stop at the
	// next check.
	Limit uint64
	// OnEmbedding, when set, receives every enumerated embedding (hyperedge
	// IDs in matching order). On a symmetry-broken plan the engine
	// enumerates exactly one canonical tuple per unordered embedding, so
	// the callback fires once per unique embedding; compile with
	// NoSymmetryBreak to observe every ordered tuple. Calls are serialized
	// by the engine; the slice is reused and must be copied to retain.
	OnEmbedding func([]uint32)
	// Deadline aborts the exploration after roughly this duration (0 =
	// none); a run the deadline actually cut short is marked Truncated and
	// undercounts. Used by the benchmark harness to bound combinatorially
	// exploding cells.
	Deadline time.Duration
	// UniqueOnly filters OnEmbedding to one canonical tuple per unordered
	// embedding: the callback fires only when the tuple is the
	// lexicographically smallest among its automorphic reorderings.
	// Ordered/Unique counts are unaffected. Symmetry-broken plans already
	// enumerate exactly that canonical tuple, so the filter is a no-op (and
	// skipped) for them.
	UniqueOnly bool
	// NoSymmetryBreak compiles the plan without symmetry-breaking
	// restrictions, so every ordered tuple is enumerated — |Aut(P)| per
	// unordered embedding. The ablation baseline of the sym experiment;
	// also what OnEmbedding consumers that need all orderings should set.
	// Only consulted by the plan-compiling entry points (Mine/MineContext/
	// CompilePlan); MineWithPlan follows the plan it is given.
	NoSymmetryBreak bool
	// DataAwareOrder derives the matching order from data-hypergraph
	// selectivity (fewest degree-matching data hyperedges first), the
	// ordering strategy the paper adopts from HGMatch (Sec. 4.3.2), instead
	// of the purely structural connectivity order.
	DataAwareOrder bool
	// PositionFilter, when set, restricts which data hyperedge may bind to
	// each matching-order position (anchored enumeration; used by the
	// incremental miner to count embeddings touching newly inserted
	// hyperedges exactly once).
	PositionFilter func(pos int, edge uint32) bool
	// SplitDepth bounds how deep in the search tree workers publish
	// untouched sibling candidate ranges for work stealing: positions
	// t < SplitDepth are splittable. 0 selects the default (the first two
	// levels); negative values disable the work-stealing scheduler and fall
	// back to first-level-only dynamic distribution — the pre-scheduler
	// behavior, kept as an ablation baseline.
	SplitDepth int
	// SplitThreshold is the minimum number of unexplored candidates that
	// must remain at a splittable position before half of them are
	// published (0 = default 4). Lower values split more aggressively.
	SplitThreshold int
	// Checkpoint, when set, makes the run crash-safe: on the CheckpointEvery
	// timer — and on every final stop (cancellation, deadline, limit) — the
	// driver quiesces the workers at their per-candidate stop check,
	// captures the global frontier of unexplored subtree tasks together
	// with the partial counters, and hands the snapshot to the sink. Sink
	// failures are counted in Stats.CheckpointErrors and do not abort the
	// run (the previous snapshot stays intact); mining continues or
	// finishes as it would have.
	Checkpoint checkpoint.Sink
	// CheckpointEvery is the quiesce period (0 = only on final stops).
	// Ignored without Checkpoint.
	CheckpointEvery time.Duration
}

// Stats carries the instrumentation counters behind Fig. 3.
type Stats struct {
	// Candidates is the number of candidate hyperedges enumerated.
	Candidates uint64
	// Embeddings is the number of (partial) embeddings that passed
	// validation, across all depths.
	Embeddings uint64
	// SetOps counts intersection operations executed by overlap validation.
	SetOps uint64
	// NMFetches counts incident-hyperedge derivations (NM sets) performed
	// by HGMatch-style generation; RedundantNMFetches counts the repeated
	// ones (per extra overlap vertex — Fig. 3(b)).
	NMFetches          uint64
	RedundantNMFetches uint64
	// ProfileVertices counts vertices whose profile was computed by
	// profile validation; RedundantProfileVertices counts those sharing a
	// profile with an earlier vertex of the same validation (Fig. 3(c)).
	ProfileVertices          uint64
	RedundantProfileVertices uint64
	// GenTime/ValTime split the wall time between candidate generation and
	// validation (Fig. 3(a)); only tracked when Options.Instrument is set.
	GenTime time.Duration
	ValTime time.Duration
	// Scheduler counters (always tracked; they cost one non-atomic
	// increment each). Publishes counts sibling candidate ranges made
	// stealable, Steals counts tasks taken from a peer's deque, and
	// IdleSpins counts scans that found no work anywhere — together they
	// describe how much rebalancing a run needed and whether workers
	// starved.
	Publishes uint64
	Steals    uint64
	IdleSpins uint64
	// Checkpoint counters: snapshots successfully persisted, their total
	// size, and sink failures (a failed write leaves the previous snapshot
	// intact and the run keeps going). A resumed run continues the counters
	// of the snapshot it started from.
	Checkpoints      uint64
	CheckpointBytes  uint64
	CheckpointErrors uint64
	// Kernel-path counters: how many set operations (generation k-way
	// intersections and validation ops) ran word-parallel over bitmap
	// windows (KernelBitmap), probe-accelerated with one windowed operand
	// (KernelMixed), or on the plain array kernels (KernelArray). Always
	// tracked, like the scheduler counters; the kern ablation and ohmstat
	// surface them to show which representations a workload actually hits.
	KernelArray  uint64
	KernelBitmap uint64
	KernelMixed  uint64
}

// Add accumulates o into s. Exported for the consumers that merge partial
// Stats outside the engine — the cluster coordinator folds per-task worker
// reports into a job total with it.
func (s *Stats) Add(o Stats) {
	s.Candidates += o.Candidates
	s.Embeddings += o.Embeddings
	s.SetOps += o.SetOps
	s.NMFetches += o.NMFetches
	s.RedundantNMFetches += o.RedundantNMFetches
	s.ProfileVertices += o.ProfileVertices
	s.RedundantProfileVertices += o.RedundantProfileVertices
	s.GenTime += o.GenTime
	s.ValTime += o.ValTime
	s.Publishes += o.Publishes
	s.Steals += o.Steals
	s.IdleSpins += o.IdleSpins
	s.Checkpoints += o.Checkpoints
	s.CheckpointBytes += o.CheckpointBytes
	s.CheckpointErrors += o.CheckpointErrors
	s.KernelArray += o.KernelArray
	s.KernelBitmap += o.KernelBitmap
	s.KernelMixed += o.KernelMixed
}

// Result reports one mining run.
type Result struct {
	// Ordered counts embeddings as ordered hyperedge tuples following the
	// matching order; every unordered embedding corresponds to exactly
	// Automorphisms ordered tuples. An unrestricted plan enumerates them
	// all; a symmetry-broken plan enumerates one canonical tuple per orbit
	// and reports Ordered = Unique × Automorphisms — identical for complete
	// runs, so the two plan families are count-compatible.
	Ordered uint64
	// Unique counts unordered embeddings. A symmetry-broken plan counts
	// them directly (exact even when truncated); an unrestricted plan
	// derives Unique = Ordered / Automorphisms, exact only for complete
	// runs — a truncated run that stopped mid-orbit leaves the leftover
	// ordered tuples in UniqueRemainder instead of silently rounding.
	Unique uint64
	// UniqueRemainder is Ordered mod Automorphisms on an unrestricted plan:
	// non-zero only when a limit/deadline/cancellation stopped the run in
	// the middle of an automorphism orbit, in which case Unique undercounts
	// by the partial orbit. Always zero on symmetry-broken plans and on
	// complete runs.
	UniqueRemainder uint64
	// Restricted reports whether the plan carried symmetry-breaking
	// restrictions (see oig.Plan.Restricted).
	Restricted bool
	// Automorphisms is the pattern's hyperedge automorphism count.
	Automorphisms int
	// Elapsed is the wall-clock mining time (excluding plan compilation).
	Elapsed time.Duration
	// Truncated reports that exploration stopped before exhausting the
	// search space — a worker observed the stop flag (Limit reached,
	// Deadline fired, or context cancelled) while unexplored work remained
	// — so Ordered may undercount. A run that reaches Limit on its very
	// last embedding explored everything and is NOT truncated.
	Truncated bool
	Stats     Stats
	Plan      *oig.Plan
}

// Mine compiles the appropriate plan for the options and runs it.
func Mine(store *dal.Store, p *pattern.Pattern, opts Options) (Result, error) {
	return MineContext(context.Background(), store, p, opts)
}

// MineContext is Mine with caller-controlled cancellation: when ctx is
// cancelled mid-run the workers unwind cooperatively and the call returns
// the partial Result accumulated so far together with ctx.Err().
func MineContext(ctx context.Context, store *dal.Store, p *pattern.Pattern, opts Options) (Result, error) {
	plan, err := CompilePlan(store, p, opts)
	if err != nil {
		return Result{}, err
	}
	return MineWithPlanContext(ctx, store, plan, opts)
}

// dataAwareOrder scores each pattern hyperedge by the number of data
// hyperedges sharing its degree (the candidate pool of the first step) and
// orders the most selective hyperedge first. The counts come straight from
// the DAL's degree index — no hypergraph scan.
func dataAwareOrder(store *dal.Store, p *pattern.Pattern) []int {
	sel := make([]int, p.NumEdges())
	for i := range sel {
		sel[i] = store.NumEdgesWithDegree(p.Degree(i))
	}
	return p.MatchingOrderWithSelectivity(sel)
}

// MineWithPlan runs a precompiled plan. The plan's mode must match the
// validation mode (merged for ValOverlap, simple for ValOverlapSimple;
// ValProfiles accepts either).
func MineWithPlan(store *dal.Store, plan *oig.Plan, opts Options) (Result, error) {
	return MineWithPlanContext(context.Background(), store, plan, opts)
}

// MineWithPlanContext is MineWithPlan with caller-controlled cancellation.
// The ctx-done branch is merged into the engine's single shared stop flag,
// so the mining hot path still pays exactly one atomic load per candidate
// regardless of whether a deadline, a limit, or a context is in play. On
// cancellation the partial Result is returned along with ctx.Err().
func MineWithPlanContext(ctx context.Context, store *dal.Store, plan *oig.Plan, opts Options) (Result, error) {
	return mineResumable(ctx, store, plan, opts, nil)
}

// mineResumable is the mining driver behind MineWithPlanContext and
// ResumeWithPlanContext. Without a checkpoint sink it runs exactly one
// round of workers; with one, the run becomes a sequence of rounds
// separated by quiesce points: the round stops (checkpoint timer or a final
// stop reason), the workers drain their unexplored remainders into frontier
// tasks instead of abandoning them, the frontier is snapshotted to the
// sink, and — unless the stop was final — the next round reseeds from the
// frontier and continues. snap, when non-nil, is the validated snapshot to
// resume from; its frontier seeds round zero and its counters become the
// result's base.
func mineResumable(ctx context.Context, store *dal.Store, plan *oig.Plan, opts Options, snap *checkpoint.Snapshot) (Result, error) {
	switch opts.Val {
	case ValOverlap:
		if plan.Mode != oig.ModeMerged {
			return Result{}, errors.New("engine: ValOverlap needs a merged plan")
		}
	case ValOverlapSimple:
		if plan.Mode != oig.ModeSimple {
			return Result{}, errors.New("engine: ValOverlapSimple needs a simple plan")
		}
	case ValProfiles:
	default:
		return Result{}, fmt.Errorf("engine: unknown validation mode %d", opts.Val)
	}
	if plan.Labeled && !store.Hypergraph().Labeled() {
		return Result{}, errors.New("engine: labeled pattern on unlabeled hypergraph")
	}
	if plan.Pattern.EdgeLabeled() && !store.Hypergraph().EdgeLabeled() {
		return Result{}, errors.New("engine: hyperedge-labeled pattern on hypergraph without hyperedge labels")
	}
	kernel := opts.Kernel
	if kernel.Intersect == nil {
		kernel = intset.Adaptive
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	if plan.Restricted && opts.PositionFilter != nil {
		// A restriction can reject the one tuple of an orbit the filter
		// would have accepted (anchored counting binds specific edges to
		// specific positions), silently undercounting. The plan-compiling
		// entry points disable restrictions when a filter is set; reject
		// the combination here for callers bringing their own plan.
		return Result{}, errors.New("engine: PositionFilter requires a plan compiled without symmetry-breaking restrictions (oig.CompileOptions.NoRestrictions)")
	}

	e := &shared{store: store, plan: plan, opts: opts, kernel: kernel}
	e.splitDepth, e.splitThreshold = splitParams(plan, opts)
	e.saveOnStop = opts.Checkpoint != nil
	if opts.UniqueOnly && opts.OnEmbedding != nil && !plan.Restricted {
		// Restricted plans enumerate only canonical tuples; the filter
		// would accept every one of them, so it is skipped.
		e.autoPerms = plan.Pattern.AutomorphismPerms()[1:]
	}

	// autFactor maps between the enumerated-tuple space the workers count in
	// and the ordered-embedding space snapshots and results report: a
	// symmetry-broken plan enumerates one canonical tuple per orbit of
	// |Aut| ordered embeddings, an unrestricted plan enumerates each ordered
	// embedding itself.
	autFactor := uint64(1)
	if plan.Restricted {
		autFactor = uint64(plan.Pattern.Automorphisms())
	}

	// Resume state: the snapshot's counters become the base the new
	// exploration accumulates on, and its frontier replaces the first-level
	// candidates as the seed work. Snapshot.Ordered is stored in ordered
	// space (see buildSnapshot's call site); divide it back to the
	// enumerated space the workers accumulate in. ValidateSnapshot already
	// proved divisibility for restricted plans.
	var (
		baseOrdered uint64
		baseStats   Stats
		tasks       []task
		seq         uint64
	)
	if snap != nil {
		baseOrdered = snap.Ordered / autFactor
		baseStats = unpackStats(snap.Stats)
		seq = snap.Seq
		tasks = make([]task, len(snap.Frontier))
		for i := range snap.Frontier {
			t := &snap.Frontier[i]
			tasks[i] = task{depth: int(t.Depth), prefix: t.Prefix, cands: t.Cands}
		}
	}

	start := time.Now()
	baseResult := func() Result {
		// Ordered temporarily holds the raw enumerated-tuple count;
		// finalizeCounts converts it to the reported Ordered/Unique pair.
		return Result{
			Automorphisms: plan.Pattern.Automorphisms(),
			Elapsed:       time.Since(start),
			Plan:          plan,
			Ordered:       baseOrdered,
			Stats:         baseStats,
		}
	}
	// finalizeCounts maps the enumerated-tuple count accumulated in
	// res.Ordered to the Result contract. A symmetry-broken plan enumerated
	// one canonical tuple per unordered embedding: Unique is that count
	// directly (exact even when truncated) and Ordered is reconstructed as
	// Unique × Automorphisms — for complete runs exactly what an
	// unrestricted enumeration would have counted. An unrestricted plan
	// enumerated ordered tuples: Unique is the floor division and any
	// mid-orbit remainder of a truncated run is surfaced honestly in
	// UniqueRemainder instead of vanishing.
	finalizeCounts := func(res Result) Result {
		aut := uint64(res.Automorphisms)
		res.Restricted = plan.Restricted
		if plan.Restricted {
			res.Unique = res.Ordered
			res.Ordered = res.Unique * aut
		} else {
			res.Unique = res.Ordered / aut
			res.UniqueRemainder = res.Ordered % aut
		}
		return res
	}

	if opts.Deadline > 0 {
		// A single timer goroutine flips the shared flag; workers check it
		// with one atomic load per candidate instead of calling time.Now on
		// the hot path. The deadlineHit latch survives the between-round
		// flag reset of checkpointed runs.
		timer := time.AfterFunc(opts.Deadline, func() {
			e.deadlineHit.Store(true)
			e.stopped.Store(true)
		})
		defer timer.Stop()
	}
	if done := ctx.Done(); done != nil {
		// The context watcher merges cancellation into the same stop flag
		// the deadline and limit use — no extra hot-path check. Between
		// rounds the driver consults ctx.Err() directly, so the one-shot
		// store cannot be lost to a flag reset.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				e.stopped.Store(true)
			case <-finished:
			}
		}()
	}

	var first []uint32
	if snap == nil {
		first = e.firstCandidates()
		if len(first) == 0 {
			return finalizeCounts(baseResult()), ctx.Err()
		}
	} else if len(tasks) == 0 {
		// The snapshot captured a fully drained run: nothing left to mine.
		return finalizeCounts(baseResult()), ctx.Err()
	}

	var found atomic.Uint64
	found.Store(baseOrdered) // Limit accounts embeddings counted before the snapshot
	ws := make([]*worker, workers)
	for i := range ws {
		ws[i] = newWorker(e, &found)
	}

	var (
		ckptWritten, ckptBytes, ckptErrors uint64
		frontier                           []task
		truncated                          bool
	)
	for round := 0; ; round++ {
		if round > 0 {
			// Reset the stop flag for the next round, then latch any final
			// condition that raced the reset: the ordering (reset first,
			// check after) guarantees a cancellation or deadline that fired
			// in the gap is either still visible in the flag or visible in
			// the latches checked here.
			e.stopped.Store(false)
			if ctx.Err() != nil || e.deadlineHit.Load() {
				truncated = true
				break
			}
		}
		var ckptTimer *time.Timer
		if e.saveOnStop && opts.CheckpointEvery > 0 {
			ckptTimer = time.AfterFunc(opts.CheckpointEvery, func() { e.stopped.Store(true) })
		}
		rs := e.runRound(ws, first, tasks)
		if ckptTimer != nil {
			ckptTimer.Stop()
		}

		e.panicMu.Lock()
		panicked := e.panicErr != nil
		e.panicMu.Unlock()

		if e.saveOnStop && !panicked {
			frontier = e.collectFrontier(ws, rs, first, tasks)
		} else {
			// Work left behind after every worker exited is definitively
			// skipped: unclaimed round items in the legacy loop, or queued
			// tasks no worker ever popped. (Work abandoned mid-subtree was
			// already flagged by the worker that unwound — or lost outright
			// by a panicking one.)
			frontier = nil
			if rs.sched != nil {
				if rs.sched.pending.Load() > 0 {
					e.abandoned.Store(true)
				}
			} else if int(rs.claimed) < rs.items {
				e.abandoned.Store(true)
			}
		}

		limitReached := opts.Limit > 0 && found.Load() >= opts.Limit
		done := len(frontier) == 0
		if e.saveOnStop && !done && !panicked {
			// Snapshot every quiesce, including final stops: a cancelled
			// (SIGTERM'd) or limit-stopped run leaves a resumable snapshot
			// behind. The counters passed are the totals so far, checkpoint
			// accounting included, so a resumed run continues them.
			ordered := baseOrdered
			st := baseStats
			for _, w := range ws {
				ordered += w.count
				st.Add(w.stats)
			}
			st.Checkpoints += ckptWritten
			st.CheckpointBytes += ckptBytes
			st.CheckpointErrors += ckptErrors
			seq++
			// Snapshots carry Ordered in ordered-embedding space (the
			// documented contract), so the enumerated total is scaled by
			// |Aut| for restricted plans — exact, since every counted
			// canonical tuple stands for a whole orbit.
			if n, err := opts.Checkpoint.WriteSnapshot(e.buildSnapshot(seq, frontier, ordered*autFactor, st)); err != nil {
				// A failed write leaves the previous snapshot intact (sinks
				// are atomic); losing a checkpoint must not kill the run.
				ckptErrors++
			} else {
				ckptWritten++
				ckptBytes += uint64(n)
			}
		}
		if done || panicked || !e.saveOnStop || limitReached || ctx.Err() != nil || e.deadlineHit.Load() {
			truncated = truncated || len(frontier) > 0
			break
		}
		tasks, first = frontier, nil
	}

	res := baseResult()
	for _, w := range ws {
		res.Ordered += w.count
		res.Stats.Add(w.stats)
	}
	res.Stats.Checkpoints += ckptWritten
	res.Stats.CheckpointBytes += ckptBytes
	res.Stats.CheckpointErrors += ckptErrors
	res.Truncated = e.abandoned.Load() || truncated
	res = finalizeCounts(res)
	res.Elapsed = time.Since(start)
	e.panicMu.Lock()
	panicErr := e.panicErr
	e.panicMu.Unlock()
	if panicErr != nil {
		return res, panicErr
	}
	return res, ctx.Err()
}

// roundState reports how one round of workers ended, for frontier
// collection and definitive-skip accounting.
type roundState struct {
	// sched is the round's work-stealing scheduler (nil on the legacy
	// path).
	sched *scheduler
	// claimed/items describe the legacy path's dynamic distribution: items
	// is the round's work-item count, claimed how many were handed to a
	// worker before the round ended.
	claimed int64
	items   int
}

// runRound spawns the round's workers, waits for them to finish or quiesce,
// and reports how the distribution ended. Round-zero work comes from first
// (fresh runs); resumed and post-checkpoint rounds carry their work in
// tasks.
func (e *shared) runRound(ws []*worker, first []uint32, tasks []task) roundState {
	var wg sync.WaitGroup
	var rs roundState
	if e.opts.SplitDepth < 0 {
		// Ablation baseline: the pre-scheduler first-level-only dynamic
		// loop. Extra workers are useless beyond the item count, and one
		// skewed first-edge subtree serializes its worker.
		var next atomic.Int64
		n := len(first)
		if tasks != nil {
			n = len(tasks)
		}
		rs.items = n
		spawn := len(ws)
		if spawn > n {
			spawn = n
		}
		for wi := 0; wi < spawn; wi++ {
			w := ws[wi]
			w.stop, w.sched = false, nil
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer e.recoverWorker()
				for !e.stopped.Load() {
					i := next.Add(1) - 1
					if int(i) >= n {
						return
					}
					if tasks != nil {
						w.runTask(&tasks[i])
					} else {
						w.mineFrom(first[i])
					}
				}
			}()
		}
		wg.Wait()
		rs.claimed = next.Load()
		if rs.claimed > int64(n) {
			rs.claimed = int64(n)
		}
		return rs
	}
	sched := newScheduler(len(ws))
	if tasks != nil {
		sched.seedTasks(tasks)
	} else {
		sched.seed(first)
	}
	rs.sched = sched
	for wi, w := range ws {
		w.stop = false
		w.sched, w.id = sched, wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer e.recoverWorker()
			w.run()
		}()
	}
	wg.Wait()
	return rs
}

// splitParams resolves the scheduling knobs: SplitDepth 0 means the default
// two levels (clamped so the last position is never splittable — splitting
// there publishes leaves, pure overhead), SplitThreshold 0 means the default.
func splitParams(plan *oig.Plan, opts Options) (depth, threshold int) {
	depth = opts.SplitDepth
	if depth == 0 {
		depth = defaultSplitDepth
	}
	if max := plan.Pattern.NumEdges() - 1; depth > max {
		depth = max
	}
	if depth < 1 {
		depth = 1
	}
	threshold = opts.SplitThreshold
	if threshold <= 0 {
		threshold = defaultSplitThreshold
	}
	return depth, threshold
}

// shared is the per-run state every worker uses. Everything except the
// cancellation flags is read-only during mining.
type shared struct {
	store  *dal.Store
	plan   *oig.Plan
	opts   Options
	kernel intset.Kernel
	// splitDepth/splitThreshold are the resolved scheduling knobs (see
	// Options.SplitDepth / Options.SplitThreshold and splitParams).
	splitDepth     int
	splitThreshold int
	// stopped is the shared cooperative-cancellation flag: set by the
	// deadline timer, the context watcher, a panicking worker, and the
	// worker that reaches Limit, checked once per candidate by every worker
	// (including thieves executing stolen tasks).
	stopped atomic.Bool
	// abandoned records that some worker actually walked away from
	// unexplored work after observing stopped — the condition under which
	// Result.Truncated is reported. A run whose stop flag fires only after
	// (or exactly at) exhaustion stays un-truncated.
	abandoned atomic.Bool
	// saveOnStop switches the workers from abandoning unexplored work on a
	// stop to saving it as frontier tasks (worker.saveTask) — set when a
	// checkpoint sink is configured, so every quiesce point captures the
	// exact remaining search space.
	saveOnStop bool
	// deadlineHit latches deadline expiry separately from stopped, which
	// checkpointed runs reset between rounds; the driver consults it to
	// tell "quiesce for a checkpoint" from "out of time".
	deadlineHit atomic.Bool
	// panicErr holds the first worker panic, converted to an error so a
	// crashing user callback cannot take down the process.
	panicMu  sync.Mutex
	panicErr error // guarded by panicMu
	// autoPerms holds the non-identity automorphism permutations when
	// UniqueOnly filtering is active.
	autoPerms [][]int
	emitMu    sync.Mutex
}

// ErrWorkerPanic wraps a panic recovered on a mining worker goroutine;
// match with errors.Is to distinguish a crashed query (a server-side bug
// or a faulty user callback) from an invalid one.
var ErrWorkerPanic = errors.New("engine: worker panicked")

// recoverWorker converts a panic on a worker goroutine (most plausibly a
// user OnEmbedding callback, but any engine bug too) into a recorded error
// instead of a process death, and stops the remaining workers. The worker's
// own unexplored subtree is gone, so the run is marked abandoned.
func (e *shared) recoverWorker() {
	r := recover()
	if r == nil {
		return
	}
	e.panicMu.Lock()
	if e.panicErr == nil {
		e.panicErr = fmt.Errorf("%w: %v\n%s", ErrWorkerPanic, r, debug.Stack())
	}
	e.panicMu.Unlock()
	e.abandoned.Store(true)
	e.stopped.Store(true)
}

// firstCandidates enumerates candidates of the first pattern hyperedge:
// every data hyperedge with matching degree (and label histogram for
// labeled patterns).
func (e *shared) firstCandidates() []uint32 {
	h := e.store.Hypergraph()
	st := &e.plan.Steps[0]
	cands := e.store.EdgesWithDegree(st.Degree)
	if !e.plan.Labeled && st.EdgeLabel < 0 && e.opts.PositionFilter == nil {
		return cands
	}
	var scratch []int
	if e.plan.Labeled {
		scratch = make([]int, h.NumLabels())
	}
	// Filter into a fresh slice: cands may be the DAL's shared degree-index
	// storage, which in-place filtering would corrupt for concurrent runs.
	out := make([]uint32, 0, len(cands))
	for _, c := range cands {
		if st.EdgeLabel >= 0 && (!h.EdgeLabeled() || int64(h.EdgeLabel(c)) != st.EdgeLabel) {
			continue
		}
		if e.plan.Labeled && !labelsMatch(h, c, st.EdgeLabels, scratch) {
			continue
		}
		if f := e.opts.PositionFilter; f != nil && !f(0, c) {
			continue
		}
		out = append(out, c)
	}
	return out
}
