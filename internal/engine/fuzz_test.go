package engine

import (
	"bytes"
	"errors"
	"testing"

	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// FuzzPlanVerify drives mutated snapshot bytes through the full resume
// verification stack: checkpoint.Decode (CRC + structural bounds) followed
// by ValidateSnapshot, which runs the IR verifier on the plan and compares
// fingerprints. The contract under fuzzing: never panic — every corrupt
// input must surface as checkpoint.ErrCorrupt, a version error, or a
// ValidateSnapshot diagnostic.
func FuzzPlanVerify(f *testing.F) {
	edges := make([][]uint32, 12)
	for i := range edges {
		edges[i] = []uint32{0, uint32(i + 1)}
	}
	store := dal.Build(hypergraph.MustBuild(13, edges, nil))
	p := pattern.MustNew([][]uint32{{0, 1}, {0, 2}}, nil)
	plan, err := CompilePlan(store, p, Options{})
	if err != nil {
		f.Fatal(err)
	}

	// Seed with a valid encoded snapshot so the fuzzer starts from bytes
	// that pass the CRC and explores mutations from there.
	valid := &checkpoint.Snapshot{
		Seq:     3,
		PlanFP:  PlanFingerprint(plan),
		GraphFP: store.Hypergraph().Fingerprint(),
		Ordered: 41,
		Stats:   PackStats(Stats{Candidates: 7, Embeddings: 41}),
		Frontier: []checkpoint.Task{
			{Depth: 1, Prefix: []uint32{2}, Cands: []uint32{3, 4, 5}},
			{Depth: 0, Prefix: nil, Cands: []uint32{9}},
		},
	}
	var buf bytes.Buffer
	if err := valid.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("OHMC"))
	trunc := append([]byte(nil), buf.Bytes()...)
	f.Add(trunc[:len(trunc)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := checkpoint.Decode(bytes.NewReader(data))
		if err != nil {
			if snap != nil {
				t.Fatalf("Decode returned both a snapshot and error %v", err)
			}
			return // corrupt or wrong version: rejected, as required
		}
		// CRC-valid bytes: the semantic validator must still accept or
		// reject without panicking, and the plan itself must verify.
		if verr := ValidateSnapshot(store, plan, snap); verr != nil {
			if errors.Is(verr, oig.ErrInvalidPlan) {
				t.Fatalf("freshly compiled plan reported invalid: %v", verr)
			}
			return // snapshot rejected with a diagnostic
		}
	})
}
