package engine

import (
	"testing"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

// TestDeadlineTruncates: a run with a tiny deadline must stop early, flag
// Truncated, and undercount relative to the full run.
func TestDeadlineTruncates(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "d", NumVertices: 250, NumEdges: 4000,
		Communities: 6, MemberOverlap: 2, EdgeSizeMin: 2, EdgeSizeMax: 6, EdgeSizeMean: 3, Seed: 19})
	store := dal.Build(h)
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil)

	full, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unbounded run marked truncated")
	}
	if full.Elapsed < 5*time.Millisecond {
		t.Skipf("workload too fast (%v) to truncate reliably", full.Elapsed)
	}
	cut, err := Mine(store, p, Options{Workers: 1, Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Truncated {
		t.Fatalf("deadline run not truncated (full took %v)", full.Elapsed)
	}
	if cut.Ordered >= full.Ordered {
		t.Fatalf("truncated run counted %d ≥ full %d", cut.Ordered, full.Ordered)
	}
}

// TestLimitMarksTruncated: hitting the Limit flags the result.
func TestLimitMarksTruncated(t *testing.T) {
	h := gen.MustGenerate(gen.Config{Name: "d", NumVertices: 120, NumEdges: 600,
		Communities: 5, MemberOverlap: 1, EdgeSizeMin: 2, EdgeSizeMax: 5, EdgeSizeMean: 3, Seed: 20})
	store := dal.Build(h)
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	full, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Ordered < 20 {
		t.Skip("workload too small")
	}
	lim, err := Mine(store, p, Options{Workers: 1, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !lim.Truncated {
		t.Fatal("limit hit but not marked truncated")
	}
}
