package engine

import (
	"slices"
	"sync/atomic"
	"time"

	"ohminer/internal/hypergraph"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/sig"
)

// worker owns all mutable state of one mining goroutine; the hot path
// allocates nothing after construction. The slice and map fields are
// per-goroutine scratch whose backing arrays are reused across steps —
// they must never be returned, stored elsewhere, or sent to another
// goroutine (enforced by ohmlint's scratch-escape analyzer).
//
//ohmlint:scratch
type worker struct {
	e     *shared
	found *atomic.Uint64

	// sched/id attach the worker to a work-stealing run (scheduler.go);
	// both stay zero for standalone workers (EstimateCount, legacy mode).
	sched *scheduler
	id    int
	task  task // run buffer: deque hand-offs are copied in here

	c     []uint32   // bound hyperedge IDs, c[0..t]
	cand  [][]uint32 // candidate list buffer per step
	tmp   [][]uint32 // ping-pong buffer for progressive intersections
	nm    []uint32   // HGMatch-style merged incident-edge buffer
	slots [][]uint32 // overlap buffers, indexed by plan slot

	edgeMark  []uint32 // stamp array over hyperedges (NM merges)
	edgeStamp uint32
	vertMark  []uint32 // stamp array over vertices (profile validation)
	vertStamp uint32

	labelScratch []int // per-label counter for histogram checks
	profCount    map[uint64]int
	adjLists     [][]uint32   // scratch: adjacency groups per generation (HGMatch path)
	adjSets      []intset.Set // scratch: adaptive adjacency containers (DAL path)

	count uint64
	stop  bool // local mirror of shared.stopped, avoids repeat atomic loads while unwinding
	// saved collects the frontier remainders this worker walked away from
	// while unwinding after a quiesce (checkpointed runs only); the driver
	// drains it between rounds (collectFrontier).
	saved []task
	stats Stats
}

func newWorker(e *shared, found *atomic.Uint64) *worker {
	h := e.store.Hypergraph()
	m := e.plan.Pattern.NumEdges()
	maxDeg := 0
	for t := 0; t < m; t++ {
		if d := e.plan.Steps[t].Degree; d > maxDeg {
			maxDeg = d
		}
	}
	w := &worker{
		e:        e,
		found:    found,
		c:        make([]uint32, m),
		cand:     make([][]uint32, m),
		tmp:      make([][]uint32, m),
		slots:    make([][]uint32, e.plan.NumSlots),
		adjLists: make([][]uint32, 0, m),
		adjSets:  make([]intset.Set, 0, m),
	}
	for t := 0; t < m; t++ {
		w.cand[t] = make([]uint32, 0, 64)
		w.tmp[t] = make([]uint32, 0, 64)
	}
	for i := range w.slots {
		w.slots[i] = make([]uint32, 0, maxDeg)
	}
	if e.opts.Gen == GenHGMatch {
		w.edgeMark = make([]uint32, h.NumEdges())
		w.nm = make([]uint32, 0, 256)
	}
	if e.opts.Val == ValProfiles {
		w.vertMark = make([]uint32, h.NumVertices())
		w.profCount = make(map[uint64]int, 64)
	}
	if h.Labeled() {
		w.labelScratch = make([]int, h.NumLabels())
	}
	return w
}

// mineFrom explores the search subtree rooted at first bound to position 0.
// It is the root of the mining hot path: nothing reachable from here may
// allocate (enforced by ohmlint's hotpath-alloc analyzer).
//
//ohmlint:hotpath
func (w *worker) mineFrom(first uint32) {
	if w.stop {
		// This first-level subtree is being skipped. A checkpointed run
		// saves it as a depth-0 frontier task; otherwise the run
		// undercounts.
		if w.e.saveOnStop {
			w.saveRoot(first)
		} else {
			w.e.abandoned.Store(true)
		}
		return
	}
	w.c[0] = first
	if w.e.plan.Pattern.NumEdges() == 1 {
		w.emit()
		return
	}
	// Position 0 has no validation ops (a single edge carries only its
	// degree/label constraint, enforced by firstCandidates)...
	// except in profile mode, where step 0 establishes the profile baseline
	// trivially and can be skipped too.
	w.step(1)
}

// step binds position t to every surviving candidate and recurses.
func (w *worker) step(t int) {
	var t0 time.Time
	instrument := w.e.opts.Instrument
	if instrument {
		t0 = time.Now()
	}
	cands := w.generate(t)
	if instrument {
		w.stats.GenTime += time.Since(t0)
		w.stats.Candidates += uint64(len(cands))
	}
	w.explore(t, cands)
}

// explore iterates the candidates of position t — generated in place by
// step, or handed over in a task. While the position is shallow enough to
// matter (t < splitDepth) and enough candidates remain, the untouched half
// of the range is published for idle workers to steal; the published copy
// and the retained half partition the range, so each subtree is explored
// exactly once regardless of who executes it.
func (w *worker) explore(t int, cands []uint32) {
	last := t == w.e.plan.Pattern.NumEdges()-1
	instrument := w.e.opts.Instrument
	var t0 time.Time
	for i := 0; i < len(cands); i++ {
		// Shared cooperative cancellation: the deadline timer, a context
		// watcher, the checkpoint timer, and the Limit all set one flag,
		// checked with a single atomic load per candidate at every depth
		// (stealing workers included). Returning here leaves candidates
		// i..len-1 unexplored — exactly what Result.Truncated reports, or,
		// on a checkpointed run, exactly the remainder saveTask captures as
		// a frontier task. Both branches run only while unwinding after a
		// stop, never on the steady-state hot path.
		if w.stop || w.e.stopped.Load() {
			w.stop = true
			if w.e.saveOnStop {
				w.saveTask(t, cands[i:])
			} else {
				w.e.abandoned.Store(true)
			}
			return
		}
		if w.sched != nil && t < w.e.splitDepth {
			if rem := len(cands) - i; rem >= 2*w.e.splitThreshold {
				mid := i + rem/2
				if w.publish(t, cands[mid:]) {
					cands = cands[:mid]
				}
			}
		}
		c := cands[i]
		if t > 0 {
			if !w.accept(t, c) {
				continue
			}
			w.c[t] = c
			if instrument {
				t0 = time.Now()
			}
			ok := w.validate(t)
			if instrument {
				w.stats.ValTime += time.Since(t0)
			}
			if !ok {
				continue
			}
			if instrument {
				w.stats.Embeddings++
			}
		} else {
			// Position 0 has no validation ops: firstCandidates already
			// enforced the degree/label constraints.
			w.c[0] = c
		}
		if last {
			w.emit()
		} else {
			w.step(t + 1)
		}
	}
}

// emitCallback hands the bound tuple to the user callback under emitMu. The
// unlock is deferred so a panicking callback cannot leave the mutex held —
// peers already blocked in Lock would deadlock the whole run instead of
// unwinding through recoverWorker.
func (w *worker) emitCallback() {
	w.e.emitMu.Lock()
	defer w.e.emitMu.Unlock()
	//ohmlint:allow scratch-escape -- calls are serialized by emitMu and the API documents copy-to-retain
	w.e.opts.OnEmbedding(w.c)
}

// saveTask records the unexplored remainder of the current frame — position
// t still to bind each of cands, with w.c[:t] already bound — as a frontier
// task. Deeper frames save their own remainders first while unwinding, and
// the parent's loop index has already advanced past the candidate whose
// subtree those frames cover, so the saved tasks partition the unexplored
// space exactly: on resume nothing is mined twice and nothing is lost.
//
// The copies below allocate, but only once per frame while unwinding after
// a quiesce — never in steady state.
func (w *worker) saveTask(t int, cands []uint32) {
	w.saved = append(w.saved, task{
		depth:  t,
		prefix: append([]uint32(nil), w.c[:t]...), //ohmlint:allow hotpath-alloc -- quiesce unwind only
		cands:  append([]uint32(nil), cands...),   //ohmlint:allow hotpath-alloc -- quiesce unwind only
	})
}

// saveRoot records a never-started first-level subtree as a depth-0
// frontier task (legacy-path quiesce).
func (w *worker) saveRoot(first uint32) {
	w.saved = append(w.saved, task{cands: []uint32{first}}) //ohmlint:allow hotpath-alloc -- at most once per worker per quiesce
}

func (w *worker) emit() {
	w.count++
	if w.e.opts.OnEmbedding != nil && w.isCanonical() {
		w.emitCallback()
	}
	if w.e.opts.Limit > 0 && w.found.Add(1) >= w.e.opts.Limit {
		w.stop = true
		// Cooperative cancellation: peers (including workers busy with
		// stolen subtrees) observe the flag at their next candidate.
		w.e.stopped.Store(true)
	}
}

// isCanonical reports whether the bound tuple is the lexicographically
// smallest among its automorphic reorderings — the UniqueOnly filter. Each
// unordered embedding has exactly one canonical tuple because the bound
// hyperedges are distinct... up to co-extensive labeled duplicates, whose
// tie keeps the original (a permuted tuple must be strictly smaller to
// disqualify).
func (w *worker) isCanonical() bool {
	for _, perm := range w.e.autoPerms {
		for i := range w.c {
			pc := w.c[perm[i]]
			if pc < w.c[i] {
				return false // a strictly smaller reordering exists
			}
			if pc > w.c[i] {
				break
			}
		}
	}
	return true
}

// accept applies the cheap per-candidate constraints: distinctness,
// symmetry-breaking restrictions, generation-time disconnection (skipped
// for profile validation, which catches spurious connections itself, as
// HGMatch does), and the label histogram for labeled patterns.
func (w *worker) accept(t int, c uint32) bool {
	for j := 0; j < t; j++ {
		if w.c[j] == c {
			return false
		}
	}
	// Symmetry breaking: the candidate must stay strictly above every
	// restricted earlier binding, so of each unordered embedding's |Aut|
	// ordered tuples only the lexicographically smallest survives. One
	// compare per restriction, before any set operation runs.
	for _, j := range w.e.plan.Steps[t].Restrict {
		if c <= w.c[j] {
			return false
		}
	}
	if f := w.e.opts.PositionFilter; f != nil && !f(t, c) {
		return false
	}
	h := w.e.store.Hypergraph()
	st := &w.e.plan.Steps[t]
	if w.e.opts.Val != ValProfiles {
		for _, j := range st.Disc {
			if w.e.opts.Gen == GenDAL {
				if w.e.store.Connected(c, w.c[j]) {
					return false
				}
			} else if intset.Intersects(h.EdgeVertices(c), h.EdgeVertices(w.c[j])) {
				return false
			}
		}
	}
	if st.EdgeLabel >= 0 && (!h.EdgeLabeled() || int64(h.EdgeLabel(c)) != st.EdgeLabel) {
		return false
	}
	if w.e.plan.Labeled && !labelsMatch(h, c, st.EdgeLabels, w.labelScratch) {
		return false
	}
	return true
}

// validate dispatches to the configured validation strategy.
func (w *worker) validate(t int) bool {
	if w.e.opts.Val == ValProfiles {
		return w.validateProfiles(t)
	}
	return w.validateOverlaps(t)
}

// validateOverlaps executes the plan's operations for step t — the
// incremental EOIG maintenance of Sec. 4.4: each op extends the embedding's
// overlap state and prunes on the first mismatch. Operands resolve to
// adaptive containers (hyperedge vertex sets carry their DAL bitmap windows
// unless the op's container hint says the degree class is array-only), so
// dense overlaps run the SWAR/probe kernels and sparse ones the array family.
func (w *worker) validateOverlaps(t int) bool {
	h := w.e.store.Hypergraph()
	kernel := w.e.kernel
	for i := range w.e.plan.Steps[t].Ops {
		op := &w.e.plan.Steps[t].Ops[i]
		switch op.Kind {
		case oig.OpIntersect:
			a, b := w.resolveSet(op.A, op.Hint), w.resolveSet(op.B, op.Hint)
			w.stats.SetOps++
			w.countKernelClass(intset.Classify(a, b))
			out := kernel.IntersectSets(a, b, w.slots[op.Out][:0])
			w.slots[op.Out] = out
			if len(out) != op.Want {
				return false
			}
			if op.LabelWant != nil && !vertLabelsMatch(h, out, op.LabelWant, w.labelScratch) {
				return false
			}
		case oig.OpIntersectCount:
			a, b := w.resolveSet(op.A, op.Hint), w.resolveSet(op.B, op.Hint)
			w.stats.SetOps++
			w.countKernelClass(intset.Classify(a, b))
			if kernel.IntersectCountSets(a, b) != op.Want {
				return false
			}
		case oig.OpIntersectEq:
			a, b := w.resolveSet(op.A, op.Hint), w.resolveSet(op.B, op.Hint)
			w.stats.SetOps++
			w.countKernelClass(intset.Classify(a, b))
			out := kernel.IntersectSets(a, b, w.slots[op.Out][:0])
			w.slots[op.Out] = out
			if !intset.Equal(out, w.resolve(op.Eq)) {
				return false
			}
		case oig.OpEmptyCheck:
			a, b := w.resolveSet(op.A, op.Hint), w.resolveSet(op.B, op.Hint)
			w.countKernelClass(intset.Classify(a, b))
			if kernel.SetsIntersect(a, b) {
				return false
			}
		case oig.OpSubsetCheck:
			if !intset.IsSubset(w.resolve(op.A), w.resolve(op.B)) {
				return false
			}
		case oig.OpEqCheck:
			if !intset.Equal(w.resolve(op.A), w.resolve(op.Eq)) {
				return false
			}
		}
	}
	return true
}

func (w *worker) resolve(o oig.Operand) []uint32 {
	if o.Edge {
		return w.e.store.Hypergraph().EdgeVertices(w.c[o.Pos])
	}
	return w.slots[o.Pos]
}

// resolveSet resolves an operand as an adaptive container: hyperedge
// operands come from the DAL's container arena (window metadata skipped
// when the op's hint says the degree class is array-only), slot operands
// are the worker's plain array buffers.
//
//ohmlint:hotpath
func (w *worker) resolveSet(o oig.Operand, hint oig.ContainerHint) intset.Set {
	if o.Edge {
		if hint == oig.HintArray {
			return intset.ArrayView(w.e.store.Hypergraph().EdgeVertices(w.c[o.Pos]))
		}
		return w.e.store.EdgeVertexSet(w.c[o.Pos])
	}
	return intset.ArrayView(w.slots[o.Pos])
}

// validateProfiles recomputes the profile of every distinct vertex of the
// partial embedding and compares the multiset with the pattern's — the
// vertex-granularity validation of HGMatch (Fig. 2(b)). The full recompute
// per step is exactly the redundancy Fig. 3(c) measures.
func (w *worker) validateProfiles(t int) bool {
	h := w.e.store.Hypergraph()
	want := w.e.plan.ProfileCounts[t]
	clear(w.profCount)
	w.nextVertStamp()
	total := 0
	distinctProfiles := 0
	for i := 0; i <= t; i++ {
		for _, v := range h.EdgeVertices(w.c[i]) {
			if w.vertMark[v] == w.vertStamp {
				continue
			}
			w.vertMark[v] = w.vertStamp
			var profile uint64
			for k := 0; k <= t; k++ {
				if k == i || intset.Contains(h.EdgeVertices(w.c[k]), v) {
					profile |= 1 << uint(k)
				}
			}
			if w.e.plan.Labeled {
				profile |= uint64(h.Label(v)) << 32
			}
			if w.profCount[profile] == 0 {
				distinctProfiles++
			}
			w.profCount[profile]++
			total++
		}
	}
	if w.e.opts.Instrument {
		w.stats.ProfileVertices += uint64(total)
		w.stats.RedundantProfileVertices += uint64(total - distinctProfiles)
	}
	if len(w.profCount) != len(want) {
		return false
	}
	for k, n := range want {
		if w.profCount[k] != n {
			return false
		}
	}
	return true
}

// labelsMatch verifies that hyperedge c's vertex label histogram equals
// want. scratch is a per-label counter slice that is restored to zero.
func labelsMatch(h *hypergraph.Hypergraph, c uint32, want []sig.LabelCount, scratch []int) bool {
	return vertLabelsMatch(h, h.EdgeVertices(c), want, scratch)
}

// vertLabelsMatch verifies that the label histogram of verts equals want.
func vertLabelsMatch(h *hypergraph.Hypergraph, verts []uint32, want []sig.LabelCount, scratch []int) bool {
	for _, v := range verts {
		scratch[h.Label(v)]++
	}
	ok := true
	seen := 0
	for _, lc := range want {
		if scratch[lc.Label] != lc.Count {
			ok = false
		}
		seen += lc.Count
	}
	if seen != len(verts) {
		ok = false
	}
	for _, v := range verts {
		scratch[h.Label(v)] = 0
	}
	return ok
}

// generate produces the candidate list for step t into w.cand[t].
func (w *worker) generate(t int) []uint32 {
	if w.e.opts.Gen == GenDAL {
		return w.generateDAL(t)
	}
	return w.generateHGMatch(t)
}

// generateDAL intersects the degree-pruned adjacency groups of the
// already-matched connected hyperedges (Sec. 4.5) with one k-way kernel
// call: the groups arrive as adaptive containers straight from the DAL's
// arenas (bitmap windows included, never converted), Kernel.IntersectK
// orders them rarest-first, and the scan short-circuits the moment any
// operand is exhausted. The (result, spare) return keeps the worker's
// ping-pong buffers owned across calls.
func (w *worker) generateDAL(t int) []uint32 {
	st := &w.e.plan.Steps[t]
	sets := w.adjSets[:0]
	for _, j := range st.Conn {
		s := w.e.store.AdjSetWithDegree(w.c[j], st.Degree)
		if s.Len() == 0 {
			w.adjSets = sets
			w.cand[t] = w.cand[t][:0]
			return w.cand[t]
		}
		sets = append(sets, s)
	}
	w.adjSets = sets
	w.countKernelClass(intset.ClassifyK(sets))
	w.cand[t], w.tmp[t] = w.e.kernel.IntersectK(sets, w.cand[t][:0], w.tmp[t][:0])
	return w.cand[t]
}

// countKernelClass attributes one set operation to its kernel path.
func (w *worker) countKernelClass(c intset.PairClass) {
	switch c {
	case intset.ClassBitmap:
		w.stats.KernelBitmap++
	case intset.ClassMixed:
		w.stats.KernelMixed++
	default:
		w.stats.KernelArray++
	}
}

// generateHGMatch reproduces the match-by-hyperedge baseline's candidate
// generation (Fig. 2(a)): for every pattern vertex u in the overlap between
// pe_t and an already-matched pe_j, it re-derives NM(u) — the degree-pruned
// union of the incident hyperedges of every vertex of c_j — and intersects
// all the NM sets. All vertices of one overlap produce the same NM, which is
// precisely the redundant computation OHMiner eliminates; the redundancy
// counter feeds Fig. 3(b).
func (w *worker) generateHGMatch(t int) []uint32 {
	st := &w.e.plan.Steps[t]
	s := w.e.plan.Sig
	acc := w.cand[t][:0]
	firstList := true
	for _, j := range st.Conn {
		overlapVerts := s.Size(uint32(1<<j | 1<<t))
		for u := 0; u < overlapVerts; u++ {
			nm := w.mergeIncident(w.c[j], st.Degree)
			w.stats.NMFetches++
			if u > 0 {
				w.stats.RedundantNMFetches++
			}
			if firstList {
				acc = append(acc[:0], nm...)
				firstList = false
			} else {
				out := w.e.kernel.Intersect(acc, nm, w.tmp[t][:0])
				w.tmp[t], acc = acc, out
			}
			if len(acc) == 0 {
				w.cand[t] = acc
				return acc
			}
		}
	}
	w.cand[t] = acc
	return acc
}

// mergeIncident unions the incident hyperedges of every vertex of edge j,
// keeping only hyperedges of the wanted degree, and returns them sorted.
func (w *worker) mergeIncident(j uint32, degree int) []uint32 {
	h := w.e.store.Hypergraph()
	w.nextEdgeStamp()
	w.nm = w.nm[:0]
	for _, v := range h.EdgeVertices(j) {
		for _, e := range h.VertexEdges(v) {
			if e == j || w.edgeMark[e] == w.edgeStamp {
				continue
			}
			w.edgeMark[e] = w.edgeStamp
			if h.Degree(e) == degree {
				w.nm = append(w.nm, e)
			}
		}
	}
	slices.Sort(w.nm)
	return w.nm
}

// nextEdgeStamp opens a fresh edge-mark generation. On uint32 wraparound
// the mark array is cleared and the stamp restarts at 1: without the
// reset, marks written ~2^32 generations ago would compare equal to the
// recycled stamp and stale hyperedges would be treated as already merged.
func (w *worker) nextEdgeStamp() {
	w.edgeStamp++
	if w.edgeStamp == 0 {
		clear(w.edgeMark)
		w.edgeStamp = 1
	}
}

// nextVertStamp opens a fresh vertex-mark generation, with the same
// wraparound reset as nextEdgeStamp.
func (w *worker) nextVertStamp() {
	w.vertStamp++
	if w.vertStamp == 0 {
		clear(w.vertMark)
		w.vertStamp = 1
	}
}
