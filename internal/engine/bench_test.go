package engine

import (
	"math/rand"
	"testing"

	"ohminer/internal/dal"
	"ohminer/internal/gen"
	"ohminer/internal/pattern"
)

func benchFixture(b *testing.B) (*dal.Store, *pattern.Pattern) {
	b.Helper()
	h := gen.MustGenerate(gen.Config{Name: "b", NumVertices: 400, NumEdges: 2500,
		Communities: 18, MemberOverlap: 1.2, EdgeSizeMin: 3, EdgeSizeMax: 16, EdgeSizeMean: 9, Seed: 103})
	store := dal.Build(h)
	rng := rand.New(rand.NewSource(11))
	p, err := pattern.Sample(h, 3, 8, 25, rng)
	if err != nil {
		b.Fatal(err)
	}
	return store, p
}

// BenchmarkValidationPaths isolates the three validation strategies on
// identical candidate generation.
func BenchmarkValidationPaths(b *testing.B) {
	store, p := benchFixture(b)
	for _, cfg := range []struct {
		name string
		val  ValMode
	}{
		{"overlap-merged", ValOverlap},
		{"overlap-simple", ValOverlapSimple},
		{"profiles", ValProfiles},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Mine(store, p, Options{Gen: GenDAL, Val: cfg.val, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerationPaths isolates DAL vs vertex-granularity candidate
// generation under identical validation.
func BenchmarkGenerationPaths(b *testing.B) {
	store, p := benchFixture(b)
	for _, cfg := range []struct {
		name string
		gen  GenMode
	}{
		{"dal", GenDAL},
		{"hgmatch", GenHGMatch},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Mine(store, p, Options{Gen: cfg.gen, Val: ValOverlap, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateFractions shows the estimator's time/accuracy dial.
func BenchmarkEstimateFractions(b *testing.B) {
	store, p := benchFixture(b)
	for _, f := range []float64{0.05, 0.25, 1.0} {
		b.Run(intsetName(f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EstimateCount(store, p, f, int64(i), Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func intsetName(f float64) string {
	switch {
	case f >= 1:
		return "exact"
	case f >= 0.25:
		return "quarter"
	default:
		return "5pct"
	}
}
