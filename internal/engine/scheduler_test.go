package engine

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// skewedInput builds the adversarial case for first-level-only scheduling: a
// chain pattern pe0–pe1–pe2 whose first step has exactly ONE data candidate
// (a unique degree-5 hub), so the old scheduler clamps every run to one
// worker. All fan² embeddings hang off that single first-edge subtree; only
// subtree stealing below the root can parallelize them.
//
// Data hypergraph:
//
//	hub  = {0..4}            the only degree-5 hyperedge
//	A_i  = {4, 10+i}         fan edges sharing hub vertex 4
//	B_ij = {10+i, base+i*fan+j}  second-level fan per A_i, disjoint from hub
func skewedInput(t *testing.T, fan int) (*dal.Store, *oig.Plan) {
	t.Helper()
	edges := [][]uint32{{0, 1, 2, 3, 4}}
	base := uint32(1000)
	for i := 0; i < fan; i++ {
		edges = append(edges, []uint32{4, uint32(10 + i)})
	}
	for i := 0; i < fan; i++ {
		for j := 0; j < fan; j++ {
			edges = append(edges, []uint32{uint32(10 + i), base + uint32(i*fan+j)})
		}
	}
	h := hypergraph.MustBuild(int(base)+fan*fan, edges, nil)
	p := pattern.MustNew([][]uint32{{0, 1, 2, 3, 4}, {4, 5}, {5, 6}}, nil)
	// Pin the matching order to pattern index order so pe0 (the hub) is the
	// first step regardless of structural ordering heuristics.
	plan, err := oig.CompileOrdered(p, oig.ModeMerged, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return dal.Build(h), plan
}

// TestDequeSemantics pins the deque contract: owner pops LIFO, thieves steal
// FIFO, a full deque rejects pushes, and every hand-off is a copy.
func TestDequeSemantics(t *testing.T) {
	var d deque
	src := []uint32{1, 2, 3}
	if !d.push(1, []uint32{9}, src) {
		t.Fatal("push into empty deque failed")
	}
	// The deque must have copied: mutating the source after push is safe.
	src[0] = 77
	if !d.push(2, []uint32{9, 8}, []uint32{4, 5}) {
		t.Fatal("second push failed")
	}

	var tk task
	if !d.steal(&tk) || tk.depth != 1 || tk.cands[0] != 1 {
		t.Fatalf("steal got depth=%d cands=%v, want the oldest task (1, [1 2 3])", tk.depth, tk.cands)
	}
	if !d.pop(&tk) || tk.depth != 2 || len(tk.prefix) != 2 {
		t.Fatalf("pop got depth=%d prefix=%v, want the newest task", tk.depth, tk.prefix)
	}
	if d.pop(&tk) || d.steal(&tk) {
		t.Fatal("empty deque yielded a task")
	}

	for i := 0; i < dequeCap; i++ {
		if !d.push(0, nil, []uint32{uint32(i)}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if d.push(0, nil, []uint32{99}) {
		t.Fatal("push into full deque succeeded")
	}
	// FIFO steal order across the whole ring.
	for i := 0; i < dequeCap; i++ {
		if !d.steal(&tk) || tk.cands[0] != uint32(i) {
			t.Fatalf("steal %d got %v", i, tk.cands)
		}
	}
}

// TestStealingDeterministic is the acceptance criterion for the scheduler:
// on the skewed input (one first-level candidate), Result.Ordered must be
// identical for 1, 4, and 16 workers with stealing active, and must match
// the legacy first-level-only scheduler. Run under -race this also checks
// the publish/steal hand-off for data races.
func TestStealingDeterministic(t *testing.T) {
	store, plan := skewedInput(t, 24)
	want := uint64(24 * 24)

	for _, v := range Variants() {
		if v.Val == ValOverlapSimple {
			continue // needs a simple-mode plan; covered by TestWorkerPoolDeterministic
		}
		legacy, err := MineWithPlan(store, plan, Options{Gen: v.Gen, Val: v.Val, Workers: 4, SplitDepth: -1})
		if err != nil {
			t.Fatalf("%s legacy: %v", v.Name, err)
		}
		if legacy.Ordered != want {
			t.Fatalf("%s legacy: Ordered=%d want %d", v.Name, legacy.Ordered, want)
		}
		for _, workers := range []int{1, 4, 16} {
			res, err := MineWithPlan(store, plan, Options{
				Gen: v.Gen, Val: v.Val, Workers: workers, SplitThreshold: 2,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", v.Name, workers, err)
			}
			if res.Ordered != want || res.Truncated {
				t.Errorf("%s workers=%d: Ordered=%d truncated=%v, want %d/false",
					v.Name, workers, res.Ordered, res.Truncated, want)
			}
			// Publication is deterministic (it depends only on the split
			// policy, not on timing); steals are not — on a single-CPU host
			// the owner can drain its own deque before a thief runs, so the
			// end-to-end steal check lives in TestStealOccurs.
			if res.Stats.Publishes == 0 {
				t.Errorf("%s workers=%d: no publications on the skewed input", v.Name, workers)
			}
		}
	}
}

// TestStealOccurs checks the full publish→steal→resume path end to end on
// the skewed input. Whether a steal happens in any single run is a scheduling
// race (on one CPU the owner can pop every task it published before a thief
// is ever scheduled), so the run yields after each embedding to hand thieves
// the CPU and retries a bounded number of times; the counts of every attempt
// are still verified.
func TestStealOccurs(t *testing.T) {
	store, plan := skewedInput(t, 24)
	want := uint64(24 * 24)
	for attempt := 0; attempt < 50; attempt++ {
		res, err := MineWithPlan(store, plan, Options{
			Workers: 8, SplitThreshold: 2,
			OnEmbedding: func([]uint32) { runtime.Gosched() },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ordered != want {
			t.Fatalf("attempt %d: Ordered=%d want %d", attempt, res.Ordered, want)
		}
		if res.Stats.Steals > 0 {
			return
		}
	}
	t.Fatal("no steal observed in 50 runs on the skewed input with 8 workers")
}

// TestStealingMatchesRandom cross-checks stealing against the legacy
// scheduler on random inputs, with an aggressive split threshold so
// publication happens even on small candidate lists.
func TestStealingMatchesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		h := randHypergraph(rng, trial%2 == 1)
		store := dal.Build(h)
		p, err := pattern.Sample(h, 2+rng.Intn(3), 2, 30, rng)
		if err != nil {
			continue
		}
		for _, v := range Variants() {
			legacy, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 4, SplitDepth: -1})
			if err != nil {
				t.Fatalf("trial %d %s legacy: %v", trial, v.Name, err)
			}
			steal, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 8, SplitDepth: 3, SplitThreshold: 1})
			if err != nil {
				t.Fatalf("trial %d %s steal: %v", trial, v.Name, err)
			}
			if steal.Ordered != legacy.Ordered || steal.Unique != legacy.Unique {
				t.Errorf("trial %d %s: stealing ordered/unique = %d/%d, legacy %d/%d",
					trial, v.Name, steal.Ordered, steal.Unique, legacy.Ordered, legacy.Unique)
			}
		}
	}
}

// TestLimitUnderStealing checks cooperative cancellation through the shared
// stop flag: a Limit must truncate the run even when the embeddings are
// found by workers mining stolen subtrees.
func TestLimitUnderStealing(t *testing.T) {
	store, plan := skewedInput(t, 24)
	total := uint64(24 * 24)
	for _, workers := range []int{1, 8} {
		res, err := MineWithPlan(store, plan, Options{
			Workers: workers, Limit: 10, SplitThreshold: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Errorf("workers=%d: limit run not marked truncated", workers)
		}
		if res.Ordered < 10 {
			t.Errorf("workers=%d: Ordered=%d below limit 10", workers, res.Ordered)
		}
		if res.Ordered == total {
			t.Errorf("workers=%d: limit did not stop the run (Ordered=%d)", workers, res.Ordered)
		}
	}
}

// TestDeadlineUnderStealing checks that the deadline timer's shared flag
// stops workers mid-subtree. The OnEmbedding callback throttles emission so
// the run cannot finish before the timer fires.
func TestDeadlineUnderStealing(t *testing.T) {
	store, plan := skewedInput(t, 24)
	total := uint64(24 * 24)
	res, err := MineWithPlan(store, plan, Options{
		Workers: 8, SplitThreshold: 2, Deadline: 30 * time.Millisecond,
		OnEmbedding: func([]uint32) { time.Sleep(time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("deadline run not marked truncated")
	}
	if res.Ordered >= total {
		t.Errorf("deadline did not stop the run (Ordered=%d of %d)", res.Ordered, total)
	}
}

// TestSchedulerSeed pins the seeding layout: candidates are split into at
// most one contiguous chunk per worker and pending counts the chunks.
func TestSchedulerSeed(t *testing.T) {
	// 5 candidates over 4 workers: ceil(5/4) = 2 per chunk → 3 chunks.
	s := newScheduler(4)
	s.seed([]uint32{1, 2, 3, 4, 5})
	if got := s.pending.Load(); got != 3 {
		t.Fatalf("pending=%d after seeding 5 candidates over 4 workers, want 3 chunks", got)
	}
	var seen []uint32
	var tk task
	for i := range s.deques {
		for s.deques[i].pop(&tk) {
			if tk.depth != 0 || len(tk.prefix) != 0 {
				t.Fatalf("seeded task depth=%d prefix=%v", tk.depth, tk.prefix)
			}
			seen = append(seen, tk.cands...)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("seeded candidates %v, want all 5", seen)
	}

	// More workers than candidates: one single-candidate task each.
	s = newScheduler(16)
	s.seed([]uint32{7, 8})
	if got := s.pending.Load(); got != 2 {
		t.Fatalf("pending=%d after seeding 2 candidates over 16 workers", got)
	}
}
