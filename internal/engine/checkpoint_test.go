package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ohminer/internal/bruteforce"
	"ohminer/internal/checkpoint"
	"ohminer/internal/dal"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// memSink captures encoded snapshots in memory, exercising the full
// serialization path without disk. afterWrite (when set) runs after each
// successful write with the running write count — tests use it to cancel
// the run at the k-th checkpoint, simulating a crash.
type memSink struct {
	mu         sync.Mutex
	data       [][]byte
	fail       error
	afterWrite func(n int)
}

func (ms *memSink) WriteSnapshot(s *checkpoint.Snapshot) (int64, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.fail != nil {
		return 0, ms.fail
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return 0, err
	}
	ms.data = append(ms.data, buf.Bytes())
	if ms.afterWrite != nil {
		ms.afterWrite(len(ms.data))
	}
	return int64(buf.Len()), nil
}

func (ms *memSink) writes() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.data)
}

func (ms *memSink) latest(t *testing.T) *checkpoint.Snapshot {
	t.Helper()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(ms.data) == 0 {
		t.Fatal("no snapshot written")
	}
	s, err := checkpoint.Decode(bytes.NewReader(ms.data[len(ms.data)-1]))
	if err != nil {
		t.Fatalf("decode captured snapshot: %v", err)
	}
	return s
}

// slowWorkload returns a workload with enough embeddings that a run
// throttled by slowEmit spans many checkpoint periods: a 90-edge star whose
// edges pairwise overlap in exactly the hub vertex, so the 2-edge pattern
// sharing one vertex has 90*89 ordered embeddings (~160ms throttled — wide
// margin over the 3 checkpoint rounds the kill tests need even on one CPU,
// where timer-goroutine starvation stretches each quiesce round to ~20ms).
func slowWorkload(t *testing.T) (*dal.Store, *pattern.Pattern, uint64) {
	t.Helper()
	const n = 90
	edges := make([][]uint32, n)
	for i := range edges {
		edges[i] = []uint32{0, uint32(i + 1)}
	}
	h := hypergraph.MustBuild(n+1, edges, nil)
	p := pattern.MustNew([][]uint32{{0, 1}, {0, 2}}, nil)
	want := bruteforce.Count(h, p)
	if want != n*(n-1) {
		t.Fatalf("star workload: brute force %d, want %d", want, n*(n-1))
	}
	return dal.Build(h), p, want
}

// slowEmit burns ~20µs per embedding (busy-wait: time.Sleep rounds up to
// scheduler granularity, which would inflate the test tenfold).
func slowEmit([]uint32) {
	end := time.Now().Add(20 * time.Microsecond)
	for time.Now().Before(end) {
	}
}

// TestCheckpointedRunExactCount proves that periodic quiescing is
// count-neutral: a run interrupted by dozens of checkpoint rounds reports
// exactly the uninterrupted total, on both scheduler paths.
func TestCheckpointedRunExactCount(t *testing.T) {
	store, p, want := slowWorkload(t)
	for _, split := range []int{0, -1} {
		sink := &memSink{}
		res, err := Mine(store, p, Options{
			Workers:         3,
			SplitDepth:      split,
			Checkpoint:      sink,
			CheckpointEvery: 2 * time.Millisecond,
			OnEmbedding:     slowEmit,
		})
		if err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		if res.Ordered != want {
			t.Errorf("split=%d: Ordered=%d want %d", split, res.Ordered, want)
		}
		if res.Truncated {
			t.Errorf("split=%d: completed run reported Truncated", split)
		}
		if sink.writes() == 0 {
			t.Errorf("split=%d: no checkpoints written during a %s run", split, res.Elapsed)
		}
		if res.Stats.Checkpoints != uint64(sink.writes()) {
			t.Errorf("split=%d: Stats.Checkpoints=%d, sink saw %d", split, res.Stats.Checkpoints, sink.writes())
		}
		if res.Stats.CheckpointBytes == 0 {
			t.Errorf("split=%d: Stats.CheckpointBytes=0", split)
		}
	}
}

// TestCrashResumeExactCount kills a run at the k-th checkpoint (context
// cancellation, the SIGTERM path) and resumes from the captured snapshot:
// the resumed total must equal the uninterrupted count exactly — embeddings
// counted before the kill are neither lost nor recounted. Both scheduler
// paths, several kill points.
func TestCrashResumeExactCount(t *testing.T) {
	store, p, want := slowWorkload(t)
	for _, split := range []int{0, -1} {
		for _, killAt := range []int{1, 3} {
			ctx, cancel := context.WithCancel(context.Background())
			sink := &memSink{}
			sink.afterWrite = func(n int) {
				if n == killAt {
					cancel()
				}
			}
			opts := Options{
				Workers:         3,
				SplitDepth:      split,
				Checkpoint:      sink,
				CheckpointEvery: 2 * time.Millisecond,
				OnEmbedding:     slowEmit,
			}
			res1, err := MineContext(ctx, store, p, opts)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("split=%d killAt=%d: err=%v (run finished in %d checkpoints before the kill?)",
					split, killAt, err, sink.writes())
			}
			if !res1.Truncated {
				t.Errorf("split=%d killAt=%d: killed run not Truncated", split, killAt)
			}
			snap := sink.latest(t)
			if snap.Ordered != res1.Ordered {
				t.Errorf("split=%d killAt=%d: final snapshot Ordered=%d, result says %d",
					split, killAt, snap.Ordered, res1.Ordered)
			}
			if res1.Ordered >= want {
				t.Fatalf("split=%d killAt=%d: kill came too late to test resume (%d >= %d)",
					split, killAt, res1.Ordered, want)
			}

			res2, err := ResumeFromCheckpoint(context.Background(), store, p, snap, opts)
			if err != nil {
				t.Fatalf("split=%d killAt=%d: resume: %v", split, killAt, err)
			}
			if res2.Ordered != want {
				t.Errorf("split=%d killAt=%d: resumed total %d, want %d (snapshot had %d)",
					split, killAt, res2.Ordered, want, snap.Ordered)
			}
			if res2.Truncated {
				t.Errorf("split=%d killAt=%d: completed resume reported Truncated", split, killAt)
			}

			// Resume is idempotent: replaying the same snapshot must land on
			// the same total (the snapshot is read-only to the engine).
			res3, err := ResumeFromCheckpoint(context.Background(), store, p, sink.latest(t), opts)
			if err != nil || res3.Ordered != want {
				t.Errorf("split=%d killAt=%d: second resume got (%d, %v), want (%d, nil)",
					split, killAt, res3.Ordered, err, want)
			}
		}
	}
}

// TestCheckpointSinkErrorsNonFatal proves a failing sink (disk full) never
// kills the run: the count stays exact and the failures are only counted.
func TestCheckpointSinkErrorsNonFatal(t *testing.T) {
	store, p, want := slowWorkload(t)
	sink := &memSink{fail: errors.New("no space left on device")}
	res, err := Mine(store, p, Options{
		Workers:         3,
		Checkpoint:      sink,
		CheckpointEvery: 2 * time.Millisecond,
		OnEmbedding:     slowEmit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered != want {
		t.Errorf("Ordered=%d want %d", res.Ordered, want)
	}
	if res.Truncated {
		t.Error("run with failing sink reported Truncated")
	}
	if res.Stats.CheckpointErrors == 0 {
		t.Error("failing sink produced no CheckpointErrors")
	}
	if res.Stats.Checkpoints != 0 {
		t.Errorf("failing sink counted %d successful checkpoints", res.Stats.Checkpoints)
	}
}

// TestResumeRejectsMismatchedSnapshot drives every validation rejection:
// wrong plan, wrong graph, and structurally absurd frontier tasks.
func TestResumeRejectsMismatchedSnapshot(t *testing.T) {
	store, p := fig1(t)
	res, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan
	goodFP := planFingerprint(plan)
	graphFP := store.Hypergraph().Fingerprint()
	base := func() *checkpoint.Snapshot {
		return &checkpoint.Snapshot{
			Seq: 1, PlanFP: goodFP, GraphFP: graphFP,
			Frontier: []checkpoint.Task{{Depth: 1, Prefix: []uint32{0}, Cands: []uint32{1, 2}}},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*checkpoint.Snapshot)
		wantSub string
	}{
		{"wrong plan", func(s *checkpoint.Snapshot) { s.PlanFP ^= 1 }, "different plan"},
		{"wrong graph", func(s *checkpoint.Snapshot) { s.GraphFP ^= 1 }, "different data hypergraph"},
		{"depth out of range", func(s *checkpoint.Snapshot) { s.Frontier[0].Depth = 99; s.Frontier[0].Prefix = make([]uint32, 99) }, "exceeds"},
		{"prefix length mismatch", func(s *checkpoint.Snapshot) { s.Frontier[0].Prefix = nil }, "prefix for depth"},
		{"prefix id out of range", func(s *checkpoint.Snapshot) { s.Frontier[0].Prefix[0] = 1 << 20 }, "binds hyperedge"},
		{"candidate id out of range", func(s *checkpoint.Snapshot) { s.Frontier[0].Cands[0] = 1 << 20 }, "lists candidate"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		_, err := ResumeWithPlanContext(context.Background(), store, plan, s, Options{Workers: 1})
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !bytes.Contains([]byte(err.Error()), []byte(tc.wantSub)) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	if _, err := ResumeWithPlanContext(context.Background(), store, plan, nil, Options{Workers: 1}); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestResumeEmptyFrontier: a snapshot whose frontier drained to nothing
// resumes to an immediately complete run carrying the saved counters.
func TestResumeEmptyFrontier(t *testing.T) {
	store, p := fig1(t)
	res, err := Mine(store, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := &checkpoint.Snapshot{
		Seq:     7,
		PlanFP:  planFingerprint(res.Plan),
		GraphFP: store.Hypergraph().Fingerprint(),
		Ordered: 42,
		Stats:   packStats(Stats{Candidates: 9, Checkpoints: 7}),
	}
	got, err := ResumeFromCheckpoint(context.Background(), store, p, snap, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ordered != 42 || got.Truncated {
		t.Errorf("got Ordered=%d Truncated=%v, want 42/false", got.Ordered, got.Truncated)
	}
	if got.Stats.Candidates != 9 || got.Stats.Checkpoints != 7 {
		t.Errorf("base stats not carried: %+v", got.Stats)
	}
}

// TestStatsPackRoundTrip pins the opaque stats packing the snapshot format
// carries.
func TestStatsPackRoundTrip(t *testing.T) {
	want := Stats{
		Candidates: 1, Embeddings: 2, SetOps: 3,
		NMFetches: 4, RedundantNMFetches: 5,
		ProfileVertices: 6, RedundantProfileVertices: 7,
		GenTime: 8 * time.Second, ValTime: 9 * time.Second,
		Publishes: 10, Steals: 11, IdleSpins: 12,
		Checkpoints: 13, CheckpointBytes: 14, CheckpointErrors: 15,
	}
	if got := unpackStats(packStats(want)); got != want {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	// Older (shorter) and newer (longer) packed slices must not panic.
	if got := unpackStats(packStats(want)[:5]); got.SetOps != 3 || got.Steals != 0 {
		t.Errorf("short unpack: %+v", got)
	}
	if got := unpackStats(append(packStats(want), 99, 98)); got != want {
		t.Errorf("long unpack: %+v", got)
	}
}
