package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"ohminer/internal/dal"
	"ohminer/internal/intset"
	"ohminer/internal/oig"
	"ohminer/internal/pattern"
)

// TestStampHelpersWraparound checks the generation-advance helpers directly:
// when a uint32 stamp wraps to zero the mark array must be cleared and the
// stamp restarted at 1, otherwise marks written ~4 billion generations ago
// read as current.
func TestStampHelpersWraparound(t *testing.T) {
	w := &worker{
		edgeMark: []uint32{7, 0, ^uint32(0), 1},
		vertMark: []uint32{1, 2, 3},
	}
	w.edgeStamp = ^uint32(0)
	w.nextEdgeStamp()
	if w.edgeStamp != 1 {
		t.Errorf("edgeStamp after wrap = %d, want 1", w.edgeStamp)
	}
	for i, m := range w.edgeMark {
		if m != 0 {
			t.Errorf("edgeMark[%d] = %d after wrap, want 0", i, m)
		}
	}

	w.vertStamp = ^uint32(0)
	w.nextVertStamp()
	if w.vertStamp != 1 {
		t.Errorf("vertStamp after wrap = %d, want 1", w.vertStamp)
	}
	for i, m := range w.vertMark {
		if m != 0 {
			t.Errorf("vertMark[%d] = %d after wrap, want 0", i, m)
		}
	}

	// A mid-range advance must not clear anything.
	w.edgeMark[2] = 9
	w.edgeStamp = 41
	w.nextEdgeStamp()
	if w.edgeStamp != 42 || w.edgeMark[2] != 9 {
		t.Errorf("mid-range advance: stamp=%d mark=%d, want 42/9", w.edgeStamp, w.edgeMark[2])
	}
}

// TestMiningAcrossStampWraparound is the end-to-end regression test for the
// wraparound bug: a single worker starts with both stamps a few generations
// below ^uint32(0) and mark arrays poisoned with small values that alias the
// post-wrap stamps. Mining must cross the wrap and still produce exactly the
// counts of a fresh engine run; without the clear-on-wrap guard the stale
// marks read as "already seen" and the run undercounts.
func TestMiningAcrossStampWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randHypergraph(rng, false)
	store := dal.Build(h)
	var p *pattern.Pattern
	for p == nil {
		var err error
		p, err = pattern.Sample(h, 3, 2, 30, rng)
		if err != nil {
			h = randHypergraph(rng, false)
			store = dal.Build(h)
		}
	}

	// GenHGMatch exercises edgeMark (incident-edge merges), ValProfiles
	// exercises vertMark (profile validation) — one run covers both.
	opts := Options{Gen: GenHGMatch, Val: ValProfiles, Workers: 1}
	clean, err := Mine(store, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Ordered == 0 {
		t.Fatal("sampled pattern has no embeddings; test would be vacuous")
	}

	plan, err := oig.Compile(p, oig.ModeMerged)
	if err != nil {
		t.Fatal(err)
	}
	e := &shared{store: store, plan: plan, opts: opts, kernel: intset.Fast}
	var found atomic.Uint64
	w := newWorker(e, &found)

	const start = ^uint32(0) - 2
	w.edgeStamp = start
	w.vertStamp = start
	for i := range w.edgeMark {
		w.edgeMark[i] = uint32(i%8) + 1 // aliases stamps 1..8 after the wrap
	}
	for i := range w.vertMark {
		w.vertMark[i] = uint32(i%8) + 1
	}

	for _, f := range e.firstCandidates() {
		w.mineFrom(f)
	}
	if w.count != clean.Ordered {
		t.Errorf("count across stamp wrap = %d, want %d", w.count, clean.Ordered)
	}
	// Prove the wrap actually happened: both stamps must have advanced past
	// ^uint32(0) and restarted low. If this fires, the input no longer
	// drives enough generations and the test is vacuous.
	if w.edgeStamp >= start {
		t.Errorf("edgeStamp=%d never wrapped (started at %d)", w.edgeStamp, start)
	}
	if w.vertStamp >= start {
		t.Errorf("vertStamp=%d never wrapped (started at %d)", w.vertStamp, start)
	}
}

// TestWorkerPoolDeterministic checks that the multi-worker pool is a pure
// parallelization: for every variant, mining with several workers yields
// exactly the single-worker counts. Run under -race (make race / make ci)
// this also shakes out data races between per-worker scratch states.
func TestWorkerPoolDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		labeled := trial%2 == 1
		h := randHypergraph(rng, labeled)
		store := dal.Build(h)
		p, err := pattern.Sample(h, 2+rng.Intn(2), 2, 30, rng)
		if err != nil {
			continue
		}
		for _, v := range Variants() {
			base, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: 1})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.Name, err)
			}
			for _, workers := range []int{2, 4, 8} {
				res, err := Mine(store, p, Options{Gen: v.Gen, Val: v.Val, Workers: workers})
				if err != nil {
					t.Fatalf("trial %d %s workers=%d: %v", trial, v.Name, workers, err)
				}
				if res.Ordered != base.Ordered || res.Unique != base.Unique || res.Truncated != base.Truncated {
					t.Errorf("trial %d %s workers=%d: ordered/unique/trunc = %d/%d/%v, single-worker %d/%d/%v",
						trial, v.Name, workers, res.Ordered, res.Unique, res.Truncated,
						base.Ordered, base.Unique, base.Truncated)
				}
			}
		}
	}
}
