package intset

import (
	"math/rand"
	"testing"
)

// setGens builds sets of deliberately different shapes so every kernel path
// (array, mixed probe, SWAR window, trimmed hubs, disjoint ranges) is hit.
var setGens = []struct {
	name string
	gen  func(r *rand.Rand) []uint32
}{
	{"empty", func(r *rand.Rand) []uint32 { return nil }},
	{"tiny", func(r *rand.Rand) []uint32 {
		return mkSet([]uint32{uint32(r.Intn(64)), uint32(r.Intn(64)), uint32(r.Intn(64))})
	}},
	{"sparse", func(r *rand.Rand) []uint32 {
		var v []uint32
		for i, x := 0, uint32(r.Intn(100)); i < 40; i++ {
			x += uint32(20 + r.Intn(400))
			v = append(v, x)
		}
		return v
	}},
	{"dense", func(r *rand.Rand) []uint32 {
		base := uint32(r.Intn(1000))
		var v []uint32
		for i := 0; i < 200; i++ {
			if r.Intn(3) != 0 {
				v = append(v, base+uint32(i))
			}
		}
		return v
	}},
	{"hub", func(r *rand.Rand) []uint32 {
		// A far-away hub vertex plus a dense tail: exercises window trimming.
		base := uint32(100000 + r.Intn(1000))
		v := []uint32{uint32(r.Intn(5))}
		for i := 0; i < 100; i++ {
			if r.Intn(4) != 0 {
				v = append(v, base+uint32(i))
			}
		}
		return mkSet(v)
	}},
	{"top", func(r *rand.Rand) []uint32 {
		// Elements at the very top of the uint32 universe: overflow checks.
		var v []uint32
		for i := 0; i < 64; i++ {
			v = append(v, ^uint32(0)-uint32(r.Intn(200)))
		}
		return mkSet(v)
	}},
}

func randShapedSet(r *rand.Rand) []uint32 {
	return setGens[r.Intn(len(setGens))].gen(r)
}

func TestPlanWordsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 2000; iter++ {
		arr := randShapedSet(r)
		base, nw, lo, hi, ok := PlanWords(arr)
		if !ok {
			continue
		}
		if lo > maxTrim || len(arr)-hi > maxTrim || hi-lo < minWindowLen {
			t.Fatalf("plan out of bounds: lo=%d hi=%d n=%d", lo, hi, len(arr))
		}
		if nw > (hi-lo)/maxWordsPerCore {
			t.Fatalf("window too sparse: %d words for %d core elements", nw, hi-lo)
		}
		loVal, hiVal := uint64(base)<<6, (uint64(base)+uint64(nw))<<6
		for i, x := range arr {
			in := uint64(x) >= loVal && uint64(x) < hiVal
			if in != (i >= lo && i < hi) {
				t.Fatalf("element %d (idx %d) on wrong side of window [%d,%d) core [%d,%d)",
					x, i, loVal, hiVal, lo, hi)
			}
		}
	}
}

func TestSetContains(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		arr := randShapedSet(r)
		s := BuildSet(arr)
		if s.Len() != len(arr) {
			t.Fatalf("Len=%d want %d", s.Len(), len(arr))
		}
		member := make(map[uint32]bool, len(arr))
		for _, x := range arr {
			member[x] = true
			if !s.Contains(x) {
				t.Fatalf("missing member %d (window=%v)", x, s.HasWindow())
			}
		}
		for i := 0; i < 50; i++ {
			x := r.Uint32()
			if s.Contains(x) != member[x] {
				t.Fatalf("Contains(%d)=%v want %v", x, s.Contains(x), member[x])
			}
		}
	}
}

func TestSetAdd(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := BuildSet(nil)
	member := map[uint32]bool{}
	for i := 0; i < 400; i++ {
		var x uint32
		if i%3 == 0 {
			x = uint32(50000 + i) // dense run: should eventually earn a window
		} else {
			x = r.Uint32() % 1000000
		}
		s.Add(x)
		member[x] = true
		s.Add(x) // idempotent
	}
	if s.Len() != len(member) {
		t.Fatalf("Len=%d want %d", s.Len(), len(member))
	}
	prev := int64(-1)
	for _, x := range s.Elems() {
		if int64(x) <= prev {
			t.Fatalf("not strictly increasing at %d", x)
		}
		prev = int64(x)
		if !member[x] {
			t.Fatalf("stray element %d", x)
		}
	}
	for x := range member {
		if !s.Contains(x) {
			t.Fatalf("lost element %d", x)
		}
	}
}

// kernels under differential test: every family must agree with the scalar
// reference on every entry point.
var allKernels = []Kernel{Scalar, Fast, Adaptive}

func checkPair(t *testing.T, a, b []uint32) {
	t.Helper()
	want := refIntersect(a, b)
	sa, sb := BuildSet(a), BuildSet(b)
	for _, k := range allKernels {
		if got := k.IntersectSets(sa, sb, nil); !eq(got, want) {
			t.Fatalf("%s.IntersectSets(%v,%v)=%v want %v", k.Name, a, b, got, want)
		}
		if got := k.IntersectSets(sa, sb, make([]uint32, 0, 4)); !eq(got, want) {
			t.Fatalf("%s.IntersectSets scratch reuse mismatch", k.Name)
		}
		if got := k.IntersectCountSets(sa, sb); got != len(want) {
			t.Fatalf("%s.IntersectCountSets=%d want %d", k.Name, got, len(want))
		}
		if got := k.SetsIntersect(sa, sb); got != (len(want) > 0) {
			t.Fatalf("%s.SetsIntersect=%v want %v", k.Name, got, len(want) > 0)
		}
	}
	// Views without windows must agree too (engine slot buffers are views).
	if got := Adaptive.IntersectSets(ArrayView(a), sb, nil); !eq(got, want) {
		t.Fatalf("adaptive view×set mismatch: %v want %v", got, want)
	}
	if got := Classify(sa, sb); got > ClassBitmap {
		t.Fatalf("bad class %d", got)
	}
}

func TestAdaptivePairsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 3000; iter++ {
		checkPair(t, randShapedSet(r), randShapedSet(r))
	}
}

func TestAdaptivePairsEdgeCases(t *testing.T) {
	dense := func(base, n uint32) []uint32 {
		v := make([]uint32, n)
		for i := range v {
			v[i] = base + uint32(i)
		}
		return v
	}
	cases := [][2][]uint32{
		{nil, nil},
		{nil, dense(0, 100)},
		{dense(0, 100), dense(200, 100)},                           // adjacent disjoint windows
		{dense(0, 100), dense(64, 100)},                            // overlapping windows
		{dense(0, 100), dense(99, 100)},                            // single shared element
		{dense(0, 17), dense(16, 17)},                              // minimal windows
		{mkSet([]uint32{0, ^uint32(0)}), dense(^uint32(0)-80, 64)}, // top of universe
		{append([]uint32{3}, dense(70000, 60)...), append([]uint32{3}, dense(90000, 60)...)}, // shared hub outlier only
	}
	for _, c := range cases {
		checkPair(t, c[0], c[1])
		checkPair(t, c[1], c[0])
	}
}

func refIntersectK(sets [][]uint32) []uint32 {
	if len(sets) == 0 {
		return nil
	}
	acc := append([]uint32(nil), sets[0]...)
	for _, s := range sets[1:] {
		acc = refIntersect(acc, s)
	}
	return acc
}

func TestIntersectKDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 1500; iter++ {
		k := 1 + r.Intn(6)
		arrs := make([][]uint32, k)
		for i := range arrs {
			arrs[i] = randShapedSet(r)
		}
		want := refIntersectK(arrs)
		for _, kn := range allKernels {
			sets := make([]Set, k)
			for i := range arrs {
				sets[i] = BuildSet(arrs[i])
			}
			got, _ := kn.IntersectK(sets, nil, nil)
			if !eq(got, want) {
				t.Fatalf("%s.IntersectK(%v)=%v want %v", kn.Name, arrs, got, want)
			}
			for i := range arrs {
				sets[i] = BuildSet(arrs[i])
			}
			n, _, _ := kn.IntersectCountK(sets, nil, nil)
			if n != len(want) {
				t.Fatalf("%s.IntersectCountK=%d want %d", kn.Name, n, len(want))
			}
		}
	}
}

func TestIntersectKBufferReuse(t *testing.T) {
	// The (result, spare) return must let a caller ping-pong the same two
	// backing buffers across calls without growth once warm.
	r := rand.New(rand.NewSource(29))
	dst, tmp := make([]uint32, 0, 4096), make([]uint32, 0, 4096)
	for iter := 0; iter < 200; iter++ {
		k := 2 + r.Intn(4)
		arrs := make([][]uint32, k)
		sets := make([]Set, k)
		for i := range arrs {
			arrs[i] = randShapedSet(r)
			sets[i] = BuildSet(arrs[i])
		}
		want := refIntersectK(arrs)
		var got []uint32
		got, tmp = Adaptive.IntersectK(sets, dst, tmp)
		if !eq(got, want) {
			t.Fatalf("reused-buffer IntersectK mismatch: %v want %v", got, want)
		}
		dst = got
	}
}

// TestBitmapIntersectAliasing pins the documented dst contract of
// Bitmap.Intersect: nil dst allocates, scratch is reused via dst[:0], and —
// unlike the fast array family — dst may alias s for in-place filtering.
func TestBitmapIntersectAliasing(t *testing.T) {
	b := NewBitmap(1 << 12)
	b.SetAll([]uint32{2, 3, 5, 7, 11, 13, 512, 1024})
	s := []uint32{1, 2, 3, 4, 5, 6, 7, 512, 600, 1024, 4000}
	want := refIntersect(b.ToSlice(nil), s)

	if got := b.Intersect(s, nil); !eq(got, want) {
		t.Fatalf("nil dst: got %v want %v", got, want)
	}
	scratch := make([]uint32, 0, 16)
	got := b.Intersect(s, scratch)
	if !eq(got, want) {
		t.Fatalf("scratch dst: got %v want %v", got, want)
	}
	if cap(scratch) > 0 && len(got) <= cap(scratch) && &got[0] != &scratch[:1][0] {
		t.Fatalf("scratch dst was not reused")
	}
	// In-place: dst aliases s.
	inPlace := append([]uint32(nil), s...)
	if got := b.Intersect(inPlace, inPlace[:0]); !eq(got, want) {
		t.Fatalf("in-place dst: got %v want %v", got, want)
	}
}

// FuzzIntersectKernels differentially fuzzes every kernel family — array,
// bitmap-window, mixed, and k-way paths — against the scalar reference.
// Inputs are raw bytes decoded into up to four sets so the fuzzer controls
// density, overlap, and trim shapes directly.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), false)
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255}, uint8(3), true)
	f.Add([]byte{}, uint8(4), false)
	f.Fuzz(func(t *testing.T, data []byte, k uint8, dense bool) {
		nsets := 2 + int(k%3)
		arrs := make([][]uint32, nsets)
		// Decode: each byte extends the set chosen by its low bits; dense
		// mode keeps values packed so bitmap windows form.
		cur := make([]uint32, nsets)
		for i, bt := range data {
			j := i % nsets
			step := uint32(bt)
			if dense {
				step = uint32(bt%4) + 1
			}
			cur[j] += step
			arrs[j] = append(arrs[j], cur[j])
		}
		for j := range arrs {
			arrs[j] = mkSet(arrs[j])
		}

		// Pairwise: every family, every entry point, against the reference.
		a, b := arrs[0], arrs[1]
		want := refIntersect(a, b)
		sa, sb := BuildSet(a), BuildSet(b)
		for _, kn := range allKernels {
			if got := kn.IntersectSets(sa, sb, nil); !eq(got, want) {
				t.Fatalf("%s.IntersectSets mismatch: %v want %v", kn.Name, got, want)
			}
			if got := kn.IntersectCountSets(sa, sb); got != len(want) {
				t.Fatalf("%s.IntersectCountSets=%d want %d", kn.Name, got, len(want))
			}
			if got := kn.SetsIntersect(sa, sb); got != (len(want) > 0) {
				t.Fatalf("%s.SetsIntersect=%v want %v", kn.Name, got, len(want) > 0)
			}
			if got := kn.Intersect(a, b, nil); !eq(got, want) {
				t.Fatalf("%s.Intersect mismatch: %v want %v", kn.Name, got, want)
			}
			if got := kn.IntersectCount(a, b); got != len(want) {
				t.Fatalf("%s.IntersectCount=%d want %d", kn.Name, got, len(want))
			}
		}

		// K-way across all decoded sets.
		wantK := refIntersectK(arrs)
		for _, kn := range allKernels {
			sets := make([]Set, nsets)
			for i := range arrs {
				sets[i] = BuildSet(arrs[i])
			}
			got, _ := kn.IntersectK(sets, nil, nil)
			if !eq(got, wantK) {
				t.Fatalf("%s.IntersectK mismatch: %v want %v", kn.Name, got, wantK)
			}
			for i := range arrs {
				sets[i] = BuildSet(arrs[i])
			}
			n, _, _ := kn.IntersectCountK(sets, nil, nil)
			if n != len(wantK) {
				t.Fatalf("%s.IntersectCountK=%d want %d", kn.Name, n, len(wantK))
			}
		}
	})
}
