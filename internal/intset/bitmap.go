package intset

import "math/bits"

// Bitmap is a fixed-universe bitset used to accelerate repeated
// intersections against one hot set: materialize the hot operand once, then
// probe the short operands against it in O(len(short)) with word-level
// tests. The mining engine's adjacency intersections are sorted-list vs
// sorted-list, but the motif/census layer and the DAL's Connected fast path
// benefit when one side (e.g. a very high-degree hyperedge's vertex set) is
// reused across thousands of probes — the data-level-parallelism idea of
// the paper's SIMD kernels expressed with 64-bit words.
type Bitmap struct {
	words []uint64
	n     int // population count
}

// NewBitmap builds a bitmap over the universe [0, universe).
func NewBitmap(universe int) *Bitmap {
	return &Bitmap{words: make([]uint64, (universe+63)/64)}
}

// Reset clears all bits.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = 0
}

// SetAll marks every element of the sorted set s.
func (b *Bitmap) SetAll(s []uint32) {
	for _, x := range s {
		w, bit := x>>6, uint64(1)<<(x&63)
		if b.words[w]&bit == 0 {
			b.words[w] |= bit
			b.n++
		}
	}
}

// Set marks one element.
func (b *Bitmap) Set(x uint32) {
	w, bit := x>>6, uint64(1)<<(x&63)
	if b.words[w]&bit == 0 {
		b.words[w] |= bit
		b.n++
	}
}

// Contains reports membership.
func (b *Bitmap) Contains(x uint32) bool {
	w := int(x >> 6)
	return w < len(b.words) && b.words[w]&(uint64(1)<<(x&63)) != 0
}

// Len returns the population count.
func (b *Bitmap) Len() int { return b.n }

// IntersectCount returns |b ∩ s| for a sorted set s.
func (b *Bitmap) IntersectCount(s []uint32) int {
	n := 0
	for _, x := range s {
		if b.words[x>>6]&(uint64(1)<<(x&63)) != 0 {
			n++
		}
	}
	return n
}

// Intersect writes b ∩ s into dst (s sorted ⇒ output sorted) and returns
// the result.
//
// dst follows the Kernel.Intersect reuse contract: it is truncated via
// dst[:0] and grown with append, so a nil dst allocates a fresh result and a
// caller-provided scratch buffer is reused up to its capacity (the worker
// ping-pong buffers pass their previous round's slice). Beyond that
// contract, dst may alias s itself — Intersect(s, s[:0]) filters in place —
// because the kernel is a monotone filter: the write cursor can never
// overtake the read cursor, every written element having already been read.
// The fast array family does NOT extend the same guarantee (its unrolled
// merge reads blocks ahead of the write cursor), so in-place calls are only
// valid on this path.
func (b *Bitmap) Intersect(s, dst []uint32) []uint32 {
	dst = dst[:0]
	for _, x := range s {
		if b.words[x>>6]&(uint64(1)<<(x&63)) != 0 {
			dst = append(dst, x)
		}
	}
	return dst
}

// Intersects reports whether b and s share an element (early exit).
func (b *Bitmap) Intersects(s []uint32) bool {
	for _, x := range s {
		if b.words[x>>6]&(uint64(1)<<(x&63)) != 0 {
			return true
		}
	}
	return false
}

// IntersectBitmapCount returns |b ∩ o| via word-parallel AND/popcount.
func (b *Bitmap) IntersectBitmapCount(o *Bitmap) int {
	n := 0
	words := b.words
	other := o.words
	if len(other) < len(words) {
		words, other = other, words
	}
	for i, w := range words {
		n += bits.OnesCount64(w & other[i])
	}
	return n
}

// ToSlice returns the members as a sorted slice.
func (b *Bitmap) ToSlice(dst []uint32) []uint32 {
	dst = dst[:0]
	for wi, w := range b.words {
		base := uint32(wi) << 6
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
