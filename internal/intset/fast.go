package intset

// This file holds the "fast" kernel family: the stand-in for the paper's
// AVX-512 set intersection. The kernels combine
//
//   - galloping (binary-search probing) when operand sizes are skewed by
//     more than gallopThreshold, and
//   - a 4-way unrolled, branch-reduced merge otherwise, which lets the
//     compiler keep both cursors in registers and shortens the dependency
//     chain compared to the textbook merge.
//
// The engine selects between the scalar and the fast family through a Kernel
// value so that the SIMD ablation (Sec. 5.2 of the paper) is a runtime flag.

// Kernel bundles one family of set-intersection primitives. The slice entry
// points (Intersect, IntersectCount) operate on sorted []uint32 operands; the
// Set entry points additionally see the adaptive container metadata (bitmap
// windows, value ranges) and are the ones the engine's hot paths call. For
// the Scalar and Fast families the Set entry points simply forward to the
// slice kernels over Set.Elems, so every family is interchangeable behind
// the seam.
type Kernel struct {
	// Intersect computes a ∩ b into dst and returns it. dst is reused via
	// dst[:0] (nil allocates) and must not alias a or b.
	Intersect func(a, b, dst []uint32) []uint32
	// IntersectCount returns |a ∩ b|.
	IntersectCount func(a, b []uint32) int
	// IntersectSets computes a ∩ b into dst using the containers' native
	// representations. Same dst contract as Intersect.
	IntersectSets func(a, b Set, dst []uint32) []uint32
	// IntersectCountSets returns |a ∩ b| without materializing.
	IntersectCountSets func(a, b Set) int
	// SetsIntersect reports whether a and b share an element (early exit).
	SetsIntersect func(a, b Set) bool
	// IntersectK intersects all sets into one of dst/tmp (rarest-first,
	// short-circuiting) and returns (result, spare) so the caller can retain
	// both backing buffers across calls. sets is reordered in place.
	IntersectK func(sets []Set, dst, tmp []uint32) (res, spare []uint32)
	// IntersectCountK is the count-only demotion of IntersectK.
	IntersectCountK func(sets []Set, dst, tmp []uint32) (n int, d, t []uint32)
	// Name identifies the kernel family in logs and benchmarks.
	Name string
}

// Scalar is the textbook two-pointer kernel family (the no-SIMD ablation).
var Scalar = Kernel{
	Intersect:          Intersect,
	IntersectCount:     IntersectCount,
	IntersectSets:      intersectSetsScalar,
	IntersectCountSets: intersectCountSetsScalar,
	SetsIntersect:      setsIntersectArrays,
	IntersectK:         intersectKScalar,
	IntersectCountK:    intersectCountKScalar,
	Name:               "scalar",
}

// Fast is the galloping + unrolled kernel family (the SIMD stand-in).
var Fast = Kernel{
	Intersect:          IntersectFast,
	IntersectCount:     IntersectCountFast,
	IntersectSets:      intersectSetsFast,
	IntersectCountSets: intersectCountSetsFast,
	SetsIntersect:      setsIntersectArrays,
	IntersectK:         intersectKFast,
	IntersectCountK:    intersectCountKFast,
	Name:               "fast",
}

// Adaptive is the density-aware family: SWAR word kernels over bitmap
// windows, probe kernels on mixed pairs, the Fast array kernels otherwise,
// and rarest-first k-way intersection with per-operand resume cursors.
var Adaptive = Kernel{
	Intersect:          IntersectFast,
	IntersectCount:     IntersectCountFast,
	IntersectSets:      IntersectSetsAdaptive,
	IntersectCountSets: IntersectCountSetsAdaptive,
	SetsIntersect:      SetsIntersectAdaptive,
	IntersectK:         IntersectKAdaptive,
	IntersectCountK:    IntersectCountKAdaptive,
	Name:               "adaptive",
}

// Array-only Set adapters for the Scalar and Fast families. Method values
// would allocate closures at package init only, but plain functions keep the
// kernels comparable in profiles.

func intersectSetsScalar(a, b Set, dst []uint32) []uint32 { return Intersect(a.arr, b.arr, dst) }
func intersectCountSetsScalar(a, b Set) int               { return IntersectCount(a.arr, b.arr) }
func intersectSetsFast(a, b Set, dst []uint32) []uint32   { return IntersectFast(a.arr, b.arr, dst) }
func intersectCountSetsFast(a, b Set) int                 { return IntersectCountFast(a.arr, b.arr) }
func setsIntersectArrays(a, b Set) bool                   { return Intersects(a.arr, b.arr) }

func intersectKScalar(sets []Set, dst, tmp []uint32) ([]uint32, []uint32) {
	return intersectKPairwise(Intersect, sets, dst, tmp)
}

func intersectCountKScalar(sets []Set, dst, tmp []uint32) (int, []uint32, []uint32) {
	return intersectCountKPairwise(Intersect, IntersectCount, sets, dst, tmp)
}

func intersectKFast(sets []Set, dst, tmp []uint32) ([]uint32, []uint32) {
	return intersectKPairwise(IntersectFast, sets, dst, tmp)
}

func intersectCountKFast(sets []Set, dst, tmp []uint32) (int, []uint32, []uint32) {
	return intersectCountKPairwise(IntersectFast, IntersectCountFast, sets, dst, tmp)
}

// IntersectFast computes a ∩ b into dst using galloping for skewed sizes and
// an unrolled merge otherwise. dst is reused via dst[:0] (nil allocates) and
// must not alias a or b: the unrolled merge reads whole blocks ahead of the
// write cursor, so an in-place call could overwrite unread input (contrast
// Bitmap.Intersect, which does permit dst = s[:0]).
//
//ohmlint:hotpath
func IntersectFast(a, b, dst []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst[:0]
	}
	if len(b) >= gallopThreshold*len(a) {
		return intersectGallop(a, b, dst)
	}
	return intersectUnrolled(a, b, dst)
}

// IntersectCountFast returns |a ∩ b| using the fast kernel family.
//
//ohmlint:hotpath
func IntersectCountFast(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopThreshold*len(a) {
		return intersectGallopCount(a, b)
	}
	return intersectUnrolledCount(a, b)
}

// intersectGallop probes each element of the short side a into the long side
// b with a binary search that resumes from the previous hit position.
func intersectGallop(a, b, dst []uint32) []uint32 {
	dst = dst[:0]
	lo := 0
	for _, x := range a {
		// Binary search resuming from the previous hit position; sortedness
		// of a guarantees hits only move rightwards.
		k := searchFrom(b, lo, x)
		if k == len(b) {
			break
		}
		if b[k] == x {
			dst = append(dst, x)
			lo = k + 1
		} else {
			lo = k
		}
	}
	return dst
}

func intersectGallopCount(a, b []uint32) int {
	n := 0
	lo := 0
	for _, x := range a {
		k := searchFrom(b, lo, x)
		if k == len(b) {
			break
		}
		if b[k] == x {
			n++
			lo = k + 1
		} else {
			lo = k
		}
	}
	return n
}

// intersectUnrolled merges a into b four short-side elements at a time. The
// long-side cursor advances through a block scan that the compiler compiles
// to straight-line comparisons, reducing branch mispredictions on random
// data relative to the textbook merge.
func intersectUnrolled(a, b, dst []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	// Main unrolled loop: handle 4 elements of a against 4 of b per round
	// when both sides have slack.
	for i+4 <= len(a) && j+4 <= len(b) {
		amax, bmax := a[i+3], b[j+3]
		a0, a1, a2, a3 := a[i], a[i+1], a[i+2], a[i+3]
		bb := b[j : j+4 : j+4]
		for _, y := range bb {
			if y == a0 || y == a1 || y == a2 || y == a3 {
				dst = append(dst, y)
			}
		}
		// Advance whichever block is exhausted. Both blocks can only be
		// fully consumed together when their maxima coincide.
		if amax <= bmax {
			i += 4
		}
		if bmax <= amax {
			j += 4
		}
	}
	// Tail: plain merge.
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	return dst
}

func intersectUnrolledCount(a, b []uint32) int {
	n := 0
	i, j := 0, 0
	for i+4 <= len(a) && j+4 <= len(b) {
		amax, bmax := a[i+3], b[j+3]
		a0, a1, a2, a3 := a[i], a[i+1], a[i+2], a[i+3]
		bb := b[j : j+4 : j+4]
		for _, y := range bb {
			if y == a0 || y == a1 || y == a2 || y == a3 {
				n++
			}
		}
		if amax <= bmax {
			i += 4
		}
		if bmax <= amax {
			j += 4
		}
	}
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
