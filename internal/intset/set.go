package intset

import "math/bits"

// This file implements the adaptive container layer: a Set that pairs the
// sorted []uint32 view every existing kernel understands with an optional
// packed bitmap window over the set's dense core, chosen by density at build
// time (and re-chosen on mutation). The bitmap enables
//
//   - word-parallel SWAR AND/popcount when both operands carry overlapping
//     windows (the dominant case for hub-adjacency intersections),
//   - O(1) membership probes when one operand is a long dense list and the
//     other a short one (rarest-first k-way intersection), and
//   - value-range pruning for free: the window bounds tell both kernels
//     where an intersection can possibly live, so sets with nearly disjoint
//     spans short-circuit after a couple of comparisons.
//
// Sparse or tiny sets never build a window and keep paying exactly the
// array-kernel costs, so the adaptive family is never worse than Fast by
// more than a branch per call.

const (
	// minWindowLen is the smallest cardinality for which a bitmap window is
	// considered: below it the array kernels win on constant factors alone.
	minWindowLen = 16
	// maxWordsPerCore caps the window size at core/8 words, i.e. the core
	// must fill at least one bit in eight (density ≥ 1/8 over its span).
	// At that bound the window costs core bytes — a quarter of the sorted
	// array it accelerates — and an AND over it still touches 8× fewer
	// machine words than a merge touches elements.
	maxWordsPerCore = 8
	// maxTrim bounds how many outlier elements may be shaved off each end of
	// a set when planning its window. Hub-style sets ({sharedVertex} ∪ dense
	// run) are dense except for a few far-away elements; trimming those keeps
	// the window packed while membership falls back to the array for them.
	maxTrim = 4
	// maxK bounds the operand count of the stack-allocated k-way state. The
	// engine's operand counts are bounded by the pattern arity (≤ 32 since
	// subset masks are uint32), so mining never exceeds it.
	maxK = 32
)

// Set is an adaptive integer set: a strictly increasing []uint32 view plus
// an optional packed bitmap window covering the contiguous word range
// [Base()·64, (Base()+Words())·64). Every element inside that value range is
// mirrored in the window and every window bit mirrors an element, so
// membership inside the window is a word test and membership outside falls
// back to binary search. The zero Set is the empty set.
//
// Sets built by View/ArrayView alias their inputs and must be treated as
// immutable; BuildSet copies and owns its storage, and only owned sets may
// be mutated through Add.
type Set struct {
	arr   []uint32
	words []uint64
	base  uint32
}

// ArrayView wraps a sorted slice as a Set without a bitmap window. The Set
// aliases arr; it allocates nothing.
//
//ohmlint:hotpath
func ArrayView(arr []uint32) Set { return Set{arr: arr} }

// View assembles a Set from a sorted slice and a prebuilt window (as
// produced by PlanWords/FillWords, e.g. out of the DAL's container arenas).
// It aliases both slices and allocates nothing. words may be nil.
//
//ohmlint:hotpath
func View(arr []uint32, words []uint64, base uint32) Set {
	return Set{arr: arr, words: words, base: base}
}

// BuildSet copies the sorted slice into an owned Set and builds a bitmap
// window if the density rule warrants one. Build-time only: it allocates.
func BuildSet(arr []uint32) Set {
	s := Set{arr: append([]uint32(nil), arr...)}
	s.rebuildWindow()
	return s
}

// Add inserts x, keeping the array sorted and re-choosing the container
// (window rebuilt or dropped) — the mutation path of the adaptive rule.
// Only owned sets (BuildSet) may be mutated; Add on a view would write
// through to the aliased storage. Build-time only: it allocates.
func (s *Set) Add(x uint32) {
	k := searchFrom(s.arr, 0, x)
	if k < len(s.arr) && s.arr[k] == x {
		return
	}
	s.arr = append(s.arr, 0)
	copy(s.arr[k+1:], s.arr[k:])
	s.arr[k] = x
	s.rebuildWindow()
}

// rebuildWindow re-evaluates the density rule for the current elements.
func (s *Set) rebuildWindow() {
	base, nw, lo, hi, ok := PlanWords(s.arr)
	if !ok {
		s.words, s.base = nil, 0
		return
	}
	if cap(s.words) >= nw {
		s.words = s.words[:nw]
		clear(s.words)
	} else {
		s.words = make([]uint64, nw)
	}
	s.base = base
	FillWords(s.words, base, s.arr[lo:hi])
}

// Len returns the cardinality.
//
//ohmlint:hotpath
func (s Set) Len() int { return len(s.arr) }

// Elems returns the sorted element view. It aliases the Set's storage.
//
//ohmlint:hotpath
func (s Set) Elems() []uint32 { return s.arr }

// HasWindow reports whether the set carries a bitmap window.
//
//ohmlint:hotpath
func (s Set) HasWindow() bool { return s.words != nil }

// Base returns the first word index the window covers (meaningful only when
// HasWindow).
func (s Set) Base() uint32 { return s.base }

// Words returns the window word count.
func (s Set) Words() int { return len(s.words) }

// windowRange returns the covered value range [lo, hi) as uint64 to avoid
// overflow at the top of the uint32 universe.
func (s Set) windowRange() (lo, hi uint64) {
	return uint64(s.base) << 6, (uint64(s.base) + uint64(len(s.words))) << 6
}

// inWindow reports whether x falls inside the window's value range.
//
//ohmlint:hotpath
func (s Set) inWindow(x uint32) bool {
	w := x >> 6
	return w >= s.base && w < s.base+uint32(len(s.words))
}

// Contains reports membership: a word test inside the window, binary search
// outside it.
//
//ohmlint:hotpath
func (s Set) Contains(x uint32) bool {
	if s.words != nil && s.inWindow(x) {
		return s.words[(x>>6)-s.base]&(1<<(x&63)) != 0
	}
	k := searchFrom(s.arr, 0, x)
	return k < len(s.arr) && s.arr[k] == x
}

// Min and Max return the value bounds; both require a non-empty set.
func (s Set) Min() uint32 { return s.arr[0] }
func (s Set) Max() uint32 { return s.arr[len(s.arr)-1] }

// PlanWords decides whether a sorted slice warrants a bitmap window and, if
// so, where: the returned window spans words [base, base+nw) and covers the
// core arr[lo:hi]; elements outside the core (at most maxTrim per end) fall
// strictly outside the window's value range. ok is false when the set is too
// small or too sparse — the array representation stays.
//
// The density rule: the core must hold at least minWindowLen elements and
// fill its span at ≥ 1 bit per 8·64 = one element per maxWordsPerCore words'
// worth of span, so the window never costs more than |core| bytes.
func PlanWords(arr []uint32) (base uint32, nw, lo, hi int, ok bool) {
	n := len(arr)
	if n < minWindowLen {
		return 0, 0, 0, 0, false
	}
	// Prefer the least trimming: try total trims 0, 1, 2, ... and take the
	// first head/tail split whose core is dense enough and whose trimmed
	// outliers fall outside the window words.
	for total := 0; total <= 2*maxTrim; total++ {
		for h := 0; h <= total && h <= maxTrim; h++ {
			t := total - h
			if t > maxTrim || n-h-t < minWindowLen {
				continue
			}
			core := arr[h : n-t]
			b := core[0] >> 6
			end := core[len(core)-1]>>6 + 1
			if int(end-b) > len(core)/maxWordsPerCore {
				continue // too sparse over its span
			}
			if h > 0 && arr[h-1]>>6 >= b {
				continue // trimmed head element would land inside the window
			}
			if t > 0 && arr[n-t]>>6 < end {
				continue // trimmed tail element would land inside the window
			}
			return b, int(end - b), h, n - t, true
		}
	}
	return 0, 0, 0, 0, false
}

// FillWords sets the bit of every core element into words, which must hold
// the PlanWords-reported word count and arrive zeroed.
func FillWords(words []uint64, base uint32, core []uint32) {
	for _, x := range core {
		words[(x>>6)-base] |= 1 << (x & 63)
	}
}

// PairClass classifies one binary set-kernel invocation by the
// representations actually in play — the per-kernel counters surfaced in
// engine.Stats. Two overlapping windows run word-parallel (ClassBitmap); one
// usable window runs probe-accelerated (ClassMixed); anything else runs the
// array kernels (ClassArray).
type PairClass uint8

const (
	ClassArray PairClass = iota
	ClassMixed
	ClassBitmap
)

func (c PairClass) String() string {
	switch c {
	case ClassBitmap:
		return "bitmap"
	case ClassMixed:
		return "mixed"
	default:
		return "array"
	}
}

// Classify reports which kernel path an adaptive binary operation over a and
// b takes.
//
//ohmlint:hotpath
func Classify(a, b Set) PairClass {
	if a.words != nil && b.words != nil {
		if lo, hi := overlapWords(a, b); hi > lo {
			return ClassBitmap
		}
	}
	if a.words != nil || b.words != nil {
		return ClassMixed
	}
	return ClassArray
}

// ClassifyK reports the path an adaptive k-way intersection takes: bitmap if
// every operand carries a window, mixed if any does, array otherwise.
//
//ohmlint:hotpath
func ClassifyK(sets []Set) PairClass {
	n := 0
	for i := range sets {
		if sets[i].words != nil {
			n++
		}
	}
	switch {
	case n == len(sets) && n > 0:
		return ClassBitmap
	case n > 0:
		return ClassMixed
	default:
		return ClassArray
	}
}

// overlapWords returns the word range [lo, hi) covered by both windows.
func overlapWords(a, b Set) (lo, hi uint32) {
	lo, hi = a.base, a.base+uint32(len(a.words))
	if b.base > lo {
		lo = b.base
	}
	if e := b.base + uint32(len(b.words)); e < hi {
		hi = e
	}
	return lo, hi
}

// rangeOverlap returns the value range [lo, hi] an intersection of a and b
// can live in; ok is false when the ranges are disjoint (empty result).
//
//ohmlint:hotpath
func rangeOverlap(a, b Set) (lo, hi uint32, ok bool) {
	if len(a.arr) == 0 || len(b.arr) == 0 {
		return 0, 0, false
	}
	lo, hi = a.Min(), a.Max()
	if m := b.Min(); m > lo {
		lo = m
	}
	if m := b.Max(); m < hi {
		hi = m
	}
	return lo, hi, lo <= hi
}

// IntersectSetsAdaptive computes a ∩ b into dst, choosing the kernel by the
// operands' representations: SWAR word AND over overlapping windows, window
// probes when only the longer side has one, the Fast array family otherwise.
// dst follows the IntersectFast contract (reused via dst[:0]; nil allocates;
// must not otherwise alias the operands).
//
//ohmlint:hotpath
func IntersectSetsAdaptive(a, b Set, dst []uint32) []uint32 {
	if a.words == nil && b.words == nil {
		// Array-array: dispatch straight to the gallop family so purely
		// sparse workloads pay nothing over the static fast kernel.
		return IntersectFast(a.arr, b.arr, dst)
	}
	lo, hi, ok := rangeOverlap(a, b)
	if !ok {
		return dst[:0]
	}
	if a.words != nil && b.words != nil {
		if wlo, whi := overlapWords(a, b); whi > wlo {
			return intersectWindows(a, b, wlo, whi, dst)
		}
	}
	if len(a.arr) > len(b.arr) {
		a, b = b, a
	}
	if b.words != nil {
		return intersectProbe(a, b, lo, hi, dst)
	}
	return IntersectFast(a.arr, b.arr, dst)
}

// IntersectCountSetsAdaptive returns |a ∩ b| on the same dispatch rule.
//
//ohmlint:hotpath
func IntersectCountSetsAdaptive(a, b Set) int {
	if a.words == nil && b.words == nil {
		return IntersectCountFast(a.arr, b.arr)
	}
	lo, hi, ok := rangeOverlap(a, b)
	if !ok {
		return 0
	}
	if a.words != nil && b.words != nil {
		if wlo, whi := overlapWords(a, b); whi > wlo {
			return intersectWindowsCount(a, b, wlo, whi)
		}
	}
	if len(a.arr) > len(b.arr) {
		a, b = b, a
	}
	if b.words != nil {
		return intersectProbeCount(a, b, lo, hi)
	}
	return IntersectCountFast(a.arr, b.arr)
}

// SetsIntersectAdaptive reports whether a and b share an element, with early
// exit at the first hit (word-parallel over overlapping windows).
//
//ohmlint:hotpath
func SetsIntersectAdaptive(a, b Set) bool {
	if a.words == nil && b.words == nil {
		return Intersects(a.arr, b.arr)
	}
	lo, hi, ok := rangeOverlap(a, b)
	if !ok {
		return false
	}
	if a.words != nil && b.words != nil {
		if wlo, whi := overlapWords(a, b); whi > wlo {
			return windowsIntersect(a, b, wlo, whi)
		}
	}
	if len(a.arr) > len(b.arr) {
		a, b = b, a
	}
	if b.words != nil {
		return probeIntersects(a, b, lo, hi)
	}
	return Intersects(a.arr, b.arr)
}

// intersectWindows is the SWAR path: AND the overlapping words [wlo, whi)
// and decode the survivors, then pick up the out-of-range elements of
// whichever operand has fewer of them by probing the other set. Elements
// below the shared window sort before every decoded bit and elements above
// it after, so the three phases append in order.
func intersectWindows(a, b Set, wlo, whi uint32, dst []uint32) []uint32 {
	dst = dst[:0]
	loVal := uint64(wlo) << 6
	hiVal := uint64(whi) << 6
	s, o := outsideChooser(a, b, loVal, hiVal)
	head, tail := outsideBounds(s, loVal, hiVal)
	for _, x := range s.arr[:head] {
		if o.Contains(x) {
			dst = append(dst, x)
		}
	}
	aw := a.words[wlo-a.base:]
	bw := b.words[wlo-b.base:]
	for w := uint32(0); w < whi-wlo; w++ {
		m := aw[w] & bw[w]
		val := (uint64(wlo+w) << 6)
		for m != 0 {
			dst = append(dst, uint32(val)+uint32(bits.TrailingZeros64(m)))
			m &= m - 1
		}
	}
	for _, x := range s.arr[tail:] {
		if o.Contains(x) {
			dst = append(dst, x)
		}
	}
	return dst
}

func intersectWindowsCount(a, b Set, wlo, whi uint32) int {
	n := 0
	loVal := uint64(wlo) << 6
	hiVal := uint64(whi) << 6
	s, o := outsideChooser(a, b, loVal, hiVal)
	head, tail := outsideBounds(s, loVal, hiVal)
	for _, x := range s.arr[:head] {
		if o.Contains(x) {
			n++
		}
	}
	aw := a.words[wlo-a.base:]
	bw := b.words[wlo-b.base:]
	for w := uint32(0); w < whi-wlo; w++ {
		n += bits.OnesCount64(aw[w] & bw[w])
	}
	for _, x := range s.arr[tail:] {
		if o.Contains(x) {
			n++
		}
	}
	return n
}

func windowsIntersect(a, b Set, wlo, whi uint32) bool {
	aw := a.words[wlo-a.base:]
	bw := b.words[wlo-b.base:]
	for w := uint32(0); w < whi-wlo; w++ {
		if aw[w]&bw[w] != 0 {
			return true
		}
	}
	loVal := uint64(wlo) << 6
	hiVal := uint64(whi) << 6
	s, o := outsideChooser(a, b, loVal, hiVal)
	head, tail := outsideBounds(s, loVal, hiVal)
	for _, x := range s.arr[:head] {
		if o.Contains(x) {
			return true
		}
	}
	for _, x := range s.arr[tail:] {
		if o.Contains(x) {
			return true
		}
	}
	return false
}

// outsideChooser picks which operand's out-of-range elements get scanned:
// the one with fewer of them. Every common element outside [loVal, hiVal)
// lives in both arrays, so scanning either side finds them all.
func outsideChooser(a, b Set, loVal, hiVal uint64) (scan, probe Set) {
	ah, at := outsideBounds(a, loVal, hiVal)
	bh, bt := outsideBounds(b, loVal, hiVal)
	if ah+(len(a.arr)-at) <= bh+(len(b.arr)-bt) {
		return a, b
	}
	return b, a
}

// outsideBounds returns the array indexes delimiting the elements below
// (arr[:head]) and at-or-above (arr[tail:]) the value range [loVal, hiVal).
func outsideBounds(s Set, loVal, hiVal uint64) (head, tail int) {
	head = searchFrom64(s.arr, 0, loVal)
	tail = searchFrom64(s.arr, head, hiVal)
	return head, tail
}

// searchFrom64 is searchFrom against a uint64 threshold (which may be 2³²,
// one past the top of the universe).
func searchFrom64(s []uint32, lo int, x uint64) int {
	hi := len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if uint64(s[mid]) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersectProbe iterates the shorter operand a over the candidate value
// range [lo, hi], testing each element against b — O(1) inside b's window,
// binary search with a monotone resume cursor outside it.
func intersectProbe(a, b Set, lo, hi uint32, dst []uint32) []uint32 {
	dst = dst[:0]
	cur := 0
	for _, x := range a.arr[searchFrom(a.arr, 0, lo):] {
		if x > hi {
			break
		}
		if b.words != nil && b.inWindow(x) {
			if b.words[(x>>6)-b.base]&(1<<(x&63)) != 0 {
				dst = append(dst, x)
			}
			continue
		}
		k := searchFrom(b.arr, cur, x)
		if k == len(b.arr) {
			break
		}
		if b.arr[k] == x {
			dst = append(dst, x)
			cur = k + 1
		} else {
			cur = k
		}
	}
	return dst
}

func intersectProbeCount(a, b Set, lo, hi uint32) int {
	n := 0
	cur := 0
	for _, x := range a.arr[searchFrom(a.arr, 0, lo):] {
		if x > hi {
			break
		}
		if b.words != nil && b.inWindow(x) {
			if b.words[(x>>6)-b.base]&(1<<(x&63)) != 0 {
				n++
			}
			continue
		}
		k := searchFrom(b.arr, cur, x)
		if k == len(b.arr) {
			break
		}
		if b.arr[k] == x {
			n++
			cur = k + 1
		} else {
			cur = k
		}
	}
	return n
}

func probeIntersects(a, b Set, lo, hi uint32) bool {
	cur := 0
	for _, x := range a.arr[searchFrom(a.arr, 0, lo):] {
		if x > hi {
			return false
		}
		if b.words != nil && b.inWindow(x) {
			if b.words[(x>>6)-b.base]&(1<<(x&63)) != 0 {
				return true
			}
			continue
		}
		k := searchFrom(b.arr, cur, x)
		if k == len(b.arr) {
			return false
		}
		if b.arr[k] == x {
			return true
		}
		cur = k
	}
	return false
}

// sortSetsByLen orders sets ascending by cardinality in place (insertion
// sort: operand counts are pattern-arity small). Rarest-first ordering makes
// the smallest set the seed of the k-way intersection, bounding every later
// probe pass by its length.
//
//ohmlint:hotpath
func sortSetsByLen(sets []Set) {
	for i := 1; i < len(sets); i++ {
		x := sets[i]
		j := i - 1
		for j >= 0 && sets[j].Len() > x.Len() {
			sets[j+1] = sets[j]
			j--
		}
		sets[j+1] = x
	}
}

// IntersectKAdaptive intersects every set into dst: operands are ordered by
// ascending cardinality, the rarest seeds the result, and each of its
// elements is probed through the remaining operands (window test or resumed
// binary search). The scan short-circuits the moment the candidate value
// range empties or any operand is exhausted — no intermediate result is ever
// materialized. sets is reordered in place. For k = 2 it defers to the
// binary adaptive kernel (which additionally exploits the SWAR path).
//
// Operand counts above maxK (32) fall back to progressive pairwise
// intersection — impossible for mining plans, whose arity is bounded by the
// uint32 subset masks.
//
//ohmlint:hotpath
func IntersectKAdaptive(sets []Set, dst, tmp []uint32) (res, spare []uint32) {
	sortSetsByLen(sets)
	switch len(sets) {
	case 0:
		return dst[:0], tmp
	case 1:
		return append(dst[:0], sets[0].arr...), tmp
	case 2:
		return IntersectSetsAdaptive(sets[0], sets[1], dst), tmp
	}
	if len(sets) > maxK {
		return intersectKPairwise(IntersectFast, sets, dst, tmp)
	}
	dst = dst[:0]
	seed := sets[0]
	if seed.Len() == 0 {
		return dst, tmp
	}
	lo, hi := seed.Min(), seed.Max()
	for i := 1; i < len(sets); i++ {
		if m := sets[i].Min(); m > lo {
			lo = m
		}
		if m := sets[i].Max(); m < hi {
			hi = m
		}
	}
	if lo > hi {
		return dst, tmp
	}
	var cur [maxK]int
scan:
	for _, x := range seed.arr[searchFrom(seed.arr, 0, lo):] {
		if x > hi {
			break
		}
		for i := 1; i < len(sets); i++ {
			s := &sets[i]
			if s.words != nil && s.inWindow(x) {
				if s.words[(x>>6)-s.base]&(1<<(x&63)) == 0 {
					continue scan
				}
				continue
			}
			k := searchFrom(s.arr, cur[i], x)
			if k == len(s.arr) {
				break scan // operand exhausted: no later x can match
			}
			cur[i] = k
			if s.arr[k] != x {
				continue scan
			}
			cur[i] = k + 1
		}
		dst = append(dst, x)
	}
	return dst, tmp
}

// IntersectCountKAdaptive is the demoted form of IntersectKAdaptive for
// count-only consumers (the OIG's OpIntersectCount slots): same rarest-first
// probe order and short-circuits, no materialization at all.
//
//ohmlint:hotpath
func IntersectCountKAdaptive(sets []Set, dst, tmp []uint32) (n int, d, t []uint32) {
	sortSetsByLen(sets)
	switch len(sets) {
	case 0:
		return 0, dst, tmp
	case 1:
		return len(sets[0].arr), dst, tmp
	case 2:
		return IntersectCountSetsAdaptive(sets[0], sets[1]), dst, tmp
	}
	if len(sets) > maxK {
		return intersectCountKPairwise(IntersectFast, IntersectCountFast, sets, dst, tmp)
	}
	seed := sets[0]
	if seed.Len() == 0 {
		return 0, dst, tmp
	}
	lo, hi := seed.Min(), seed.Max()
	for i := 1; i < len(sets); i++ {
		if m := sets[i].Min(); m > lo {
			lo = m
		}
		if m := sets[i].Max(); m < hi {
			hi = m
		}
	}
	if lo > hi {
		return 0, dst, tmp
	}
	var cur [maxK]int
scan:
	for _, x := range seed.arr[searchFrom(seed.arr, 0, lo):] {
		if x > hi {
			break
		}
		for i := 1; i < len(sets); i++ {
			s := &sets[i]
			if s.words != nil && s.inWindow(x) {
				if s.words[(x>>6)-s.base]&(1<<(x&63)) == 0 {
					continue scan
				}
				continue
			}
			k := searchFrom(s.arr, cur[i], x)
			if k == len(s.arr) {
				break scan
			}
			cur[i] = k
			if s.arr[k] != x {
				continue scan
			}
			cur[i] = k + 1
		}
		n++
	}
	return n, dst, tmp
}

// intersectKPairwise is the progressive k-way fold the Scalar and Fast
// families use: operands ordered ascending, the running accumulator
// ping-pongs between dst and tmp, and the fold short-circuits the moment the
// accumulator empties. The returned spare buffer is whichever of dst/tmp the
// result did not land in, so callers can retain both backings across calls.
//
//ohmlint:hotpath
func intersectKPairwise(ints func(a, b, dst []uint32) []uint32, sets []Set, dst, tmp []uint32) (res, spare []uint32) {
	sortSetsByLen(sets)
	if len(sets) == 0 {
		return dst[:0], tmp
	}
	acc := append(dst[:0], sets[0].arr...)
	for i := 1; i < len(sets); i++ {
		out := ints(acc, sets[i].arr, tmp[:0])
		tmp, acc = acc, out
		if len(acc) == 0 {
			break
		}
	}
	return acc, tmp
}

// intersectCountKPairwise folds like intersectKPairwise but demotes the last
// step to a pure count.
//
//ohmlint:hotpath
func intersectCountKPairwise(ints func(a, b, dst []uint32) []uint32, cnt func(a, b []uint32) int, sets []Set, dst, tmp []uint32) (n int, d, t []uint32) {
	sortSetsByLen(sets)
	switch len(sets) {
	case 0:
		return 0, dst, tmp
	case 1:
		return len(sets[0].arr), dst, tmp
	case 2:
		return cnt(sets[0].arr, sets[1].arr), dst, tmp
	}
	acc := append(dst[:0], sets[0].arr...)
	for i := 1; i < len(sets)-1; i++ {
		out := ints(acc, sets[i].arr, tmp[:0])
		tmp, acc = acc, out
		if len(acc) == 0 {
			return 0, acc, tmp
		}
	}
	return cnt(acc, sets[len(sets)-1].arr), acc, tmp
}
