package intset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mkSet converts arbitrary values into a valid sorted unique set.
func mkSet(vals []uint32) []uint32 {
	if len(vals) == 0 {
		return nil
	}
	s := append([]uint32(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// refIntersect is the oracle: map-based intersection.
func refIntersect(a, b []uint32) []uint32 {
	in := make(map[uint32]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []uint32
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, nil},
		{[]uint32{1, 2, 3}, nil, nil},
		{nil, []uint32{1, 2, 3}, nil},
		{[]uint32{1, 2, 3}, []uint32{4, 5}, nil},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, []uint32{1, 2, 3}},
		{[]uint32{1, 3, 5, 7}, []uint32{2, 3, 6, 7}, []uint32{3, 7}},
		{[]uint32{0}, []uint32{0}, []uint32{0}},
		{[]uint32{5}, []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []uint32{5}},
	}
	for _, c := range cases {
		for _, k := range []Kernel{Scalar, Fast} {
			got := k.Intersect(c.a, c.b, nil)
			if !eq(got, c.want) {
				t.Errorf("%s.Intersect(%v,%v)=%v want %v", k.Name, c.a, c.b, got, c.want)
			}
			if n := k.IntersectCount(c.a, c.b); n != len(c.want) {
				t.Errorf("%s.IntersectCount(%v,%v)=%d want %d", k.Name, c.a, c.b, n, len(c.want))
			}
		}
	}
}

func TestIntersectPropertyQuick(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkSet(av), mkSet(bv)
		want := refIntersect(a, b)
		for _, k := range []Kernel{Scalar, Fast} {
			got := k.Intersect(a, b, nil)
			if !eq(got, want) || !SortedUnique(got) {
				return false
			}
			if k.IntersectCount(a, b) != len(want) {
				return false
			}
		}
		return Intersects(a, b) == (len(want) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSkewedGallop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	big := make([]uint32, 0, 5000)
	for v := uint32(0); len(big) < 5000; v += uint32(rng.Intn(3) + 1) {
		big = append(big, v)
	}
	for trial := 0; trial < 50; trial++ {
		small := make([]uint32, 0, 8)
		for i := 0; i < 8; i++ {
			small = append(small, uint32(rng.Intn(16000)))
		}
		small = mkSet(small)
		want := refIntersect(small, big)
		if got := IntersectFast(small, big, nil); !eq(got, want) {
			t.Fatalf("gallop mismatch: got %v want %v", got, want)
		}
		if got := IntersectFast(big, small, nil); !eq(got, want) {
			t.Fatalf("gallop (swapped) mismatch: got %v want %v", got, want)
		}
		if n := IntersectCountFast(small, big); n != len(want) {
			t.Fatalf("gallop count=%d want %d", n, len(want))
		}
	}
}

func TestIntersectDstReuse(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{2, 4, 6}
	dst := make([]uint32, 0, 8)
	out := Intersect(a, b, dst)
	if !eq(out, []uint32{2, 4}) {
		t.Fatalf("got %v", out)
	}
	if cap(out) != cap(dst) {
		t.Fatalf("dst capacity not reused")
	}
	// Reuse again with different content.
	out2 := IntersectFast(a, []uint32{1, 5}, out)
	if !eq(out2, []uint32{1, 5}) {
		t.Fatalf("got %v", out2)
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want bool
	}{
		{nil, nil, true},
		{nil, []uint32{1}, true},
		{[]uint32{1}, nil, false},
		{[]uint32{1, 3}, []uint32{1, 2, 3}, true},
		{[]uint32{1, 4}, []uint32{1, 2, 3}, false},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, true},
		{[]uint32{0, 9}, []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, true},
	}
	for _, c := range cases {
		if got := IsSubset(c.a, c.b); got != c.want {
			t.Errorf("IsSubset(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
	// Property: a ∩ b == a  ⇔  IsSubset(a, b).
	f := func(av, bv []uint32) bool {
		a, b := mkSet(av), mkSet(bv)
		return IsSubset(a, b) == eq(refIntersect(a, b), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionDifference(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkSet(av), mkSet(bv)
		u := Union(a, b, nil)
		d := Difference(a, b, nil)
		if !SortedUnique(u) || !SortedUnique(d) {
			return false
		}
		if len(u) != UnionCount(a, b) {
			return false
		}
		// |a| = |a\b| + |a∩b|
		if len(a) != len(d)+IntersectCount(a, b) {
			return false
		}
		// every element of d is in a and not in b
		for _, x := range d {
			if !Contains(a, x) || Contains(b, x) {
				return false
			}
		}
		// inclusion-exclusion: |a ∪ b| = |a| + |b| - |a ∩ b|
		return len(u) == len(a)+len(b)-IntersectCount(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectBounded(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{1, 2, 3, 9}
	if got, ok := IntersectBounded(a, b, nil, 3); !ok || !eq(got, []uint32{1, 2, 3}) {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	if _, ok := IntersectBounded(a, b, nil, 2); ok {
		t.Fatalf("expected overflow at maxLen=2")
	}
	if got, ok := IntersectBounded(a, b, nil, 5); !ok || len(got) != 3 {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	if got, ok := IntersectBounded(nil, b, nil, 0); !ok || len(got) != 0 {
		t.Fatalf("empty case: got %v ok=%v", got, ok)
	}
}

func TestContainsAndSearch(t *testing.T) {
	s := []uint32{2, 4, 6, 8}
	for _, x := range s {
		if !Contains(s, x) {
			t.Errorf("Contains(%v,%d)=false", s, x)
		}
	}
	for _, x := range []uint32{0, 1, 3, 5, 7, 9, 100} {
		if Contains(s, x) {
			t.Errorf("Contains(%v,%d)=true", s, x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains(nil,1)=true")
	}
}

func TestSortedUnique(t *testing.T) {
	if !SortedUnique(nil) || !SortedUnique([]uint32{3}) || !SortedUnique([]uint32{1, 2, 9}) {
		t.Error("valid sets rejected")
	}
	if SortedUnique([]uint32{1, 1}) || SortedUnique([]uint32{2, 1}) {
		t.Error("invalid sets accepted")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) || !Equal([]uint32{1, 2}, []uint32{1, 2}) {
		t.Error("equal sets rejected")
	}
	if Equal([]uint32{1}, []uint32{1, 2}) || Equal([]uint32{1, 3}, []uint32{1, 2}) {
		t.Error("unequal sets accepted")
	}
}

// TestKernelAgreement drives both kernel families over random dense/sparse
// mixes and demands bit-identical outputs.
func TestKernelAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		space := 1 + rng.Intn(400)
		a := make([]uint32, 0, na)
		b := make([]uint32, 0, nb)
		for i := 0; i < na; i++ {
			a = append(a, uint32(rng.Intn(space)))
		}
		for i := 0; i < nb; i++ {
			b = append(b, uint32(rng.Intn(space)))
		}
		a, b = mkSet(a), mkSet(b)
		s := Scalar.Intersect(a, b, nil)
		f := Fast.Intersect(a, b, nil)
		if !eq(s, f) {
			t.Fatalf("kernel mismatch trial %d:\n a=%v\n b=%v\n scalar=%v\n fast=%v", trial, a, b, s, f)
		}
		if Scalar.IntersectCount(a, b) != Fast.IntersectCount(a, b) {
			t.Fatalf("count mismatch trial %d", trial)
		}
	}
}

func randSet(rng *rand.Rand, n, space int) []uint32 {
	s := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, uint32(rng.Intn(space)))
	}
	return mkSet(s)
}

func BenchmarkIntersectScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSet(rng, 512, 4096)
	y := randSet(rng, 512, 4096)
	dst := make([]uint32, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(x, y, dst)
	}
}

func BenchmarkIntersectFast(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSet(rng, 512, 4096)
	y := randSet(rng, 512, 4096)
	dst := make([]uint32, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectFast(x, y, dst)
	}
}

// BenchmarkGallopThreshold documents the skewed-size regime where galloping
// wins; one series per size ratio.
func BenchmarkGallopThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	big := randSet(rng, 1<<14, 1<<18)
	for _, small := range []int{4, 16, 64, 256} {
		s := randSet(rng, small, 1<<18)
		b.Run("ratio-"+itoa(len(big)/len(s)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				IntersectCountFast(s, big)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
