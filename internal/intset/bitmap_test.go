package intset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(200)
	if b.Len() != 0 || b.Contains(5) {
		t.Fatal("fresh bitmap not empty")
	}
	b.SetAll([]uint32{3, 64, 130, 199})
	if b.Len() != 4 {
		t.Fatalf("Len=%d", b.Len())
	}
	for _, x := range []uint32{3, 64, 130, 199} {
		if !b.Contains(x) {
			t.Fatalf("missing %d", x)
		}
	}
	if b.Contains(4) || b.Contains(63) {
		t.Fatal("phantom members")
	}
	b.Set(3) // idempotent
	if b.Len() != 4 {
		t.Fatalf("duplicate Set changed Len to %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 || b.Contains(3) {
		t.Fatal("Reset incomplete")
	}
}

func TestBitmapAgainstSortedOps(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkSet(clip(av, 500)), mkSet(clip(bv, 500))
		bm := NewBitmap(512)
		bm.SetAll(a)
		want := refIntersect(a, b)
		if bm.IntersectCount(b) != len(want) {
			return false
		}
		if !eq(bm.Intersect(b, nil), want) {
			return false
		}
		if bm.Intersects(b) != (len(want) > 0) {
			return false
		}
		if !eq(bm.ToSlice(nil), a) {
			return false
		}
		bm2 := NewBitmap(512)
		bm2.SetAll(b)
		return bm.IntersectBitmapCount(bm2) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clip(vs []uint32, max uint32) []uint32 {
	out := make([]uint32, len(vs))
	for i, v := range vs {
		out[i] = v % max
	}
	return out
}

func TestBitmapMismatchedUniverses(t *testing.T) {
	small := NewBitmap(64)
	big := NewBitmap(1024)
	small.SetAll([]uint32{1, 63})
	big.SetAll([]uint32{1, 63, 900})
	if got := small.IntersectBitmapCount(big); got != 2 {
		t.Fatalf("count=%d", got)
	}
	if got := big.IntersectBitmapCount(small); got != 2 {
		t.Fatalf("count=%d", got)
	}
	// Contains beyond the universe must not panic and reports false.
	if small.Contains(5000) {
		t.Fatal("contains beyond universe")
	}
}

func BenchmarkBitmapProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	hot := randSet(rng, 4096, 1<<16)
	probes := make([][]uint32, 64)
	for i := range probes {
		probes[i] = randSet(rng, 32, 1<<16)
	}
	bm := NewBitmap(1 << 16)
	bm.SetAll(hot)
	b.Run("bitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm.IntersectCount(probes[i&63])
		}
	})
	b.Run("gallop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectCountFast(probes[i&63], hot)
		}
	})
}
