// Package intset provides set algebra over sorted []uint32 slices.
//
// Hypergraph pattern mining reduces almost entirely to intersections of
// sorted integer sequences: hyperedge vertex lists, adjacency lists, and
// previously computed overlap buffers. The paper's C++ implementation leans
// on AVX-512 for these kernels; this package provides two pure-Go kernel
// families instead:
//
//   - the scalar kernels (Intersect, IntersectCount, ...) are textbook
//     two-pointer merges and serve as the "no-SIMD" ablation baseline;
//   - the fast kernels (IntersectFast, IntersectCountFast, ...) combine a
//     branch-reduced unrolled merge with galloping for skewed operand sizes,
//     standing in for the data-parallel speedup of SIMD set intersection.
//
// All functions require their inputs to be strictly increasing sequences and
// produce strictly increasing outputs. Output buffers may be nil; when a
// destination is passed it is reused (truncated to length zero first) to keep
// the mining inner loop allocation-free.
package intset

// gallopThreshold is the size ratio between the two operands above which the
// intersection switches from merging to galloping (binary-search probing of
// the larger operand). Chosen empirically; see BenchmarkGallopThreshold.
const gallopThreshold = 16

// Intersect stores the intersection of a and b into dst (reusing its
// capacity) and returns the resulting slice. The scalar two-pointer kernel.
//
//ohmlint:hotpath
func Intersect(a, b, dst []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	return dst
}

// IntersectCount returns |a ∩ b| using the scalar kernel.
//
//ohmlint:hotpath
func IntersectCount(a, b []uint32) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Intersects reports whether a and b share at least one element, with early
// exit at the first common element. Used for emptiness (disconnection)
// checks, where a full intersection would be wasted work.
//
//ohmlint:hotpath
func Intersects(a, b []uint32) bool {
	// Gallop when sizes are skewed: probing the long side is much cheaper
	// than merging through it.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return false
	}
	if len(b) >= gallopThreshold*len(a) {
		for _, x := range a {
			if Contains(b, x) {
				return true
			}
		}
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			return true
		}
	}
	return false
}

// IsSubset reports whether every element of a occurs in b.
//
//ohmlint:hotpath
func IsSubset(a, b []uint32) bool {
	if len(a) > len(b) {
		return false
	}
	if len(b) >= gallopThreshold*len(a) {
		lo := 0
		for _, x := range a {
			k := searchFrom(b, lo, x)
			if k == len(b) || b[k] != x {
				return false
			}
			lo = k + 1
		}
		return true
	}
	i, j := 0, 0
	for i < len(a) {
		if j == len(b) {
			return false
		}
		x, y := a[i], b[j]
		switch {
		case x < y:
			return false
		case x > y:
			j++
		default:
			i++
			j++
		}
	}
	return true
}

// Equal reports whether a and b hold identical sequences.
//
//ohmlint:hotpath
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if b[i] != x {
			return false
		}
	}
	return true
}

// Contains reports whether x occurs in the sorted slice s (binary search).
//
//ohmlint:hotpath
func Contains(s []uint32, x uint32) bool {
	k := searchFrom(s, 0, x)
	return k < len(s) && s[k] == x
}

// searchFrom returns the smallest index k in [lo, len(s)] such that
// s[k] >= x. A hand-rolled sort.Search to keep the inner loop inlinable.
func searchFrom(s []uint32, lo int, x uint32) int {
	hi := len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Union stores the sorted union of a and b into dst and returns it.
func Union(a, b, dst []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			dst = append(dst, x)
			i++
		case x > y:
			dst = append(dst, y)
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// UnionCount returns |a ∪ b|.
func UnionCount(a, b []uint32) int {
	return len(a) + len(b) - IntersectCount(a, b)
}

// Difference stores a \ b into dst and returns it.
func Difference(a, b, dst []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			dst = append(dst, x)
			i++
		case x > y:
			j++
		default:
			i++
			j++
		}
	}
	return append(dst, a[i:]...)
}

// IntersectBounded intersects a and b into dst but aborts as soon as the
// result would exceed maxLen, returning (nil, false) in that case. Mining
// uses it when the target overlap size is known in advance: any partial
// result longer than the pattern's overlap disqualifies the candidate, so
// there is no point finishing the merge.
func IntersectBounded(a, b, dst []uint32, maxLen int) ([]uint32, bool) {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			if len(dst) == maxLen {
				return nil, false
			}
			dst = append(dst, x)
			i++
			j++
		}
	}
	return dst, true
}

// SortedUnique reports whether s is strictly increasing (a valid set).
func SortedUnique(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}
