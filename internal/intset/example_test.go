package intset_test

import (
	"fmt"

	"ohminer/internal/intset"
)

// ExampleIntersect demonstrates the basic sorted-set operations the mining
// engine is built from.
func ExampleIntersect() {
	a := []uint32{1, 3, 5, 7, 9}
	b := []uint32{3, 4, 5, 6, 7}
	fmt.Println(intset.Intersect(a, b, nil))
	fmt.Println(intset.IntersectCount(a, b))
	fmt.Println(intset.Intersects(a, []uint32{2, 4, 6}))
	fmt.Println(intset.IsSubset([]uint32{3, 7}, a))
	// Output:
	// [3 5 7]
	// 3
	// false
	// true
}

// ExampleBitmap shows the hot-set probe pattern: materialize one set once,
// probe many short sets against it.
func ExampleBitmap() {
	bm := intset.NewBitmap(128)
	bm.SetAll([]uint32{10, 20, 30, 40})
	fmt.Println(bm.IntersectCount([]uint32{20, 25, 30}))
	fmt.Println(bm.Intersects([]uint32{1, 2, 3}))
	// Output:
	// 2
	// false
}
