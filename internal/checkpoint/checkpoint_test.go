package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Seq:     3,
		PlanFP:  0xdeadbeefcafe,
		GraphFP: 0x1234567890ab,
		Ordered: 424242,
		Stats:   []uint64{1, 2, 3, 4, 5},
		Frontier: []Task{
			{Depth: 0, Prefix: nil, Cands: []uint32{7, 8, 9}},
			{Depth: 2, Prefix: []uint32{10, 11}, Cands: []uint32{100}},
			{Depth: 1, Prefix: []uint32{5}, Cands: nil},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sample()
	n, err := want.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != fi.Size() || n == 0 {
		t.Fatalf("reported %d bytes, file has %d", n, fi.Size())
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("file round trip mismatch")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected files in checkpoint dir: %v", entries)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	first := sample()
	if _, err := first.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Seq = 4
	second.Ordered = 500000
	if _, err := second.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 4 || got.Ordered != 500000 {
		t.Fatalf("expected replaced snapshot, got seq=%d ordered=%d", got.Seq, got.Ordered)
	}
}

// TestCorruptionRejected flips/truncates bytes all over a valid snapshot and
// requires every mutation to be rejected (no panic, no silent success with
// altered content).
func TestCorruptionRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Truncations at every prefix length.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Decode(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Single-byte flips.
	for i := 0; i < len(valid); i++ {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x5a
		got, err := Decode(bytes.NewReader(mut))
		if err == nil && reflect.DeepEqual(got, sample()) {
			continue // flip landed in redundant encoding space, content intact
		}
		if err == nil {
			t.Fatalf("bit flip at %d accepted with altered content", i)
		}
	}
	// Trailing garbage after the trailer is ignored by Decode (a stream may
	// embed a snapshot), but a corrupt trailer is not.
	mut := bytes.Clone(valid)
	mut[len(mut)-1] ^= 0xff
	if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt trailer: got %v, want ErrCorrupt", err)
	}
}

func TestVersionAndMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wrongMagic := bytes.Clone(buf.Bytes())
	wrongMagic[0] ^= 0xff
	if _, err := Decode(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v", err)
	}
	wrongVersion := bytes.Clone(buf.Bytes())
	wrongVersion[8] = 99
	if _, err := Decode(bytes.NewReader(wrongVersion)); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version must fail with a version error, got %v", err)
	}
}

func TestAbsurdLengthsRejected(t *testing.T) {
	// A frontier length of 2^40 must error out without trying to allocate
	// the advertised space.
	s := sample()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	mut := buf.Bytes()
	// Offset of ntasks: 7 header u64s + 5 stats u64s = 12*8 = 96.
	copy(mut[96:104], []byte{0, 0, 0, 0, 1, 0, 0, 0})
	if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd frontier length: got %v", err)
	}
}

func TestEmptySnapshot(t *testing.T) {
	want := &Snapshot{Seq: 1, PlanFP: 1, GraphFP: 2, Ordered: 0}
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("empty snapshot mismatch: %+v vs %+v", want, got)
	}
}
