// Package checkpoint defines the crash-safe snapshot format for long mining
// runs. A snapshot captures everything needed to continue an interrupted
// exploration with counts that are neither lost nor double-counted:
//
//   - the global frontier — the set of unexplored subtree tasks (bound
//     prefix + remaining candidate range) that partition the remaining
//     search space,
//   - the partial result counters accumulated so far (ordered embeddings
//     plus the engine's Stats counters, packed opaquely by the engine),
//   - fingerprints of the compiled plan and of the data hypergraph, so a
//     snapshot can never be resumed against a different pattern, matching
//     order, or dataset.
//
// The file format is versioned, little-endian, and ends in a CRC32C trailer
// over every preceding byte (shared with the dal store format via
// internal/crcio): torn writes and bit-flips are rejected at load time.
// WriteFile is atomic (temp file in the target directory + rename), so a
// crash mid-checkpoint leaves the previous snapshot intact.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ohminer/internal/crcio"
)

const (
	// Magic identifies a snapshot file ("OHMC").
	Magic = 0x4f484d43
	// Version is the current snapshot format version.
	Version = 1

	// maxTasks bounds the frontier length a decoder accepts; beyond it the
	// file is declared corrupt rather than allocating unboundedly.
	maxTasks = 1 << 26
	// maxPrefix bounds a task's prefix length (pattern sizes are tiny).
	maxPrefix = 1 << 12
	// maxCands bounds a task's candidate-range length (hyperedge IDs are
	// uint32, so a range can never meaningfully exceed 2^32 entries; the
	// decoder additionally grows its buffers incrementally so a corrupt
	// length fails on EOF before the allocation it advertises).
	maxCands = 1 << 32
)

// ErrCorrupt tags every snapshot decoding failure; match with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// Task is one unexplored subtree: continue the depth-first search at
// matching-order position Depth, binding each hyperedge in Cands, with the
// first Depth positions already bound to Prefix.
type Task struct {
	Depth  uint32
	Prefix []uint32
	Cands  []uint32
}

// Snapshot is the serializable state of an interrupted mining run.
type Snapshot struct {
	// Seq numbers the checkpoints of one run, starting at 1; a resumed run
	// continues the sequence.
	Seq uint64
	// PlanFP fingerprints the compiled plan (pattern, labels, matching
	// order, mode); resuming validates it so frontier prefixes are never
	// interpreted against a different matching order.
	PlanFP uint64
	// GraphFP is the data hypergraph's content fingerprint.
	GraphFP uint64
	// Ordered is the number of ordered embeddings counted so far. Every
	// embedding is either counted here or reachable from exactly one
	// frontier task, never both — the exactly-once invariant.
	Ordered uint64
	// Stats carries the engine's packed Stats counters (opaque to this
	// package; the engine defines the order).
	Stats []uint64
	// Frontier is the set of unexplored subtree tasks.
	Frontier []Task
}

// Sink consumes snapshots as the engine produces them and reports the bytes
// persisted. Implementations must be safe for sequential calls from the
// mining driver; a failed write must leave any previously persisted
// snapshot intact.
type Sink interface {
	WriteSnapshot(s *Snapshot) (int64, error)
}

// Encode writes the snapshot to w in the versioned binary format,
// CRC trailer included.
func (s *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := crcio.NewWriter(bw)
	head := []uint64{
		Magic, Version,
		s.Seq, s.PlanFP, s.GraphFP, s.Ordered,
		uint64(len(s.Stats)),
	}
	if err := writeU64s(cw, head); err != nil {
		return err
	}
	if err := writeU64s(cw, s.Stats); err != nil {
		return err
	}
	if err := writeU64s(cw, []uint64{uint64(len(s.Frontier))}); err != nil {
		return err
	}
	for i := range s.Frontier {
		t := &s.Frontier[i]
		hdr := []uint32{t.Depth, uint32(len(t.Prefix)), uint32(len(t.Cands))}
		for _, arr := range [][]uint32{hdr, t.Prefix, t.Cands} {
			if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
				return fmt.Errorf("checkpoint: encode frontier: %w", err)
			}
		}
	}
	if err := cw.WriteTrailer(); err != nil {
		return fmt.Errorf("checkpoint: encode trailer: %w", err)
	}
	return bw.Flush()
}

// Marshal returns the snapshot in the same versioned binary format Encode
// writes — the convenience used where snapshots are embedded in other
// containers (cluster lease payloads, the coordinator's WAL state snapshot)
// rather than stored as files.
func (s *Snapshot) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a snapshot produced by Marshal (or Encode), with the
// same verification Decode performs.
func Unmarshal(b []byte) (*Snapshot, error) {
	return Decode(bytes.NewReader(b))
}

func writeU64s(w io.Writer, vs []uint64) error {
	if err := binary.Write(w, binary.LittleEndian, vs); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Decode reads a snapshot written by Encode, verifying the magic, version,
// structural bounds, and the CRC trailer. Every failure wraps ErrCorrupt
// except a version from a newer format, which gets its own message.
func Decode(r io.Reader) (*Snapshot, error) {
	cr := crcio.NewReader(bufio.NewReader(r))
	head := make([]uint64, 7)
	if err := binary.Read(cr, binary.LittleEndian, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if head[0] != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, head[0])
	}
	if head[1] != Version {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot version %d (want %d)", head[1], Version)
	}
	s := &Snapshot{Seq: head[2], PlanFP: head[3], GraphFP: head[4], Ordered: head[5]}
	nstats := head[6]
	if nstats > 1024 {
		return nil, fmt.Errorf("%w: absurd stats length %d", ErrCorrupt, nstats)
	}
	if nstats > 0 {
		s.Stats = make([]uint64, nstats)
		if err := binary.Read(cr, binary.LittleEndian, s.Stats); err != nil {
			return nil, fmt.Errorf("%w: short stats: %v", ErrCorrupt, err)
		}
	}
	var ntasks uint64
	if err := binary.Read(cr, binary.LittleEndian, &ntasks); err != nil {
		return nil, fmt.Errorf("%w: short frontier header: %v", ErrCorrupt, err)
	}
	if ntasks > maxTasks {
		return nil, fmt.Errorf("%w: absurd frontier length %d", ErrCorrupt, ntasks)
	}
	if ntasks > 0 {
		s.Frontier = make([]Task, 0, min(ntasks, 4096))
	}
	for i := uint64(0); i < ntasks; i++ {
		var hdr [3]uint32
		if err := binary.Read(cr, binary.LittleEndian, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: short task header: %v", ErrCorrupt, err)
		}
		if hdr[1] > maxPrefix || uint64(hdr[2]) > maxCands {
			return nil, fmt.Errorf("%w: absurd task sizes (prefix %d, cands %d)", ErrCorrupt, hdr[1], hdr[2])
		}
		t := Task{Depth: hdr[0]}
		var err error
		if t.Prefix, err = readU32s(cr, hdr[1]); err != nil {
			return nil, fmt.Errorf("%w: short task prefix: %v", ErrCorrupt, err)
		}
		if t.Cands, err = readU32s(cr, hdr[2]); err != nil {
			return nil, fmt.Errorf("%w: short task candidates: %v", ErrCorrupt, err)
		}
		s.Frontier = append(s.Frontier, t)
	}
	if err := cr.CheckTrailer("checkpoint"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}

// readU32s reads n little-endian uint32s, growing the buffer incrementally
// so a corrupt length fails with a short read instead of allocating the
// advertised size up front.
func readU32s(r io.Reader, n uint32) ([]uint32, error) {
	if n == 0 {
		return nil, nil
	}
	const chunkMax = 1 << 16
	buf := make([]uint32, min(n, chunkMax))
	out := make([]uint32, 0, len(buf))
	for remaining := n; remaining > 0; {
		part := buf[:min(remaining, chunkMax)]
		if err := binary.Read(r, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= uint32(len(part))
	}
	return out, nil
}

// WriteFile atomically persists the snapshot at path: the bytes go to a
// temporary file in the same directory, are fsynced, and replace path with
// a rename, so a crash mid-write leaves the previous snapshot intact.
// It returns the number of bytes written.
func (s *Snapshot) WriteFile(path string) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := s.Encode(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, nil
}

// ReadFile loads and validates a snapshot written by WriteFile.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// FileSink persists every snapshot to one path, atomically replacing the
// previous one — the standard sink for CLI runs and ohmserve jobs.
type FileSink struct {
	Path string
}

// WriteSnapshot implements Sink.
func (fs *FileSink) WriteSnapshot(s *Snapshot) (int64, error) {
	return s.WriteFile(fs.Path)
}

// MemSink retains the latest snapshot, already encoded, in memory — the sink
// for callers that consume the final frontier programmatically instead of
// persisting it: a cluster worker mines its leased task range with a MemSink
// attached, and when the run is cut short (worker shutdown) the engine's
// final-stop snapshot lands here as exactly the bytes the worker spills back
// to the coordinator as the task's unfinished remainder.
type MemSink struct {
	mu     sync.Mutex
	data   []byte
	seq    uint64
	writes int
}

// WriteSnapshot implements Sink.
func (ms *MemSink) WriteSnapshot(s *Snapshot) (int64, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return 0, err
	}
	ms.mu.Lock()
	ms.data = buf.Bytes()
	ms.seq = s.Seq
	ms.writes++
	ms.mu.Unlock()
	return int64(buf.Len()), nil
}

// Bytes returns the latest encoded snapshot (nil when nothing was written).
// The slice is not retained by the sink after a subsequent write.
func (ms *MemSink) Bytes() []byte {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.data
}

// Seq reports the sequence number of the latest snapshot, 0 when none.
func (ms *MemSink) Seq() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.seq
}

// Writes reports how many snapshots the sink received.
func (ms *MemSink) Writes() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.writes
}
