package venn

import (
	"math/rand"
	"testing"
)

func fig5Pattern() [][]uint32 {
	// The Figure 4/5 example pattern: region sizes {3,1,3,0,0,2,3}.
	return [][]uint32{
		{0, 1, 2, 9, 10, 11},
		{3, 7, 8, 9, 10, 11},
		{4, 5, 6, 7, 8, 9, 10, 11},
	}
}

// fig5Valid mirrors the valid embedding {e1,e2,e3} of Figure 5 (same region
// profile, different vertex IDs).
func fig5Valid() [][]uint32 {
	return [][]uint32{
		{20, 21, 22, 30, 31, 32},
		{23, 27, 28, 30, 31, 32},
		{24, 25, 26, 27, 28, 30, 31, 32},
	}
}

// fig5Invalid mirrors {e1,e2,e5}: sizes of R5 and R3 differ (1 and 2).
func fig5Invalid() [][]uint32 {
	return [][]uint32{
		{20, 21, 22, 30, 31, 32},
		{23, 27, 28, 30, 31, 32},
		{24, 25, 27, 28, 30, 31, 32, 21}, // drags an R1 vertex into A3
	}
}

func TestFig5Validation(t *testing.T) {
	sortAll := func(es [][]uint32) [][]uint32 {
		for _, e := range es {
			for i := 1; i < len(e); i++ {
				x := e[i]
				j := i - 1
				for j >= 0 && e[j] > x {
					e[j+1] = e[j]
					j--
				}
				e[j+1] = x
			}
		}
		return es
	}
	p := sortAll(fig5Pattern())
	good := sortAll(fig5Valid())
	bad := sortAll(fig5Invalid())

	if iso, err := Isomorphic(p, good); err != nil || !iso {
		t.Fatalf("valid embedding rejected: %v %v", iso, err)
	}
	if iso, err := Isomorphic(p, bad); err != nil || iso {
		t.Fatalf("invalid embedding accepted: %v %v", iso, err)
	}
}

func TestRegionsMatchProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		m := 1 + rng.Intn(5)
		edges := make([][]uint32, m)
		for i := range edges {
			seen := map[uint32]bool{}
			for j := 0; j < 1+rng.Intn(7); j++ {
				seen[uint32(rng.Intn(18))] = true
			}
			for v := range seen {
				edges[i] = append(edges[i], v)
			}
			e := edges[i]
			for a := 1; a < len(e); a++ {
				x := e[a]
				b := a - 1
				for b >= 0 && e[b] > x {
					e[b+1] = e[b]
					b--
				}
				e[b+1] = x
			}
		}
		if _, err := CheckTheorem1(edges, edges); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIsomorphicAnyOrder(t *testing.T) {
	p := fig5Pattern()
	// Reorder the embedding's hyperedges; ordered check fails, any-order
	// succeeds.
	good := fig5Valid()
	shuffled := [][]uint32{good[2], good[0], good[1]}
	if iso, _ := Isomorphic(p, shuffled); iso {
		t.Fatal("ordered isomorphism should fail on shuffled edges (degree mismatch)")
	}
	if iso, err := IsomorphicAnyOrder(p, shuffled); err != nil || !iso {
		t.Fatalf("any-order failed: %v %v", iso, err)
	}
	if iso, _ := IsomorphicAnyOrder(p, fig5Invalid()); iso {
		t.Fatal("any-order accepted a non-isomorphic pair")
	}
	if iso, _ := IsomorphicAnyOrder(p, p[:2]); iso {
		t.Fatal("different edge counts accepted")
	}
}

func TestRegionExpr(t *testing.T) {
	r := Region{Mask: 0b011}
	got := r.Expr(3)
	if got != "(A1 ∩ A2) \\ A3" {
		t.Fatalf("Expr=%q", got)
	}
	full := Region{Mask: 0b111}
	if full.Expr(3) != "A1 ∩ A2 ∩ A3" {
		t.Fatalf("Expr=%q", full.Expr(3))
	}
	single := Region{Mask: 0b100}
	if single.Expr(3) != "A3 \\ A1 \\ A2" {
		t.Fatalf("Expr=%q", single.Expr(3))
	}
}

func TestRegionOrderAndCount(t *testing.T) {
	if NumRegions(3) != 7 {
		t.Fatalf("NumRegions(3)=%d", NumRegions(3))
	}
	order := RegionOrder(3)
	if len(order) != 7 {
		t.Fatalf("len=%d", len(order))
	}
	// Popcount must be non-decreasing.
	pc := func(x uint32) int {
		n := 0
		for ; x != 0; x &= x - 1 {
			n++
		}
		return n
	}
	for i := 1; i < len(order); i++ {
		if pc(order[i]) < pc(order[i-1]) {
			t.Fatalf("order not by popcount: %v", order)
		}
	}
}

func TestVertexProfiles(t *testing.T) {
	edges := [][]uint32{{0, 1}, {1, 2}}
	p := VertexProfiles(edges)
	if p[0] != 0b01 || p[1] != 0b11 || p[2] != 0b10 {
		t.Fatalf("profiles: %v", p)
	}
}
