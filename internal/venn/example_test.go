package venn_test

import (
	"fmt"

	"ohminer/internal/venn"
)

// ExampleRegions reproduces the Figure 4 walkthrough: the example pattern's
// seven Venn regions have sizes {3,1,3,0,0,2,3}.
func ExampleRegions() {
	edges := [][]uint32{
		{0, 1, 2, 9, 10, 11},
		{3, 7, 8, 9, 10, 11},
		{4, 5, 6, 7, 8, 9, 10, 11},
	}
	regions, err := venn.Regions(edges)
	if err != nil {
		panic(err)
	}
	for _, r := range regions {
		fmt.Printf("%s = %d\n", r.Expr(3), r.Size)
	}
	// Output:
	// A1 \ A2 \ A3 = 3
	// A2 \ A1 \ A3 = 1
	// (A1 ∩ A2) \ A3 = 0
	// A3 \ A1 \ A2 = 3
	// (A1 ∩ A3) \ A2 = 0
	// (A2 ∩ A3) \ A1 = 2
	// A1 ∩ A2 ∩ A3 = 3
}

// ExampleIsomorphic decides subhypergraph isomorphism through Theorem 1:
// equal region sizes (equivalently, equal overlap signatures) ⇔ isomorphic.
func ExampleIsomorphic() {
	pattern := [][]uint32{{0, 1, 2}, {2, 3}}
	embedding := [][]uint32{{5, 7, 9}, {9, 11}}
	broken := [][]uint32{{5, 7, 9}, {5, 9}} // overlap has 2 vertices, not 1
	a, _ := venn.Isomorphic(pattern, embedding)
	b, _ := venn.Isomorphic(pattern, broken)
	fmt.Println(a, b)
	// Output: true false
}
