// Package venn models subhypergraphs as Venn diagrams (Sec. 3 of the
// paper).
//
// Each vertex of a subhypergraph lies in exactly one Venn region — the set
// of hyperedges containing it, encoded as a bitmask ("profile"). Theorem 1
// states that two hyperedge sequences are subhypergraph-isomorphic exactly
// when corresponding region sizes agree; package sig computes those sizes
// through the inclusion–exclusion principle, while this package computes
// them directly from vertex profiles. Having both derivations lets the test
// suite use venn as the executable specification that validates the IEP
// shortcut the mining engine relies on.
package venn

import (
	"fmt"
	"math/bits"
	"strings"

	"ohminer/internal/sig"
)

// Region describes one Venn region of an m-edge subhypergraph.
type Region struct {
	Mask uint32 // hyperedges the region lies inside (≥1 bit)
	Size int    // number of vertices in the region
}

// Expr renders the defining set expression of a region, in the style of
// Figure 4(b): e.g. (A1 ∩ A2) \ A3 for mask 011 of a 3-edge pattern.
func (r Region) Expr(m int) string {
	var in, out []string
	for i := 0; i < m; i++ {
		name := fmt.Sprintf("A%d", i+1)
		if r.Mask&(1<<i) != 0 {
			in = append(in, name)
		} else {
			out = append(out, name)
		}
	}
	expr := strings.Join(in, " ∩ ")
	if len(in) > 1 && len(out) > 0 {
		expr = "(" + expr + ")"
	}
	for _, o := range out {
		expr += " \\ " + o
	}
	return expr
}

// VertexProfiles returns the profile mask of every vertex appearing in the
// hyperedge sequence: profile[v] has bit i set iff v ∈ edges[i]. This is the
// vertex-granularity view that HGMatch's validation hashes.
func VertexProfiles(edges [][]uint32) map[uint32]uint32 {
	profiles := map[uint32]uint32{}
	for i, e := range edges {
		for _, v := range e {
			profiles[v] |= 1 << uint(i)
		}
	}
	return profiles
}

// RegionsFromProfiles counts region sizes directly from vertex profiles —
// the definitional (non-IEP) derivation.
func RegionsFromProfiles(m int, profiles map[uint32]uint32) []Region {
	counts := make([]int, 1<<m)
	for _, p := range profiles {
		counts[p]++
	}
	regions := make([]Region, 0, 1<<m-1)
	for mask := 1; mask < 1<<m; mask++ {
		regions = append(regions, Region{Mask: uint32(mask), Size: counts[mask]})
	}
	return regions
}

// Regions returns the region sizes of the hyperedge sequence, derived via
// the IEP from its overlap signature, ordered by ascending mask.
func Regions(edges [][]uint32) ([]Region, error) {
	s, err := sig.Compute(edges)
	if err != nil {
		return nil, err
	}
	sizes := s.RegionSizes()
	regions := make([]Region, 0, len(sizes)-1)
	for mask := 1; mask < len(sizes); mask++ {
		regions = append(regions, Region{Mask: uint32(mask), Size: sizes[mask]})
	}
	return regions, nil
}

// Isomorphic reports whether the two hyperedge sequences are subhypergraph
// isomorphic under the given order (Theorem 1: region sizes — equivalently
// overlap signatures — must agree position-wise).
func Isomorphic(a, b [][]uint32) (bool, error) {
	if len(a) != len(b) {
		return false, nil
	}
	sa, err := sig.Compute(a)
	if err != nil {
		return false, err
	}
	sb, err := sig.Compute(b)
	if err != nil {
		return false, err
	}
	return sa.Equal(sb), nil
}

// IsomorphicAnyOrder reports whether some reordering of b makes it
// isomorphic to a, searching hyperedge permutations pruned by degree.
func IsomorphicAnyOrder(a, b [][]uint32) (bool, error) {
	if len(a) != len(b) {
		return false, nil
	}
	sa, err := sig.Compute(a)
	if err != nil {
		return false, err
	}
	sb, err := sig.Compute(b)
	if err != nil {
		return false, err
	}
	m := len(a)
	perm := make([]int, m)
	used := uint32(0)
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == m {
			return sb.Permute(perm).Equal(sa)
		}
		for j := 0; j < m; j++ {
			if used&(1<<j) != 0 || len(b[j]) != len(a[pos]) {
				continue
			}
			perm[pos] = j
			used |= 1 << j
			if rec(pos + 1) {
				return true
			}
			used &^= 1 << j
		}
		return false
	}
	return rec(0), nil
}

// CheckTheorem1 verifies on a concrete pair of hyperedge sequences that the
// IEP-derived region sizes equal the profile-derived region sizes, and
// returns the ordered-isomorphism verdict. Tests use it as the Theorem-1
// consistency probe.
func CheckTheorem1(a, b [][]uint32) (iso bool, err error) {
	for _, seq := range [][][]uint32{a, b} {
		regions, rerr := Regions(seq)
		if rerr != nil {
			return false, rerr
		}
		direct := RegionsFromProfiles(len(seq), VertexProfiles(seq))
		for i := range regions {
			if regions[i] != direct[i] {
				return false, fmt.Errorf("venn: IEP region %0*b=%d but profile count %d",
					len(seq), regions[i].Mask, regions[i].Size, direct[i].Size)
			}
		}
	}
	return Isomorphic(a, b)
}

// NumRegions returns the number of regions of an m-set Venn diagram
// (excluding the exterior): 2^m − 1.
func NumRegions(m int) int { return 1<<m - 1 }

// RegionOrder returns all masks ordered by (popcount, value) — the canonical
// region enumeration order used in figures.
func RegionOrder(m int) []uint32 {
	out := make([]uint32, 0, NumRegions(m))
	for pc := 1; pc <= m; pc++ {
		for mask := 1; mask < 1<<m; mask++ {
			if bits.OnesCount(uint(mask)) == pc {
				out = append(out, uint32(mask))
			}
		}
	}
	return out
}
