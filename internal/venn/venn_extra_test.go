package venn

import (
	"strings"
	"testing"

	"ohminer/internal/sig"
)

func TestIsomorphicErrorPaths(t *testing.T) {
	bad := [][]uint32{{2, 1}} // unsorted
	good := [][]uint32{{1, 2}}
	if _, err := Isomorphic(bad, good); err == nil {
		t.Error("unsorted first operand accepted")
	}
	if _, err := Isomorphic(good, bad); err == nil {
		t.Error("unsorted second operand accepted")
	}
	if _, err := IsomorphicAnyOrder(bad, good); err == nil {
		t.Error("any-order unsorted operand accepted")
	}
	if _, err := Regions(bad); err == nil {
		t.Error("Regions accepted unsorted input")
	}
	// Oversized patterns are rejected through sig.MaxEdges.
	big := make([][]uint32, sig.MaxEdges+1)
	for i := range big {
		big[i] = []uint32{0}
	}
	if _, err := Isomorphic(big, big); err == nil {
		t.Error("oversized pattern accepted")
	}
}

func TestCheckTheorem1Mismatch(t *testing.T) {
	a := [][]uint32{{0, 1}, {1, 2}}
	b := [][]uint32{{0, 1}, {2, 3}} // disconnected pair: different signature
	iso, err := CheckTheorem1(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if iso {
		t.Fatal("non-isomorphic pair accepted")
	}
}

func TestRegionExprSingleSet(t *testing.T) {
	r := Region{Mask: 0b1}
	if got := r.Expr(1); got != "A1" {
		t.Fatalf("Expr=%q", got)
	}
	two := Region{Mask: 0b1}
	if got := two.Expr(2); !strings.Contains(got, "\\") {
		t.Fatalf("Expr=%q should subtract A2", got)
	}
}
