package sig

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// fig4Pattern is the example pattern of Figure 4: three hyperedges with
// region sizes {R1..R7} = {3,1,3,0,0,2,3}.
//
// Regions (mask over {A1,A2,A3}): R1=A1 only(3), R2=A2 only(1), R3=A3
// only(3), R4=A1∩A2 only(0), R5=A1∩A3 only(0), R6=A2∩A3 only(2),
// R7=A1∩A2∩A3(3).
func fig4Pattern() [][]uint32 {
	// Build vertex sets realizing those region sizes.
	// R1: 0,1,2  R2: 3  R3: 4,5,6  R6: 7,8  R7: 9,10,11
	a1 := []uint32{0, 1, 2, 9, 10, 11}
	a2 := []uint32{3, 7, 8, 9, 10, 11}
	a3 := []uint32{4, 5, 6, 7, 8, 9, 10, 11}
	return [][]uint32{a1, a2, a3}
}

func TestComputeFig4(t *testing.T) {
	s := MustCompute(fig4Pattern())
	if s.Size(0b001) != 6 || s.Size(0b010) != 6 || s.Size(0b100) != 8 {
		t.Fatalf("degrees wrong: %v", s.Sizes)
	}
	if s.Size(0b011) != 3 { // A1∩A2 = R4+R7 = 0+3
		t.Fatalf("|A1∩A2|=%d", s.Size(0b011))
	}
	if s.Size(0b101) != 3 || s.Size(0b110) != 5 || s.Size(0b111) != 3 {
		t.Fatalf("sizes: %v", s.Sizes)
	}
	regions := s.RegionSizes()
	want := map[uint32]int{
		0b001: 3, 0b010: 1, 0b100: 3,
		0b011: 0, 0b101: 0, 0b110: 2,
		0b111: 3,
	}
	for mask, w := range want {
		if regions[mask] != w {
			t.Errorf("region[%03b]=%d want %d", mask, regions[mask], w)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := Compute([][]uint32{{2, 1}}); err == nil {
		t.Error("unsorted edge accepted")
	}
	big := make([][]uint32, MaxEdges+1)
	for i := range big {
		big[i] = []uint32{0}
	}
	if _, err := Compute(big); err == nil {
		t.Error("oversized pattern accepted")
	}
}

// refSig computes the signature by direct per-mask set intersection over
// maps — the oracle.
func refSig(edges [][]uint32) []int {
	m := len(edges)
	out := make([]int, 1<<m)
	for mask := 1; mask < 1<<m; mask++ {
		counts := map[uint32]int{}
		n := bits.OnesCount(uint(mask))
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				for _, v := range edges[i] {
					counts[v]++
				}
			}
		}
		for _, c := range counts {
			if c == n {
				out[mask]++
			}
		}
	}
	return out
}

func randEdges(rng *rand.Rand, m, space int) [][]uint32 {
	edges := make([][]uint32, m)
	for i := range edges {
		seen := map[uint32]bool{}
		sz := 1 + rng.Intn(8)
		for j := 0; j < sz; j++ {
			seen[uint32(rng.Intn(space))] = true
		}
		for v := range seen {
			edges[i] = append(edges[i], v)
		}
		// insertion sort
		e := edges[i]
		for a := 1; a < len(e); a++ {
			x := e[a]
			b := a - 1
			for b >= 0 && e[b] > x {
				e[b+1] = e[b]
				b--
			}
			e[b+1] = x
		}
	}
	return edges
}

func TestComputeAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(5)
		edges := randEdges(rng, m, 4+rng.Intn(20))
		s := MustCompute(edges)
		want := refSig(edges)
		for mask := 1; mask < 1<<m; mask++ {
			if s.Sizes[mask] != want[mask] {
				t.Fatalf("trial %d mask %b: %d want %d", trial, mask, s.Sizes[mask], want[mask])
			}
		}
	}
}

// TestRegionRoundtrip: summing regions over supersets must reproduce the
// signature (sig[S] = Σ_{T⊇S} region[T]).
func TestRegionRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		edges := randEdges(rng, m, 15)
		s := MustCompute(edges)
		regions := s.RegionSizes()
		for mask := 1; mask < 1<<m; mask++ {
			sum := 0
			for sup := mask; sup < 1<<m; sup++ {
				if sup&mask == mask {
					sum += regions[sup]
				}
			}
			if sum != s.Sizes[mask] {
				return false
			}
			if regions[mask] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermute(t *testing.T) {
	edges := fig4Pattern()
	s := MustCompute(edges)
	perm := []int{2, 0, 1} // position i holds original perm[i]
	p := s.Permute(perm)
	reordered := [][]uint32{edges[2], edges[0], edges[1]}
	want := MustCompute(reordered)
	if !p.Equal(want) {
		t.Fatalf("Permute mismatch:\n got %v\nwant %v", p.Sizes, want.Sizes)
	}
	// Identity permutation is a no-op.
	id := s.Permute([]int{0, 1, 2})
	if !id.Equal(s) {
		t.Fatal("identity permutation changed signature")
	}
}

func TestEqual(t *testing.T) {
	a := MustCompute(fig4Pattern())
	b := MustCompute(fig4Pattern())
	if !a.Equal(b) {
		t.Fatal("identical signatures unequal")
	}
	c := MustCompute([][]uint32{{0, 1}, {1, 2}, {2, 3}})
	if a.Equal(c) {
		t.Fatal("different signatures equal")
	}
	if a.Equal(MustCompute([][]uint32{{0}})) {
		t.Fatal("different M equal")
	}
}

func TestComputeLabeled(t *testing.T) {
	edges := [][]uint32{{0, 1, 2}, {1, 2, 3}}
	labels := []uint32{0, 1, 1, 0}
	ls, err := ComputeLabeled(edges, func(v uint32) uint32 { return labels[v] })
	if err != nil {
		t.Fatal(err)
	}
	// Overlap {1,2} has labels {1,1}.
	got := ls.Counts[0b11]
	if len(got) != 1 || got[0].Label != 1 || got[0].Count != 2 {
		t.Fatalf("overlap histogram: %v", got)
	}
	// Edge 0 has labels {0:1, 1:2}.
	e0 := ls.Counts[0b01]
	if len(e0) != 2 || e0[0] != (LabelCount{0, 1}) || e0[1] != (LabelCount{1, 2}) {
		t.Fatalf("edge histogram: %v", e0)
	}
}

func TestLabeledPropagatedEmpty(t *testing.T) {
	edges := [][]uint32{{0}, {1}, {0, 1}}
	ls, err := ComputeLabeled(edges, func(v uint32) uint32 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if ls.Counts[0b011] != nil || ls.Counts[0b111] != nil {
		t.Fatal("empty overlaps should have nil histograms")
	}
}
