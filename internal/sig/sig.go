// Package sig computes overlap signatures of hyperedge sequences.
//
// For an ordered sequence of hyperedges E = (e_0 .. e_{m-1}) the overlap
// signature assigns to every non-empty subset S ⊆ {0..m-1} the overlap size
//
//	sig[S] = |∩_{i∈S} e_i|,
//
// with subsets encoded as bitmasks. By the paper's Theorem 1 (via the
// inclusion–exclusion principle), two hyperedge sequences are isomorphic as
// subhypergraphs exactly when their signatures agree: the Venn-region sizes
// of Sec. 3 are the Möbius transform of the signature, so equal signatures
// ⇔ equal region sizes ⇔ a vertex bijection inducing a hyperedge bijection.
//
// The signature is the single correctness object shared by the compiler (it
// derives the execution plan's size targets from it), the brute-force
// reference miner, the automorphism counter, and the Venn model.
package sig

import (
	"fmt"
	"math/bits"
	"sort"

	"ohminer/internal/intset"
)

// MaxEdges bounds the number of hyperedges per pattern; signatures take
// O(2^m) space and the evaluation patterns have m ≤ 6.
const MaxEdges = 14

// Signature holds per-subset overlap sizes for an m-edge sequence.
type Signature struct {
	M     int   // number of hyperedges
	Sizes []int // indexed by mask ∈ [1, 1<<M); Sizes[0] unused (0)
}

// Compute builds the signature of the given hyperedge vertex sets. Each set
// must be strictly increasing. Sets for every mask are derived incrementally
// (∩S = ∩(S \ lowbit) ∩ e_lowbit) so each subset costs one intersection.
func Compute(edges [][]uint32) (Signature, error) {
	m := len(edges)
	if m == 0 || m > MaxEdges {
		return Signature{}, fmt.Errorf("sig: %d hyperedges (want 1..%d)", m, MaxEdges)
	}
	for i, e := range edges {
		if !intset.SortedUnique(e) {
			return Signature{}, fmt.Errorf("sig: hyperedge %d is not a sorted set", i)
		}
	}
	sets := make([][]uint32, 1<<m)
	s := Signature{M: m, Sizes: make([]int, 1<<m)}
	for i := 0; i < m; i++ {
		sets[1<<i] = edges[i]
		s.Sizes[1<<i] = len(edges[i])
	}
	for mask := 1; mask < 1<<m; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		low := mask & -mask
		rest := mask &^ low
		if len(sets[rest]) == 0 {
			// Propagated emptiness; sets[mask] stays nil, size 0.
			continue
		}
		sets[mask] = intset.Intersect(sets[rest], sets[low], nil)
		s.Sizes[mask] = len(sets[mask])
	}
	return s, nil
}

// MustCompute is Compute that panics on error (test/example literals).
func MustCompute(edges [][]uint32) Signature {
	s, err := Compute(edges)
	if err != nil {
		panic(err)
	}
	return s
}

// Size returns sig[mask].
func (s Signature) Size(mask uint32) int { return s.Sizes[mask] }

// Equal reports whether two signatures are identical.
func (s Signature) Equal(o Signature) bool {
	if s.M != o.M {
		return false
	}
	for i := 1; i < len(s.Sizes); i++ {
		if s.Sizes[i] != o.Sizes[i] {
			return false
		}
	}
	return true
}

// RegionSizes returns the Venn-region sizes of Sec. 3: region[mask] is the
// number of vertices that belong to exactly the hyperedges in mask. It is
// the superset Möbius transform of the signature:
//
//	region[S] = Σ_{T ⊇ S} (-1)^{|T|-|S|} sig[T]   (IEP, Equation (1))
func (s Signature) RegionSizes() []int {
	n := len(s.Sizes)
	region := make([]int, n)
	copy(region, s.Sizes)
	// Standard subset-sum inversion over the superset lattice: subtract the
	// contribution of each bit dimension.
	for b := 0; b < s.M; b++ {
		for mask := n - 1; mask >= 1; mask-- {
			if mask&(1<<b) == 0 {
				region[mask] -= region[mask|(1<<b)]
			}
		}
	}
	return region
}

// Permute returns the signature of the same edges reordered by perm
// (perm[i] = original index placed at position i).
func (s Signature) Permute(perm []int) Signature {
	out := Signature{M: s.M, Sizes: make([]int, len(s.Sizes))}
	for mask := 1; mask < len(s.Sizes); mask++ {
		var orig uint32
		for i := 0; i < s.M; i++ {
			if mask&(1<<i) != 0 {
				orig |= 1 << uint(perm[i])
			}
		}
		out.Sizes[mask] = s.Sizes[orig]
	}
	return out
}

// LabelCount pairs a vertex label with a count.
type LabelCount struct {
	Label uint32
	Count int
}

// LabelSignature extends the overlap signature with per-label counts: for
// every subset mask it records the multiset of labels occurring in the
// overlap, sorted by label. Labeled HPM (Sec. 4.3.1) compares these instead
// of bare sizes.
type LabelSignature struct {
	Signature
	Counts [][]LabelCount // indexed by mask; sorted by Label
}

// ComputeLabeled builds the labeled signature; labelOf maps vertex → label.
func ComputeLabeled(edges [][]uint32, labelOf func(uint32) uint32) (LabelSignature, error) {
	base, err := Compute(edges)
	if err != nil {
		return LabelSignature{}, err
	}
	ls := LabelSignature{Signature: base, Counts: make([][]LabelCount, len(base.Sizes))}
	// Recompute the sets (cheap for pattern-sized inputs) and histogram.
	sets := make([][]uint32, 1<<base.M)
	for i := 0; i < base.M; i++ {
		sets[1<<i] = edges[i]
	}
	for mask := 1; mask < 1<<base.M; mask++ {
		if bits.OnesCount(uint(mask)) >= 2 {
			low := mask & -mask
			rest := mask &^ low
			sets[mask] = intset.Intersect(sets[rest], sets[low], nil)
		}
		ls.Counts[mask] = histogram(sets[mask], labelOf)
	}
	return ls, nil
}

func histogram(verts []uint32, labelOf func(uint32) uint32) []LabelCount {
	if len(verts) == 0 {
		return nil
	}
	counts := map[uint32]int{}
	for _, v := range verts {
		counts[labelOf(v)]++
	}
	out := make([]LabelCount, 0, len(counts))
	for l, c := range counts {
		out = append(out, LabelCount{Label: l, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
