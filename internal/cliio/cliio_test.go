package cliio

import (
	"errors"
	"strings"
	"testing"
)

type failAfter struct {
	n   int // bytes accepted before failing
	got strings.Builder
}

var errDisk = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.got.Len()+len(p) > f.n {
		return 0, errDisk
	}
	f.got.Write(p)
	return len(p), nil
}

func TestWriterCollectsOutput(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Printf("a=%d ", 1)
	w.Println("b")
	w.Print("c")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, want := sb.String(), "a=1 b\nc"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestWriterLatchesFirstError(t *testing.T) {
	// Buffer larger than the sink: the error surfaces at flush time.
	w := NewWriter(&failAfter{n: 4})
	for i := 0; i < 100; i++ {
		w.Printf("%d\n", i)
	}
	if err := w.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close = %v, want %v", err, errDisk)
	}
}

func TestWriterErrSurvivesLaterWrites(t *testing.T) {
	sink := &failAfter{n: 0}
	w := NewWriter(sink)
	// Force a flush-sized write so the error hits immediately.
	w.Print(strings.Repeat("x", 64<<10))
	if w.Err() == nil {
		t.Fatal("expected error after oversized write")
	}
	w.Println("more") // must not panic or clear the error
	if err := w.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close = %v, want %v", err, errDisk)
	}
}
