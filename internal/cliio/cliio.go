// Package cliio provides error-tracked, buffered output for the command-
// line tools. The cmd/ binaries print machine-consumed results to stdout;
// a full pipe or closed descriptor must turn into a nonzero exit instead
// of silently truncated output. Writer remembers the first underlying
// write error, turns every later write into a no-op, and reports the
// error from Close — so tool code prints straight-line without per-call
// checks and still propagates failures:
//
//	out := cliio.NewWriter(os.Stdout)
//	out.Printf("ordered=%d\n", n)
//	return out.Close()
package cliio

import (
	"bufio"
	"fmt"
	"io"
)

// Writer is a buffered writer that latches the first error.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write implements io.Writer; after an error it consumes input without
// writing. It always reports success upward because the latched error is
// returned from Err and Close — pass a *Writer to rendering helpers and
// check once at the end.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return len(p), nil
	}
	n, err := w.bw.Write(p)
	if err != nil {
		w.err = err
		return len(p), nil
	}
	if n < len(p) {
		w.err = io.ErrShortWrite
	}
	return len(p), nil
}

// Printf formats into the writer.
func (w *Writer) Printf(format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// Println writes the operands followed by a newline.
func (w *Writer) Println(args ...any) {
	fmt.Fprintln(w, args...)
}

// Print writes the operands.
func (w *Writer) Print(args ...any) {
	fmt.Fprint(w, args...)
}

// Err returns the first write error observed so far.
func (w *Writer) Err() error {
	return w.err
}

// Close flushes the buffer and returns the first error of the writer's
// lifetime. The underlying writer is not closed.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); w.err == nil && err != nil {
		w.err = err
	}
	return w.err
}
