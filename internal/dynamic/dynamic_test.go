package dynamic

import (
	"math/rand"
	"testing"

	"ohminer/internal/engine"
	"ohminer/internal/pattern"
)

func randBatch(rng *rand.Rand, nv, n int) [][]uint32 {
	batch := make([][]uint32, n)
	for i := range batch {
		sz := 2 + rng.Intn(3)
		for j := 0; j < sz; j++ {
			batch[i] = append(batch[i], uint32(rng.Intn(nv)))
		}
	}
	return batch
}

// TestDeltaInvariant is the core incremental-mining property: for every
// batch, total(after) = total(before) + delta.
func TestDeltaInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nv = 30
	m, err := NewMiner(nv, randBatch(rng, nv, 25))
	if err != nil {
		t.Fatal(err)
	}
	pats := []*pattern.Pattern{
		pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil),
		pattern.MustNew([][]uint32{{0, 1, 2}, {2, 3}}, nil),
		pattern.MustNew([][]uint32{{0, 1}, {1, 2}, {2, 3}}, nil),
	}
	opts := engine.Options{Workers: 1}

	before := make([]uint64, len(pats))
	for i, p := range pats {
		res, err := m.TotalCount(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = res.Ordered
	}
	for batchNo := 0; batchNo < 4; batchNo++ {
		if err := m.ApplyBatch(randBatch(rng, nv, 8)); err != nil {
			t.Fatal(err)
		}
		for i, p := range pats {
			delta, err := m.DeltaCount(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			after, err := m.TotalCount(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if before[i]+delta.Ordered != after.Ordered {
				t.Fatalf("batch %d pattern %d: before %d + delta %d != after %d",
					batchNo, i, before[i], delta.Ordered, after.Ordered)
			}
			if delta.Unique != delta.Ordered/uint64(after.Automorphisms) {
				t.Fatalf("unique accounting: %d vs %d/%d", delta.Unique, delta.Ordered, after.Automorphisms)
			}
			before[i] = after.Ordered
		}
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch %d", m.Epoch())
	}
}

func TestDeltaHandBuilt(t *testing.T) {
	// Path e0-e1; adding e2 extends it. 2-edge chain pattern.
	m, err := NewMiner(4, [][]uint32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	opts := engine.Options{Workers: 1}
	total, err := m.TotalCount(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if total.Ordered != 2 { // (e0,e1) and (e1,e0)
		t.Fatalf("initial ordered %d", total.Ordered)
	}
	if err := m.ApplyBatch([][]uint32{{2, 3}}); err != nil {
		t.Fatal(err)
	}
	if m.NumNewEdges() != 1 {
		t.Fatalf("new edges %d", m.NumNewEdges())
	}
	delta, err := m.DeltaCount(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// New embeddings: {e1,e2} in both orders.
	if delta.Ordered != 2 || delta.Unique != 1 {
		t.Fatalf("delta %+v", delta)
	}
}

func TestDuplicateBatchAbsorbed(t *testing.T) {
	m, err := NewMiner(4, [][]uint32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyBatch([][]uint32{{1, 0}}); err != nil { // duplicate of e0
		t.Fatal(err)
	}
	if m.NumNewEdges() != 0 {
		t.Fatalf("duplicate created %d new edges", m.NumNewEdges())
	}
	p := pattern.MustNew([][]uint32{{0, 1}, {1, 2}}, nil)
	delta, err := m.DeltaCount(p, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Ordered != 0 {
		t.Fatalf("duplicate batch produced delta %d", delta.Ordered)
	}
}

func TestStableEdgeIDs(t *testing.T) {
	m, err := NewMiner(6, [][]uint32{{0, 1}, {2, 3}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	e0 := append([]uint32(nil), m.Hypergraph().EdgeVertices(0)...)
	if err := m.ApplyBatch([][]uint32{{4, 5}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	got := m.Hypergraph().EdgeVertices(0)
	if len(got) != len(e0) || got[0] != e0[0] || got[1] != e0[1] {
		t.Fatalf("edge 0 changed: %v vs %v", got, e0)
	}
	if m.Hypergraph().NumEdges() != 5 {
		t.Fatalf("edges %d", m.Hypergraph().NumEdges())
	}
}

func TestNewMinerErrors(t *testing.T) {
	if _, err := NewMiner(4, nil); err == nil {
		t.Fatal("empty initial accepted")
	}
	m, _ := NewMiner(4, [][]uint32{{0, 1}})
	if err := m.ApplyBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
