// Package dynamic supports hypergraphs that grow by hyperedge batches and
// answers incremental pattern-mining queries: how many new embeddings did
// the latest batch create? This is the streaming-HPM direction of the
// paper's related work (Tesseract, PSMiner) realized as an extension on the
// overlap-centric engine.
//
// The delta is computed with anchored enumeration: embeddings containing at
// least one new hyperedge are partitioned by the first matching-order
// position holding a new hyperedge, so each is counted exactly once — no
// recount of the old hypergraph and no inclusion–exclusion over batches.
package dynamic

import (
	"errors"
	"fmt"
	"time"

	"ohminer/internal/dal"
	"ohminer/internal/engine"
	"ohminer/internal/hypergraph"
	"ohminer/internal/pattern"
)

// Miner maintains a growing hypergraph and its derived mining state.
type Miner struct {
	numVertices int
	rawEdges    [][]uint32
	h           *hypergraph.Hypergraph
	store       *dal.Store
	// boundary is the first hyperedge ID belonging to the latest batch.
	boundary uint32
	epoch    int
}

// NewMiner starts from an initial hypergraph (batch 0). numVertices fixes
// the vertex universe; later batches may reference any vertex below it.
func NewMiner(numVertices int, initial [][]uint32) (*Miner, error) {
	m := &Miner{numVertices: numVertices}
	if err := m.apply(initial); err != nil {
		return nil, err
	}
	m.boundary = 0 // everything in batch 0 counts as "old" for deltas
	if m.h != nil {
		m.boundary = uint32(m.h.NumEdges())
	}
	return m, nil
}

// ApplyBatch inserts a batch of hyperedges and rebuilds the derived state.
// Hyperedge IDs of previously inserted edges are stable: the builder keeps
// first occurrences in input order, so appended batches only extend the ID
// space. Duplicate hyperedges (already present) are absorbed silently.
func (m *Miner) ApplyBatch(batch [][]uint32) error {
	if len(batch) == 0 {
		return errors.New("dynamic: empty batch")
	}
	prev := m.h.NumEdges()
	if err := m.apply(batch); err != nil {
		return err
	}
	m.boundary = uint32(prev)
	m.epoch++
	return nil
}

func (m *Miner) apply(batch [][]uint32) error {
	m.rawEdges = append(m.rawEdges, batch...)
	h, err := hypergraph.Build(m.numVertices, m.rawEdges, nil)
	if err != nil {
		return fmt.Errorf("dynamic: %w", err)
	}
	m.h = h
	m.store = dal.Build(h)
	return nil
}

// Hypergraph returns the current hypergraph.
func (m *Miner) Hypergraph() *hypergraph.Hypergraph { return m.h }

// Store returns the current degree-aware store.
func (m *Miner) Store() *dal.Store { return m.store }

// Epoch returns the number of applied batches after the initial one.
func (m *Miner) Epoch() int { return m.epoch }

// NumNewEdges returns the size of the latest batch after deduplication.
func (m *Miner) NumNewEdges() int { return m.h.NumEdges() - int(m.boundary) }

// Delta is the result of an incremental query.
type Delta struct {
	// Ordered/Unique count the embeddings that include at least one
	// hyperedge of the latest batch.
	Ordered uint64
	Unique  uint64
	Elapsed time.Duration
}

// DeltaCount counts the embeddings of p that use at least one hyperedge
// from the latest batch. The total embedding count after the batch equals
// the total before it plus Delta.Ordered.
func (m *Miner) DeltaCount(p *pattern.Pattern, opts engine.Options) (Delta, error) {
	start := time.Now()
	var d Delta
	boundary := m.boundary
	var aut int
	for anchor := 0; anchor < p.NumEdges(); anchor++ {
		a := anchor
		opts.PositionFilter = func(pos int, edge uint32) bool {
			switch {
			case pos < a:
				return edge < boundary
			case pos == a:
				return edge >= boundary
			default:
				return true
			}
		}
		res, err := engine.Mine(m.store, p, opts)
		if err != nil {
			return Delta{}, err
		}
		d.Ordered += res.Ordered
		aut = res.Automorphisms
	}
	if aut > 0 {
		d.Unique = d.Ordered / uint64(aut)
	}
	d.Elapsed = time.Since(start)
	return d, nil
}

// TotalCount mines the full current hypergraph (the non-incremental
// answer), for verification and initialization.
func (m *Miner) TotalCount(p *pattern.Pattern, opts engine.Options) (engine.Result, error) {
	opts.PositionFilter = nil
	return engine.Mine(m.store, p, opts)
}
